// Command benchguard compares machine-readable benchmark results
// (BENCH_<exp>.json files written by fdbbench -json) against a committed
// baseline and fails when a series regresses beyond the tolerance — the
// CI bench-regression gate.
//
// Usage:
//
//	benchguard -baseline bench_baseline.json BENCH_*.json          # check
//	benchguard -baseline bench_baseline.json -update BENCH_*.json  # rewrite baseline
//
// The baseline maps "<experiment>/<series>" to ns/op. Only series
// present in both the baseline and the current results are compared, so
// adding a new benchmark never fails the guard until the baseline is
// updated (-update); a series that disappears from the current results
// fails the guard unless -allow-missing is set, so benchmarks cannot be
// dropped silently.
//
// CI timing is noisy; pick the tolerance (and baseline values) with
// headroom. The default tolerance fails on >25% ns/op regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchFile mirrors fdbbench's BENCH_<exp>.json layout (the fields the
// guard needs).
type benchFile struct {
	Experiment string `json:"experiment"`
	Results    []struct {
		Name     string  `json:"name"`
		NsPerOp  int64   `json:"ns_op"`
		AllocsOp uint64  `json:"allocs_op"`
		Speedup  float64 `json:"speedup"`
	} `json:"results"`
}

// speedupFloors collects repeated -min-speedup key=N flags: a series'
// reported speedup ratio must stay at or above N. Ratios are measured
// within one run on one machine, so unlike the ns/op comparison they
// are hardware-independent — the right shape for hard product
// guarantees (e.g. "snapshot load ≥5× faster than rebuild").
type speedupFloors map[string]float64

func (s speedupFloors) String() string { return fmt.Sprint(map[string]float64(s)) }

func (s speedupFloors) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want key=minimum, got %q", v)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	s[key] = f
	return nil
}

// baseline is the committed reference: series key → ns/op, plus — for
// series that report it — allocations per op. Unlike ns/op, allocs/op is
// deterministic on a given code path, so its tolerance can be much
// tighter: a kernel rewrite that sneaks a per-value allocation back into
// a hot loop shows up as a crisp counter jump, not timer noise.
type baseline struct {
	// Note explains the file's provenance to humans editing it.
	Note    string            `json:"note,omitempty"`
	Entries map[string]int64  `json:"entries"`
	Allocs  map[string]uint64 `json:"allocs,omitempty"`
}

func main() {
	basePath := flag.String("baseline", "bench_baseline.json", "baseline file (committed)")
	tolerance := flag.Float64("tolerance", 25, "max allowed ns/op regression in percent")
	allocTolerance := flag.Float64("alloc-tolerance", 10, "max allowed allocs/op regression in percent (small counts get an absolute grace of +8 allocs)")
	update := flag.Bool("update", false, "rewrite the baseline from the current results instead of checking")
	allowMissing := flag.Bool("allow-missing", false, "do not fail when a baseline series is absent from the current results")
	floors := speedupFloors{}
	flag.Var(floors, "min-speedup", "series whose reported speedup must stay ≥ the floor, as experiment/name=N (repeatable; machine-independent ratio check)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no BENCH_*.json files given")
		os.Exit(2)
	}

	current := map[string]int64{}
	currentAllocs := map[string]uint64{}
	speedups := map[string]float64{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, r := range bf.Results {
			key := bf.Experiment + "/" + r.Name
			if r.Speedup > 0 {
				speedups[key] = r.Speedup
			}
			if r.NsPerOp <= 0 {
				continue // throughput-only series (qps) are not guarded
			}
			if prev, dup := current[key]; dup && prev != r.NsPerOp {
				fatal(fmt.Errorf("duplicate series %q across inputs", key))
			}
			current[key] = r.NsPerOp
			if r.AllocsOp > 0 {
				currentAllocs[key] = r.AllocsOp
			}
		}
	}

	if *update {
		b := baseline{
			Note:    "ns/op (and allocs/op where reported) reference for benchguard; regenerate with: go run ./cmd/benchguard -update -baseline bench_baseline.json BENCH_*.json",
			Entries: current,
		}
		if len(currentAllocs) > 0 {
			b.Allocs = currentAllocs
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*basePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %s (%d series)\n", *basePath, len(current))
		return
	}

	data, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}

	keys := make([]string, 0, len(base.Entries))
	for k := range base.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := false
	for _, key := range keys {
		baseNs := base.Entries[key]
		got, ok := current[key]
		if !ok {
			if *allowMissing {
				fmt.Printf("SKIP  %-40s baseline %dns, no current measurement\n", key, baseNs)
				continue
			}
			fmt.Printf("MISS  %-40s baseline %dns, no current measurement\n", key, baseNs)
			failed = true
			continue
		}
		change := 100 * (float64(got) - float64(baseNs)) / float64(baseNs)
		status := "ok  "
		if change > *tolerance {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-40s %12dns -> %12dns  (%+.1f%%, limit +%.0f%%)\n",
			status, key, baseNs, got, change, *tolerance)
	}
	allocKeys := make([]string, 0, len(base.Allocs))
	for k := range base.Allocs {
		allocKeys = append(allocKeys, k)
	}
	sort.Strings(allocKeys)
	for _, key := range allocKeys {
		baseAllocs := base.Allocs[key]
		got, ok := currentAllocs[key]
		if !ok {
			if *allowMissing {
				fmt.Printf("SKIP  %-40s baseline %d allocs, no current measurement\n", key, baseAllocs)
				continue
			}
			fmt.Printf("MISS  %-40s baseline %d allocs, no current measurement\n", key, baseAllocs)
			failed = true
			continue
		}
		// Allocation counts are deterministic per code path, so the
		// percentage tolerance is tight; the +8 absolute grace keeps
		// tiny-count series (e.g. 3 → 5 allocs) from tripping on
		// incidental runtime variation like map growth timing.
		limit := float64(baseAllocs) * (1 + *allocTolerance/100)
		status := "ok  "
		if float64(got) > limit && got > baseAllocs+8 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-40s %8d allocs -> %8d allocs  (limit +%.0f%% or +8)\n",
			status, key, baseAllocs, got, *allocTolerance)
	}
	floorKeys := make([]string, 0, len(floors))
	for k := range floors {
		floorKeys = append(floorKeys, k)
	}
	sort.Strings(floorKeys)
	for _, key := range floorKeys {
		got, ok := speedups[key]
		switch {
		case !ok:
			fmt.Printf("MISS  %-40s no speedup reported (floor %.1f×)\n", key, floors[key])
			failed = true
		case got < floors[key]:
			fmt.Printf("FAIL  %-40s speedup %.2f× below floor %.1f×\n", key, got, floors[key])
			failed = true
		default:
			fmt.Printf("ok    %-40s speedup %.2f× (floor %.1f×)\n", key, got, floors[key])
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: ns/op regression beyond tolerance, speedup below floor, or missing series; update bench_baseline.json deliberately if this is expected")
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d series within +%.0f%% of baseline, %d speedup floors held\n", len(keys), *tolerance, len(floorKeys))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
