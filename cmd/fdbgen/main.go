// Command fdbgen generates the paper's synthetic Orders/Packages/Items
// dataset (Section 6) at a given scale factor and writes it as CSV files.
//
// Usage:
//
//	fdbgen -scale 4 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdbgen: ")
	scale := flag.Int("scale", 1, "scale factor s (join grows as ~256·s⁴ tuples)")
	seed := flag.Int64("seed", 0, "random seed (0 = fixed default)")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	ds := workload.Generate(workload.Config{Scale: *scale, Seed: *seed})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, rel *relation.Relation) {
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := rel.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d tuples\n", path, rel.Cardinality())
	}
	write("Orders", ds.Orders)
	write("Packages", ds.Packages)
	write("Items", ds.Items)

	rep, err := ds.Sizes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale %d: |R1| = %d tuples (flat), factorisation = %d singletons (gap %.1f×)\n",
		rep.Scale, rep.JoinTuples, rep.FactSingletons,
		float64(rep.JoinTuples)/float64(rep.FactSingletons))
}
