package main

// The "scatter" experiment measures scatter-gather serving end to end:
// the flat workload catalogue is partitioned across in-process shard
// workers behind real HTTP listeners, and a distributable statement mix
// runs through a coordinator at increasing shard counts. Reported per
// (statement, shards): p50/p99 client latency and speedup vs the
// 1-shard cluster — so the curve isolates what sharding buys over the
// coordination overhead itself. With -json the series lands in
// BENCH_scatter.json.

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/cluster"
	"github.com/factordb/fdb/internal/server"
)

// scatterSamples is how many timed runs back each (statement, shards)
// point; p50/p99 come from this sample set.
const scatterSamples = 15

// scatterStatements is the distributable mix: streamed group merges,
// an AVG partial rewrite, a buffered top-k on an aggregate alias, a
// global COUNT(*), and an ordered scan page — every scatter-gather
// execution mode.
var scatterStatements = []struct{ name, sql string }{
	{"group_sum", `SELECT customer, SUM(price) AS total FROM R2 GROUP BY customer ORDER BY customer`},
	{"group_avg", `SELECT package, AVG(price) AS ap, COUNT(*) AS n FROM R2 GROUP BY package ORDER BY package`},
	{"topk_revenue", `SELECT customer, SUM(price) AS revenue FROM R2 GROUP BY customer ORDER BY revenue DESC LIMIT 10`},
	{"count_star", `SELECT COUNT(*) AS n FROM R2`},
	{"scan_page", `SELECT * FROM R2 ORDER BY package, date LIMIT 50 OFFSET 100`},
}

// expScatter runs the speedup-vs-shards sweep.
func (b *bench) expScatter() {
	header(fmt.Sprintf("scatter: scatter-gather latency vs shards (scale %d, %d samples/point)", b.scale, scatterSamples))
	db := fdb.Database(b.flatDB(b.scale))
	cat, err := catalog.Build("bench", db)
	if err != nil {
		log.Fatal(err)
	}

	row("statement", "shards", "p50", "p99", "speedup")
	baseline := map[string]time.Duration{}
	for shards := 1; shards <= 4; shards *= 2 {
		co, cleanup := newScatterCluster(db, cat, shards)
		ts := httptest.NewServer(co)
		client := ts.Client()
		for _, stmt := range scatterStatements {
			// Warm up: plan-cache fill plus a correctness check.
			if err := postOne(client, ts.URL, stmt.sql); err != nil {
				log.Fatalf("scatter warmup %s: %v", stmt.name, err)
			}
			lats := make([]time.Duration, 0, scatterSamples)
			for i := 0; i < scatterSamples; i++ {
				start := time.Now()
				if err := postOne(client, ts.URL, stmt.sql); err != nil {
					log.Fatal(err)
				}
				lats = append(lats, time.Since(start))
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50 := lats[len(lats)/2]
			p99 := lats[(len(lats)*99)/100]
			if shards == 1 {
				baseline[stmt.name] = p50
			}
			speedup := float64(baseline[stmt.name]) / float64(p50)
			row(stmt.name, fmt.Sprint(shards), p50.String(), p99.String(), fmt.Sprintf("%.2f×", speedup))
			if b.jsonOut {
				b.results = append(b.results, benchResult{
					Name:    fmt.Sprintf("%s/shards=%d", stmt.name, shards),
					Scale:   b.scale,
					Par:     shards,
					NsPerOp: p50.Nanoseconds(),
					P50Ns:   p50.Nanoseconds(),
					P99Ns:   p99.Nanoseconds(),
					Speedup: speedup,
				})
			}
		}
		ts.Close()
		cleanup()
	}
}

// newScatterCluster builds one coordinator over the given shard count:
// single-replica in-process workers behind real listeners, the full
// catalogue shipped, and a plain local-fallback server. The returned
// cleanup closes the worker listeners and their shard directories.
func newScatterCluster(db fdb.Database, cat *catalog.Catalog, shards int) (*cluster.Coordinator, func()) {
	local, err := server.New(server.Config{Databases: map[string]fdb.Database{"bench": db}, DefaultDB: "bench"})
	if err != nil {
		log.Fatal(err)
	}
	var cleanups []func()
	groups := make([][]string, shards)
	for i := 0; i < shards; i++ {
		dir, err := os.MkdirTemp("", "fdbbench-shard")
		if err != nil {
			log.Fatal(err)
		}
		w, err := server.New(server.Config{ShardDir: dir})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(w)
		groups[i] = []string{ts.URL}
		cleanups = append(cleanups, ts.Close, func() { os.RemoveAll(dir) })
	}
	man, err := cluster.Ship(context.Background(), nil, groups, cat)
	if err != nil {
		log.Fatal(err)
	}
	co, err := cluster.New(cluster.Config{Groups: groups, Manifest: man, Local: local})
	if err != nil {
		log.Fatal(err)
	}
	return co, func() {
		for _, fn := range cleanups {
			fn()
		}
	}
}
