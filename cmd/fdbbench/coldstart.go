package main

// The coldstart experiment measures what catalogue persistence buys at
// boot by timing fdbserver's two boot paths end to end:
//
//	rebuild    the no-snapshot path — parse every relation from CSV and
//	           factorise it (sort-based) into its arena store
//	load       the snapshot path — read catalog.fdbcat with one
//	           contiguous read and decode slabs in place
//	load-mmap  the same, memory-mapped (zero-copy slabs)
//
// It also reports save time (build + atomic write) and snapshot size.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/relation"
)

// expColdstart measures rebuild vs snapshot load for the workload
// database at the current scale.
func (b *bench) expColdstart() {
	header(fmt.Sprintf("Coldstart: CSV rebuild vs snapshot load (scale %d)", b.scale))
	ds := b.dataset(b.scale)
	db := engine.DB(ds.DB())
	r1, err := ds.FlatR1()
	if err != nil {
		log.Fatal(err)
	}
	r2, err := ds.FlatR2()
	if err != nil {
		log.Fatal(err)
	}
	r3, err := ds.R3()
	if err != nil {
		log.Fatal(err)
	}
	db["R1"], db["R2"], db["R3"] = r1, r2, r3

	dir, err := os.MkdirTemp(".", "fdb-coldstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Untimed setup: materialise the CSV form of every relation (what a
	// no-snapshot deployment keeps on disk) and the snapshot file.
	for name, rel := range db {
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			log.Fatal(err)
		}
		if err := rel.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	snapPath := filepath.Join(dir, "catalog.fdbcat")

	// Rebuild: the CSV boot path — parse every *.csv and factorise each
	// relation over its attribute path.
	rebuild := b.timeIt(func() {
		matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
		if err != nil || len(matches) == 0 {
			log.Fatalf("coldstart: globbing CSVs: %v (%d files)", err, len(matches))
		}
		parsed := make(map[string]*relation.Relation, len(matches))
		for _, path := range matches {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			name := filepath.Base(path)
			name = name[:len(name)-len(".csv")]
			rel, err := relation.ReadCSV(name, f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			parsed[name] = rel
		}
		if _, err := catalog.Build("workload", parsed); err != nil {
			log.Fatal(err)
		}
	})

	// Save: factorise plus the atomic snapshot write, for operational
	// context (what POST /snapshot costs).
	save := b.timeIt(func() {
		if err := engine.SaveCatalogFile(snapPath, "workload", db); err != nil {
			log.Fatal(err)
		}
	})
	st, err := os.Stat(snapPath)
	if err != nil {
		log.Fatal(err)
	}

	loadOnce := func(mmap bool) {
		cat, err := engine.LoadCatalogFile(snapPath, mmap)
		if err != nil {
			log.Fatal(err)
		}
		// Touch every relation so lazily faulted pages are charged to the
		// load, not to the first query.
		n := 0
		for _, rel := range cat.DB {
			n += rel.Cardinality()
		}
		if n == 0 {
			log.Fatal("coldstart: loaded catalogue is empty")
		}
		if err := cat.Close(); err != nil {
			log.Fatal(err)
		}
	}
	load := b.timeIt(func() { loadOnce(false) })
	loadMmap := b.timeIt(func() { loadOnce(true) })

	speedup := func(m measurement) float64 {
		if m.Dur <= 0 {
			return 0
		}
		return float64(rebuild.Dur) / float64(m.Dur)
	}

	row("phase", "time", "speedup-vs-rebuild")
	row("rebuild", rebuild.String(), "1.0×")
	row("save", save.String(), "")
	row("load", load.String(), fmt.Sprintf("%.1f×", speedup(load)))
	row("load-mmap", loadMmap.String(), fmt.Sprintf("%.1f×", speedup(loadMmap)))
	row("snapshot-size", fmt.Sprintf("%d bytes", st.Size()), "")

	if b.jsonOut {
		b.results = append(b.results,
			benchResult{Name: "rebuild", Scale: b.scale, NsPerOp: rebuild.Dur.Nanoseconds(), AllocsOp: rebuild.Allocs, Speedup: 1},
			benchResult{Name: "save", Scale: b.scale, NsPerOp: save.Dur.Nanoseconds(), AllocsOp: save.Allocs},
			benchResult{Name: "load", Scale: b.scale, NsPerOp: load.Dur.Nanoseconds(), AllocsOp: load.Allocs, Speedup: speedup(load)},
			benchResult{Name: "load-mmap", Scale: b.scale, NsPerOp: loadMmap.Dur.Nanoseconds(), AllocsOp: loadMmap.Allocs, Speedup: speedup(loadMmap)},
		)
	}
}
