package main

// The "scale" experiment is the perf gate for the vectorised kernels:
// at each scale it times the two operator hot loops the kernels rewired,
// once with frep.EnableKernels off (the scalar, pre-kernel path) and
// once with it on, and reports the per-scale speedup:
//
//   - σ: SelectConst date>c (~12.5% selectivity) on the date-rooted
//     factorisation of Orders (the paper's R2 shape), whose root union
//     holds every distinct date — one kind-homogeneous run of ~800·s
//     values, the long-run case the columnar fast path targets;
//   - γ: Gamma sum(customer) at date on the view R1 over the paper's
//     f-tree T, folding ~8·s² customer leaf unions of ~2·s values each
//     through the leaf aggregation kernel.
//
// The speedup is a within-run ratio on one machine, so unlike ns/op it
// is stable across hardware — CI gates on it with benchguard
// -min-speedup floors rather than on absolute baseline entries.
//
// The operators run on a private clone of the indexed base store whose
// roots are restored between repetitions: a fresh snapshot per rep would
// charge the copy-on-grow of the whole shared slab (identical in both
// legs) to the measurement and drown the loop under test at scale.
//
// The sweep covers scales {1, 10, 100} capped by -scale: the
// factorisation of R1 grows as ~64·s³ singletons, so scale 100 (~64M
// singletons) is an explicit opt-in (-scale 100); CI runs -scale 10.

import (
	"fmt"
	"log"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// scaleSweep is the sweep grid; points above -scale are skipped.
var scaleSweep = []int{1, 10, 100}

// indexArena ranks and column-indexes a base store like production
// catalogues do (engine.ExecContext). The scalar leg runs on the same
// indexed store with the kernels switched off, so the comparison
// isolates exactly the rewired loop.
func indexArena(ar *fops.ARel) {
	if err := ar.Store.BuildRanks(); err != nil {
		log.Fatal(err)
	}
	ar.Store.BuildCols()
}

// kernelBench times op against a private clone of ar with the kernels
// forced on or off. Repetitions restore the clone's root ids and f-tree,
// so each rep transforms the original unions (the clone's slab keeps the
// appended garbage of earlier reps, which only costs amortised append
// capacity, never a COW copy).
type kernelBench struct {
	b      *bench
	priv   *fops.ARel
	roots0 []frep.NodeID
	tree0  *ftree.Forest
}

func (b *bench) newKernelBench(ar *fops.ARel) *kernelBench {
	priv, _ := ar.Clone()
	return &kernelBench{
		b:      b,
		priv:   priv,
		roots0: append([]frep.NodeID{}, priv.Roots...),
		tree0:  priv.Tree,
	}
}

func (kb *kernelBench) run(enable bool, op func(r *fops.ARel) error) measurement {
	old := frep.EnableKernels
	frep.EnableKernels = enable
	defer func() { frep.EnableKernels = old }()
	return kb.b.timeIt(func() {
		kb.priv.Roots = append(kb.priv.Roots[:0], kb.roots0...)
		kb.priv.Tree, _ = kb.tree0.Clone()
		if err := op(kb.priv); err != nil {
			log.Fatal(err)
		}
	})
}

// expScale runs the kernel-vs-scalar sweep.
func (b *bench) expScale() {
	header(fmt.Sprintf("Scale sweep: vectorised kernels vs scalar hot loops (σ date>c on Orders path, γ sum(customer) at date on R1; scales ≤ %d)", b.scale))
	row("scale", "select-scalar", "select-kernel", "speedup", "gamma-scalar", "gamma-kernel", "speedup")
	for _, s := range scaleSweep {
		if s > b.scale {
			continue
		}
		d := b.dataset(s)
		ar, err := d.FactorisedR1Arena()
		if err != nil {
			log.Fatal(err)
		}
		indexArena(ar)
		ft := ftree.New()
		ft.NewRelationPath("date", "package", "customer")
		ord, err := fops.FromRelationStoreUnchecked(frep.NewStore(), d.Orders, ft)
		if err != nil {
			log.Fatal(err)
		}
		indexArena(ord)

		selBench := b.newKernelBench(ord)
		gamBench := b.newKernelBench(ar)
		sel := func(r *fops.ARel) error {
			return r.SelectConst("date", fops.GT, values.NewInt(700*int64(s)))
		}
		gam := func(r *fops.ARel) error {
			return r.Gamma("date", []ftree.AggField{{Fn: ftree.Sum, Arg: "customer"}})
		}
		selScalar := selBench.run(false, sel)
		selKernel := selBench.run(true, sel)
		gamScalar := gamBench.run(false, gam)
		gamKernel := gamBench.run(true, gam)
		selSpeed := float64(selScalar.Dur) / float64(selKernel.Dur)
		gamSpeed := float64(gamScalar.Dur) / float64(gamKernel.Dur)

		row(fmt.Sprint(s),
			selScalar.String(), selKernel.String(), fmt.Sprintf("%.2f×", selSpeed),
			gamScalar.String(), gamKernel.String(), fmt.Sprintf("%.2f×", gamSpeed))
		if b.jsonOut {
			b.results = append(b.results,
				benchResult{Name: fmt.Sprintf("s%d/select-scalar", s), Scale: s, NsPerOp: selScalar.Dur.Nanoseconds(), AllocsOp: selScalar.Allocs},
				benchResult{Name: fmt.Sprintf("s%d/select-kernel", s), Scale: s, NsPerOp: selKernel.Dur.Nanoseconds(), AllocsOp: selKernel.Allocs, Speedup: selSpeed},
				benchResult{Name: fmt.Sprintf("s%d/gamma-scalar", s), Scale: s, NsPerOp: gamScalar.Dur.Nanoseconds(), AllocsOp: gamScalar.Allocs},
				benchResult{Name: fmt.Sprintf("s%d/gamma-kernel", s), Scale: s, NsPerOp: gamKernel.Dur.Nanoseconds(), AllocsOp: gamKernel.Allocs, Speedup: gamSpeed},
			)
		}
		if s != b.scale {
			delete(b.ds, s) // bound resident memory across the sweep
		}
	}
}
