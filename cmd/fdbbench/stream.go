package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server"
)

// streamStatement is the workload for the streaming experiment: a
// fully-ordered scan of the Orders relation, large enough that the
// difference between buffering the response and streaming it off the
// cursor is visible in both time-to-first-row and peak memory.
const streamStatement = `SELECT customer, date, package FROM Orders ORDER BY customer, date, package`

// streamPoint is one measured transport: full-stream throughput and
// the latency until the first row was available to the client.
type streamPoint struct {
	rows       int
	total      time.Duration
	firstRow   time.Duration
	rowsPerSec float64
}

// expStream compares the buffered JSON transport against NDJSON
// streaming on the same statement and server: requests go over real
// HTTP to an in-process fdbserver, and for each transport the client
// measures time-to-first-row and rows/sec (medians over -reps runs).
func (b *bench) expStream() {
	header(fmt.Sprintf("Streaming: buffered /query vs NDJSON off the cursor (scale %d)", b.scale))
	d := b.dataset(b.scale)
	srv, err := server.New(server.Config{
		Databases: map[string]fdb.Database{"bench": fdb.Database(d.DB())},
		CacheSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Warm the plan cache and the shared base snapshot so the series
	// measures transport, not first-query planning.
	if _, err := fetchBuffered(client, ts.URL); err != nil {
		log.Fatalf("warmup: %v", err)
	}

	measure := func(fetch func(*http.Client, string) (streamPoint, error)) streamPoint {
		pts := make([]streamPoint, 0, b.reps)
		for i := 0; i < b.reps; i++ {
			pt, err := fetch(client, ts.URL)
			if err != nil {
				log.Fatal(err)
			}
			pts = append(pts, pt)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].total < pts[j].total })
		return pts[len(pts)/2]
	}
	buffered := measure(fetchBuffered)
	ndjson := measure(fetchNDJSON)
	if buffered.rows != ndjson.rows {
		log.Fatalf("transports disagree: buffered %d rows, ndjson %d rows", buffered.rows, ndjson.rows)
	}

	row("transport", "rows", "total", "time-to-first-row", "rows/sec")
	for _, p := range []struct {
		name string
		pt   streamPoint
	}{{"buffered", buffered}, {"ndjson", ndjson}} {
		row(p.name, fmt.Sprint(p.pt.rows), p.pt.total.String(), p.pt.firstRow.String(),
			fmt.Sprintf("%.0f", p.pt.rowsPerSec))
		if b.jsonOut {
			b.results = append(b.results, benchResult{
				Name:    p.name,
				Scale:   b.scale,
				NsPerOp: p.pt.total.Nanoseconds(),
				QPS:     p.pt.rowsPerSec,
				P50Ns:   p.pt.firstRow.Nanoseconds(),
			})
		}
	}
}

// fetchBuffered issues the statement over the buffered JSON transport;
// the first row is available only once the whole body has arrived and
// decoded.
func fetchBuffered(client *http.Client, url string) (streamPoint, error) {
	body, err := json.Marshal(server.QueryRequest{SQL: streamStatement})
	if err != nil {
		return streamPoint{}, err
	}
	start := time.Now()
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return streamPoint{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return streamPoint{}, fmt.Errorf("buffered query status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return streamPoint{}, err
	}
	firstRow := time.Since(start) // rows usable only after the full decode
	total := firstRow
	return streamPoint{
		rows:       qr.RowCount,
		total:      total,
		firstRow:   firstRow,
		rowsPerSec: float64(qr.RowCount) / total.Seconds(),
	}, nil
}

// fetchNDJSON issues the statement over the streaming transport and
// counts rows line by line; the first row is usable as soon as its
// line arrives.
func fetchNDJSON(client *http.Client, url string) (streamPoint, error) {
	body, err := json.Marshal(server.QueryRequest{SQL: streamStatement})
	if err != nil {
		return streamPoint{}, err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		return streamPoint{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return streamPoint{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return streamPoint{}, fmt.Errorf("ndjson query status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil { // header line
		return streamPoint{}, err
	}
	var firstRow time.Duration
	var lastLine string
	rows := 0
	sawRow := false
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			return streamPoint{}, err
		}
		lastLine = line
		if len(line) > 0 && line[0] == '[' {
			if !sawRow {
				firstRow = time.Since(start)
				sawRow = true
			}
			rows++
		}
	}
	total := time.Since(start)
	// The stream must have ended with a clean trailer: a mid-stream
	// error or truncation would otherwise be recorded as a valid point.
	var trailer struct {
		RowCount  int    `json:"rowCount"`
		Truncated bool   `json:"truncated"`
		Error     string `json:"error"`
	}
	if len(lastLine) == 0 || lastLine[0] != '{' {
		return streamPoint{}, fmt.Errorf("ndjson stream ended without a trailer")
	}
	if err := json.Unmarshal([]byte(lastLine), &trailer); err != nil {
		return streamPoint{}, fmt.Errorf("decoding ndjson trailer %q: %v", lastLine, err)
	}
	if trailer.Error != "" {
		return streamPoint{}, fmt.Errorf("ndjson stream failed mid-enumeration: %s", trailer.Error)
	}
	if trailer.Truncated {
		return streamPoint{}, fmt.Errorf("ndjson stream truncated at %d rows", trailer.RowCount)
	}
	if trailer.RowCount != rows {
		return streamPoint{}, fmt.Errorf("ndjson trailer reports %d rows, client counted %d", trailer.RowCount, rows)
	}
	return streamPoint{
		rows:       rows,
		total:      total,
		firstRow:   firstRow,
		rowsPerSec: float64(rows) / total.Seconds(),
	}, nil
}
