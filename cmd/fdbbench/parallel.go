package main

// The "parallel" experiment measures intra-query parallel execution:
// the same aggregate/count/grouped/enumeration workloads run on the
// arena view at increasing Engine.Parallelism, and the curve of
// speedup vs P (with p50/p99 latencies) lands in BENCH_parallel.json.
// The size floors that keep small production queries serial are
// lowered for the measurement so the segmentation engages at any
// -scale; results are still end-to-end query latencies.

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/workload"
)

// parallelSamples is how many timed runs back each (workload, P) point;
// p50/p99 come from this sample set.
const parallelSamples = 15

// countQuery is the global COUNT(*) over the view.
func countQuery() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
	}
}

// expParallel runs the intra-query parallel scaling curve.
func (b *bench) expParallel() {
	// Let the segmentation engage regardless of -scale: the floors
	// exist to keep tiny production queries serial, not to gate a
	// scaling measurement. Only the *value* floors are lowered — the
	// work floors (frep.MinParallelEvalWork, fops.MinParallelRebuildWork,
	// counted in represented tuples via the ranked index) and the
	// grouped-cursor floor (engine.MinParallelGroupRows) stay at their
	// production settings deliberately: they encode the measured
	// crossover below which γ-heavy fan-out loses to serial evaluation,
	// and this experiment exists to verify that production behaviour
	// (scale 1 sums stay serial with speedup ≈ 1; past the crossover the
	// curve climbs).
	oldEval, oldRebuild, oldEnum := frep.MinParallelEvalValues, fops.MinParallelRebuildValues, engine.MinParallelEnumRows
	frep.MinParallelEvalValues = 16
	fops.MinParallelRebuildValues = 16
	engine.MinParallelEnumRows = 16
	defer func() {
		frep.MinParallelEvalValues, fops.MinParallelRebuildValues, engine.MinParallelEnumRows = oldEval, oldRebuild, oldEnum
	}()

	d := b.dataset(b.scale)
	cat := d.Catalog()
	view, err := d.FactorisedR1Arena()
	if err != nil {
		log.Fatal(err)
	}
	// Rank the view like production catalogues and shared executions:
	// weighted (count-balanced) parallel splits, ranked OFFSET seeks and
	// the O(1) COUNT(*) path all key off the subtree-count index.
	if err := view.Store.BuildRanks(); err != nil {
		log.Fatal(err)
	}
	// And the column index, so the vectorised kernels engage exactly as
	// they do on production executions.
	view.Store.BuildCols()
	header(fmt.Sprintf("Parallel: intra-query scaling on the arena view R1 (scale %d, GOMAXPROCS %d)",
		b.scale, runtime.GOMAXPROCS(0)))
	row("workload", "P", "p50", "p99", "speedup")

	workloads := []struct {
		name string
		mk   func() *query.Query
	}{
		{"count", countQuery},
		{"sum-global", workload.Q5},
		{"sum-grouped", workload.Q2},
		{"agg-ordered", workload.Q7},
		{"enumerate", func() *query.Query { return workload.Q11(0) }},
	}
	levels := []int{1, 2, 4, 8}
	for _, wl := range workloads {
		var baseline time.Duration
		for _, p := range levels {
			if p > b.par {
				break
			}
			eng := &engine.Engine{PartialAgg: true, Parallelism: p}
			lats := make([]time.Duration, 0, parallelSamples)
			for i := 0; i < parallelSamples; i++ {
				q := wl.mk()
				start := time.Now()
				res, err := eng.RunOnARel(q, view, cat)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := res.Count(); err != nil {
					log.Fatal(err)
				}
				res.Close()
				lats = append(lats, time.Since(start))
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p50 := lats[len(lats)/2]
			p99 := lats[(len(lats)*99)/100]
			if p == 1 {
				baseline = p50
			}
			speedup := float64(baseline) / float64(p50)
			name := fmt.Sprintf("%s/P=%d", wl.name, p)
			row(wl.name, fmt.Sprint(p), p50.String(), p99.String(), fmt.Sprintf("%.2f×", speedup))
			if b.jsonOut {
				b.results = append(b.results, benchResult{
					Name:    name,
					Scale:   b.scale,
					Par:     p,
					NsPerOp: p50.Nanoseconds(),
					P50Ns:   p50.Nanoseconds(),
					P99Ns:   p99.Nanoseconds(),
					Speedup: speedup,
				})
			}
		}
	}
	st := engine.ParallelStats()
	fmt.Printf("workers spawned: enum=%d op=%d eval=%d (parallel queries: %d)\n",
		st.EnumWorkers, st.OpWorkers, st.EvalWorkers, st.Queries)
}
