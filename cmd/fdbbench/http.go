package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server"
)

// The mixed statement workload for the HTTP throughput experiment:
// aggregation over the three-way join, a grouped order-by, a filtered
// scan and a point-ish lookup, so the server exercises planning,
// aggregation, enumeration and the plan cache together.
var httpStatements = []string{
	`SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items
	 WHERE package = package2 AND item = item2
	 GROUP BY customer ORDER BY revenue DESC LIMIT 10`,
	`SELECT package, COUNT(*) AS n FROM Orders GROUP BY package ORDER BY n DESC LIMIT 10`,
	`SELECT date, MAX(price) AS top FROM Orders, Packages, Items
	 WHERE package = package2 AND item = item2
	 GROUP BY date ORDER BY top DESC LIMIT 10`,
	`SELECT item2, price FROM Items WHERE price >= 15 ORDER BY price DESC`,
	`SELECT customer, date FROM Orders WHERE package = 1 LIMIT 20`,
}

// expHTTP measures end-to-end server throughput: the workload dataset is
// served by an in-process fdbserver instance over real HTTP, and client
// goroutines fire the mixed statement workload at increasing concurrency
// levels. Reported per level: queries/sec, client-side p50/p99 latency,
// and the plan cache hit rate.
func (b *bench) expHTTP() {
	header(fmt.Sprintf("HTTP: server throughput, mixed workload (scale %d, %d requests/level)", b.scale, b.httpRequests))
	d := b.dataset(b.scale)
	srv, err := server.New(server.Config{
		Databases: map[string]fdb.Database{"bench": fdb.Database(d.DB())},
		CacheSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}

	// Warm up: every statement once, checking it actually succeeds.
	for _, stmt := range httpStatements {
		if err := postOne(client, ts.URL, stmt); err != nil {
			log.Fatalf("warmup: %v", err)
		}
	}

	row("clients", "queries/sec", "p50", "p99", "cache-hit-rate")
	prev := srv.Stats().Databases["bench"].PlanCache
	for clients := 1; clients <= b.httpClients; clients *= 2 {
		qps, p50, p99 := b.fireHTTP(client, ts.URL, clients)
		cur := srv.Stats().Databases["bench"].PlanCache
		// Hit rate over this level only: delta against the previous
		// snapshot, so warmup and earlier levels don't mask regressions.
		hits, misses := cur.Hits-prev.Hits, cur.Misses-prev.Misses
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		prev = cur
		b.recHTTP(clients, qps, p50, p99)
		row(fmt.Sprint(clients), fmt.Sprintf("%.0f", qps), p50.String(), p99.String(),
			fmt.Sprintf("%.3f", hitRate))
	}
}

// fireHTTP sends b.httpRequests requests from the given number of client
// goroutines, round-robin over the statement mix, and returns the
// aggregate throughput and client-observed latency percentiles.
func (b *bench) fireHTTP(client *http.Client, url string, clients int) (qps float64, p50, p99 time.Duration) {
	total := b.httpRequests
	perClient := total / clients
	if perClient == 0 {
		perClient = 1
	}
	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats[c] = make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				stmt := httpStatements[(c+i)%len(httpStatements)]
				t0 := time.Now()
				if err := postOne(client, url, stmt); err != nil {
					log.Fatal(err)
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	qps = float64(len(all)) / elapsed.Seconds()
	p50 = all[len(all)/2]
	p99 = all[len(all)*99/100]
	return qps, p50, p99
}

// postOne sends one query and fails on any non-200 or undecodable
// response.
func postOne(client *http.Client, url, stmt string) error {
	body, err := json.Marshal(server.QueryRequest{SQL: stmt})
	if err != nil {
		return err
	}
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("query failed with status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}
