package main

// The ingest experiment measures the write path end to end:
//
//  1. Batched INSERT throughput (rows/sec) at several batch sizes,
//     streaming the workload's Orders relation into an initially empty
//     mutable catalogue — every batch group-committed to the WAL.
//  2. Read parity: p50 latency of flat Q1 against a plain in-memory
//     catalogue vs a never-written mutable catalogue's view. The ratio
//     is reported as the "read-parity" speedup series and CI-gated: the
//     delta/tombstone machinery must not tax unmutated catalogues.
//  3. Read latency under write: p50/p99 of flat Q1 while a writer
//     streams batched inserts concurrently (reported, not gated —
//     absolute latencies are machine-dependent).

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

// recIngest records a throughput or latency series point.
func (b *bench) recIngest(name string, qps float64, p50, p99 time.Duration, speedup float64) {
	if !b.jsonOut {
		return
	}
	b.results = append(b.results, benchResult{
		Name: name, QPS: qps,
		P50Ns: p50.Nanoseconds(), P99Ns: p99.Nanoseconds(),
		Speedup: speedup,
	})
}

// emptyOrdersDB returns the dataset's catalogue with Orders emptied, so
// ingest starts from zero rows.
func emptyOrdersDB(d *workload.Dataset) engine.DB {
	db := engine.DB(d.DB())
	db["Orders"] = relation.MustNew("Orders", d.Orders.Attrs, nil)
	return db
}

// newIngestCatalog creates a throwaway mutable catalogue under dir.
func newIngestCatalog(dir string, db engine.DB) *engine.MutableCatalog {
	m, err := engine.CreateMutable(dir, "bench", db)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func (b *bench) expIngest() {
	header(fmt.Sprintf("INGEST: WAL write path (scale %d)", b.scale))
	d := b.dataset(b.scale)
	root, err := os.MkdirTemp("", "fdb-ingest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	ctx := context.Background()
	tuples := d.Orders.Tuples

	// 1. Batched ingest throughput.
	row("batch", "rows/sec", "wall", "wal-bytes")
	for _, batch := range []int{1, 32, 256} {
		m := newIngestCatalog(filepath.Join(root, fmt.Sprintf("b%d", batch)), emptyOrdersDB(d))
		start := time.Now()
		for off := 0; off < len(tuples); off += batch {
			end := off + batch
			if end > len(tuples) {
				end = len(tuples)
			}
			rows := make([][]values.Value, end-off)
			for i, tp := range tuples[off:end] {
				rows[i] = tp
			}
			mut := &query.Mutation{Op: query.OpInsert, Relation: "Orders", Rows: rows}
			if _, err := m.Apply(ctx, mut); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		rps := float64(len(tuples)) / elapsed.Seconds()
		walBytes := m.Stats().WALBytes
		m.Close()
		b.recIngest(fmt.Sprintf("batch=%d", batch), rps, 0, 0, 0)
		row(fmt.Sprint(batch), fmt.Sprintf("%.0f", rps), elapsed.Round(time.Millisecond).String(),
			fmt.Sprint(walBytes))
	}

	// 2. Read parity: plain catalogue vs never-written mutable view.
	q1 := func() *query.Query {
		q, err := workload.FlatAggQuery(1)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}
	plainDB := engine.DB(d.DB())
	m := newIngestCatalog(filepath.Join(root, "parity"), plainDB)
	defer m.Close()
	iters := 20 * b.reps
	plainP50, _ := latencies(iters, func() { runQ1(q1(), plainDB) })
	viewP50, _ := latencies(iters, func() { runQ1(q1(), m.View()) })
	parity := float64(plainP50) / float64(viewP50)
	b.recIngest("read-plain", 0, plainP50, 0, 0)
	b.recIngest("read-mutable-view", 0, viewP50, 0, 0)
	b.recIngest("read-parity", 0, 0, 0, parity)
	row("series", "p50", "parity")
	row("plain", plainP50.String(), "")
	row("mutable-view", viewP50.String(), fmt.Sprintf("%.2f", parity))

	// 3. Read latency under a concurrent writer.
	mw := newIngestCatalog(filepath.Join(root, "underwrite"), engine.DB(d.DB()))
	defer mw.Close()
	stop := make(chan struct{})
	writerDone := make(chan int)
	go func() {
		written := 0
		const batch = 32
		for i := 0; ; i++ {
			select {
			case <-stop:
				writerDone <- written
				return
			default:
			}
			rows := make([][]values.Value, batch)
			for j := range rows {
				rows[j] = []values.Value{
					values.NewInt(int64(1_000_000 + i*batch + j)),
					values.NewInt(int64(j)),
					values.NewInt(int64(j % 4)),
				}
			}
			mut := &query.Mutation{Op: query.OpInsert, Relation: "Orders", Rows: rows}
			if _, err := mw.Apply(ctx, mut); err != nil {
				log.Fatal(err)
			}
			written += batch
		}
	}()
	start := time.Now()
	p50, p99 := latencies(iters, func() { runQ1(q1(), mw.View()) })
	close(stop)
	written := <-writerDone
	elapsed := time.Since(start)
	wps := float64(written) / elapsed.Seconds()
	b.recIngest("read-under-write", wps, p50, p99, 0)
	row("series", "p50", "p99", "writer rows/sec")
	row("under-write", p50.String(), p99.String(), fmt.Sprintf("%.0f", wps))

	// 4. Compaction: fold the accumulated deltas into a fresh snapshot.
	cstart := time.Now()
	if err := mw.Compact(ctx); err != nil {
		log.Fatal(err)
	}
	celapsed := time.Since(cstart)
	if b.jsonOut {
		b.results = append(b.results, benchResult{Name: "compact", NsPerOp: celapsed.Nanoseconds()})
	}
	row("compact", celapsed.Round(time.Millisecond).String(), "", "")
}

// runQ1 executes the flat Q1 aggregation and drains it.
func runQ1(q *query.Query, db engine.DB) {
	eng := engine.New()
	res, err := eng.Run(q, db)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.Relation(); err != nil {
		log.Fatal(err)
	}
	res.Close()
}

// latencies runs fn iters times and returns the p50/p99 wall clock.
func latencies(iters int, fn func()) (p50, p99 time.Duration) {
	lats := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		fn()
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], lats[len(lats)*99/100]
}
