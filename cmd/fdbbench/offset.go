package main

// The offset experiment measures deep pagination: the cost of a
// LIMIT-10 page at increasing OFFSET over one factorised relation,
// comparing the three routes the engine can take — the linear skip
// loop (stepping the odometer row by row), the memoized counting
// fallback on unranked stores, and the ranked direct seek over the
// subtree-count index. On the ranked route a page deep in the stream
// costs the same as page 0 (O(depth × log fanout) positioning), which
// is the property the seek goldens pin and this table makes visible.

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// offsetRows is the size of the synthetic relation the sweep paginates:
// a three-level path f-tree with fanout 64, so ranks have real depth to
// descend. Independent of -scale: the point is the OFFSET axis.
const (
	offsetFanout = 64
	offsetRows   = offsetFanout * offsetFanout * offsetFanout // 262144
)

// deepView builds the synthetic relation Deep(a, b, c) factorised over
// the path a→b→c in an arena store.
func deepView() *fops.ARel {
	tuples := make([]relation.Tuple, 0, offsetRows)
	for i := 0; i < offsetRows; i++ {
		tuples = append(tuples, relation.Tuple{
			values.NewInt(int64(i / (offsetFanout * offsetFanout))),
			values.NewInt(int64((i / offsetFanout) % offsetFanout)),
			values.NewInt(int64(i % offsetFanout)),
		})
	}
	rel, err := relation.New("Deep", []string{"a", "b", "c"}, tuples)
	if err != nil {
		log.Fatal(err)
	}
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	s := frep.NewStore()
	roots, err := frep.BuildStoreUnchecked(s, rel, f)
	if err != nil {
		log.Fatal(err)
	}
	return &fops.ARel{Tree: f, Store: s, Roots: roots}
}

// expOffset runs the deep-pagination sweep.
func (b *bench) expOffset() {
	view := deepView()
	offsets := []int{0, 1, 10_000, 100_000, offsetRows - 16}

	page := func(view *fops.ARel, off int) measurement {
		eng := &engine.Engine{PartialAgg: true}
		return b.timeIt(func() {
			q := &query.Query{Relations: []string{"Deep"}, Offset: off, Limit: 10}
			res, err := eng.RunOnARel(q, view, nil)
			if err != nil {
				log.Fatal(err)
			}
			defer res.Close()
			rows, err := res.Rows(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Close(); err != nil {
				log.Fatal(err)
			}
		})
	}

	header(fmt.Sprintf("Offset: LIMIT-10 pages at depth over Deep (%d rows, fanout %d path)", offsetRows, offsetFanout))
	row("offset", "linear-skip", "memo-seek", "ranked-seek")

	type arm struct {
		name  string
		view  *fops.ARel
		setup func()
	}
	old := engine.SeekFallbackMin
	arms := []arm{
		// Unranked view with the memo fallback disabled: every OFFSET
		// steps the odometer linearly (the pre-index route).
		{"linear-skip", view, func() { engine.SeekFallbackMin = math.MaxInt }},
		// Unranked view, default routing: deep offsets use the memoized
		// counting recursion.
		{"memo-seek", view, func() { engine.SeekFallbackMin = old }},
	}
	ranked := deepView()
	if err := ranked.Store.BuildRanks(); err != nil {
		log.Fatal(err)
	}
	arms = append(arms, arm{"ranked-seek", ranked, func() { engine.SeekFallbackMin = old }})

	cells := map[string]map[int]measurement{}
	for _, a := range arms {
		a.setup()
		cells[a.name] = map[int]measurement{}
		for _, off := range offsets {
			m := page(a.view, off)
			cells[a.name][off] = m
			b.rec(fmt.Sprintf("%s/offset=%d", a.name, off), b.scale, m)
		}
	}
	engine.SeekFallbackMin = old

	for _, off := range offsets {
		row(fmt.Sprint(off),
			cells["linear-skip"][off].String(),
			cells["memo-seek"][off].String(),
			cells["ranked-seek"][off].String())
	}
	page0 := cells["ranked-seek"][0].Dur
	deep := cells["ranked-seek"][100_000].Dur
	fmt.Printf("ranked deep-page (offset 100000) vs page-0: %.2f× (acceptance: ≤ 3×)\n",
		float64(deep)/float64(page0))
	if b.jsonOut {
		// Machine-independent ratio series for benchguard -min-speedup:
		// absolute page times swing with machine load, but these same-box
		// ratios only move when the ranked route itself regresses.
		b.results = append(b.results,
			// page-0 over deep-page cost on the ranked route: ≥ 1/3 is the
			// "deep page within 3× of page 0" acceptance bound.
			benchResult{Name: "ranked-flatness", Speedup: float64(page0) / float64(deep)},
			// linear skip over ranked seek at the deep page: how much the
			// index buys; collapses towards 1 if seeks degrade to stepping.
			benchResult{Name: "ranked-advantage", Speedup: float64(cells["linear-skip"][100_000].Dur) / float64(deep)},
		)
	}
}
