// Command fdbbench runs the experiments of the paper's Section 6 and
// prints one table per figure: wall-clock medians for every (query,
// engine) series, in the layout of the corresponding plot.
//
// Usage:
//
//	fdbbench -exp all            # every experiment at the default scale
//	fdbbench -exp fig4 -scalemax 8
//	fdbbench -exp size -scalemax 16
//
// Experiments: size (in-text table), fig4, fig5, fig6, fig7, fig8,
// ablation, all. Beyond the paper, "http" load-tests the fdbserver
// query service end to end: an in-process server is driven over HTTP by
// concurrent clients and throughput (queries/sec), latency percentiles
// and the plan-cache hit rate are reported per concurrency level:
//
//	fdbbench -exp http -scale 2 -httpclients 16 -httprequests 2000
//
// "stream" compares the buffered /query transport against NDJSON
// streaming off the engine cursor (rows/sec and time-to-first-row):
//
//	fdbbench -exp stream -scale 4 -json   # writes BENCH_stream.json
//
// "ingest" measures the durable write path: batched INSERT throughput
// into a WAL-backed mutable catalogue, read parity between a plain and
// a never-written mutable catalogue, and Q1 latency while a writer
// streams inserts concurrently:
//
//	fdbbench -exp ingest -scale 2 -json   # writes BENCH_ingest.json
//
// "scatter" measures distributed serving: the catalogue is sharded
// across in-process workers and a distributable statement mix runs
// through a scatter-gather coordinator at 1/2/4 shards, reporting the
// latency curve and speedup vs the 1-shard cluster:
//
//	fdbbench -exp scatter -scale 4 -json   # writes BENCH_scatter.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/workload"
)

type bench struct {
	scale        int
	scaleMax     int
	reps         int
	httpClients  int
	httpRequests int
	par          int
	jsonOut      bool
	ds           map[int]*workload.Dataset
	views        map[int]*fops.FRel
	flats        map[int]rdb.DB
	results      []benchResult
}

// measurement is one timed series entry: median wall clock plus the mean
// allocation count per run.
type measurement struct {
	Dur    time.Duration
	Allocs uint64
}

// String renders the median duration (the table cells).
func (m measurement) String() string { return m.Dur.String() }

// benchResult is one machine-readable series entry of BENCH_<exp>.json.
type benchResult struct {
	Name     string  `json:"name"`
	Scale    int     `json:"scale,omitempty"`
	NsPerOp  int64   `json:"ns_op,omitempty"`
	AllocsOp uint64  `json:"allocs_op,omitempty"`
	QPS      float64 `json:"qps,omitempty"`
	P50Ns    int64   `json:"p50_ns,omitempty"`
	P99Ns    int64   `json:"p99_ns,omitempty"`
	Par      int     `json:"par,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`
}

// rec records one timed series point for the JSON report.
func (b *bench) rec(name string, scale int, m measurement) {
	if !b.jsonOut {
		return
	}
	b.results = append(b.results, benchResult{
		Name: name, Scale: scale, NsPerOp: m.Dur.Nanoseconds(), AllocsOp: m.Allocs,
	})
}

// recHTTP records one throughput point of the http experiment.
func (b *bench) recHTTP(clients int, qps float64, p50, p99 time.Duration) {
	if !b.jsonOut {
		return
	}
	b.results = append(b.results, benchResult{
		Name: fmt.Sprintf("clients=%d", clients), QPS: qps,
		P50Ns: p50.Nanoseconds(), P99Ns: p99.Nanoseconds(),
	})
}

// flushJSON writes the recorded results of one experiment to
// BENCH_<exp>.json in the working directory and clears the collector.
func (b *bench) flushJSON(exp string) {
	if !b.jsonOut {
		return
	}
	out := struct {
		Experiment string        `json:"experiment"`
		Scale      int           `json:"scale"`
		Reps       int           `json:"reps"`
		Results    []benchResult `json:"results"`
	}{Experiment: exp, Scale: b.scale, Reps: b.reps, Results: b.results}
	if out.Results == nil {
		out.Results = []benchResult{}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatalf("encoding BENCH_%s.json: %v", exp, err)
	}
	name := fmt.Sprintf("BENCH_%s.json", exp)
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("writing %s: %v", name, err)
	}
	fmt.Printf("wrote %s (%d series)\n", name, len(b.results))
	b.results = nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdbbench: ")
	exp := flag.String("exp", "all", "experiment: size|fig4|fig5|fig6|fig7|fig8|ablation|http|stream|parallel|coldstart|offset|scale|ingest|scatter|all")
	scale := flag.Int("scale", 4, "scale factor for single-scale experiments")
	scaleMax := flag.Int("scalemax", 8, "maximum scale for the scale sweeps (size, fig4)")
	reps := flag.Int("reps", 3, "repetitions per measurement (median reported)")
	httpClients := flag.Int("httpclients", 8, "maximum client concurrency for the http experiment")
	httpRequests := flag.Int("httprequests", 800, "requests per concurrency level for the http experiment")
	par := flag.Int("par", 8, "maximum intra-query parallelism for the parallel experiment")
	jsonOut := flag.Bool("json", false, "also write machine-readable BENCH_<exp>.json per experiment (ns/op, allocs/op, qps, p50/p99)")
	flag.Parse()

	b := &bench{
		scale:        *scale,
		scaleMax:     *scaleMax,
		reps:         *reps,
		httpClients:  *httpClients,
		httpRequests: *httpRequests,
		par:          *par,
		jsonOut:      *jsonOut,
		ds:           map[int]*workload.Dataset{},
		views:        map[int]*fops.FRel{},
		flats:        map[int]rdb.DB{},
	}
	run := map[string]func(){
		"size": b.expSize, "fig4": b.expFig4, "fig5": b.expFig5,
		"fig6": b.expFig6, "fig7": b.expFig7, "fig8": b.expFig8,
		"ablation": b.expAblation, "http": b.expHTTP, "stream": b.expStream,
		"parallel": b.expParallel, "coldstart": b.expColdstart,
		"offset": b.expOffset, "scale": b.expScale, "ingest": b.expIngest,
		"scatter": b.expScatter,
	}
	doOne := func(name string, fn func()) {
		fn()
		b.flushJSON(name)
	}
	if *exp == "all" {
		for _, name := range []string{"size", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation", "http", "stream", "parallel", "coldstart", "offset", "scale", "ingest"} {
			doOne(name, run[name])
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	doOne(*exp, fn)
}

func (b *bench) dataset(s int) *workload.Dataset {
	if d, ok := b.ds[s]; ok {
		return d
	}
	d := workload.Generate(workload.Config{Scale: s})
	b.ds[s] = d
	return d
}

func (b *bench) view(s int) *fops.FRel {
	if v, ok := b.views[s]; ok {
		return v
	}
	v, err := b.dataset(s).FactorisedR1()
	if err != nil {
		log.Fatal(err)
	}
	b.views[s] = v
	return v
}

func (b *bench) flatDB(s int) rdb.DB {
	if db, ok := b.flats[s]; ok {
		return db
	}
	d := b.dataset(s)
	r1, err := d.FlatR1()
	if err != nil {
		log.Fatal(err)
	}
	r2, err := d.FlatR2()
	if err != nil {
		log.Fatal(err)
	}
	r3, err := d.R3()
	if err != nil {
		log.Fatal(err)
	}
	db := rdb.DB{"R1": r1, "R2": r2, "R3": r3}
	b.flats[s] = db
	return db
}

// timeIt returns the median wall-clock time of reps runs, plus the mean
// heap-allocation count per run. A GC runs before each repetition so
// that garbage from other experiments (for example resident flat views)
// is not charged to this measurement.
func (b *bench) timeIt(fn func()) measurement {
	times := make([]time.Duration, 0, b.reps)
	var ms runtime.MemStats
	var allocs uint64
	for i := 0; i < b.reps; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		fn()
		times = append(times, time.Since(start))
		runtime.ReadMemStats(&ms)
		allocs += ms.Mallocs - before
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return measurement{
		Dur:    times[len(times)/2],
		Allocs: allocs / uint64(b.reps),
	}
}

func (b *bench) sweep() []int {
	var out []int
	for s := 1; s <= b.scaleMax; s *= 2 {
		out = append(out, s)
	}
	return out
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func row(cells ...string) {
	fmt.Println(strings.Join(cells, "\t"))
}

// expSize reproduces the in-text size table: |R1| vs singletons of the
// factorisation over T, by scale.
func (b *bench) expSize() {
	header("E0: representation sizes (paper §6: 280M tuples vs 4.2M singletons at s=32)")
	row("scale", "join-tuples", "join-singletons", "fact-singletons", "gap")
	for _, s := range b.sweep() {
		var rep *workload.SizeReport
		// Time the size computation itself: it materialises the
		// factorised view bottom-up (builds + merges + swap), so the
		// series doubles as a view-construction benchmark.
		m := b.timeIt(func() {
			var err error
			rep, err = b.dataset(s).Sizes()
			if err != nil {
				log.Fatal(err)
			}
		})
		b.rec("materialise-R1", s, m)
		row(fmt.Sprint(s), fmt.Sprint(rep.JoinTuples), fmt.Sprint(rep.JoinSingletons),
			fmt.Sprint(rep.FactSingletons),
			fmt.Sprintf("%.1f×", float64(rep.JoinTuples)/float64(rep.FactSingletons)))
	}
}

func (b *bench) runFDBView(s int, q *query.Query) measurement {
	view := b.view(s)
	cat := b.dataset(s).Catalog()
	return b.timeIt(func() {
		res, err := engine.New().RunOnView(q, view, cat)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := res.Count(); err != nil {
			log.Fatal(err)
		}
	})
}

func (b *bench) runFDBViewFO(s int, q *query.Query) measurement {
	view := b.view(s)
	cat := b.dataset(s).Catalog()
	return b.timeIt(func() {
		res, err := engine.New().RunOnView(q, view, cat)
		if err != nil {
			log.Fatal(err)
		}
		_ = res.Singletons()
	})
}

func (b *bench) runRDB(s int, q *query.Query, mode rdb.GroupMode, eager bool) measurement {
	db := b.flatDB(s)
	return b.timeIt(func() {
		e := &rdb.Engine{Grouping: mode, Eager: eager}
		if _, err := e.Run(q, db); err != nil {
			log.Fatal(err)
		}
	})
}

// expFig4 reproduces Figure 4: Q2 and Q3 vs scale.
func (b *bench) expFig4() {
	header("Figure 4: wall-clock vs scale on the (factorised) materialised view R1")
	row("query", "scale", "FDB", "RDB-sort(≈SQLite)", "RDB-hash(≈PSQL)")
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{{"Q2", workload.Q2}, {"Q3", workload.Q3}} {
		for _, s := range b.sweep() {
			fdbT := b.runFDBView(s, tc.mk())
			sortT := b.runRDB(s, tc.mk(), rdb.GroupSort, false)
			hashT := b.runRDB(s, tc.mk(), rdb.GroupHash, false)
			b.rec(tc.name+"/FDB", s, fdbT)
			b.rec(tc.name+"/RDB-sort", s, sortT)
			b.rec(tc.name+"/RDB-hash", s, hashT)
			row(tc.name, fmt.Sprint(s), fdbT.String(), sortT.String(), hashT.String())
			if s != b.scale {
				delete(b.flats, s) // bound resident memory
			}
		}
	}
}

// expFig5 reproduces Figure 5: AGG queries on the factorised view.
func (b *bench) expFig5() {
	header(fmt.Sprintf("Figure 5: AGG queries on the materialised view R1 (scale %d)", b.scale))
	row("query", "FDB f/o", "FDB", "RDB-sort(≈SQLite)", "RDB-hash(≈PSQL)")
	for i := 1; i <= 5; i++ {
		q := func() *query.Query { qq, _ := workload.AggQuery(i); return qq }
		name := fmt.Sprintf("Q%d", i)
		fo := b.runFDBViewFO(b.scale, q())
		fdbT := b.runFDBView(b.scale, q())
		sortT := b.runRDB(b.scale, q(), rdb.GroupSort, false)
		hashT := b.runRDB(b.scale, q(), rdb.GroupHash, false)
		b.rec(name+"/FDB-fo", b.scale, fo)
		b.rec(name+"/FDB", b.scale, fdbT)
		b.rec(name+"/RDB-sort", b.scale, sortT)
		b.rec(name+"/RDB-hash", b.scale, hashT)
		row(name, fo.String(), fdbT.String(), sortT.String(), hashT.String())
	}
}

// expFig6 reproduces Figure 6: AGG queries on flat input.
func (b *bench) expFig6() {
	header(fmt.Sprintf("Figure 6: AGG queries on flat input (scale %d); man = eager aggregation", b.scale))
	row("query", "FDB", "RDB", "RDB man")
	d := b.dataset(b.scale)
	baseDB := rdb.DB(d.DB())
	engDB := engine.DB(d.DB())
	for i := 1; i <= 5; i++ {
		q := func() *query.Query { qq, _ := workload.FlatAggQuery(i); return qq }
		fdbT := b.timeIt(func() {
			res, err := engine.New().Run(q(), engDB)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := res.Count(); err != nil {
				log.Fatal(err)
			}
		})
		lazyT := b.timeIt(func() {
			if _, err := (&rdb.Engine{}).Run(q(), baseDB); err != nil {
				log.Fatal(err)
			}
		})
		manT := b.timeIt(func() {
			if _, err := (&rdb.Engine{Eager: true}).Run(q(), baseDB); err != nil {
				log.Fatal(err)
			}
		})
		b.rec(fmt.Sprintf("Q%d/FDB", i), b.scale, fdbT)
		b.rec(fmt.Sprintf("Q%d/RDB", i), b.scale, lazyT)
		b.rec(fmt.Sprintf("Q%d/RDB-man", i), b.scale, manT)
		row(fmt.Sprintf("Q%d", i), fdbT.String(), lazyT.String(), manT.String())
	}
}

// expFig7 reproduces Figure 7: AGG+ORD queries on the view.
func (b *bench) expFig7() {
	header(fmt.Sprintf("Figure 7: AGG+ORD queries on the materialised view R1 (scale %d)", b.scale))
	row("query", "FDB", "RDB-sort(≈SQLite)", "RDB-hash(≈PSQL)")
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{{"Q6", workload.Q6}, {"Q7", workload.Q7}, {"Q8", workload.Q8}, {"Q9", workload.Q9}} {
		fdbT := b.runFDBView(b.scale, tc.mk())
		sortT := b.runRDB(b.scale, tc.mk(), rdb.GroupSort, false)
		hashT := b.runRDB(b.scale, tc.mk(), rdb.GroupHash, false)
		b.rec(tc.name+"/FDB", b.scale, fdbT)
		b.rec(tc.name+"/RDB-sort", b.scale, sortT)
		b.rec(tc.name+"/RDB-hash", b.scale, hashT)
		row(tc.name, fdbT.String(), sortT.String(), hashT.String())
	}
}

// expFig8 reproduces Figure 8: ORD queries with and without LIMIT 10.
func (b *bench) expFig8() {
	header(fmt.Sprintf("Figure 8: ORD queries (scale %d); lim = LIMIT 10", b.scale))
	row("query", "FDB", "RDB", "FDB lim", "RDB lim")
	d := b.dataset(b.scale)
	fr3, err := d.FactorisedR3()
	if err != nil {
		log.Fatal(err)
	}
	cat := d.Catalog()
	flat := b.flatDB(b.scale)
	cases := []struct {
		name string
		mk   func(int) *query.Query
		view *fops.FRel
	}{
		{"Q10", workload.Q10, b.view(b.scale)},
		{"Q11", workload.Q11, b.view(b.scale)},
		{"Q12", workload.Q12, b.view(b.scale)},
		{"Q13", workload.Q13, fr3},
	}
	for _, tc := range cases {
		runFDB := func(limit int) measurement {
			return b.timeIt(func() {
				res, err := engine.New().RunOnView(tc.mk(limit), tc.view, cat)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := res.Count(); err != nil {
					log.Fatal(err)
				}
			})
		}
		runBase := func(limit int) measurement {
			if tc.name == "Q10" {
				// The baselines scan R2 in its stored order — no sort.
				// Touch every tuple's first field so the scan is real.
				r2 := flat["R2"]
				return b.timeIt(func() {
					count := 0
					var sink int64
					for _, t := range r2.Tuples {
						sink += t[0].Int()
						count++
						if limit > 0 && count >= limit {
							break
						}
					}
					_ = sink
				})
			}
			return b.timeIt(func() {
				if _, err := (&rdb.Engine{}).Run(tc.mk(limit), flat); err != nil {
					log.Fatal(err)
				}
			})
		}
		f0, r0, f10, r10 := runFDB(0), runBase(0), runFDB(10), runBase(10)
		b.rec(tc.name+"/FDB", b.scale, f0)
		b.rec(tc.name+"/RDB", b.scale, r0)
		b.rec(tc.name+"/FDB-lim", b.scale, f10)
		b.rec(tc.name+"/RDB-lim", b.scale, r10)
		row(tc.name, f0.String(), r0.String(), f10.String(), r10.String())
	}
}

// expAblation runs the three design ablations (A1–A3 of DESIGN.md).
func (b *bench) expAblation() {
	header(fmt.Sprintf("A1: partial aggregation on/off (scale %d)", b.scale))
	row("query", "eager (partial γ)", "lazy (γ after restructuring)")
	view := b.view(b.scale)
	cat := b.dataset(b.scale).Catalog()
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{{"Q2", workload.Q2}, {"Q4", workload.Q4}, {"Q5", workload.Q5}} {
		run := func(eager bool) measurement {
			return b.timeIt(func() {
				e := &engine.Engine{PartialAgg: eager}
				res, err := e.RunOnView(tc.mk(), view, cat)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := res.Count(); err != nil {
					log.Fatal(err)
				}
			})
		}
		eagerT, lazyT := run(true), run(false)
		b.rec(tc.name+"/eager", b.scale, eagerT)
		b.rec(tc.name+"/lazy", b.scale, lazyT)
		row(tc.name, eagerT.String(), lazyT.String())
	}

	header(fmt.Sprintf("A2: partial restructuring vs rebuild for Q12 (scale %d)", b.scale))
	row("strategy", "time")
	swapT := b.runFDBView(b.scale, workload.Q12(0))
	flatR2 := b.flatDB(b.scale)["R2"]
	rebuildT := b.timeIt(func() {
		t := ftree.New()
		t.NewRelationPath("date", "package", "item", "customer", "price")
		fr, err := fops.FromRelationUnchecked(flatR2, t)
		if err != nil {
			log.Fatal(err)
		}
		_ = fr.Singletons()
	})
	b.rec("Q12/swap", b.scale, swapT)
	b.rec("Q12/rebuild", b.scale, rebuildT)
	row("swap (FDB)", swapT.String())
	row("rebuild from flat", rebuildT.String())

	header("A3: greedy vs exhaustive optimiser (plan time and cost)")
	row("query", "greedy-time", "greedy-cost", "exhaustive-time", "exhaustive-cost")
	tree := b.view(b.scale).Tree
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{{"Q2", workload.Q2}, {"Q3", workload.Q3}} {
		var gCost, eCost float64
		gT := b.timeIt(func() {
			p := &plan.Planner{Catalog: cat, PartialAgg: true}
			pl, err := p.Plan(tree, tc.mk())
			if err != nil {
				log.Fatal(err)
			}
			gCost = pl.Cost
		})
		eT := b.timeIt(func() {
			p := &plan.Planner{Catalog: cat, PartialAgg: true, Exhaustive: true, MaxStates: 30000}
			pl, err := p.Plan(tree, tc.mk())
			if err != nil {
				log.Fatal(err)
			}
			eCost = pl.Cost
		})
		b.rec(tc.name+"/plan-greedy", b.scale, gT)
		b.rec(tc.name+"/plan-exhaustive", b.scale, eT)
		row(tc.name, gT.String(), fmt.Sprintf("%.0f", gCost), eT.String(), fmt.Sprintf("%.0f", eCost))
	}
}
