// Command fdb is an interactive SQL shell over CSV data, evaluating
// queries with the factorised-database engine (and optionally comparing
// against the relational baseline).
//
// Usage:
//
//	fdb -data ./data            # loads every *.csv as a relation
//	fdb -data ./data -check     # cross-checks each query against RDB
//
// Every *.csv file in the data directory becomes a relation named after
// the file (header row = attribute names). Statements are read from
// stdin, one per line:
//
//	SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items
//	  WHERE package = package2 AND item = item2
//	  GROUP BY customer ORDER BY revenue DESC LIMIT 10;
//
//	EXPLAIN SELECT ...;         -- show the f-plan and result f-tree
//	.materialize V SELECT ...;  -- store a factorised view named V
//	.save V view.fdb            -- serialise a view to disk
//	.load V view.fdb            -- load a serialised view
//	.views                      -- list materialised views
//
// A query whose FROM clause names a single materialised view runs
// directly on the factorisation (the paper's read-optimised scenario).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
)

type shell struct {
	db      fdb.Database
	views   map[string]*fdb.Factorisation
	engine  *fdb.Engine
	check   bool
	maxRows int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdb: ")
	dataDir := flag.String("data", ".", "directory of *.csv relations")
	check := flag.Bool("check", false, "cross-check every result against the relational baseline")
	maxRows := flag.Int("rows", 20, "max rows to print per result")
	flag.Parse()

	db, err := loadDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	sh := &shell{
		db:      db,
		views:   map[string]*fdb.Factorisation{},
		engine:  fdb.NewEngine(),
		check:   *check,
		maxRows: *maxRows,
	}
	names := make([]string, 0, len(db))
	for n, r := range db {
		names = append(names, fmt.Sprintf("%s(%s)[%d]", n, strings.Join(r.Attrs, ","), r.Cardinality()))
	}
	fmt.Printf("loaded: %s\n", strings.Join(names, "  "))
	fmt.Println(`enter SQL, "EXPLAIN <sql>", or ".help"; Ctrl-D to quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("fdb> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), ";"))
		if line == "" {
			continue
		}
		if err := sh.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func (sh *shell) exec(line string) error {
	switch {
	case line == ".help":
		fmt.Println("SQL | EXPLAIN <sql> | .materialize <name> <sql> | .save <name> <file> | .load <name> <file> | .views")
		return nil
	case line == ".views":
		for name, v := range sh.views {
			fmt.Printf("%s: %d singletons, f-tree:\n%s", name, v.Singletons(), v.Tree)
		}
		return nil
	case strings.HasPrefix(line, ".materialize "):
		rest := strings.TrimPrefix(line, ".materialize ")
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("usage: .materialize <name> <sql>")
		}
		q, err := fdb.ParseSQL(parts[1])
		if err != nil {
			return err
		}
		view, err := fdb.MaterialiseView(sh.engine, q, sh.db)
		if err != nil {
			return err
		}
		sh.views[parts[0]] = view
		fmt.Printf("view %s materialised: %d singletons\n", parts[0], view.Singletons())
		return nil
	case strings.HasPrefix(line, ".save "):
		var name, file string
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, ".save "), "%s %s", &name, &file); err != nil {
			return fmt.Errorf("usage: .save <name> <file>")
		}
		v, ok := sh.views[name]
		if !ok {
			return fmt.Errorf("no view %q", name)
		}
		fh, err := os.Create(file)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := fdb.WriteView(fh, v); err != nil {
			return err
		}
		fmt.Printf("saved %s to %s\n", name, file)
		return nil
	case strings.HasPrefix(line, ".load "):
		var name, file string
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, ".load "), "%s %s", &name, &file); err != nil {
			return fmt.Errorf("usage: .load <name> <file>")
		}
		fh, err := os.Open(file)
		if err != nil {
			return err
		}
		defer fh.Close()
		v, err := fdb.ReadView(fh)
		if err != nil {
			return err
		}
		sh.views[name] = v
		fmt.Printf("loaded %s from %s (%d singletons)\n", name, file, v.Singletons())
		return nil
	case strings.HasPrefix(strings.ToUpper(line), "EXPLAIN "):
		res, _, err := sh.run(line[len("EXPLAIN "):])
		if err != nil {
			return err
		}
		fmt.Print(res.Explain())
		return nil
	default:
		start := time.Now()
		res, q, err := sh.run(line)
		if err != nil {
			return err
		}
		rel, err := res.Relation()
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		printRelation(rel, q.OutputAttrs(), sh.maxRows)
		fmt.Printf("%d rows in %v (factorised result: %d singletons)\n",
			rel.Cardinality(), elapsed, res.Singletons())
		if sh.check {
			sh.crossCheck(q, rel)
		}
		return nil
	}
}

// run parses and evaluates a query, against a materialised view when the
// FROM clause names exactly one.
func (sh *shell) run(sqlText string) (*fdb.Result, *fdb.Query, error) {
	q, err := fdb.ParseSQL(sqlText)
	if err != nil {
		return nil, nil, err
	}
	if len(q.Relations) == 1 {
		if v, ok := sh.views[q.Relations[0]]; ok {
			res, err := sh.engine.RunOnView(q, v, nil)
			return res, q, err
		}
	}
	res, err := sh.engine.Run(q, sh.db)
	return res, q, err
}

func (sh *shell) crossCheck(q *fdb.Query, rel *fdb.Relation) {
	if len(q.Relations) == 1 {
		if _, isView := sh.views[q.Relations[0]]; isView {
			fmt.Println("check: skipped (query ran on a materialised view)")
			return
		}
	}
	ref, err := rdb.New().Run(q, rdb.DB(sh.db))
	if err != nil {
		fmt.Println("check error:", err)
		return
	}
	if relation.EqualAsSets(rel, ref) {
		fmt.Println("check: OK (matches relational baseline)")
	} else {
		fmt.Printf("check: MISMATCH (baseline has %d rows)\n", ref.Cardinality())
	}
}

func loadDir(dir string) (fdb.Database, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.csv files in %s", dir)
	}
	db := fdb.Database{}
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := fdb.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	return db, nil
}

func printRelation(rel *fdb.Relation, attrs []string, maxRows int) {
	if len(attrs) == 0 {
		attrs = rel.Attrs
	}
	fmt.Println(strings.Join(attrs, "\t"))
	for i, t := range rel.Tuples {
		if i >= maxRows {
			fmt.Printf("… %d more rows\n", rel.Cardinality()-maxRows)
			return
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
