// Command fdbserver serves one or more CSV-backed databases over
// HTTP/JSON, executing SQL with the factorised-database engine. The
// data is loaded once into a shared read-only in-memory store; queries
// run concurrently through a bounded worker pool, and a per-database
// LRU plan cache lets repeated statements skip parsing and f-plan
// optimisation.
//
// Usage:
//
//	fdbserver -data ./data                      # one database ("data")
//	fdbserver -data shop=./shop -data hr=./hr   # several, first is default
//	fdbserver -data ./data -listen :9000 -workers 8 -cache 512
//
// Every *.csv file in a data directory becomes a relation named after
// the file (header row = attribute names).
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ...", "db": "shop"}
//	GET  /healthz  liveness probe
//	GET  /stats    query counts, latency percentiles, cache hit rates
//
// Example session:
//
//	curl -s localhost:8334/query -d '{"sql":"SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items WHERE package = package2 AND item = item2 GROUP BY customer ORDER BY revenue DESC LIMIT 3"}'
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server"
)

// dataFlags collects repeated -data flags of the form "dir" or
// "name=dir", preserving order (the first is the default database).
type dataFlags struct {
	names []string
	dirs  []string
}

func (d *dataFlags) String() string { return strings.Join(d.dirs, ",") }

func (d *dataFlags) Set(v string) error {
	name, dir := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, dir = v[:i], v[i+1:]
	}
	if dir == "" {
		return errors.New("empty data directory")
	}
	if name == "" {
		name = filepath.Base(filepath.Clean(dir))
	}
	d.names = append(d.names, name)
	d.dirs = append(d.dirs, dir)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdbserver: ")
	var data dataFlags
	flag.Var(&data, "data", "data directory of *.csv relations, optionally name=dir (repeatable)")
	listen := flag.String("listen", ":8334", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 256, "plan cache entries per database")
	maxRows := flag.Int("maxrows", 0, "max rows returned per query (0 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "intra-query parallelism per executing query (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if len(data.dirs) == 0 {
		log.Fatal("at least one -data directory is required")
	}
	dbs := make(map[string]fdb.Database, len(data.dirs))
	for i, dir := range data.dirs {
		name := data.names[i]
		if _, dup := dbs[name]; dup {
			log.Fatalf("duplicate database name %q", name)
		}
		db, err := loadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		rels := make([]string, 0, len(db))
		for n, r := range db {
			rels = append(rels, fmt.Sprintf("%s[%d]", n, r.Cardinality()))
		}
		log.Printf("database %q: %s", name, strings.Join(rels, " "))
		dbs[name] = db
	}

	srv, err := server.New(server.Config{
		Databases:   dbs,
		DefaultDB:   data.names[0],
		Workers:     *workers,
		CacheSize:   *cacheSize,
		MaxRows:     *maxRows,
		Parallelism: *parallelism,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("shutting down…")
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	log.Printf("serving on %s (default database %q)", *listen, data.names[0])
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// loadDir reads every *.csv in dir as a relation named after the file.
func loadDir(dir string) (fdb.Database, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.csv files in %s", dir)
	}
	db := fdb.Database{}
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := fdb.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	return db, nil
}
