// Command fdbserver serves one or more databases over HTTP/JSON,
// executing SQL with the factorised-database engine. The data is loaded
// once into a shared read-only in-memory store; queries run concurrently
// through a bounded worker pool, and a per-database LRU plan cache lets
// repeated statements skip parsing and f-plan optimisation.
//
// Usage:
//
//	fdbserver -data ./data                      # one database ("data")
//	fdbserver -data shop=./shop -data hr=./hr   # several, first is default
//	fdbserver -data ./data -listen :9000 -workers 8 -cache 512
//	fdbserver -data shop=./shop.fdbcat -mmap    # catalogue snapshot file
//
// A -data argument may name a directory or a catalogue snapshot:
//
//   - a directory containing catalog.fdbcat boots from that snapshot —
//     schema, tuples and prebuilt factorisations load with contiguous
//     reads instead of CSV parsing and re-sorting;
//   - otherwise every *.csv file in the directory becomes a relation
//     named after the file (header row = attribute names);
//   - a path ending in .fdbcat is loaded as a snapshot file directly.
//
// With -mmap, snapshots are memory-mapped and used in place (zero-copy:
// boot cost is metadata only; data pages fault in on demand).
//
// A -mutable argument serves a writable database from a mutable
// catalogue directory (snapshot + write-ahead log; see fdb.OpenMutable):
//
//	fdbserver -mutable shop=./shopdir            # open existing
//	fdbserver -mutable shop=./shopdir=seed.fdbcat  # initialise from snapshot
//
// Writable databases accept INSERT / DELETE / UPSERT through POST /exec
// (acknowledged only after the WAL commit) and fold their log into a
// fresh snapshot on POST /compact or automatically past -compactwal
// bytes of log.
//
// With -coordinator, the server becomes the front of a scatter-gather
// cluster (see docs/PROTOCOL.md and the "Distributed serving" section
// of ARCHITECTURE.md): the single -data catalogue is partitioned by
// root-union range into one snapshot per -shards group, shipped to
// every replica of each group through POST /shard/install, and queries
// fan out over the shard set with the streams stitched back into serial
// output order. Each -shards flag names one shard's replica set as a
// comma-separated list of worker base URLs; -replicas asserts the
// expected replica count per group. Workers are plain fdbserver
// processes started with -sharddir, which enables the shard-install
// endpoint and persists received snapshots there for warm restarts:
//
//	fdbserver -listen :9001 -sharddir /var/fdb/shards   # worker 1
//	fdbserver -listen :9002 -sharddir /var/fdb/shards   # worker 2
//	fdbserver -coordinator -data shop=./shop \
//	    -shards http://h1:9001,http://h1b:9001 \
//	    -shards http://h2:9002,http://h2b:9002 -replicas 2
//
// Queries the cluster cannot answer remotely (joins, projections that
// break the merge order) run on the coordinator's own full catalogue,
// so every statement that works serially works against the cluster.
//
// Endpoints:
//
//	POST /query     {"sql": "SELECT ...", "db": "shop"}
//	POST /exec      {"sql": "INSERT INTO ...", "db": "shop"}
//	POST /compact   {"db": "shop"} — fold the WAL into a snapshot
//	POST /snapshot  {"db": "shop"} (optional) — persist catalogues
//	                atomically to their -data locations
//	GET  /healthz   liveness probe (503 while draining)
//	GET  /stats     query counts, latency percentiles, cache hit rates,
//	                write/WAL/compaction gauges
//
// Example session:
//
//	curl -s localhost:8334/query -d '{"sql":"SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items WHERE package = package2 AND item = item2 GROUP BY customer ORDER BY revenue DESC LIMIT 3"}'
//	curl -s -X POST localhost:8334/snapshot
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, new queries are refused, and the process exits only after
// every in-flight query — including streaming responses — has drained.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/cluster"
	"github.com/factordb/fdb/internal/server"
)

// snapshotBase is the snapshot filename used inside -data directories.
const snapshotBase = "catalog.fdbcat"

// dataFlags collects repeated -data flags of the form "dir" or
// "name=dir", preserving order (the first is the default database).
type dataFlags struct {
	names []string
	dirs  []string
}

func (d *dataFlags) String() string { return strings.Join(d.dirs, ",") }

func (d *dataFlags) Set(v string) error {
	name, dir := "", v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, dir = v[:i], v[i+1:]
	}
	if dir == "" {
		return errors.New("empty data directory")
	}
	if name == "" {
		name = filepath.Base(filepath.Clean(dir))
		name = strings.TrimSuffix(name, ".fdbcat")
	}
	d.names = append(d.names, name)
	d.dirs = append(d.dirs, dir)
	return nil
}

// mutableFlags collects repeated -mutable flags of the form "name=dir"
// or "name=dir=seed.fdbcat" (initialise dir from a snapshot if absent).
type mutableFlags struct {
	names []string
	dirs  []string
	seeds []string
}

func (m *mutableFlags) String() string { return strings.Join(m.dirs, ",") }

func (m *mutableFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return errors.New("-mutable needs name=dir or name=dir=seed.fdbcat")
	}
	seed := ""
	if len(parts) == 3 {
		seed = parts[2]
	}
	m.names = append(m.names, parts[0])
	m.dirs = append(m.dirs, parts[1])
	m.seeds = append(m.seeds, seed)
	return nil
}

// shardFlags collects repeated -shards flags; each value is one shard
// group's replica set as a comma-separated list of worker base URLs.
type shardFlags struct {
	groups [][]string
}

func (s *shardFlags) String() string {
	parts := make([]string, len(s.groups))
	for i, g := range s.groups {
		parts[i] = strings.Join(g, ",")
	}
	return strings.Join(parts, " ")
}

func (s *shardFlags) Set(v string) error {
	var group []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		group = append(group, u)
	}
	if len(group) == 0 {
		return errors.New("-shards needs at least one replica URL")
	}
	s.groups = append(s.groups, group)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fdbserver: ")
	var data dataFlags
	var mutable mutableFlags
	var shards shardFlags
	flag.Var(&data, "data", "data directory of *.csv relations or a .fdbcat catalogue snapshot, optionally name=path (repeatable)")
	flag.Var(&mutable, "mutable", "writable catalogue directory as name=dir, or name=dir=seed.fdbcat to initialise from a snapshot (repeatable)")
	flag.Var(&shards, "shards", "one shard group's replica base URLs, comma-separated (repeatable; coordinator mode)")
	coordinator := flag.Bool("coordinator", false, "shard the -data catalogue across the -shards groups and serve scatter-gather queries")
	replicas := flag.Int("replicas", 0, "expected replicas per shard group (0 = any; validated against each -shards value)")
	shardDir := flag.String("sharddir", "", "enable POST /shard/install and persist received shard snapshots in this directory (worker mode)")
	compactWAL := flag.Int64("compactwal", 64<<20, "auto-compact a mutable database once its WAL exceeds this many bytes (0 = manual /compact only)")
	listen := flag.String("listen", ":8334", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 256, "plan cache entries per database")
	maxRows := flag.Int("maxrows", 0, "max rows returned per query (0 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "intra-query parallelism per executing query (0 = GOMAXPROCS, 1 = serial)")
	useMmap := flag.Bool("mmap", false, "memory-map catalogue snapshots instead of reading them (zero-copy boot)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	flag.Parse()

	if len(data.dirs) == 0 && len(mutable.dirs) == 0 && *shardDir == "" {
		log.Fatal("at least one -data or -mutable database is required (or -sharddir for a shard worker)")
	}
	if *coordinator {
		if len(shards.groups) == 0 {
			log.Fatal("-coordinator requires at least one -shards group")
		}
		if len(data.dirs) != 1 || len(mutable.dirs) != 0 {
			log.Fatal("-coordinator requires exactly one -data catalogue and no -mutable databases")
		}
	}
	if *replicas > 0 {
		for i, g := range shards.groups {
			if len(g) != *replicas {
				log.Fatalf("shard group %d has %d replicas, want %d", i, len(g), *replicas)
			}
		}
	}
	dbs := make(map[string]fdb.Database, len(data.dirs))
	snapshots := make(map[string]string, len(data.dirs))
	for i, dir := range data.dirs {
		name := data.names[i]
		if _, dup := dbs[name]; dup {
			log.Fatalf("duplicate database name %q", name)
		}
		db, snapPath, how, err := loadData(dir, *useMmap)
		if err != nil {
			log.Fatal(err)
		}
		rels := make([]string, 0, len(db))
		for n, r := range db {
			rels = append(rels, fmt.Sprintf("%s[%d]", n, r.Cardinality()))
		}
		log.Printf("database %q (%s): %s", name, how, strings.Join(rels, " "))
		dbs[name] = db
		snapshots[name] = snapPath
	}
	mutables := make(map[string]*fdb.MutableCatalog, len(mutable.dirs))
	for i, dir := range mutable.dirs {
		name := mutable.names[i]
		if _, dup := dbs[name]; dup {
			log.Fatalf("duplicate database name %q", name)
		}
		if _, dup := mutables[name]; dup {
			log.Fatalf("duplicate database name %q", name)
		}
		mut, err := openMutable(dir, name, mutable.seeds[i])
		if err != nil {
			log.Fatal(err)
		}
		defer mut.Close()
		if *compactWAL > 0 {
			if err := mut.StartAutoCompact(fdb.AutoCompactConfig{MaxWALBytes: *compactWAL}); err != nil {
				log.Fatal(err)
			}
		}
		st := mut.Stats()
		log.Printf("database %q (mutable, %s): generation %d, wal epoch %d (%d bytes)",
			name, dir, st.Generation, st.WALEpoch, st.WALBytes)
		mutables[name] = mut
	}

	defaultDB := ""
	if len(data.names) > 0 {
		defaultDB = data.names[0]
	} else if len(mutable.names) > 0 {
		defaultDB = mutable.names[0]
	}
	srv, err := server.New(server.Config{
		Databases:   dbs,
		DefaultDB:   defaultDB,
		Workers:     *workers,
		CacheSize:   *cacheSize,
		MaxRows:     *maxRows,
		Parallelism: *parallelism,
		Snapshots:   snapshots,
		Mutables:    mutables,
		ShardDir:    *shardDir,
	})
	if err != nil {
		log.Fatal(err)
	}

	var handler http.Handler = srv
	var co *cluster.Coordinator
	if *coordinator {
		cat, err := catalog.Build(defaultDB, dbs[defaultDB])
		if err != nil {
			log.Fatalf("building catalogue for sharding: %v", err)
		}
		man, err := cluster.Ship(context.Background(), nil, shards.groups, cat)
		if err != nil {
			log.Fatalf("shipping shards: %v", err)
		}
		co, err = cluster.New(cluster.Config{
			Groups:    shards.groups,
			Manifest:  man,
			Local:     srv,
			MaxRows:   *maxRows,
			CacheSize: *cacheSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = co
		for i, g := range shards.groups {
			log.Printf("shard %d/%d: %s", i+1, len(shards.groups), strings.Join(g, " "))
		}
		log.Printf("coordinator: catalogue %q shipped to %d shard groups", defaultDB, len(shards.groups))
	}

	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (default database %q)", *listen, defaultDB)

	select {
	case err := <-serveErr:
		// The listener failed before any shutdown was requested.
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Shutdown ordering: flip the server into draining first — /healthz
	// turns 503 so load balancers stop routing, and new queries on
	// kept-alive connections get a clean refusal — then close the
	// listener and wait for the HTTP layer, then drain the query layer:
	// the process must not exit while a cursor is still streaming or a
	// snapshot rename is pending.
	log.Print("shutting down…")
	if co != nil {
		co.StartDrain()
	}
	srv.StartDrain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if co != nil {
		if err := co.Drain(shCtx); err != nil {
			log.Printf("coordinator drain: %v", err)
		}
	}
	if err := srv.Drain(shCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("drained; exiting")
}

// openMutable opens one -mutable argument: an existing catalogue
// directory, or — when a seed snapshot is given and the directory holds
// no catalogue yet — a fresh directory initialised from the seed.
func openMutable(dir, name, seed string) (*fdb.MutableCatalog, error) {
	if seed != "" {
		if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); os.IsNotExist(err) {
			cat, err := fdb.LoadCatalogFile(seed, false)
			if err != nil {
				return nil, err
			}
			db := cat.DB
			cat.Close()
			return fdb.CreateMutable(dir, name, db)
		}
	}
	return fdb.OpenMutable(dir)
}

// loadData loads one -data argument: a snapshot file, a directory with a
// snapshot, or a directory of CSVs. It returns the database, the path
// /snapshot should persist to, and a description of how the data was
// loaded.
func loadData(path string, useMmap bool) (fdb.Database, string, string, error) {
	if strings.HasSuffix(path, ".fdbcat") {
		cat, err := fdb.LoadCatalogFile(path, useMmap)
		if err != nil {
			return nil, "", "", err
		}
		return cat.DB, path, loadKind(useMmap), nil
	}
	snapPath := filepath.Join(path, snapshotBase)
	if _, err := os.Stat(snapPath); err == nil {
		cat, err := fdb.LoadCatalogFile(snapPath, useMmap)
		if err != nil {
			return nil, "", "", err
		}
		return cat.DB, snapPath, loadKind(useMmap), nil
	}
	db, err := loadDir(path)
	if err != nil {
		return nil, "", "", err
	}
	return db, snapPath, "csv", nil
}

func loadKind(useMmap bool) string {
	if useMmap {
		return "snapshot, mmap"
	}
	return "snapshot"
}

// loadDir reads every *.csv in dir as a relation named after the file.
func loadDir(dir string) (fdb.Database, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no *.csv files in %s", dir)
	}
	db := fdb.Database{}
	for _, path := range matches {
		name := strings.TrimSuffix(filepath.Base(path), ".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		rel, err := fdb.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		db[name] = rel
	}
	return db, nil
}
