// Command fdbvet is the repo's invariant checker: a multichecker over
// the analyzers in internal/analysis that CI runs as a hard gate.
//
// Usage:
//
//	go run ./cmd/fdbvet ./...
//	go run ./cmd/fdbvet -list
//	go run ./cmd/fdbvet ./internal/engine ./internal/wal
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load failure.
//
// Suppress a finding with a comment on (or directly above) the
// flagged line — the reason is mandatory:
//
//	//fdbvet:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/factordb/fdb/internal/analysis/atomicmix"
	"github.com/factordb/fdb/internal/analysis/ctxflow"
	"github.com/factordb/fdb/internal/analysis/fsyncrename"
	"github.com/factordb/fdb/internal/analysis/storepool"
	"github.com/factordb/fdb/internal/analysis/unsafeslab"
	"github.com/factordb/fdb/internal/analysis/vetkit"
)

var analyzers = []*vetkit.Analyzer{
	storepool.Analyzer,
	unsafeslab.Analyzer,
	ctxflow.Analyzer,
	atomicmix.Analyzer,
	fsyncrename.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fdbvet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(vetkit.Main(os.Stderr, ".", analyzers, flag.Args()))
}
