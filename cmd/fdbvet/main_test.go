package main

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// TestRepoIsClean runs the full analyzer suite over the packages that
// carry the guarded invariants, as a test-time twin of the CI fdbvet
// gate: a regression in the tree or an analyzer false positive fails
// `go test ./...` locally, before CI.
func TestRepoIsClean(t *testing.T) {
	var out bytes.Buffer
	code := vetkit.Main(&out, "../..", analyzers, []string{
		"./internal/engine",
		"./internal/server/...",
		"./internal/wal",
		"./internal/catalog",
		"./internal/frep",
		"./driver",
	})
	if code != 0 {
		t.Fatalf("fdbvet exit %d, want 0; output:\n%s", code, out.String())
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %q missing name or doc", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(analyzers) < 5 {
		t.Errorf("expected the five shipped analyzers, got %d", len(analyzers))
	}
}
