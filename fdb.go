// Package fdb is a Go implementation of FDB, the main-memory query engine
// for factorised databases, extended with aggregates (count, sum, min,
// max, avg), GROUP BY, ORDER BY and LIMIT as described in
//
//	N. Bakibayev, T. Kočiský, D. Olteanu, J. Závodný.
//	"Aggregation and Ordering in Factorised Databases", PVLDB 6(14), 2013.
//
// A factorised database represents a relation as an algebraic expression
// over unions, products and singletons whose nesting structure is given
// by an f-tree. Factorisations can be exponentially more succinct than
// the relations they represent; FDB evaluates queries directly on the
// factorised form, using partial aggregation (the γ operator of the
// paper) and partial restructuring (the χ swap operator), and enumerates
// results — grouped, ordered, limited — with constant delay.
//
// # Quick start
//
//	db := fdb.Database{"Orders": orders, "Pizzas": pizzas, "Items": items}
//	q, _ := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue
//	                       FROM Orders, Pizzas, Items
//	                       WHERE pizza = pizza2 AND item = item2
//	                       GROUP BY customer ORDER BY revenue DESC`)
//	res, _ := fdb.NewEngine().Run(q, db)
//	rel, _ := res.Relation()
//
// To stream instead of materialising, use the cursor API: Result.Rows
// returns a database/sql-style cursor (Next/Scan/Columns/Err/Close)
// straight over the constant-delay enumerators, honouring a
// context.Context for cancellation and skipping LIMIT/OFFSET pages
// inside the enumerator. Engine.RunContext, Engine.PrepareContext and
// PreparedQuery.ExecContext/ExecSharedContext thread the same context
// through planning and execution. The top-level package driver wraps
// all of this in a registered "fdb" database/sql driver.
//
// For read-optimised workloads, materialise a view once as a
// factorisation and run many queries against it with Engine.RunOnView;
// the view is never modified. For repeated statements, compile once with
// Engine.Prepare and execute many times (concurrently, if desired) with
// PreparedQuery.Exec — cmd/fdbserver builds an HTTP query service with
// an LRU plan cache on exactly this split.
//
// The packages under internal/ implement the paper's substrates: values
// and relations, f-trees with the path constraint and fractional-edge-
// cover size bounds (solved by a built-in simplex LP), factorised
// representations with the Section 3.2 aggregation algorithms and
// constant-delay enumerators, the f-plan operators, the greedy and
// exhaustive (Dijkstra) optimisers of Section 5, a relational baseline
// engine (the paper's "RDB") with lazy and eager (Yan–Larson)
// aggregation, the Section 6 workload generator, and a SQL front-end.
package fdb

import (
	"io"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
)

// Value is a typed scalar value (int64, float64, string, bool, or a small
// vector used by composite aggregates).
type Value = values.Value

// NewInt returns an integer Value.
func NewInt(v int64) Value { return values.NewInt(v) }

// NewFloat returns a floating-point Value.
func NewFloat(v float64) Value { return values.NewFloat(v) }

// NewString returns a string Value.
func NewString(v string) Value { return values.NewString(v) }

// NewBool returns a boolean Value.
func NewBool(v bool) Value { return values.NewBool(v) }

// Tuple is one row of a relation.
type Tuple = relation.Tuple

// Relation is an in-memory relation: a named list of tuples over
// attributes.
type Relation = relation.Relation

// NewRelation creates a relation, validating attribute uniqueness and
// tuple arity.
func NewRelation(name string, attrs []string, tuples []Tuple) (*Relation, error) {
	return relation.New(name, attrs, tuples)
}

// ReadCSV reads a relation from CSV with a header row; fields parse as
// int, then float, then string.
var ReadCSV = relation.ReadCSV

// Query is the logical query: joins expressed as equality selections over
// a product of relations, filters, aggregation with GROUP BY, ORDER BY
// and LIMIT (Section 2 of the paper).
type Query = query.Query

// Aggregate is one aggregation in a query's SELECT list.
type Aggregate = query.Aggregate

// Equality is an attribute equality (join condition).
type Equality = query.Equality

// Filter is a comparison with a constant.
type Filter = query.Filter

// OrderItem is one ORDER BY entry.
type OrderItem = query.OrderItem

// Aggregation functions for Aggregate.Fn.
const (
	Count = query.Count
	Sum   = query.Sum
	Min   = query.Min
	Max   = query.Max
	Avg   = query.Avg
)

// ParseSQL parses a SELECT statement of the supported subset into a
// Query.
var ParseSQL = sql.Parse

// Database is a catalogue of named flat relations.
type Database = engine.DB

// Engine is the FDB query engine. The zero value disables partial
// aggregation; use NewEngine for the paper's default configuration.
type Engine = engine.Engine

// NewEngine returns an engine with eager partial aggregation enabled and
// the greedy optimiser (the paper's configuration).
func NewEngine() *Engine { return engine.New() }

// Result is an evaluated query; stream it with Rows (the cursor API),
// enumerate it with ForEach, or materialise it with Relation. The
// factorised output ("FDB f/o") lives in an arena store (Result.ARel)
// by default; Result.Factorisation returns the pointer-based view of
// it. Call Result.Close when done to recycle the query's arena store;
// Close is idempotent, and using a Result after Close returns
// ErrResultClosed.
type Result = engine.Result

// Rows is a streaming, pull-based cursor over a query result
// (database/sql-style Next/Scan/Columns/Err/Close), obtained with
// Result.Rows. It honours its context during enumeration and applies
// the query's OFFSET by skipping inside the constant-delay enumerator,
// so a LIMIT n OFFSET m page costs O(n) output work regardless of how
// deep the page sits. For the idiomatic database/sql surface over the
// same cursors, see package driver.
type Rows = engine.Rows

// ErrResultClosed is returned when a Result (or a Rows derived from
// it) is used after Result.Close has recycled its pooled store.
var ErrResultClosed = engine.ErrClosed

// GoValue converts an engine Value to its plain Go representation:
// int64, float64, string, bool, nil, or []any for vectors.
var GoValue = engine.GoValue

// PreparedQuery is a compiled query: the chosen per-relation path orders
// plus the optimised f-plan. Prepare once with Engine.Prepare and execute
// many times with Exec; a PreparedQuery is immutable and safe for
// concurrent Exec calls, which is the basis of fdbserver's plan cache.
type PreparedQuery = engine.Prepared

// NormalizeSQL canonicalises a SQL statement's spelling (whitespace,
// keyword case, trailing semicolon) without parsing it, for use as a
// plan-cache key.
var NormalizeSQL = sql.Normalize

// ParStats are the cumulative intra-query parallelism counters: queries
// executed with a parallelism budget above 1 and segment workers
// spawned per layer (enumeration cursors, f-plan operators, aggregate
// evaluations), plus pooled-store returns. See Engine.Parallelism.
type ParStats = engine.ParStats

// ParallelStats returns the process-wide intra-query parallelism
// counters (fdbserver surfaces them at /stats).
var ParallelStats = engine.ParallelStats

// OffsetStats are the cumulative OFFSET routing counters: how many
// OFFSET clauses were applied by ranked direct Seek (O(depth × log
// fanout) via the subtree-count index) versus the linear skip loop.
type OffsetStats = engine.OffsetStats

// SeekSkipStats returns the process-wide OFFSET routing counters
// (fdbserver surfaces them at /stats).
var SeekSkipStats = engine.SeekSkipStats

// Factorisation is a factorised relation: an f-tree plus a
// pointer-based representation over it. Obtain one with Factorise or
// Result.Factorisation, and query it with Engine.RunOnView. (Engine
// execution itself runs on the arena-backed store representation,
// fops.ARel; see ARCHITECTURE.md's "Storage layout".)
type Factorisation = fops.FRel

// FTree is a factorisation tree: the schema and nesting structure of a
// factorisation (Definition 2 of the paper).
type FTree = ftree.Forest

// NewFTree returns an empty f-tree forest. Add base relations as linear
// paths with AddRelationPath, or build richer shapes via the internal
// ftree package types exposed on Forest.
func NewFTree() *FTree { return ftree.New() }

// Factorise represents a relation as a factorisation over the given
// f-tree, verifying the tree's independence assumptions against the data.
// A linear-path f-tree (NewFTree + AddRelationPath) is always valid.
func Factorise(rel *Relation, tree *FTree) (*Factorisation, error) {
	return fops.FromRelation(rel, tree)
}

// MaterialiseView runs a join query and returns its factorised result for
// reuse as a read-optimised view. It is shorthand for Run +
// Result.Factorisation.
func MaterialiseView(e *Engine, q *Query, db Database) (*Factorisation, error) {
	res, err := e.Run(q, db)
	if err != nil {
		return nil, err
	}
	return res.Factorisation(), nil
}

// Catalog is a database loaded from a catalogue snapshot: the flat
// relations plus prebuilt factorised base relations that the engine
// grafts instead of re-sorting (see SaveCatalog / LoadCatalogFile).
// Close releases the snapshot's backing bytes and unregisters the
// factorisations; mmap-loaded catalogues must not be used after Close.
type Catalog = engine.Catalog

// SaveCatalog factorises every relation of db and writes a versioned,
// checksummed catalogue snapshot (schema, flat tuples, factorised arena
// stores) to w. The encoding is canonical: saving the same data always
// produces the same bytes.
var SaveCatalog = engine.SaveCatalog

// SaveCatalogFile is SaveCatalog writing atomically to path (temp file,
// fsync, rename), so readers never observe a partial snapshot.
var SaveCatalogFile = engine.SaveCatalogFile

// LoadCatalog reads a catalogue snapshot from r; see LoadCatalogFile for
// the zero-copy file path.
var LoadCatalog = engine.LoadCatalog

// LoadCatalogFile loads the catalogue snapshot at path. With mmap set
// the slabs are used in place (load time is O(metadata); pages fault in
// on demand); otherwise the file is read with one contiguous read.
var LoadCatalogFile = engine.LoadCatalogFile

// Statement is a parsed SQL statement: either a *Query (SELECT) or a
// *Mutation (INSERT / DELETE / UPSERT).
type Statement = query.Statement

// Mutation is one data-modification statement: INSERT INTO ... VALUES,
// DELETE FROM ... WHERE, or UPSERT INTO ... VALUES (replace keyed on the
// relation's first attribute). Apply it to a MutableCatalog.
type Mutation = query.Mutation

// Mutation verbs for Mutation.Op.
const (
	OpInsert = query.OpInsert
	OpDelete = query.OpDelete
	OpUpsert = query.OpUpsert
)

// ParseStatement parses one SQL statement — SELECT, INSERT, DELETE or
// UPSERT — dispatching on the leading keyword.
var ParseStatement = sql.ParseStatement

// MutableCatalog is a durable, mutable database directory: an immutable
// catalogue snapshot plus a checksummed write-ahead log and in-memory
// delta layers. Apply executes mutations durably (group-committed WAL),
// View returns lock-free immutable snapshots for querying, and Compact
// folds the log back into a fresh snapshot. See ARCHITECTURE.md's
// "Write path".
type MutableCatalog = engine.MutableCatalog

// MutableStats is a point-in-time snapshot of a mutable catalogue's
// write-path gauges (generation, rows per verb, delta sizes, WAL and
// compaction counters).
type MutableStats = engine.MutableStats

// AutoCompactConfig tunes MutableCatalog.StartAutoCompact thresholds.
type AutoCompactConfig = engine.AutoCompactConfig

// CreateMutable initialises dir with a snapshot of db and an empty WAL,
// returning the opened mutable catalogue.
var CreateMutable = engine.CreateMutable

// OpenMutable opens the mutable catalogue at dir, replaying the WAL on
// top of its snapshot; the recovered state is byte-identical to the
// acknowledged pre-crash state.
var OpenMutable = engine.OpenMutable

// ErrCompactionRunning is returned by MutableCatalog.Compact when a
// compaction is already in flight.
var ErrCompactionRunning = engine.ErrCompactionRunning

// WriteView serialises a factorised view to w in a compact binary format,
// so materialised views can be stored and reloaded without
// re-factorising.
func WriteView(w io.Writer, v *Factorisation) error {
	return frep.WriteTo(w, v.Tree, v.Roots)
}

// ReadView deserialises a factorised view written by WriteView,
// validating the f-tree and representation invariants.
func ReadView(r io.Reader) (*Factorisation, error) {
	tree, roots, err := frep.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return &Factorisation{Tree: tree, Roots: roots}, nil
}
