// Package workload implements the synthetic dataset and query set of the
// paper's experimental evaluation (Section 6, Figure 3): the scaled
// Orders/Packages/Items database, the materialised views R1 (flat and
// factorised over the paper's f-tree T), R2 and R3, and the queries
// Q1–Q13 grouped into the AGG, AGG+ORD and ORD families.
//
// The generator is calibrated so that the natural join R1 grows as ~256·s⁴
// tuples while its factorisation over T grows as ~64·s³ singletons,
// matching the asymptotics and magnitudes reported in Section 6 (280M
// tuples vs 4.2M singletons at scale 32); see DESIGN.md for why the
// paper's prose constants cannot be used verbatim.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// Config controls dataset generation.
type Config struct {
	// Scale is the paper's scale factor s ≥ 1.
	Scale int
	// Seed makes generation deterministic; 0 selects a fixed default.
	Seed int64
}

// Dataset holds the three base relations at one scale factor. Attribute
// names are globally unique (package2/item2 are the join copies), as the
// engines require.
type Dataset struct {
	Scale    int
	Orders   *relation.Relation // (customer, date, package)
	Packages *relation.Relation // (package2, item)
	Items    *relation.Relation // (item2, price)
}

// Generate builds the dataset for the given configuration:
//
//	packages:            4·s
//	order dates/package: Binomial(16·s, ½)  (mean 8·s) out of 800·s dates
//	customers/(pkg,date): Binomial(4·s, ½)  (mean 2·s) of 100·s customers
//	items/package:       4·s of a 100·√s item universe
//	price/item:          uniform 1..20
func Generate(cfg Config) *Dataset {
	s := cfg.Scale
	if s < 1 {
		s = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 20130701 // arXiv v1 date of the paper
	}
	rng := rand.New(rand.NewSource(seed))

	nPackages := 4 * s
	nDates := 800 * s
	nCustomers := 100 * s
	nItems := int(math.Ceil(100 * math.Sqrt(float64(s))))
	itemsPerPackage := 4 * s
	if itemsPerPackage > nItems {
		itemsPerPackage = nItems
	}

	// Items(item2, price).
	itemTuples := make([]relation.Tuple, nItems)
	for i := 0; i < nItems; i++ {
		itemTuples[i] = relation.Tuple{
			values.NewInt(int64(i)),
			values.NewInt(int64(1 + rng.Intn(20))),
		}
	}
	items := relation.MustNew("Items", []string{"item2", "price"}, itemTuples)

	// Packages(package2, item): a sample of items per package.
	var pkgTuples []relation.Tuple
	pkgItems := make([][]int, nPackages)
	for p := 0; p < nPackages; p++ {
		perm := rng.Perm(nItems)[:itemsPerPackage]
		pkgItems[p] = perm
		for _, it := range perm {
			pkgTuples = append(pkgTuples, relation.Tuple{
				values.NewInt(int64(p)),
				values.NewInt(int64(it)),
			})
		}
	}
	packages := relation.MustNew("Packages", []string{"package2", "item"}, pkgTuples)

	// Orders(customer, date, package): per package a binomial number of
	// dates; per (package, date) a binomial number of customers.
	binom := func(n int) int {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				k++
			}
		}
		if k == 0 {
			k = 1
		}
		return k
	}
	var orderTuples []relation.Tuple
	for p := 0; p < nPackages; p++ {
		nd := binom(16 * s)
		if nd > nDates {
			nd = nDates
		}
		dates := rng.Perm(nDates)[:nd]
		for _, d := range dates {
			nc := binom(4 * s)
			if nc > nCustomers {
				nc = nCustomers
			}
			custs := rng.Perm(nCustomers)[:nc]
			for _, c := range custs {
				orderTuples = append(orderTuples, relation.Tuple{
					values.NewInt(int64(c)),
					values.NewInt(int64(d)),
					values.NewInt(int64(p)),
				})
			}
		}
	}
	orders := relation.MustNew("Orders", []string{"customer", "date", "package"}, orderTuples)

	return &Dataset{Scale: s, Orders: orders, Packages: packages, Items: items}
}

// DB returns the dataset as an engine catalogue.
func (d *Dataset) DB() map[string]*relation.Relation {
	return map[string]*relation.Relation{
		"Orders":   d.Orders,
		"Packages": d.Packages,
		"Items":    d.Items,
	}
}

// Catalog returns relation metadata for the cost model.
func (d *Dataset) Catalog() []ftree.CatalogRelation {
	return []ftree.CatalogRelation{
		{Name: "Orders", Attrs: d.Orders.Attrs, Size: d.Orders.Cardinality()},
		{Name: "Packages", Attrs: d.Packages.Attrs, Size: d.Packages.Cardinality()},
		{Name: "Items", Attrs: d.Items.Attrs, Size: d.Items.Cardinality()},
	}
}

// R1Equalities are the join conditions of R1 = Orders ⋈ Packages ⋈ Items.
func R1Equalities() []query.Equality {
	return []query.Equality{
		{A: "package", B: "package2"},
		{A: "item", B: "item2"},
	}
}

// FactorisedR1 materialises the view R1 as a factorisation over the
// paper's f-tree T:
//
//	package
//	├─ date ─ customer
//	└─ item ─ price
//
// It is built bottom-up with f-plan operators (two merges and one swap)
// without ever materialising the flat join.
func (d *Dataset) FactorisedR1() (*fops.FRel, error) {
	f := ftree.New()
	var roots []*frep.Union
	add := func(rel *relation.Relation, attrs ...string) error {
		f.NewRelationPath(attrs...)
		sub := ftree.New()
		sub.NewRelationPath(attrs...)
		rs, err := frep.BuildUnchecked(rel, sub)
		if err != nil {
			return err
		}
		roots = append(roots, rs[0])
		return nil
	}
	// Path orders chosen so the merges cascade at the roots.
	if err := add(d.Orders, "package", "date", "customer"); err != nil {
		return nil, err
	}
	if err := add(d.Packages, "item", "package2"); err != nil {
		return nil, err
	}
	if err := add(d.Items, "item2", "price"); err != nil {
		return nil, err
	}
	fr := &fops.FRel{Tree: f, Roots: roots}
	if err := fr.Merge("item", "item2"); err != nil {
		return nil, err
	}
	if err := fr.Swap("package2"); err != nil {
		return nil, err
	}
	if err := fr.Merge("package2", "package"); err != nil {
		return nil, err
	}
	return fr, nil
}

// FactorisedR1Arena materialises the view R1 over the paper's f-tree T
// in an arena store (the counterpart of FactorisedR1 built with
// arena-to-arena operators).
func (d *Dataset) FactorisedR1Arena() (*fops.ARel, error) {
	s := frep.NewStore()
	f := ftree.New()
	var roots []frep.NodeID
	add := func(rel *relation.Relation, attrs ...string) error {
		f.NewRelationPath(attrs...)
		sub := ftree.New()
		sub.NewRelationPath(attrs...)
		rs, err := frep.BuildStoreUnchecked(s, rel, sub)
		if err != nil {
			return err
		}
		roots = append(roots, rs[0])
		return nil
	}
	if err := add(d.Orders, "package", "date", "customer"); err != nil {
		return nil, err
	}
	if err := add(d.Packages, "item", "package2"); err != nil {
		return nil, err
	}
	if err := add(d.Items, "item2", "price"); err != nil {
		return nil, err
	}
	ar := &fops.ARel{Tree: f, Store: s, Roots: roots}
	if err := ar.Merge("item", "item2"); err != nil {
		return nil, err
	}
	if err := ar.Swap("package2"); err != nil {
		return nil, err
	}
	if err := ar.Merge("package2", "package"); err != nil {
		return nil, err
	}
	return ar, nil
}

// FlatR1 materialises the flat view R1 (for the relational baseline),
// projecting away the duplicate join columns. This is O(|R1|) memory —
// 256·s⁴ tuples — so keep the scale modest.
func (d *Dataset) FlatR1() (*relation.Relation, error) {
	j := relation.NaturalJoinAll(
		d.Orders,
		renamed(d.Packages, "Packages", []string{"package", "item"}),
		renamed(d.Items, "Items", []string{"item", "price"}),
	)
	j.Name = "R1"
	return j, nil
}

func renamed(r *relation.Relation, name string, attrs []string) *relation.Relation {
	return &relation.Relation{Name: name, Attrs: attrs, Tuples: r.Tuples}
}

// FlatR2 is R1 sorted by (package, date, item) — the paper's materialised
// relation R2 for the ORD experiments.
func (d *Dataset) FlatR2() (*relation.Relation, error) {
	r1, err := d.FlatR1()
	if err != nil {
		return nil, err
	}
	r2 := r1.Clone()
	r2.Name = "R2"
	err = r2.Sort(
		relation.OrderKey{Attr: "package"},
		relation.OrderKey{Attr: "date"},
		relation.OrderKey{Attr: "item"},
	)
	return r2, err
}

// R3 is Orders sorted by (date, customer, package).
func (d *Dataset) R3() (*relation.Relation, error) {
	r3 := d.Orders.Clone()
	r3.Name = "R3"
	err := r3.Sort(
		relation.OrderKey{Attr: "date"},
		relation.OrderKey{Attr: "customer"},
		relation.OrderKey{Attr: "package"},
	)
	return r3, err
}

// FactorisedR3 factorises R3 over the linear path date→customer→package
// (its sort order).
func (d *Dataset) FactorisedR3() (*fops.FRel, error) {
	f := ftree.New()
	f.NewRelationPath("date", "customer", "package")
	return fops.FromRelationUnchecked(d.Orders, f)
}

// FactorisedR3Arena is FactorisedR3 in an arena store.
func (d *Dataset) FactorisedR3Arena() (*fops.ARel, error) {
	f := ftree.New()
	f.NewRelationPath("date", "customer", "package")
	return fops.FromRelationStoreUnchecked(frep.NewStore(), d.Orders, f)
}

// SizeReport holds the representation sizes at one scale (the paper's
// in-text table: 280M tuples vs 4.2M singletons at s=32).
type SizeReport struct {
	Scale          int
	JoinTuples     int64 // |R1|
	JoinSingletons int64 // |R1| × 5 attributes
	FactSingletons int   // singletons of the factorisation over T
}

// Sizes computes the size report without materialising the flat join.
func (d *Dataset) Sizes() (*SizeReport, error) {
	fr, err := d.FactorisedR1()
	if err != nil {
		return nil, err
	}
	n := frep.CountPlain(fr.Tree.Roots[0], fr.Roots[0])
	return &SizeReport{
		Scale:          d.Scale,
		JoinTuples:     n,
		JoinSingletons: n * 5,
		FactSingletons: fr.Singletons(),
	}, nil
}

// --- Figure 3: the query families -----------------------------------

// AGG queries Q1–Q5 over the view R1.

// Q1 = ϖ_{package,date,customer; sum(price)}(R1).
func Q1() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"package", "date", "customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
	}
}

// Q2 = ϖ_{customer; revenue←sum(price)}(R1).
func Q2() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
	}
}

// Q3 = ϖ_{date,package; sum(price)}(R1).
func Q3() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"date", "package"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
	}
}

// Q4 = ϖ_{package; sum(price)}(R1).
func Q4() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"package"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
	}
}

// Q5 = ϖ_{; sum(price)}(R1).
func Q5() *query.Query {
	return &query.Query{
		Relations:  []string{"R1"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
	}
}

// AGG+ORD queries Q6–Q9.

// Q6 = o_customer(Q2).
func Q6() *query.Query {
	q := Q2()
	q.OrderBy = []query.OrderItem{{Attr: "customer"}}
	return q
}

// Q7 = o_revenue(Q2).
func Q7() *query.Query {
	q := Q2()
	q.OrderBy = []query.OrderItem{{Attr: "revenue"}}
	return q
}

// Q8 = o_{date,package}(Q3).
func Q8() *query.Query {
	q := Q3()
	q.OrderBy = []query.OrderItem{{Attr: "date"}, {Attr: "package"}}
	return q
}

// Q9 = o_{package,date}(Q3).
func Q9() *query.Query {
	q := Q3()
	q.OrderBy = []query.OrderItem{{Attr: "package"}, {Attr: "date"}}
	return q
}

// ORD queries Q10–Q13 (optionally with LIMIT 10 — pass limit > 0).

// Q10 enumerates R2 in its existing order (package, date, item).
func Q10(limit int) *query.Query {
	return &query.Query{
		Relations: []string{"R2"},
		OrderBy: []query.OrderItem{
			{Attr: "package"}, {Attr: "date"}, {Attr: "item"},
		},
		Limit: limit,
	}
}

// Q11 = o_{package,item,date}(R2): a different order that the same f-tree
// supports without restructuring.
func Q11(limit int) *query.Query {
	return &query.Query{
		Relations: []string{"R2"},
		OrderBy: []query.OrderItem{
			{Attr: "package"}, {Attr: "item"}, {Attr: "date"},
		},
		Limit: limit,
	}
}

// Q12 = o_{date,package,item}(R2): needs one swap (date above package).
func Q12(limit int) *query.Query {
	return &query.Query{
		Relations: []string{"R2"},
		OrderBy: []query.OrderItem{
			{Attr: "date"}, {Attr: "package"}, {Attr: "item"},
		},
		Limit: limit,
	}
}

// Q13 = o_{customer,date,package}(R3): partial re-sort of a sorted
// relation (swap customer above date; package lists are reused).
func Q13(limit int) *query.Query {
	return &query.Query{
		Relations: []string{"R3"},
		OrderBy: []query.OrderItem{
			{Attr: "customer"}, {Attr: "date"}, {Attr: "package"},
		},
		Limit: limit,
	}
}

// AggQuery returns Q1–Q5 by index (1-based).
func AggQuery(i int) (*query.Query, error) {
	switch i {
	case 1:
		return Q1(), nil
	case 2:
		return Q2(), nil
	case 3:
		return Q3(), nil
	case 4:
		return Q4(), nil
	case 5:
		return Q5(), nil
	default:
		return nil, fmt.Errorf("workload: no AGG query Q%d", i)
	}
}

// FlatAggQuery returns Q1–Q5 rewritten against the base relations (for
// Experiment 2: no materialised view), i.e. with the R1 join inlined.
func FlatAggQuery(i int) (*query.Query, error) {
	q, err := AggQuery(i)
	if err != nil {
		return nil, err
	}
	q.Relations = []string{"Orders", "Packages", "Items"}
	q.Equalities = R1Equalities()
	return q, nil
}
