package workload

import (
	"testing"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
)

func init() { fops.Paranoid = true }

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 1})
	b := Generate(Config{Scale: 1})
	if !relation.EqualAsSets(a.Orders, b.Orders) ||
		!relation.EqualAsSets(a.Packages, b.Packages) ||
		!relation.EqualAsSets(a.Items, b.Items) {
		t.Error("generation is not deterministic")
	}
	c := Generate(Config{Scale: 1, Seed: 42})
	if relation.EqualAsSets(a.Orders, c.Orders) {
		t.Error("different seeds should give different data")
	}
}

func TestGeneratedShapes(t *testing.T) {
	d := Generate(Config{Scale: 2})
	s := 2
	if got, want := len(d.Packages.Attrs), 2; got != want {
		t.Errorf("Packages arity = %d", got)
	}
	// 4s packages × 4s items each.
	if got, want := d.Packages.Cardinality(), 4*s*4*s; got != want {
		t.Errorf("|Packages| = %d, want %d", got, want)
	}
	// Orders ≈ 4s × 8s × 2s = 64s³ with binomial jitter; allow ±40%.
	want := 64 * s * s * s
	got := d.Orders.Cardinality()
	if got < want*6/10 || got > want*14/10 {
		t.Errorf("|Orders| = %d, want ≈%d", got, want)
	}
}

func TestFactorisedR1MatchesFlatJoin(t *testing.T) {
	d := Generate(Config{Scale: 1})
	fr, err := d.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Check(); err != nil {
		t.Fatal(err)
	}
	// The f-tree must be the paper's T: package root, date→customer and
	// item→price branches.
	root := fr.Tree.Roots[0]
	if len(fr.Tree.Roots) != 1 || !root.HasAttr("package") {
		t.Fatalf("unexpected tree:\n%s", fr.Tree)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root should have 2 branches:\n%s", fr.Tree)
	}
	flat, err := fr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.FlatR1()
	if err != nil {
		t.Fatal(err)
	}
	// Align: flattened view has the merged class columns; project to R1's.
	proj, err := flat.Project("customer", "date", "package", "item", "price")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(proj, r1.Dedup()) {
		t.Fatal("factorised R1 ≠ flat R1")
	}
}

func TestSizesGrowth(t *testing.T) {
	var reports []*SizeReport
	for _, s := range []int{1, 2, 4} {
		d := Generate(Config{Scale: s})
		rep, err := d.Sizes()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		t.Logf("scale %d: join %d tuples, factorisation %d singletons, gap %.1f×",
			s, rep.JoinTuples, rep.FactSingletons, float64(rep.JoinTuples)/float64(rep.FactSingletons))
	}
	// Doubling the scale should multiply the join by ≈16 (s⁴) and the
	// factorisation by ≈8 (s³); allow generous slack for jitter.
	for i := 1; i < len(reports); i++ {
		jr := float64(reports[i].JoinTuples) / float64(reports[i-1].JoinTuples)
		fr := float64(reports[i].FactSingletons) / float64(reports[i-1].FactSingletons)
		if jr < 8 || jr > 32 {
			t.Errorf("join growth ratio %v, want ≈16", jr)
		}
		if fr < 4 || fr > 16 {
			t.Errorf("factorisation growth ratio %v, want ≈8", fr)
		}
		if jr <= fr {
			t.Errorf("join must grow faster than the factorisation (%v vs %v)", jr, fr)
		}
	}
}

// All thirteen queries agree between FDB and RDB at scale 1.
func TestAllQueriesDifferential(t *testing.T) {
	d := Generate(Config{Scale: 1})
	frView, err := d.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.FlatR1()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.FlatR2()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := d.R3()
	if err != nil {
		t.Fatal(err)
	}
	fr3, err := d.FactorisedR3()
	if err != nil {
		t.Fatal(err)
	}
	rdbDB := rdb.DB{"R1": r1, "R2": r2, "R3": r3}
	e := engine.New()
	cat := d.Catalog()

	// AGG + AGG+ORD: Q1–Q9 on the factorised view vs RDB on flat R1.
	for name, qq := range map[string]*query.Query{
		"Q1": Q1(), "Q2": Q2(), "Q3": Q3(), "Q4": Q4(), "Q5": Q5(),
		"Q6": Q6(), "Q7": Q7(), "Q8": Q8(), "Q9": Q9(),
	} {
		want, err := rdb.New().Run(qq, rdbDB)
		if err != nil {
			t.Fatalf("%s rdb: %v", name, err)
		}
		res, err := e.RunOnView(qq, frView, cat)
		if err != nil {
			t.Fatalf("%s fdb: %v", name, err)
		}
		got, err := res.Relation()
		if err != nil {
			t.Fatalf("%s fdb enumerate: %v", name, err)
		}
		if !relation.EqualAsSets(got, want) {
			t.Errorf("%s: FDB ≠ RDB\nFDB: %v\nRDB: %v", name, got.Cardinality(), want.Cardinality())
		}
	}

	// ORD: Q10–Q12 on the factorised view; Q13 on factorised R3.
	for name, tc := range map[string]struct {
		q    *query.Query
		view *fops.FRel
	}{
		"Q10": {Q10(0), frView},
		"Q11": {Q11(0), frView},
		"Q12": {Q12(0), frView},
		"Q13": {Q13(0), fr3},
	} {
		want, err := rdb.New().Run(tc.q, rdbDB)
		if err != nil {
			t.Fatalf("%s rdb: %v", name, err)
		}
		res, err := e.RunOnView(tc.q, tc.view, cat)
		if err != nil {
			t.Fatalf("%s fdb: %v", name, err)
		}
		n, err := res.Count()
		if err != nil {
			t.Fatalf("%s fdb enumerate: %v", name, err)
		}
		// The flattened view includes duplicate join columns, so compare
		// cardinalities (the set equality of the underlying data is
		// covered by TestFactorisedR1MatchesFlatJoin).
		if n != want.Cardinality() {
			t.Errorf("%s: FDB %d rows, RDB %d rows", name, n, want.Cardinality())
		}
	}

	// LIMIT variants.
	for name, tc := range map[string]struct {
		q    *query.Query
		view *fops.FRel
	}{
		"Q10lim": {Q10(10), frView},
		"Q12lim": {Q12(10), frView},
		"Q13lim": {Q13(10), fr3},
	} {
		res, err := e.RunOnView(tc.q, tc.view, cat)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n, err := res.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Errorf("%s: %d rows, want 10", name, n)
		}
	}
}
