//go:build unix

package catalog

import (
	"fmt"
	"os"
	"syscall"
)

// mmapLoader maps the file read-only: the kernel pages catalogue data in
// on demand, nothing is copied up front, and several processes serving
// one catalogue share the page cache. The mapping is read-only, so a
// stray write through an aliased slice faults instead of corrupting the
// snapshot (and frozen stores forbid the one in-place write path,
// Reset, outright).
type mmapLoader struct {
	path string
	b    []byte
}

// MmapLoader returns a Loader that memory-maps path read-only. On
// platforms without mmap support it falls back to FileLoader. The
// catalogue must not be used after Close (the mapping is unmapped); use
// WriteFile's atomic rename to replace a live file — the old mapping
// keeps referencing the old inode.
func MmapLoader(path string) Loader { return &mmapLoader{path: path} }

func (l *mmapLoader) Load() ([]byte, error) {
	f, err := os.Open(l.path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("catalog: %s is empty", l.path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("catalog: %s too large to map (%d bytes)", l.path, size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("catalog: mmap %s: %w", l.path, err)
	}
	l.b = b
	return b, nil
}

func (l *mmapLoader) Close() error {
	if l.b == nil {
		return nil
	}
	b := l.b
	l.b = nil
	if err := syscall.Munmap(b); err != nil {
		return fmt.Errorf("catalog: munmap %s: %w", l.path, err)
	}
	return nil
}
