package catalog

// Shard splitting for scatter-gather serving. A catalogue is cut into n
// shard catalogues by range-partitioning each relation on its partition
// attribute — the first attribute of its factorisation path, i.e. the
// root union of the linear f-tree. The cut points come from the ranked
// subtree-count index (frep.WeightedSegments), so shards carry
// near-equal tuple counts even under value skew, and each shard's value
// range is contiguous: every root value on shard i orders strictly
// below every root value on shard i+1. That contiguity is what lets the
// coordinator stitch shard result streams back together in shard order
// and obtain exactly the serial output.
//
// Relations whose root union holds fewer than two distinct values
// cannot be range-cut and are replicated to every shard instead; the
// manifest records which relations were split and on which attribute,
// so the coordinator's planner can decide whether a query distributes.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// ShardRelation describes how one relation was laid out across shards.
type ShardRelation struct {
	// Name and Attrs mirror the relation's schema; Attrs in schema
	// order, which the coordinator uses as the tie-break comparator for
	// non-aggregate row merging.
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	// Partition is the attribute the relation was range-cut on, or ""
	// if the relation is replicated whole to every shard.
	Partition string `json:"partition,omitempty"`
	// Rows holds the per-shard tuple count, len == Shards.
	Rows []int `json:"rows"`
}

// ShardManifest is the routing contract written next to a set of shard
// files: which catalogue was cut, into how many shards, and how each
// relation was distributed. It is JSON on disk so operators can inspect
// a deployment with standard tools.
type ShardManifest struct {
	Catalog   string          `json:"catalog"`
	Shards    int             `json:"shards"`
	Relations []ShardRelation `json:"relations"`
}

// Rel returns the manifest entry for relation name, or nil.
func (m *ShardManifest) Rel(name string) *ShardRelation {
	for i := range m.Relations {
		if m.Relations[i].Name == name {
			return &m.Relations[i]
		}
	}
	return nil
}

// IsSplit reports whether relation name was range-partitioned (as
// opposed to replicated or unknown).
func (m *ShardManifest) IsSplit(name string) bool {
	r := m.Rel(name)
	return r != nil && r.Partition != ""
}

// Split cuts the catalogue into n shard catalogues plus the manifest
// describing the cut. Each relation with at least two distinct root
// values is range-partitioned on its first path attribute along
// count-balanced boundaries from the ranked index; smaller relations
// are replicated. Shard catalogues keep the parent's name (workers
// serve the same database name the coordinator routes on) and are
// rebuilt with Build, so every shard has its own factorisation and
// rank index over exactly its tuples.
func Split(c *Catalog, n int) ([]*Catalog, *ShardManifest, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("catalog: cannot split into %d shards", n)
	}
	dbs := make([]map[string]*relation.Relation, n)
	for i := range dbs {
		dbs[i] = make(map[string]*relation.Relation, len(c.Relations))
	}
	man := &ShardManifest{Catalog: c.Name, Shards: n}
	for _, r := range c.Relations {
		sr := ShardRelation{
			Name:  r.Rel.Name,
			Attrs: append([]string(nil), r.Rel.Attrs...),
			Rows:  make([]int, n),
		}
		parts, partAttr, err := partitionRelation(r, n)
		if err != nil {
			return nil, nil, err
		}
		sr.Partition = partAttr
		for i := 0; i < n; i++ {
			var ts []relation.Tuple
			if parts == nil {
				ts = r.Rel.Tuples // replicated
			} else {
				ts = parts[i]
			}
			sr.Rows[i] = len(ts)
			rel, err := relation.New(r.Rel.Name, r.Rel.Attrs, ts)
			if err != nil {
				return nil, nil, fmt.Errorf("catalog: shard %d of %q: %w", i, r.Rel.Name, err)
			}
			dbs[i][r.Rel.Name] = rel
		}
		man.Relations = append(man.Relations, sr)
	}
	shards := make([]*Catalog, n)
	for i := range shards {
		sc, err := Build(c.Name, dbs[i])
		if err != nil {
			return nil, nil, fmt.Errorf("catalog: building shard %d: %w", i, err)
		}
		shards[i] = sc
	}
	return shards, man, nil
}

// partitionRelation assigns each tuple of r to one of n shards by its
// root-union value range, or returns (nil, "", nil) when the relation
// must be replicated instead. The per-shard tuple slices preserve the
// relation's original tuple order.
func partitionRelation(r *Relation, n int) ([][]relation.Tuple, string, error) {
	if n < 2 || r.Fact == nil || r.Fact.Root == frep.EmptyNode {
		return nil, "", nil
	}
	st, root := r.Fact.Store, r.Fact.Root
	distinct := st.Len(root)
	if distinct < 2 {
		return nil, "", nil
	}
	partAttr := r.Fact.Order[0]
	col := r.Rel.ColIndex(partAttr)
	if col < 0 {
		return nil, "", fmt.Errorf("catalog: relation %q: partition attribute %q not in schema", r.Rel.Name, partAttr)
	}
	// The root union is the sorted distinct values of the partition
	// attribute; WeightedSegments cuts its slots into contiguous windows
	// of near-equal represented tuple count. Map slot → shard, then
	// binary-search each tuple's partition value to its slot.
	shardOfSlot := make([]int, distinct)
	for w, seg := range frep.WeightedSegments(st, root, n) {
		for s := seg[0]; s < seg[1]; s++ {
			shardOfSlot[s] = w
		}
	}
	parts := make([][]relation.Tuple, n)
	for _, t := range r.Rel.Tuples {
		v := t[col]
		slot := sort.Search(distinct, func(i int) bool {
			return values.Compare(st.Val(root, i), v) >= 0
		})
		if slot >= distinct || values.Compare(st.Val(root, slot), v) != 0 {
			return nil, "", fmt.Errorf("catalog: relation %q: value %s missing from root union; factorisation out of sync", r.Rel.Name, v)
		}
		w := shardOfSlot[slot]
		parts[w] = append(parts[w], t)
	}
	return parts, partAttr, nil
}

// ShardFileName returns the canonical file name for shard i of n of the
// named catalogue.
func ShardFileName(name string, i, n int) string {
	return fmt.Sprintf("%s.shard%dof%d.fdbcat", name, i, n)
}

// ManifestFileName returns the canonical manifest file name for the
// named catalogue.
func ManifestFileName(name string) string {
	return name + ".manifest.json"
}

// WriteShardFiles persists the shard catalogues and their manifest into
// dir using the canonical names, each write atomic (temp file, fsync,
// rename). It returns the shard file paths in shard order.
func WriteShardFiles(dir string, shards []*Catalog, m *ShardManifest) ([]string, error) {
	if len(shards) != m.Shards {
		return nil, fmt.Errorf("catalog: %d shard catalogues for a manifest of %d", len(shards), m.Shards)
	}
	paths := make([]string, len(shards))
	for i, sc := range shards {
		p := filepath.Join(dir, ShardFileName(m.Catalog, i, m.Shards))
		if err := WriteFile(p, sc); err != nil {
			return nil, err
		}
		paths[i] = p
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("catalog: encoding manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, ManifestFileName(m.Catalog)), append(b, '\n')); err != nil {
		return nil, err
	}
	return paths, nil
}

// ReadManifestFile loads and validates a shard manifest.
func ReadManifestFile(path string) (*ShardManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var m ShardManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("catalog: manifest %s: %w", path, err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("catalog: manifest %s: implausible shard count %d", path, m.Shards)
	}
	for _, r := range m.Relations {
		if len(r.Rows) != m.Shards {
			return nil, fmt.Errorf("catalog: manifest %s: relation %q has %d row counts for %d shards", path, r.Name, len(r.Rows), m.Shards)
		}
	}
	return &m, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncing before the rename so readers never observe a
// partial file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("catalog: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("catalog: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return fmt.Errorf("catalog: closing %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}
