package catalog

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

// tupleCounts returns the multiset of tuples as key → count.
func tupleCounts(ts []relation.Tuple) map[string]int {
	m := make(map[string]int, len(ts))
	for _, t := range ts {
		m[t.Key()]++
	}
	return m
}

// TestSplitPartitions: splitting the workload catalogue preserves every
// tuple exactly once for split relations, keeps ranges contiguous and
// ordered across shards, and the manifest accounts for every row.
func TestSplitPartitions(t *testing.T) {
	db := workload.Generate(workload.Config{Scale: 1}).DB()
	c, err := Build("shop", db)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		shards, man, err := Split(c, n)
		if err != nil {
			t.Fatalf("Split(%d): %v", n, err)
		}
		if len(shards) != n || man.Shards != n || man.Catalog != "shop" {
			t.Fatalf("Split(%d): %d shards, manifest %+v", n, len(shards), man)
		}
		for _, orig := range c.Relations {
			name := orig.Rel.Name
			sr := man.Rel(name)
			if sr == nil {
				t.Fatalf("n=%d: relation %q missing from manifest", n, name)
			}
			if !reflect.DeepEqual(sr.Attrs, orig.Rel.Attrs) {
				t.Fatalf("n=%d %s: manifest attrs %v, want %v", n, name, sr.Attrs, orig.Rel.Attrs)
			}
			want := tupleCounts(orig.Rel.Tuples)
			got := map[string]int{}
			total := 0
			var prevMax values.Value
			havePrev := false
			for i, sc := range shards {
				rel := sc.DB()[name]
				if rel == nil {
					t.Fatalf("n=%d shard %d: relation %q missing", n, i, name)
				}
				if len(rel.Tuples) != sr.Rows[i] {
					t.Fatalf("n=%d shard %d %s: %d tuples, manifest says %d", n, i, name, len(rel.Tuples), sr.Rows[i])
				}
				if sr.Partition == "" {
					// Replicated: each shard holds the whole relation.
					if !reflect.DeepEqual(tupleCounts(rel.Tuples), want) {
						t.Fatalf("n=%d shard %d %s: replica differs from original", n, i, name)
					}
					continue
				}
				col := rel.ColIndex(sr.Partition)
				if col < 0 {
					t.Fatalf("n=%d %s: partition attr %q not in schema", n, name, sr.Partition)
				}
				for _, tup := range rel.Tuples {
					got[tup.Key()]++
					total++
					if havePrev && values.Compare(tup[col], prevMax) <= 0 && i > 0 {
						// Every value on shard i must order strictly
						// above every value on earlier shards.
						if values.Compare(tup[col], prevMax) < 0 {
							t.Fatalf("n=%d shard %d %s: value %s below earlier shard max %s", n, i, name, tup[col], prevMax)
						}
					}
				}
				// Track this shard's max partition value.
				for _, tup := range rel.Tuples {
					if !havePrev || values.Compare(tup[col], prevMax) > 0 {
						prevMax, havePrev = tup[col], true
					}
				}
			}
			if sr.Partition != "" {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d %s: split tuples differ from original (%d vs %d rows)", n, name, total, len(orig.Rel.Tuples))
				}
			}
		}
	}
}

// TestSplitRangesDisjoint: with a split relation, a partition value never
// appears on two shards.
func TestSplitRangesDisjoint(t *testing.T) {
	db := workload.Generate(workload.Config{Scale: 1}).DB()
	c, err := Build("shop", db)
	if err != nil {
		t.Fatal(err)
	}
	shards, man, err := Split(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range man.Relations {
		if sr.Partition == "" {
			continue
		}
		owner := map[string]int{}
		for i, sc := range shards {
			rel := sc.DB()[sr.Name]
			col := rel.ColIndex(sr.Partition)
			for _, tup := range rel.Tuples {
				k := string(tup[col].AppendKey(nil))
				if prev, ok := owner[k]; ok && prev != i {
					t.Fatalf("%s: partition value %s on shards %d and %d", sr.Name, tup[col], prev, i)
				}
				owner[k] = i
			}
		}
	}
}

// TestSplitReplicatesSmall: a relation with one distinct root value
// cannot be range-cut and is replicated.
func TestSplitReplicatesSmall(t *testing.T) {
	db := map[string]*relation.Relation{
		"Tiny": relation.MustNew("Tiny", []string{"k", "v"}, []relation.Tuple{
			{iv(7), iv(1)}, {iv(7), iv(2)},
		}),
		"Empty": relation.MustNew("Empty", []string{"x"}, nil),
	}
	c, err := Build("small", db)
	if err != nil {
		t.Fatal(err)
	}
	shards, man, err := Split(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Tiny", "Empty"} {
		if man.IsSplit(name) {
			t.Fatalf("%s was split; want replicated", name)
		}
		for i, sc := range shards {
			if got, want := len(sc.DB()[name].Tuples), len(db[name].Tuples); got != want {
				t.Fatalf("%s shard %d: %d tuples, want %d", name, i, got, want)
			}
		}
	}
}

// TestManifestRoundTrip: the manifest survives JSON and the file cycle.
func TestManifestRoundTrip(t *testing.T) {
	m := &ShardManifest{
		Catalog: "shop",
		Shards:  2,
		Relations: []ShardRelation{
			{Name: "R1", Attrs: []string{"customer", "date"}, Partition: "customer", Rows: []int{3, 4}},
			{Name: "Dim", Attrs: []string{"k"}, Rows: []int{5, 5}},
		},
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got ShardManifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, m) {
		t.Fatalf("JSON round trip changed the manifest:\n got %+v\nwant %+v", &got, m)
	}
	if m.IsSplit("Dim") || !m.IsSplit("R1") || m.IsSplit("nope") {
		t.Fatal("IsSplit misclassifies")
	}
}

// TestWriteShardFiles: shard files and manifest land on disk under the
// canonical names and load back to the same data.
func TestWriteShardFiles(t *testing.T) {
	db := workload.Generate(workload.Config{Scale: 1}).DB()
	c, err := Build("shop", db)
	if err != nil {
		t.Fatal(err)
	}
	shards, man, err := Split(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WriteShardFiles(dir, shards, man)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "shop.shard0of2.fdbcat" {
		t.Fatalf("paths %v", paths)
	}
	gotMan, err := ReadManifestFile(filepath.Join(dir, ManifestFileName("shop")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMan, man) {
		t.Fatalf("manifest file round trip differs:\n got %+v\nwant %+v", gotMan, man)
	}
	for i, p := range paths {
		ld, err := Open(p, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		sameDB(t, shards[i].DB(), ld.DB())
		if err := ld.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
