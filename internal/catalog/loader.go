package catalog

import (
	"fmt"
	"os"
)

// Loader produces the raw bytes of a catalogue snapshot and owns their
// lifetime: the bytes must stay valid and immutable until Close. The
// zero-copy load path aliases stores and strings straight into these
// bytes, which is what makes an mmapped catalogue load in O(metadata)
// instead of O(data).
type Loader interface {
	// Load returns the snapshot bytes. It is called once per Open.
	Load() ([]byte, error)
	// Close releases the bytes. Values loaded zero-copy must not be
	// used after Close.
	Close() error
}

// fileLoader reads the whole file into private memory — always safe,
// no lifetime coupling to the filesystem.
type fileLoader struct {
	path string
	b    []byte
}

// FileLoader returns a Loader that reads path into memory with one
// contiguous read. The returned bytes are private, so Close is a no-op
// and the loaded catalogue outlives any changes to the file.
func FileLoader(path string) Loader { return &fileLoader{path: path} }

func (l *fileLoader) Load() ([]byte, error) {
	b, err := os.ReadFile(l.path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	l.b = b
	return b, nil
}

func (l *fileLoader) Close() error {
	l.b = nil
	return nil
}
