package catalog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"testing"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

func iv(i int64) values.Value   { return values.NewInt(i) }
func sv(s string) values.Value  { return values.NewString(s) }
func fv(f float64) values.Value { return values.NewFloat(f) }
func bv(b bool) values.Value    { return values.NewBool(b) }
func testDB() map[string]*relation.Relation {
	orders := relation.MustNew("Orders", []string{"customer", "date", "package"}, []relation.Tuple{
		{sv("alice"), iv(20240101), iv(1)},
		{sv("bob"), iv(20240102), iv(2)},
		{sv("alice"), iv(20240103), iv(1)},
	})
	items := relation.MustNew("Items", []string{"item", "price", "fresh"}, []relation.Tuple{
		{iv(10), fv(1.5), bv(true)},
		{iv(11), fv(2.25), bv(false)},
	})
	empty := relation.MustNew("Empty", []string{"x", "y"}, nil)
	return map[string]*relation.Relation{
		"Orders": orders, "Items": items, "Empty": empty,
	}
}

func buildBytes(t *testing.T, db map[string]*relation.Relation) (*Catalog, []byte) {
	t.Helper()
	c, err := Build("testdb", db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return c, buf.Bytes()
}

func sameDB(t *testing.T, want, got map[string]*relation.Relation) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("got %d relations, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing relation %q", name)
		}
		if len(g.Attrs) != len(w.Attrs) {
			t.Fatalf("%s: got %d attrs, want %d", name, len(g.Attrs), len(w.Attrs))
		}
		for i := range w.Attrs {
			if g.Attrs[i] != w.Attrs[i] {
				t.Fatalf("%s: attr %d is %q, want %q", name, i, g.Attrs[i], w.Attrs[i])
			}
		}
		if len(g.Tuples) != len(w.Tuples) {
			t.Fatalf("%s: got %d tuples, want %d", name, len(g.Tuples), len(w.Tuples))
		}
		for i := range w.Tuples {
			if relation.Compare(g.Tuples[i], w.Tuples[i]) != 0 {
				t.Fatalf("%s: tuple %d is %v, want %v", name, i, g.Tuples[i], w.Tuples[i])
			}
		}
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	db := testDB()
	c, b := buildBytes(t, db)
	for _, zc := range []bool{false, true} {
		ld, err := Read(b, zc)
		if err != nil {
			t.Fatalf("Read(zeroCopy=%v): %v", zc, err)
		}
		if ld.Name != "testdb" {
			t.Fatalf("name %q", ld.Name)
		}
		sameDB(t, db, ld.DB())
		// Facts must be structurally identical to the built ones.
		for i, r := range ld.Relations {
			want := c.Relations[i]
			if !frep.EqualStore(want.Fact.Store, want.Fact.Root, r.Fact.Store, r.Fact.Root) {
				t.Fatalf("%s: loaded factorisation differs", r.Rel.Name)
			}
		}
		// Canonical: load → write reproduces the bytes exactly.
		var buf2 bytes.Buffer
		if _, err := ld.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, buf2.Bytes()) {
			t.Fatalf("zeroCopy=%v: save→load→save is not byte-identical", zc)
		}
	}
}

func TestCatalogWorkloadRoundTrip(t *testing.T) {
	db := workload.Generate(workload.Config{Scale: 1}).DB()
	_, b := buildBytes(t, db)
	ld, err := Read(b, true)
	if err != nil {
		t.Fatal(err)
	}
	sameDB(t, db, ld.DB())
}

func TestCatalogRejectsCorruption(t *testing.T) {
	_, b := buildBytes(t, testDB())
	check := func(name string, data []byte) {
		t.Helper()
		if _, err := Read(data, true); err == nil {
			t.Errorf("%s: Read accepted corrupt input", name)
		}
	}
	for _, n := range []int{0, 7, catHeaderLen - 1, catHeaderLen, len(b) / 3, len(b) - 1} {
		check("truncated", b[:n])
	}
	bad := bytes.Clone(b)
	bad[0] ^= 0xff
	check("magic", bad)

	// Version skew with a recomputed header CRC.
	bad = bytes.Clone(b)
	bad[8] = 9
	rechecksum(bad)
	check("version", bad)

	// Flag skew.
	bad = bytes.Clone(b)
	bad[10] = 1
	rechecksum(bad)
	check("flags", bad)

	// A flipped byte anywhere must be caught by one of the checksums.
	for _, off := range []int{9, catHeaderLen + 3, len(b) / 2, len(b) - 5} {
		bad = bytes.Clone(b)
		bad[off] ^= 0x10
		check("bitflip", bad)
	}

	// A metadata length near MaxUint64 must not wrap the bounds check
	// into a slice panic (regression: catHeaderLen+metaLen overflow).
	bad = bytes.Clone(b)
	binary.LittleEndian.PutUint64(bad[16:24], ^uint64(0)-8)
	rechecksum(bad)
	check("metaLen-overflow", bad)
}

// Fuzz-style sweep: truncating at every offset must error, never panic.
func TestCatalogTruncationSweep(t *testing.T) {
	_, b := buildBytes(t, testDB())
	step := len(b)/257 + 1
	for n := 0; n < len(b); n += step {
		if _, err := Read(b[:n], true); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

func FuzzCatalogRead(f *testing.F) {
	db := testDB()
	c, err := Build("fz", db)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(catMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		ld, err := Read(data, true)
		if err != nil {
			return
		}
		// Anything accepted must re-encode byte-identically and be
		// fully readable — including its rank sections, which must
		// answer count queries without out-of-range access.
		for _, r := range ld.Relations {
			st := r.Fact.Store
			for id := 0; id < st.NodeCount(); id++ {
				_, _ = st.RankTotal(frep.NodeID(id))
			}
			if st.HasRanks() {
				if _, ok := st.RankTotal(r.Fact.Root); !ok {
					t.Fatalf("relation %q: complete ranks but root total unavailable", r.Rel.Name)
				}
			}
		}
		var out bytes.Buffer
		if _, err := ld.WriteTo(&out); err != nil {
			t.Fatalf("accepted catalogue failed to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted catalogue is not canonical")
		}
	})
}

func TestWriteFileAtomicAndOpen(t *testing.T) {
	db := testDB()
	c, err := Build("disk", db)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.fdbcat")
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	// Overwrite must go through the same atomic path.
	if err := WriteFile(path, c); err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func(string) Loader{nil, FileLoader, MmapLoader} {
		var l Loader
		if mk != nil {
			l = mk(path)
		}
		ld, err := Open(path, l)
		if err != nil {
			t.Fatal(err)
		}
		sameDB(t, db, ld.DB())
		if err := ld.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ld.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
}

// rechecksum recomputes the header CRC after a deliberate header edit,
// so tests reach the field checks behind it.
func rechecksum(b []byte) {
	binary.LittleEndian.PutUint32(b[28:32], crc32.Checksum(b[0:28], crcTable))
}
