// Package catalog implements disk-backed catalogue snapshots: a
// versioned, checksummed container bundling, per relation, the flat
// schema and tuples plus a factorised arena store over the relation's
// linear-path f-tree. A server that persists its catalogue survives
// restarts without re-sorting and re-factorising its base data, and a
// catalogue file is a self-contained artefact that can be shipped,
// mmapped and queried in place — the factorised relation as the storage
// layer, per the FDB engine papers.
//
// Container layout (all integers little-endian, all sections 8-byte
// aligned relative to the file start):
//
//	header    32 bytes: magic "FDBCAT1\n", version, relation count,
//	          metadata length, CRC-32C of metadata and of the header
//	metadata  varint-encoded: catalogue name, then per relation its
//	          name, attributes, row count, section offsets and the
//	          factorisation's path order and root
//	sections  per relation: flat value records + heap (the frep value
//	          codec, own CRC in the metadata), then the factorised
//	          store as one frep snapshot (self-checksummed)
//
// Reading is defensive end to end: corrupt, truncated or version-skewed
// input returns an error, never a panic, and every loaded factorisation
// is shape-checked against its declared linear path before use.
package catalog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
)

const (
	catMagic     = "FDBCAT1\n"
	catVersion   = 1
	catHeaderLen = 32
	valRecLen    = 16
	// maxAttrs bounds per-relation attribute counts on decode; the
	// engine's f-trees are tiny, so anything larger is corruption.
	maxAttrs = 1 << 12
	// maxRels bounds the relation count on decode.
	maxRels = 1 << 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fact is a factorised copy of one relation: an arena store holding the
// relation factorised over the linear path Order, rooted at Root.
type Fact struct {
	Order []string
	Store *frep.Store
	Root  frep.NodeID
}

// Relation is one catalogued relation: the authoritative flat data plus
// its factorisation.
type Relation struct {
	Rel  *relation.Relation
	Fact *Fact
}

// Catalog is a named set of catalogued relations, ordered by name.
type Catalog struct {
	Name      string
	Relations []*Relation

	loader Loader
}

// DB returns the catalogue's flat relations keyed by name — the map the
// engine queries against.
func (c *Catalog) DB() map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(c.Relations))
	for _, r := range c.Relations {
		out[r.Rel.Name] = r.Rel
	}
	return out
}

// Close releases the loader backing a catalogue opened with Open (for
// example an mmap). After Close, stores and strings loaded zero-copy
// must no longer be used. Close on a built (not loaded) catalogue is a
// no-op.
func (c *Catalog) Close() error {
	if c.loader == nil {
		return nil
	}
	l := c.loader
	c.loader = nil
	return l.Close()
}

// Build factorises every relation of db over its linear attribute path
// and returns the catalogue, relations sorted by name (the canonical
// order, so Build → WriteTo is deterministic).
func Build(name string, db map[string]*relation.Relation) (*Catalog, error) {
	names := make([]string, 0, len(db))
	for n := range db {
		names = append(names, n)
	}
	sort.Strings(names)
	c := &Catalog{Name: name}
	for _, n := range names {
		rel := db[n]
		if rel == nil {
			return nil, fmt.Errorf("catalog: relation %q is nil", n)
		}
		if rel.Name != n {
			return nil, fmt.Errorf("catalog: relation %q registered under key %q", rel.Name, n)
		}
		if len(rel.Attrs) == 0 {
			return nil, fmt.Errorf("catalog: relation %q has no attributes", n)
		}
		f := ftree.New()
		f.NewRelationPath(rel.Attrs...)
		st := frep.NewStore()
		roots, err := frep.BuildStoreUnchecked(st, rel, f)
		if err != nil {
			return nil, fmt.Errorf("catalog: factorising %q: %w", n, err)
		}
		if err := st.BuildRanks(); err != nil {
			return nil, fmt.Errorf("catalog: ranking %q: %w", n, err)
		}
		c.Relations = append(c.Relations, &Relation{
			Rel: rel,
			Fact: &Fact{
				Order: append([]string(nil), rel.Attrs...),
				Store: st,
				Root:  roots[0],
			},
		})
	}
	return c, nil
}

// metaBuf is a little varint/string encoder for the metadata block.
type metaBuf struct{ b []byte }

func (m *metaBuf) uvarint(v uint64) { m.b = binary.AppendUvarint(m.b, v) }
func (m *metaBuf) str(s string) {
	m.uvarint(uint64(len(s)))
	m.b = append(m.b, s...)
}
func (m *metaBuf) u64(v uint64) {
	m.b = binary.LittleEndian.AppendUint64(m.b, v)
}
func (m *metaBuf) u32(v uint32) {
	m.b = binary.LittleEndian.AppendUint32(m.b, v)
}

// metaRd is the matching defensive decoder.
type metaRd struct {
	b   []byte
	off int
	err error
}

func (m *metaRd) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("catalog: metadata: "+format, args...)
	}
}

func (m *metaRd) uvarint() uint64 {
	if m.err != nil {
		return 0
	}
	v, n := binary.Uvarint(m.b[m.off:])
	if n <= 0 {
		m.fail("truncated varint at %d", m.off)
		return 0
	}
	m.off += n
	return v
}

func (m *metaRd) str(maxLen uint64) string {
	n := m.uvarint()
	if m.err != nil {
		return ""
	}
	if n > maxLen || uint64(m.off)+n > uint64(len(m.b)) {
		m.fail("implausible string length %d at %d", n, m.off)
		return ""
	}
	s := string(m.b[m.off : m.off+int(n)])
	m.off += int(n)
	return s
}

func (m *metaRd) u64() uint64 {
	if m.err != nil {
		return 0
	}
	if m.off+8 > len(m.b) {
		m.fail("truncated u64 at %d", m.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(m.b[m.off:])
	m.off += 8
	return v
}

func (m *metaRd) u32() uint32 {
	if m.err != nil {
		return 0
	}
	if m.off+4 > len(m.b) {
		m.fail("truncated u32 at %d", m.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(m.b[m.off:])
	m.off += 4
	return v
}

// relMeta is the decoded per-relation metadata.
type relMeta struct {
	name       string
	attrs      []string
	nRows      uint64
	flatOff    uint64 // absolute offset of the flat record section
	flatHeap   uint64 // absolute offset of the flat heap
	flatHeapLn uint64
	flatCRC    uint32 // over records + heap
	order      []string
	root       uint32
	storeOff   uint64 // absolute offset of the frep snapshot
	storeLen   uint64
}

func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// WriteTo serialises the catalogue, implementing io.WriterTo. The
// encoding is canonical: writing a loaded catalogue reproduces the input
// bytes.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	type relBlob struct {
		recs, heap, store []byte
		meta              relMeta
	}
	blobs := make([]relBlob, len(c.Relations))
	for i, r := range c.Relations {
		if r.Fact == nil {
			return 0, fmt.Errorf("catalog: relation %q has no factorisation", r.Rel.Name)
		}
		var rb relBlob
		var err error
		nCols := len(r.Rel.Attrs)
		rb.recs = make([]byte, 0, len(r.Rel.Tuples)*nCols*valRecLen)
		for _, t := range r.Rel.Tuples {
			if len(t) != nCols {
				return 0, fmt.Errorf("catalog: relation %q tuple arity %d, want %d", r.Rel.Name, len(t), nCols)
			}
			rb.recs, rb.heap, err = frep.AppendValueSection(rb.recs, rb.heap, t)
			if err != nil {
				return 0, err
			}
		}
		rb.store, err = r.Fact.Store.SnapshotBytes()
		if err != nil {
			return 0, fmt.Errorf("catalog: snapshotting %q: %w", r.Rel.Name, err)
		}
		rb.meta = relMeta{
			name:  r.Rel.Name,
			attrs: r.Rel.Attrs,
			nRows: uint64(len(r.Rel.Tuples)),
			order: r.Fact.Order,
			root:  uint32(r.Fact.Root),
		}
		blobs[i] = rb
	}

	// First pass sizes the metadata block with zeroed offsets; the
	// encoding is fixed-width where offsets appear, so sizing is exact.
	encodeMeta := func(final bool, base uint64) []byte {
		var mb metaBuf
		mb.str(c.Name)
		off := base
		for i := range blobs {
			rb := &blobs[i]
			m := &rb.meta
			if final {
				// Flat records are 16 bytes each, so the heap starts
				// aligned; store snapshots are whole multiples of 8, so
				// the next relation's sections start aligned too.
				m.flatOff = off
				m.flatHeap = m.flatOff + uint64(len(rb.recs))
				m.flatHeapLn = uint64(len(rb.heap))
				m.storeOff = align8(m.flatHeap + m.flatHeapLn)
				m.storeLen = uint64(len(rb.store))
				off = m.storeOff + m.storeLen
				crc := crc32.Checksum(rb.recs, crcTable)
				m.flatCRC = crc32.Update(crc, crcTable, rb.heap)
			}
			mb.str(m.name)
			mb.uvarint(uint64(len(m.attrs)))
			for _, a := range m.attrs {
				mb.str(a)
			}
			mb.uvarint(m.nRows)
			mb.u64(m.flatOff)
			mb.u64(m.flatHeap)
			mb.u64(m.flatHeapLn)
			mb.u32(m.flatCRC)
			mb.uvarint(uint64(len(m.order)))
			for _, a := range m.order {
				mb.str(a)
			}
			mb.u32(m.root)
			mb.u64(m.storeOff)
			mb.u64(m.storeLen)
		}
		return mb.b
	}
	metaLen := uint64(len(encodeMeta(false, 0)))
	dataBase := catHeaderLen + align8(metaLen)
	meta := encodeMeta(true, dataBase)
	if uint64(len(meta)) != metaLen {
		return 0, fmt.Errorf("catalog: internal error: metadata sizing mismatch")
	}

	var hdr [catHeaderLen]byte
	copy(hdr[0:8], catMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], catVersion)
	binary.LittleEndian.PutUint16(hdr[10:12], 0) // flags
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(c.Relations)))
	binary.LittleEndian.PutUint64(hdr[16:24], metaLen)
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(meta, crcTable))
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.Checksum(hdr[0:28], crcTable))

	cw := &countWriter{w: w}
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(meta); err != nil {
		return cw.n, err
	}
	if err := cw.pad(align8(metaLen) - metaLen); err != nil {
		return cw.n, err
	}
	for i := range blobs {
		rb := &blobs[i]
		if _, err := cw.Write(rb.recs); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(rb.heap); err != nil {
			return cw.n, err
		}
		if err := cw.pad(align8(uint64(cw.n)) - uint64(cw.n)); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(rb.store); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

var zeros [8]byte

func (c *countWriter) pad(n uint64) error {
	if n == 0 {
		return nil
	}
	_, err := c.Write(zeros[:n])
	return err
}

// Read parses a complete catalogue held in one contiguous byte slice.
// With zeroCopy set, loaded stores reinterpret their slabs in place and
// strings alias b — the caller must keep b immutable and alive (Open
// wires this to the Loader's lifetime); otherwise everything is copied
// out of b.
func Read(b []byte, zeroCopy bool) (*Catalog, error) {
	if len(b) < catHeaderLen {
		return nil, fmt.Errorf("catalog: truncated header (%d bytes)", len(b))
	}
	if string(b[0:8]) != catMagic {
		return nil, fmt.Errorf("catalog: bad magic %q", b[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[28:32]), crc32.Checksum(b[0:28], crcTable); got != want {
		return nil, fmt.Errorf("catalog: header checksum mismatch (got %#x, want %#x)", got, want)
	}
	if v := binary.LittleEndian.Uint16(b[8:10]); v != catVersion {
		return nil, fmt.Errorf("catalog: unsupported version %d (this build reads version %d)", v, catVersion)
	}
	if f := binary.LittleEndian.Uint16(b[10:12]); f != 0 {
		return nil, fmt.Errorf("catalog: unknown flags %#x", f)
	}
	nRels := binary.LittleEndian.Uint32(b[12:16])
	if nRels > maxRels {
		return nil, fmt.Errorf("catalog: implausible relation count %d", nRels)
	}
	metaLen := binary.LittleEndian.Uint64(b[16:24])
	// Compare against the remaining bytes, not catHeaderLen+metaLen,
	// which a crafted metaLen near MaxUint64 would wrap past the check.
	if metaLen > uint64(len(b))-catHeaderLen {
		return nil, fmt.Errorf("catalog: metadata length %d exceeds file of %d bytes", metaLen, len(b))
	}
	meta := b[catHeaderLen : catHeaderLen+metaLen]
	if got, want := binary.LittleEndian.Uint32(b[24:28]), crc32.Checksum(meta, crcTable); got != want {
		return nil, fmt.Errorf("catalog: metadata checksum mismatch (got %#x, want %#x)", got, want)
	}

	rd := &metaRd{b: meta}
	name := rd.str(1 << 16)
	c := &Catalog{Name: name}
	seen := map[string]bool{}
	for i := uint32(0); i < nRels && rd.err == nil; i++ {
		m := relMeta{name: rd.str(1 << 16)}
		nAttrs := rd.uvarint()
		if rd.err == nil && nAttrs > maxAttrs {
			rd.fail("implausible attribute count %d", nAttrs)
		}
		for j := uint64(0); j < nAttrs && rd.err == nil; j++ {
			m.attrs = append(m.attrs, rd.str(1<<16))
		}
		m.nRows = rd.uvarint()
		m.flatOff = rd.u64()
		m.flatHeap = rd.u64()
		m.flatHeapLn = rd.u64()
		m.flatCRC = rd.u32()
		nOrder := rd.uvarint()
		if rd.err == nil && nOrder > maxAttrs {
			rd.fail("implausible order length %d", nOrder)
		}
		for j := uint64(0); j < nOrder && rd.err == nil; j++ {
			m.order = append(m.order, rd.str(1<<16))
		}
		m.root = rd.u32()
		m.storeOff = rd.u64()
		m.storeLen = rd.u64()
		if rd.err != nil {
			break
		}
		r, err := loadRelation(b, &m, zeroCopy)
		if err != nil {
			return nil, err
		}
		if seen[r.Rel.Name] {
			return nil, fmt.Errorf("catalog: duplicate relation %q", r.Rel.Name)
		}
		seen[r.Rel.Name] = true
		c.Relations = append(c.Relations, r)
	}
	if rd.err != nil {
		return nil, rd.err
	}
	return c, nil
}

// section bounds-checks [off, off+n) within b and returns the slice.
func section(b []byte, off, n uint64, what string) ([]byte, error) {
	end := off + n
	if end < off || end > uint64(len(b)) {
		return nil, fmt.Errorf("catalog: %s section [%d,%d) outside file of %d bytes", what, off, end, len(b))
	}
	return b[off:end], nil
}

func loadRelation(b []byte, m *relMeta, zeroCopy bool) (*Relation, error) {
	nCols := uint64(len(m.attrs))
	if nCols == 0 {
		return nil, fmt.Errorf("catalog: relation %q has no attributes", m.name)
	}
	if m.nRows > math.MaxUint32 || m.nRows*nCols > math.MaxUint32 {
		return nil, fmt.Errorf("catalog: relation %q: implausible row count %d", m.name, m.nRows)
	}
	nVals := m.nRows * nCols
	recs, err := section(b, m.flatOff, nVals*valRecLen, m.name+" flat records")
	if err != nil {
		return nil, err
	}
	heap, err := section(b, m.flatHeap, m.flatHeapLn, m.name+" flat heap")
	if err != nil {
		return nil, err
	}
	crc := crc32.Checksum(recs, crcTable)
	if crc = crc32.Update(crc, crcTable, heap); crc != m.flatCRC {
		return nil, fmt.Errorf("catalog: relation %q: flat section checksum mismatch (got %#x, want %#x)", m.name, crc, m.flatCRC)
	}
	vals, err := frep.DecodeValueSection(recs, heap, int(nVals), zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", m.name, err)
	}
	tuples := make([]relation.Tuple, m.nRows)
	for i := range tuples {
		row := vals[uint64(i)*nCols : (uint64(i)+1)*nCols]
		tuples[i] = relation.Tuple(row[:len(row):len(row)])
	}
	rel, err := relation.New(m.name, m.attrs, tuples)
	if err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", m.name, err)
	}

	storeB, err := section(b, m.storeOff, m.storeLen, m.name+" store")
	if err != nil {
		return nil, err
	}
	st, err := frep.LoadSnapshot(storeB, zeroCopy)
	if err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", m.name, err)
	}
	root := frep.NodeID(m.root)
	if int(m.root) >= st.NodeCount() {
		return nil, fmt.Errorf("catalog: relation %q: root %d outside store of %d nodes", m.name, m.root, st.NodeCount())
	}
	if err := checkLinearShape(st, root, len(m.order)); err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", m.name, err)
	}
	if err := checkOrderAttrs(m.attrs, m.order); err != nil {
		return nil, fmt.Errorf("catalog: relation %q: %w", m.name, err)
	}
	return &Relation{
		Rel:  rel,
		Fact: &Fact{Order: m.order, Store: st, Root: root},
	}, nil
}

// checkOrderAttrs verifies the factorisation's path order is a
// permutation of the relation's attributes.
func checkOrderAttrs(attrs, order []string) error {
	if len(attrs) != len(order) {
		return fmt.Errorf("path order has %d attributes, relation has %d", len(order), len(attrs))
	}
	have := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		have[a] = true
	}
	for _, a := range order {
		if !have[a] {
			return fmt.Errorf("path order names unknown attribute %q", a)
		}
		delete(have, a)
	}
	return nil
}

// checkLinearShape verifies that the factorisation rooted at root has
// the shape of a linear path of depth levels: every node at depth d <
// levels-1 has arity 1, leaves have arity 0, and no node appears at two
// depths. This makes the engine's enumerators and operators — which
// index kid rows by the f-tree's child count — panic-free on loaded
// data. The walk is iterative and visits each node at most once.
func checkLinearShape(st *frep.Store, root frep.NodeID, levels int) error {
	if root == frep.EmptyNode {
		return nil // empty relation
	}
	if levels == 0 {
		return fmt.Errorf("non-empty factorisation for an empty path")
	}
	// depths[id] holds depth+1 (0 = unvisited); a dense slice because
	// this walk is on the cold-start critical path and a map memo
	// dominates the whole load.
	depths := make([]int32, st.NodeCount())
	depths[root] = 1
	stack := []frep.NodeID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		depth := int(depths[id]) - 1
		wantArity := 1
		if depth == levels-1 {
			wantArity = 0
		}
		n := st.Len(id)
		if got := st.Arity(id); n > 0 && got != wantArity {
			return fmt.Errorf("node %d at depth %d has arity %d, want %d", id, depth, got, wantArity)
		}
		if depth > 0 && n == 0 {
			return fmt.Errorf("empty union below the top level at node %d", id)
		}
		for i := 0; i < n; i++ {
			for _, k := range st.KidRow(id, i) {
				if d := depths[k]; d != 0 {
					if int(d) != depth+2 {
						return fmt.Errorf("node %d shared across depths %d and %d", k, int(d)-1, depth+1)
					}
					continue
				}
				depths[k] = int32(depth) + 2
				stack = append(stack, k)
			}
		}
	}
	return nil
}

// WriteFile writes the catalogue to path atomically: the bytes go to a
// temporary file in the same directory, are fsynced, and replace path
// with a rename, so readers never observe a partial snapshot and a
// crash mid-write leaves the previous snapshot intact.
func WriteFile(path string, c *Catalog) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := c.WriteTo(tmp); err != nil {
		return fmt.Errorf("catalog: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("catalog: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return fmt.Errorf("catalog: closing %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// Open loads the catalogue at path through the loader (FileLoader or
// MmapLoader; nil means FileLoader). The zero-copy fast path is used
// whenever the loader's bytes are stable, and the returned catalogue
// owns the loader: Close releases it.
func Open(path string, l Loader) (*Catalog, error) {
	if l == nil {
		l = FileLoader(path)
	}
	b, err := l.Load()
	if err != nil {
		l.Close()
		return nil, err
	}
	c, err := Read(b, true)
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c.loader = l
	return c, nil
}
