//go:build !unix

package catalog

// MmapLoader falls back to FileLoader on platforms without Unix mmap;
// the behaviour is identical apart from the up-front copy.
func MmapLoader(path string) Loader { return FileLoader(path) }
