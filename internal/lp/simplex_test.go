package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaximizeSimple(t *testing.T) {
	// maximise 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2,6).
	sol, err := Maximize(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Value, 36) {
		t.Errorf("opt = %v, want 36", sol.Value)
	}
	if !almost(sol.X[0], 2) || !almost(sol.X[1], 6) {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	_, err := Maximize([]float64{1, 1}, [][]float64{{1, -1}}, []float64{1})
	if err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestMaximizeValidation(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("negative bound should fail")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("ragged row should fail")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("bounds length mismatch should fail")
	}
}

func TestMaximizeDegenerate(t *testing.T) {
	// Degenerate vertex (b has zeros); Bland's rule must still terminate.
	sol, err := Maximize(
		[]float64{1, 1},
		[][]float64{{1, 1}, {1, -1}, {-1, 1}},
		[]float64{1, 0, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Value, 1) {
		t.Errorf("opt = %v, want 1", sol.Value)
	}
}

func TestTriangleCover(t *testing.T) {
	// Triangle query R(a,b), S(b,c), T(c,a): ρ* = 3/2.
	h := Hypergraph{NumVertices: 3, Edges: [][]int{{0, 1}, {1, 2}, {2, 0}}}
	v, x, err := FractionalEdgeCover(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 1.5) {
		t.Errorf("ρ*(triangle) = %v, want 1.5", v)
	}
	if !CoverFeasible(h, x) {
		t.Errorf("returned cover %v infeasible", x)
	}
}

func TestPathCover(t *testing.T) {
	// Path R(a,b), S(b,c): endpoints force both edges → ρ* = 2.
	h := Hypergraph{NumVertices: 3, Edges: [][]int{{0, 1}, {1, 2}}}
	v, x, err := FractionalEdgeCover(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 2) {
		t.Errorf("ρ*(path) = %v, want 2", v)
	}
	if !CoverFeasible(h, x) {
		t.Errorf("cover %v infeasible", x)
	}
}

func TestSingleEdgeCover(t *testing.T) {
	h := Hypergraph{NumVertices: 4, Edges: [][]int{{0, 1, 2, 3}}}
	v, _, err := FractionalEdgeCover(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 1) {
		t.Errorf("ρ* = %v, want 1", v)
	}
}

func TestWeightedCover(t *testing.T) {
	// Two edges both covering {0}; weights 3 and 5 → pick the cheaper.
	h := Hypergraph{NumVertices: 1, Edges: [][]int{{0}, {0}}, Weights: []float64{3, 5}}
	v, x, err := FractionalEdgeCover(h)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v, 3) {
		t.Errorf("weighted ρ* = %v, want 3", v)
	}
	if !almost(x[0], 1) || !almost(x[1], 0) {
		t.Errorf("cover = %v, want (1,0)", x)
	}
}

func TestEmptyVertexSet(t *testing.T) {
	v, x, err := FractionalEdgeCover(Hypergraph{NumVertices: 0, Edges: [][]int{{}}})
	if err != nil || v != 0 || len(x) != 1 {
		t.Errorf("empty vertex set: v=%v x=%v err=%v", v, x, err)
	}
}

func TestInfeasibleCover(t *testing.T) {
	h := Hypergraph{NumVertices: 2, Edges: [][]int{{0}}}
	if _, _, err := FractionalEdgeCover(h); err == nil {
		t.Error("uncovered vertex should be infeasible")
	}
}

func TestCoverInvalidInputs(t *testing.T) {
	if _, _, err := FractionalEdgeCover(Hypergraph{NumVertices: 1, Edges: [][]int{{5}}}); err == nil {
		t.Error("out-of-range vertex should fail")
	}
	if _, _, err := FractionalEdgeCover(Hypergraph{NumVertices: 1, Edges: [][]int{{0}}, Weights: []float64{1, 2}}); err == nil {
		t.Error("weights length mismatch should fail")
	}
	if _, _, err := FractionalEdgeCover(Hypergraph{NumVertices: 1, Edges: [][]int{{0}}, Weights: []float64{-1}}); err == nil {
		t.Error("negative weight should fail")
	}
}

// Property: on random hypergraphs the returned cover is feasible and its
// value matches the packing optimum (a strong-duality optimality
// certificate).
func TestCoverOptimalityCertificateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(6)
		ne := 1 + rng.Intn(6)
		h := Hypergraph{NumVertices: nv}
		covered := make([]bool, nv)
		for e := 0; e < ne; e++ {
			var edge []int
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					edge = append(edge, v)
					covered[v] = true
				}
			}
			if len(edge) == 0 {
				edge = []int{rng.Intn(nv)}
				covered[edge[0]] = true
			}
			h.Edges = append(h.Edges, edge)
			h.Weights = append(h.Weights, 0.5+rng.Float64()*3)
		}
		// Ensure feasibility.
		for v := 0; v < nv; v++ {
			if !covered[v] {
				h.Edges = append(h.Edges, []int{v})
				h.Weights = append(h.Weights, 1)
			}
		}
		val, x, err := FractionalEdgeCover(h)
		if err != nil {
			return false
		}
		if !CoverFeasible(h, x) {
			return false
		}
		// Cover value must equal Σ w_e x_e of the certificate.
		var sum float64
		for i, w := range h.Weights {
			sum += w * x[i]
		}
		return almost(val, sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
