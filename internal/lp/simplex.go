// Package lp implements a small dense simplex solver, used to compute
// fractional edge cover numbers ρ* of query hypergraphs. Tight size
// bounds for factorisations over f-trees are expressed in terms of ρ* of
// the attribute sets along root-to-leaf paths (Olteanu & Závodný, ICDT
// 2012; Grohe & Marx, SODA 2006), and the FDB optimiser uses those bounds
// as its cost metric (Section 5 of the paper).
//
// The solver handles the standard maximisation form
//
//	maximise c·x  subject to  A·x ≤ b,  x ≥ 0,  with b ≥ 0,
//
// which always admits the slack basis as an initial feasible point, and
// returns both the primal solution and the dual solution read off the
// final tableau. Covering LPs (minimise w·x, A·x ≥ 1) are solved through
// their packing duals.
package lp

import (
	"errors"
	"fmt"
	"math"
)

const eps = 1e-9

// ErrUnbounded is returned when the LP's objective is unbounded above.
var ErrUnbounded = errors.New("lp: unbounded objective")

// ErrInfeasible is returned by cover solvers when some vertex cannot be
// covered by any edge.
var ErrInfeasible = errors.New("lp: infeasible cover")

// Solution holds the result of a solved LP.
type Solution struct {
	// Value is the optimal objective value.
	Value float64
	// X is the optimal primal assignment.
	X []float64
	// Dual is the optimal dual assignment (one entry per constraint).
	Dual []float64
}

// Maximize solves: maximise c·x subject to A·x ≤ b, x ≥ 0, using the
// primal simplex method with Bland's anti-cycling rule. All entries of b
// must be non-negative (so the slack basis is feasible). A has one row per
// constraint; rows must have len(c) entries.
func Maximize(c []float64, a [][]float64, b []float64) (*Solution, error) {
	n := len(c)
	m := len(a)
	if len(b) != m {
		return nil, fmt.Errorf("lp: %d constraint rows but %d bounds", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		if b[i] < -eps {
			return nil, fmt.Errorf("lp: negative bound b[%d]=%v not supported", i, b[i])
		}
	}

	// Tableau: m constraint rows and one objective row over n original
	// variables, m slacks, and the RHS column.
	width := n + m + 1
	t := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		row := make([]float64, width)
		copy(row, a[i])
		row[n+i] = 1
		row[width-1] = b[i]
		t[i] = row
	}
	obj := make([]float64, width)
	for j := 0; j < n; j++ {
		obj[j] = -c[j]
	}
	t[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	for iter := 0; ; iter++ {
		if iter > 10000*(n+m+1) {
			return nil, errors.New("lp: iteration limit exceeded")
		}
		// Entering variable: Bland's rule, the lowest index with a
		// negative reduced cost.
		enter := -1
		for j := 0; j < n+m; j++ {
			if t[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Leaving row: minimum ratio; ties broken by the smallest basis
		// variable index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][width-1] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil, ErrUnbounded
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}

	sol := &Solution{
		Value: t[m][width-1],
		X:     make([]float64, n),
		Dual:  make([]float64, m),
	}
	for i, bv := range basis {
		if bv < n {
			sol.X[bv] = t[i][width-1]
		}
	}
	for i := 0; i < m; i++ {
		sol.Dual[i] = t[m][n+i]
	}
	return sol, nil
}

func pivot(t [][]float64, r, c int) {
	pr := t[r]
	pv := pr[c]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][c]
		if f == 0 {
			continue
		}
		row := t[i]
		for j := range row {
			row[j] -= f * pr[j]
		}
	}
}

// Hypergraph is a hypergraph over vertices 0..NumVertices-1 with weighted
// edges. In the query setting, vertices are attributes and each relation
// contributes one edge over its attributes with weight log|R| (or 1 for
// the unweighted cover number).
type Hypergraph struct {
	NumVertices int
	Edges       [][]int
	Weights     []float64 // len(Edges); nil means all weights are 1
}

// FractionalEdgeCover solves
//
//	minimise Σ_e w_e·x_e  subject to  ∀v: Σ_{e∋v} x_e ≥ 1,  x ≥ 0,
//
// by solving the packing dual (maximise Σ_v y_v subject to
// ∀e: Σ_{v∈e} y_v ≤ w_e, y ≥ 0) and reading the cover off the dual
// solution. It returns the optimal cover value and the per-edge weights
// x_e. A vertex contained in no edge makes the cover infeasible.
func FractionalEdgeCover(h Hypergraph) (float64, []float64, error) {
	nv := h.NumVertices
	ne := len(h.Edges)
	if nv == 0 {
		return 0, make([]float64, ne), nil
	}
	covered := make([]bool, nv)
	for ei, e := range h.Edges {
		for _, v := range e {
			if v < 0 || v >= nv {
				return 0, nil, fmt.Errorf("lp: edge %d contains vertex %d out of range [0,%d)", ei, v, nv)
			}
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return 0, nil, fmt.Errorf("%w: vertex %d in no edge", ErrInfeasible, v)
		}
	}
	weights := h.Weights
	if weights == nil {
		weights = make([]float64, ne)
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != ne {
		return 0, nil, fmt.Errorf("lp: %d weights for %d edges", len(weights), ne)
	}
	for i, w := range weights {
		if w < 0 {
			return 0, nil, fmt.Errorf("lp: negative edge weight %v at %d", w, i)
		}
	}

	// Packing dual: variables y_v, constraints per edge.
	c := make([]float64, nv)
	for v := 0; v < nv; v++ {
		c[v] = 1
	}
	a := make([][]float64, ne)
	for ei, e := range h.Edges {
		row := make([]float64, nv)
		for _, v := range e {
			row[v] = 1
		}
		a[ei] = row
	}
	sol, err := Maximize(c, a, weights)
	if err != nil {
		return 0, nil, err
	}
	return sol.Value, sol.Dual, nil
}

// CoverFeasible reports whether x is a feasible fractional edge cover of h
// within tolerance.
func CoverFeasible(h Hypergraph, x []float64) bool {
	if len(x) != len(h.Edges) {
		return false
	}
	load := make([]float64, h.NumVertices)
	for ei, e := range h.Edges {
		if x[ei] < -eps {
			return false
		}
		for _, v := range e {
			load[v] += x[ei]
		}
	}
	for _, l := range load {
		if l < 1-1e-6 {
			return false
		}
	}
	return true
}
