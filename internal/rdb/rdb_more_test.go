package rdb

import (
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

func TestRunErrors(t *testing.T) {
	db := pizzeriaDB()
	if _, err := New().Run(&query.Query{Relations: []string{"Nope"}}, db); err == nil {
		t.Error("unknown relation should fail")
	}
	bad := &query.Query{
		Relations:  []string{"Orders"},
		Equalities: []query.Equality{{A: "customer", B: "ghost"}},
	}
	if _, err := New().Run(bad, db); err == nil {
		t.Error("equality with unknown attribute should fail")
	}
	badAgg := &query.Query{
		Relations:  []string{"Orders"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "ghost", As: "s"}},
	}
	if _, err := New().Run(badAgg, db); err == nil {
		t.Error("aggregate over unknown attribute should fail")
	}
	for _, eager := range []bool{false, true} {
		badGroup := &query.Query{
			Relations:  []string{"Orders"},
			GroupBy:    []string{"ghost"},
			Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		}
		if _, err := (&Engine{Eager: eager}).Run(badGroup, db); err == nil {
			t.Errorf("eager=%v: group-by unknown attribute should fail", eager)
		}
	}
}

func TestOrderByAggregateOutput(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations: []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{
			{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"},
		},
		GroupBy:    []string{"pizza"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		OrderBy:    []query.OrderItem{{Attr: "n", Desc: true}, {Attr: "pizza"}},
	}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Capricciosa and Hawaii both 6 rows, Margherita 1; ties by name.
	if got.Tuples[0][0].Str() != "Capricciosa" || got.Tuples[2][0].Str() != "Margherita" {
		t.Errorf("order wrong: %v", got.Tuples)
	}
}

func TestHavingOnMissingOutput(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations:  []string{"Orders"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		Having:     []query.Filter{{Attr: "n", Op: fops.GT, Const: iv(1)}},
	}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Only Mario has more than one order.
	if got.Cardinality() != 1 || got.Tuples[0][0].Str() != "Mario" {
		t.Errorf("having result: %v", got)
	}
}

func TestEagerMinMaxOnly(t *testing.T) {
	// Eager plans with min/max only (no counts needed in the combine).
	db := pizzeriaDB()
	q := &query.Query{
		Relations: []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{
			{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"},
		},
		GroupBy: []string{"customer"},
		Aggregates: []query.Aggregate{
			{Fn: query.Min, Arg: "price", As: "lo"},
			{Fn: query.Max, Arg: "price", As: "hi"},
		},
	}
	lazy, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := (&Engine{Eager: true}).Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(lazy, eager) {
		t.Errorf("min/max lazy vs eager mismatch:\n%v\nvs\n%v", lazy, eager)
	}
}

func TestLimitLargerThanResult(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations: []string{"Orders"},
		OrderBy:   []query.OrderItem{{Attr: "customer"}},
		Limit:     1000,
	}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 5 {
		t.Errorf("limit larger than result should return all rows, got %d", got.Cardinality())
	}
}
