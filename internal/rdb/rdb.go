// Package rdb implements the relational baseline engine of Experiment 5:
// a basic main-memory row engine with hash joins, std-sort sorting,
// sort-based grouping ("SQLite-style") and hash-based grouping
// ("PostgreSQL-style"), evaluating the same query model as the FDB engine
// on flat relations.
//
// Two aggregation strategies are provided: lazy (aggregate after all
// joins — the default plans of the engines the paper benchmarks) and
// eager (Yan–Larson partial aggregation pushed below joins — the paper's
// manually optimised "man" plans).
package rdb

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// GroupMode selects the grouping implementation.
type GroupMode uint8

// Grouping implementations.
const (
	// GroupSort sorts by the grouping attributes and aggregates in one
	// scan (SQLite-style).
	GroupSort GroupMode = iota
	// GroupHash aggregates into a hash table (PostgreSQL-style).
	GroupHash
)

// Engine is the relational baseline.
type Engine struct {
	// Grouping selects sort- or hash-based aggregation.
	Grouping GroupMode
	// Eager enables Yan–Larson eager partial aggregation below joins
	// (the paper's manually optimised plans).
	Eager bool
}

// New returns a lazy sort-grouping engine.
func New() *Engine { return &Engine{} }

// DB is a catalogue of named flat relations.
type DB map[string]*relation.Relation

// Run evaluates the query and returns the result relation in output
// order (ordering and limit applied).
func (e *Engine) Run(q *query.Query, db DB) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	inputs := make([]*relation.Relation, len(q.Relations))
	for i, name := range q.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, fmt.Errorf("rdb: unknown relation %q", name)
		}
		inputs[i] = rel
	}
	// Push constant selections to the inputs.
	inputs = pushFilters(inputs, q.Filters)

	var joined *relation.Relation
	var err error
	if q.IsAggregate() && e.Eager {
		return e.runEager(q, inputs)
	}
	joined, err = joinAll(inputs, q.Equalities)
	if err != nil {
		return nil, err
	}
	if q.IsAggregate() {
		out, err := e.aggregate(joined, q.GroupBy, q.Aggregates)
		if err != nil {
			return nil, err
		}
		return finish(out, q)
	}
	// SPJ: projection with set semantics.
	out := joined
	if len(q.Projection) > 0 {
		out, err = joined.Project(q.Projection...)
		if err != nil {
			return nil, err
		}
	}
	return finish(out, q)
}

// pushFilters applies each constant selection to every input relation
// containing its attribute; filters whose attribute appears nowhere cause
// an error at join time via validation in finish.
func pushFilters(inputs []*relation.Relation, filters []query.Filter) []*relation.Relation {
	out := make([]*relation.Relation, len(inputs))
	copy(out, inputs)
	for _, f := range filters {
		for i, rel := range out {
			col := rel.ColIndex(f.Attr)
			if col < 0 {
				continue
			}
			ff := f
			cc := col
			out[i] = rel.Select(func(t relation.Tuple) bool {
				return ff.Op.Holds(t[cc], ff.Const)
			})
		}
	}
	return out
}

// joinAll folds the inputs with hash equi-joins driven by the equality
// conditions; equalities within one intermediate become filters;
// unconnected inputs are joined by cross product at the end.
func joinAll(inputs []*relation.Relation, eqs []query.Equality) (*relation.Relation, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("rdb: no inputs")
	}
	rels := append([]*relation.Relation{}, inputs...)
	pending := append([]query.Equality{}, eqs...)
	for {
		progress := false
		// Apply equalities local to one relation as filters.
		for i := 0; i < len(pending); {
			e := pending[i]
			local := -1
			for ri, r := range rels {
				if r.HasAttr(e.A) && r.HasAttr(e.B) {
					local = ri
					break
				}
			}
			if local < 0 {
				i++
				continue
			}
			r := rels[local]
			ca, cb := r.ColIndex(e.A), r.ColIndex(e.B)
			rels[local] = r.Select(func(t relation.Tuple) bool {
				return values.Compare(t[ca], t[cb]) == 0
			})
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
		}
		// Join two relations connected by an equality.
		joinedOne := false
		for i := 0; i < len(pending) && !joinedOne; i++ {
			e := pending[i]
			ra, rb := -1, -1
			for ri, r := range rels {
				if r.HasAttr(e.A) {
					ra = ri
				}
				if r.HasAttr(e.B) {
					rb = ri
				}
			}
			if ra < 0 || rb < 0 {
				return nil, fmt.Errorf("rdb: equality %s=%s references unknown attribute", e.A, e.B)
			}
			if ra == rb {
				continue // handled as local filter next round
			}
			j := hashJoin(rels[ra], rels[rb], e.A, e.B)
			// Replace ra, remove rb.
			hi, lo := ra, rb
			if hi < lo {
				hi, lo = lo, hi
			}
			rels[lo] = j
			rels = append(rels[:hi], rels[hi+1:]...)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
			joinedOne = true
		}
		if !progress {
			break
		}
	}
	// Cross product for whatever is left.
	out := rels[0]
	for _, r := range rels[1:] {
		out = crossProduct(out, r)
	}
	return out, nil
}

// hashJoin joins r and s on r.a = s.b (attribute names are globally
// unique, so both columns survive into the output).
func hashJoin(r, s *relation.Relation, a, b string) *relation.Relation {
	ca, cb := r.ColIndex(a), s.ColIndex(b)
	build, probe := r, s
	cBuild, cProbe := ca, cb
	if len(s.Tuples) < len(r.Tuples) {
		build, probe = s, r
		cBuild, cProbe = cb, ca
	}
	ht := make(map[string][]relation.Tuple, len(build.Tuples))
	for _, t := range build.Tuples {
		k := t[cBuild].Key()
		ht[k] = append(ht[k], t)
	}
	attrs := append(append([]string{}, r.Attrs...), s.Attrs...)
	var out []relation.Tuple
	for _, t := range probe.Tuples {
		for _, m := range ht[t[cProbe].Key()] {
			rt, st := t, m
			if build == r {
				rt, st = m, t
			}
			row := make(relation.Tuple, 0, len(attrs))
			row = append(row, rt...)
			row = append(row, st...)
			out = append(out, row)
		}
	}
	return &relation.Relation{Name: r.Name + "⋈" + s.Name, Attrs: attrs, Tuples: out}
}

func crossProduct(r, s *relation.Relation) *relation.Relation {
	attrs := append(append([]string{}, r.Attrs...), s.Attrs...)
	out := make([]relation.Tuple, 0, len(r.Tuples)*len(s.Tuples))
	for _, a := range r.Tuples {
		for _, b := range s.Tuples {
			row := make(relation.Tuple, 0, len(attrs))
			row = append(row, a...)
			row = append(row, b...)
			out = append(out, row)
		}
	}
	return &relation.Relation{Name: r.Name + "×" + s.Name, Attrs: attrs, Tuples: out}
}

// finish applies HAVING, ORDER BY, OFFSET and LIMIT.
func finish(rel *relation.Relation, q *query.Query) (*relation.Relation, error) {
	out := rel
	if len(q.Having) > 0 {
		for _, h := range q.Having {
			col := out.ColIndex(h.Attr)
			if col < 0 {
				return nil, fmt.Errorf("rdb: HAVING references unknown output %q", h.Attr)
			}
			hh := h
			cc := col
			out = out.Select(func(t relation.Tuple) bool {
				return hh.Op.Holds(t[cc], hh.Const)
			})
		}
	}
	if len(q.OrderBy) > 0 {
		keys := make([]relation.OrderKey, len(q.OrderBy))
		for i, o := range q.OrderBy {
			keys[i] = relation.OrderKey{Attr: o.Attr, Desc: o.Desc}
		}
		out = out.Clone()
		if err := out.Sort(keys...); err != nil {
			return nil, err
		}
	}
	if q.Offset > 0 || (q.Limit > 0 && q.Limit < len(out.Tuples)) {
		tuples := out.Tuples
		if q.Offset >= len(tuples) {
			tuples = nil
		} else {
			tuples = tuples[q.Offset:]
		}
		if q.Limit > 0 && q.Limit < len(tuples) {
			tuples = tuples[:q.Limit]
		}
		out = &relation.Relation{Name: out.Name, Attrs: out.Attrs, Tuples: tuples}
	}
	return out, nil
}

// accum accumulates one group's aggregates.
type accum struct {
	groupVals relation.Tuple
	count     int64
	sums      []values.Value
	mins      []values.Value
	maxs      []values.Value
}

// aggregate groups rel by the attributes in groupBy and computes the
// aggregates, using sort- or hash-based grouping per the engine mode.
func (e *Engine) aggregate(rel *relation.Relation, groupBy []string, aggs []query.Aggregate) (*relation.Relation, error) {
	gIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		gIdx[i] = rel.ColIndex(g)
		if gIdx[i] < 0 {
			return nil, fmt.Errorf("rdb: group-by attribute %q not found", g)
		}
	}
	aIdx := make([]int, len(aggs))
	for i, a := range aggs {
		aIdx[i] = -1
		if a.Arg != "" {
			aIdx[i] = rel.ColIndex(a.Arg)
			if aIdx[i] < 0 {
				return nil, fmt.Errorf("rdb: aggregate argument %q not found", a.Arg)
			}
		}
	}

	var groups []*accum
	if e.Grouping == GroupHash {
		ht := map[string]*accum{}
		var kb []byte
		for _, t := range rel.Tuples {
			kb = kb[:0]
			for _, j := range gIdx {
				kb = t[j].AppendKey(kb)
			}
			g := ht[string(kb)]
			if g == nil {
				g = newAccum(t, gIdx, len(aggs))
				ht[string(kb)] = g
				groups = append(groups, g)
			}
			g.update(t, aggs, aIdx)
		}
	} else {
		// Sort-based grouping: sort a copy by the group attributes, then
		// aggregate runs in one scan.
		sorted := make([]relation.Tuple, len(rel.Tuples))
		copy(sorted, rel.Tuples)
		sort.SliceStable(sorted, func(x, y int) bool {
			for _, j := range gIdx {
				c := values.Compare(sorted[x][j], sorted[y][j])
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		var cur *accum
		for _, t := range sorted {
			if cur == nil || !sameGroup(cur.groupVals, t, gIdx) {
				cur = newAccum(t, gIdx, len(aggs))
				groups = append(groups, cur)
			}
			cur.update(t, aggs, aIdx)
		}
	}
	if len(groupBy) == 0 && len(groups) == 0 {
		// Global aggregate over the empty relation: one row.
		groups = append(groups, &accum{
			groupVals: relation.Tuple{},
			sums:      make([]values.Value, len(aggs)),
			mins:      make([]values.Value, len(aggs)),
			maxs:      make([]values.Value, len(aggs)),
		})
	}

	attrs := append([]string{}, groupBy...)
	for _, a := range aggs {
		attrs = append(attrs, a.OutName())
	}
	out := make([]relation.Tuple, 0, len(groups))
	for _, g := range groups {
		row := make(relation.Tuple, 0, len(attrs))
		row = append(row, g.groupVals...)
		for i, a := range aggs {
			row = append(row, g.value(i, a))
		}
		out = append(out, row)
	}
	return relation.New("agg", attrs, out)
}

func newAccum(t relation.Tuple, gIdx []int, nAggs int) *accum {
	g := &accum{
		groupVals: make(relation.Tuple, len(gIdx)),
		sums:      make([]values.Value, nAggs),
		mins:      make([]values.Value, nAggs),
		maxs:      make([]values.Value, nAggs),
	}
	for i, j := range gIdx {
		g.groupVals[i] = t[j]
	}
	return g
}

func sameGroup(gv relation.Tuple, t relation.Tuple, gIdx []int) bool {
	for i, j := range gIdx {
		if values.Compare(gv[i], t[j]) != 0 {
			return false
		}
	}
	return true
}

func (g *accum) update(t relation.Tuple, aggs []query.Aggregate, aIdx []int) {
	g.count++
	for i, a := range aggs {
		switch a.Fn {
		case query.Sum, query.Avg:
			g.sums[i] = values.Add(g.sums[i], t[aIdx[i]])
		case query.Min:
			g.mins[i] = values.Min(g.mins[i], t[aIdx[i]])
		case query.Max:
			g.maxs[i] = values.Max(g.maxs[i], t[aIdx[i]])
		}
	}
}

func (g *accum) value(i int, a query.Aggregate) values.Value {
	switch a.Fn {
	case query.Count:
		return values.NewInt(g.count)
	case query.Sum:
		return g.sums[i]
	case query.Min:
		return g.mins[i]
	case query.Max:
		return g.maxs[i]
	case query.Avg:
		if g.count == 0 || g.sums[i].IsNull() {
			return values.NullValue()
		}
		return values.Div(g.sums[i], values.NewInt(g.count))
	default:
		return values.NullValue()
	}
}
