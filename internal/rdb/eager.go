package rdb

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// runEager implements Yan–Larson eager aggregation (the paper's manually
// optimised plans): each input relation is pre-aggregated — grouped by
// its join attributes plus its group-by attributes, computing a row count
// and partial sums/mins/maxes for the aggregate arguments it owns — then
// the partials are joined and combined: counts multiply across inputs,
// sums scale by the counts of the other inputs, min/max pass through.
func (e *Engine) runEager(q *query.Query, inputs []*relation.Relation) (*relation.Relation, error) {
	// Apply equalities local to a single input as filters first.
	eqs := append([]query.Equality{}, q.Equalities...)
	for i := 0; i < len(eqs); {
		eq := eqs[i]
		local := false
		for ri, r := range inputs {
			if r.HasAttr(eq.A) && r.HasAttr(eq.B) {
				ca, cb := r.ColIndex(eq.A), r.ColIndex(eq.B)
				inputs[ri] = r.Select(func(t relation.Tuple) bool {
					return values.Compare(t[ca], t[cb]) == 0
				})
				local = true
				break
			}
		}
		if local {
			eqs = append(eqs[:i], eqs[i+1:]...)
		} else {
			i++
		}
	}

	inG := map[string]bool{}
	for _, g := range q.GroupBy {
		inG[g] = true
	}
	joinAttr := map[string]bool{}
	for _, eq := range eqs {
		joinAttr[eq.A] = true
		joinAttr[eq.B] = true
	}

	// ownedBy[k] = input index owning aggregate k's argument (-1 for
	// count).
	ownedBy := make([]int, len(q.Aggregates))
	for k, a := range q.Aggregates {
		ownedBy[k] = -1
		if a.Arg == "" {
			continue
		}
		for ri, r := range inputs {
			if r.HasAttr(a.Arg) {
				ownedBy[k] = ri
				break
			}
		}
		if ownedBy[k] < 0 {
			return nil, fmt.Errorf("rdb: aggregate argument %q not found", a.Arg)
		}
	}

	cntCol := func(i int) string { return fmt.Sprintf("__cnt%d", i) }
	pCol := func(i, k int) string { return fmt.Sprintf("__p%d_%d", i, k) }

	partials := make([]*relation.Relation, len(inputs))
	for i, r := range inputs {
		var keys []string
		for _, a := range r.Attrs {
			if inG[a] || joinAttr[a] {
				keys = append(keys, a)
			}
		}
		aggs := []query.Aggregate{{Fn: query.Count, As: cntCol(i)}}
		for k, a := range q.Aggregates {
			if ownedBy[k] != i {
				continue
			}
			fn := a.Fn
			if fn == query.Avg {
				fn = query.Sum
			}
			if fn == query.Count {
				continue
			}
			aggs = append(aggs, query.Aggregate{Fn: fn, Arg: a.Arg, As: pCol(i, k)})
		}
		p, err := e.aggregate(r, keys, aggs)
		if err != nil {
			return nil, err
		}
		partials[i] = p
	}

	joined, err := joinAll(partials, eqs)
	if err != nil {
		return nil, err
	}

	// Final combination grouped by G.
	gIdx := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		gIdx[i] = joined.ColIndex(g)
		if gIdx[i] < 0 {
			return nil, fmt.Errorf("rdb: group-by attribute %q lost in eager plan", g)
		}
	}
	cIdx := make([]int, len(inputs))
	for i := range inputs {
		cIdx[i] = joined.ColIndex(cntCol(i))
	}
	pIdx := make([]int, len(q.Aggregates))
	for k := range q.Aggregates {
		pIdx[k] = -1
		if ownedBy[k] >= 0 && q.Aggregates[k].Fn != query.Count {
			pIdx[k] = joined.ColIndex(pCol(ownedBy[k], k))
		}
	}

	type acc struct {
		groupVals relation.Tuple
		count     int64
		sums      []values.Value
		mins      []values.Value
		maxs      []values.Value
	}
	update := func(g *acc, t relation.Tuple) {
		rowCnt := int64(1)
		for _, ci := range cIdx {
			rowCnt *= t[ci].Int()
		}
		g.count += rowCnt
		for k, a := range q.Aggregates {
			switch a.Fn {
			case query.Sum, query.Avg:
				other := int64(1)
				for i, ci := range cIdx {
					if i != ownedBy[k] {
						other *= t[ci].Int()
					}
				}
				g.sums[k] = values.Add(g.sums[k], values.MulInt(t[pIdx[k]], other))
			case query.Min:
				g.mins[k] = values.Min(g.mins[k], t[pIdx[k]])
			case query.Max:
				g.maxs[k] = values.Max(g.maxs[k], t[pIdx[k]])
			}
		}
	}
	newAcc := func(t relation.Tuple) *acc {
		g := &acc{
			groupVals: make(relation.Tuple, len(gIdx)),
			sums:      make([]values.Value, len(q.Aggregates)),
			mins:      make([]values.Value, len(q.Aggregates)),
			maxs:      make([]values.Value, len(q.Aggregates)),
		}
		for i, j := range gIdx {
			g.groupVals[i] = t[j]
		}
		return g
	}

	var groups []*acc
	if e.Grouping == GroupHash {
		ht := map[string]*acc{}
		var kb []byte
		for _, t := range joined.Tuples {
			kb = kb[:0]
			for _, j := range gIdx {
				kb = t[j].AppendKey(kb)
			}
			g := ht[string(kb)]
			if g == nil {
				g = newAcc(t)
				ht[string(kb)] = g
				groups = append(groups, g)
			}
			update(g, t)
		}
	} else {
		sorted := make([]relation.Tuple, len(joined.Tuples))
		copy(sorted, joined.Tuples)
		sort.SliceStable(sorted, func(x, y int) bool {
			for _, j := range gIdx {
				c := values.Compare(sorted[x][j], sorted[y][j])
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		var cur *acc
		for _, t := range sorted {
			if cur == nil || !sameGroup(cur.groupVals, t, gIdx) {
				cur = newAcc(t)
				groups = append(groups, cur)
			}
			update(cur, t)
		}
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &acc{
			groupVals: relation.Tuple{},
			sums:      make([]values.Value, len(q.Aggregates)),
			mins:      make([]values.Value, len(q.Aggregates)),
			maxs:      make([]values.Value, len(q.Aggregates)),
		})
	}

	attrs := append([]string{}, q.GroupBy...)
	for _, a := range q.Aggregates {
		attrs = append(attrs, a.OutName())
	}
	rows := make([]relation.Tuple, 0, len(groups))
	for _, g := range groups {
		row := make(relation.Tuple, 0, len(attrs))
		row = append(row, g.groupVals...)
		for k, a := range q.Aggregates {
			switch a.Fn {
			case query.Count:
				row = append(row, values.NewInt(g.count))
			case query.Sum:
				row = append(row, g.sums[k])
			case query.Min:
				row = append(row, g.mins[k])
			case query.Max:
				row = append(row, g.maxs[k])
			case query.Avg:
				if g.count == 0 || g.sums[k].IsNull() {
					row = append(row, values.NullValue())
				} else {
					row = append(row, values.Div(g.sums[k], values.NewInt(g.count)))
				}
			}
		}
		rows = append(rows, row)
	}
	out, err := relation.New("agg", attrs, rows)
	if err != nil {
		return nil, err
	}
	return finish(out, q)
}
