package rdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func iv(i int64) values.Value  { return values.NewInt(i) }
func sv(s string) values.Value { return values.NewString(s) }

func pizzeriaDB() DB {
	return DB{
		"Orders": relation.MustNew("Orders", []string{"customer", "date", "pizza"}, []relation.Tuple{
			{sv("Mario"), sv("Monday"), sv("Capricciosa")},
			{sv("Mario"), sv("Tuesday"), sv("Margherita")},
			{sv("Pietro"), sv("Friday"), sv("Hawaii")},
			{sv("Lucia"), sv("Friday"), sv("Hawaii")},
			{sv("Mario"), sv("Friday"), sv("Capricciosa")},
		}),
		"Pizzas": relation.MustNew("Pizzas", []string{"pizza2", "item"}, []relation.Tuple{
			{sv("Margherita"), sv("base")},
			{sv("Capricciosa"), sv("base")},
			{sv("Capricciosa"), sv("ham")},
			{sv("Capricciosa"), sv("mushrooms")},
			{sv("Hawaii"), sv("base")},
			{sv("Hawaii"), sv("ham")},
			{sv("Hawaii"), sv("pineapple")},
		}),
		"Items": relation.MustNew("Items", []string{"item2", "price"}, []relation.Tuple{
			{sv("base"), iv(6)},
			{sv("ham"), iv(1)},
			{sv("mushrooms"), iv(1)},
			{sv("pineapple"), iv(2)},
		}),
	}
}

func revenueQuery() *query.Query {
	return &query.Query{
		Relations: []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{
			{A: "pizza", B: "pizza2"},
			{A: "item", B: "item2"},
		},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
}

func TestRevenueAllModes(t *testing.T) {
	db := pizzeriaDB()
	q := revenueQuery()
	want := relation.MustNew("want", []string{"customer", "revenue"}, []relation.Tuple{
		{sv("Lucia"), iv(9)},
		{sv("Mario"), iv(22)},
		{sv("Pietro"), iv(9)},
	})
	for _, mode := range []GroupMode{GroupSort, GroupHash} {
		for _, eager := range []bool{false, true} {
			e := &Engine{Grouping: mode, Eager: eager}
			got, err := e.Run(q, db)
			if err != nil {
				t.Fatalf("mode=%d eager=%v: %v", mode, eager, err)
			}
			if !relation.EqualAsSets(got, want) {
				t.Errorf("mode=%d eager=%v:\n%v\nwant\n%v", mode, eager, got, want)
			}
			// Order check.
			if got.Tuples[0][0].Str() != "Lucia" || got.Tuples[2][0].Str() != "Pietro" {
				t.Errorf("mode=%d eager=%v: wrong order: %v", mode, eager, got)
			}
		}
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations: []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{
			{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"},
		},
		Aggregates: []query.Aggregate{
			{Fn: query.Count, As: "n"},
			{Fn: query.Sum, Arg: "price", As: "total"},
			{Fn: query.Min, Arg: "price", As: "lo"},
			{Fn: query.Max, Arg: "price", As: "hi"},
			{Fn: query.Avg, Arg: "price", As: "mean"},
		},
	}
	for _, eager := range []bool{false, true} {
		e := &Engine{Eager: eager}
		got, err := e.Run(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cardinality() != 1 {
			t.Fatalf("eager=%v: want 1 row, got %d", eager, got.Cardinality())
		}
		row := got.Tuples[0]
		if row[0].Int() != 13 || row[1].Int() != 40 || row[2].Int() != 1 || row[3].Int() != 6 {
			t.Errorf("eager=%v: row = %v", eager, row)
		}
		if d := row[4].Float() - 40.0/13.0; d > 1e-9 || d < -1e-9 {
			t.Errorf("eager=%v: avg = %v", eager, row[4])
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := DB{"E": relation.MustNew("E", []string{"x"}, nil)}
	q := &query.Query{
		Relations:  []string{"E"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Arg: "x", As: "s"}},
	}
	for _, eager := range []bool{false, true} {
		got, err := (&Engine{Eager: eager}).Run(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cardinality() != 1 || got.Tuples[0][0].Int() != 0 || !got.Tuples[0][1].IsNull() {
			t.Errorf("eager=%v: %v", eager, got)
		}
	}
}

func TestFiltersHavingLimit(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations: []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{
			{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"},
		},
		Filters:    []query.Filter{{Attr: "price", Op: fops.GT, Const: iv(1)}},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "rev"}},
		Having:     []query.Filter{{Attr: "rev", Op: fops.GE, Const: iv(12)}},
		OrderBy:    []query.OrderItem{{Attr: "rev", Desc: true}},
		Limit:      1,
	}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// price>1: base(6) and pineapple(2) only. Mario: Capricciosa 6×2 +
	// Margherita 6 = 18; Lucia/Pietro: Hawaii 6+2 = 8. HAVING ≥12 keeps
	// Mario; limit 1.
	if got.Cardinality() != 1 || got.Tuples[0][0].Str() != "Mario" || got.Tuples[0][1].Int() != 18 {
		t.Errorf("got %v", got)
	}
}

func TestSPJProjectionOrder(t *testing.T) {
	db := pizzeriaDB()
	q := &query.Query{
		Relations:  []string{"Orders"},
		Projection: []string{"pizza", "customer"},
		OrderBy:    []query.OrderItem{{Attr: "pizza"}, {Attr: "customer", Desc: true}},
	}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct (pizza, customer) pairs: 4.
	if got.Cardinality() != 4 {
		t.Fatalf("cardinality = %d, want 4", got.Cardinality())
	}
	if got.Tuples[0][0].Str() != "Capricciosa" {
		t.Errorf("first pizza = %v", got.Tuples[0][0])
	}
}

func TestCrossProductFallback(t *testing.T) {
	db := DB{
		"A": relation.MustNew("A", []string{"x"}, []relation.Tuple{{iv(1)}, {iv(2)}}),
		"B": relation.MustNew("B", []string{"y"}, []relation.Tuple{{iv(3)}}),
	}
	q := &query.Query{Relations: []string{"A", "B"}}
	got, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 2 {
		t.Errorf("cross product = %d rows, want 2", got.Cardinality())
	}
}

func TestLocalEqualityFilter(t *testing.T) {
	db := DB{
		"R": relation.MustNew("R", []string{"a", "b"}, []relation.Tuple{
			{iv(1), iv(1)}, {iv(1), iv(2)}, {iv(3), iv(3)},
		}),
	}
	q := &query.Query{
		Relations:  []string{"R"},
		Equalities: []query.Equality{{A: "a", B: "b"}},
		GroupBy:    nil,
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
	}
	for _, eager := range []bool{false, true} {
		got, err := (&Engine{Eager: eager}).Run(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tuples[0][0].Int() != 2 {
			t.Errorf("eager=%v: count = %v, want 2", eager, got.Tuples[0][0])
		}
	}
}

// Property: lazy and eager, sort and hash grouping all agree on random
// star joins.
func TestModesAgreeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name string, attrs []string, n, dom int) *relation.Relation {
			ts := make([]relation.Tuple, n)
			for i := range ts {
				tp := make(relation.Tuple, len(attrs))
				for j := range tp {
					tp[j] = iv(int64(rng.Intn(dom)))
				}
				ts[i] = tp
			}
			return relation.MustNew(name, attrs, ts)
		}
		db := DB{
			"R": mk("R", []string{"a", "b"}, 1+rng.Intn(25), 4),
			"S": mk("S", []string{"b2", "c"}, 1+rng.Intn(25), 4),
			"T": mk("T", []string{"c2", "d"}, 1+rng.Intn(25), 4),
		}
		q := &query.Query{
			Relations:  []string{"R", "S", "T"},
			Equalities: []query.Equality{{A: "b", B: "b2"}, {A: "c", B: "c2"}},
			GroupBy:    []string{"a"},
			Aggregates: []query.Aggregate{
				{Fn: query.Count, As: "n"},
				{Fn: query.Sum, Arg: "d", As: "s"},
				{Fn: query.Min, Arg: "d", As: "lo"},
				{Fn: query.Max, Arg: "c", As: "hi"},
				{Fn: query.Avg, Arg: "d", As: "m"},
			},
		}
		var results []*relation.Relation
		for _, mode := range []GroupMode{GroupSort, GroupHash} {
			for _, eager := range []bool{false, true} {
				got, err := (&Engine{Grouping: mode, Eager: eager}).Run(q, db)
				if err != nil {
					return false
				}
				results = append(results, got)
			}
		}
		for _, r := range results[1:] {
			if !relation.EqualAsSets(results[0], r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
