package cluster

import (
	"fmt"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/sql"
)

// mode is how the coordinator executes one query shape.
type mode int

const (
	// modeLocal runs the query against the coordinator's own full
	// catalogue: the query is not distributable (joins, unknown or
	// replicated-only relations, projections that drop the partition
	// attribute).
	modeLocal mode = iota
	// modeStream fans a non-aggregate query out and k-way merges the
	// shard row streams in serial output order; rows flow end to end
	// with O(shards) buffering.
	modeStream
	// modeGroupStream fans an aggregate query out and merges shard
	// group rows on the fly: streams arrive sorted by group key, so
	// groups straddling a shard boundary meet at the merge front and
	// their partials fold with the engine's merge algebra before the
	// finalised row is emitted.
	modeGroupStream
	// modeBuffered is modeGroupStream plus a coordinator-side sort:
	// ORDER BY references an aggregate output, whose value is not known
	// until every shard's contribution has merged, so rows buffer at
	// the coordinator, sort stably over the serial base order, and then
	// obey HAVING/OFFSET/LIMIT.
	modeBuffered
)

func (m mode) String() string {
	switch m {
	case modeLocal:
		return "local"
	case modeStream:
		return "stream"
	case modeGroupStream:
		return "group-stream"
	case modeBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// keyCol is one comparator component: a shard-row column index and its
// direction.
type keyCol struct {
	col  int
	desc bool
}

// strategy is the compiled distribution plan for one query: the
// rewritten SQL shards execute, the comparator that makes a k-way merge
// of their streams reproduce serial output order, the partial-merge
// algebra for aggregate columns, and the clauses (HAVING, ORDER BY on
// aggregates, OFFSET, LIMIT) held back for the coordinator.
type strategy struct {
	mode     mode
	shardSQL string       // rendered shard query (modes other than local)
	shardQ   *query.Query // the shard query, kept for failover resume rewrites

	// columns is the output header; empty means adopt the first shard's
	// header verbatim (SELECT *).
	columns []string

	// nGroup is the number of leading group-key columns in a shard row
	// (aggregate modes); the remaining columns are aggregate partials.
	nGroup int
	// fields is the merge algebra for shard aggregate columns, aligned
	// with shard row columns nGroup..nGroup+len(fields).
	fields []ftree.AggField
	// outAggs maps each output aggregate column to its shard partial
	// columns: for AVG, sum and cnt (indices into fields); otherwise
	// sum holds the single partial and cnt is -1.
	outAggs []partialRef

	// cmp orders shard rows for the k-way merge; ties broken by shard
	// index reproduce the serial stable sort.
	cmp []keyCol

	// Coordinator-side clauses.
	having    []query.Filter
	havingCol []int // output-column index of each having attribute
	orderBy   []keyCol
	limit     int // 0 = unlimited
	offset    int
	pushdown  int // LIMIT pushed to shards (0 = none)
}

// partialRef locates an output aggregate's shard partial columns.
type partialRef struct {
	sum, cnt int // indices into strategy.fields; cnt >= 0 only for AVG
}

// planStrategy compiles a parsed query against the shard manifest. A
// query distributes when it reads exactly one relation, that relation
// is range-partitioned, and (for non-aggregates) the output either
// keeps all columns or retains the partition attribute — the condition
// under which per-shard projection dedup equals global dedup and shard
// streams interleave back into serial order. Everything else falls back
// to local execution.
func planStrategy(q *query.Query, man *catalog.ShardManifest) (*strategy, error) {
	local := &strategy{mode: modeLocal}
	if man == nil || len(q.Relations) != 1 || len(q.Equalities) != 0 {
		return local, nil
	}
	sr := man.Rel(q.Relations[0])
	if sr == nil || sr.Partition == "" {
		return local, nil
	}
	if q.IsAggregate() {
		return planAggregate(q, sr)
	}
	return planScan(q, sr)
}

// planScan compiles a non-aggregate query. The engine answers an
// ordered scan by restructuring the relation's f-tree: ORDER BY
// attributes hoist to the front (in the requested order), the remaining
// attributes follow in relation order, and rows stream fully
// lex-sorted over that whole sequence — for SELECT * the output columns
// themselves arrive in this tree order. A projection keeps its own
// column order and dedups in enumeration order, so its visible stream
// is a total lex order only when the projected set is a prefix of the
// tree order; anything else (and any projection dropping the partition
// attribute, where per-shard dedup no longer equals global dedup) falls
// back to local execution.
func planScan(q *query.Query, sr *catalog.ShardRelation) (*strategy, error) {
	local := &strategy{mode: modeLocal}
	// The restructured tree order with each component's direction.
	type pathKey struct {
		attr string
		desc bool
	}
	keys := make([]pathKey, 0, len(sr.Attrs))
	seen := make(map[string]bool, len(sr.Attrs))
	for _, o := range q.OrderBy {
		if colIndex(sr.Attrs, o.Attr) < 0 {
			return local, nil
		}
		if seen[o.Attr] {
			continue
		}
		seen[o.Attr] = true
		keys = append(keys, pathKey{o.Attr, o.Desc})
	}
	for _, a := range sr.Attrs {
		if !seen[a] {
			keys = append(keys, pathKey{attr: a})
		}
	}
	cols := q.OutputAttrs() // empty for SELECT *
	st := &strategy{
		mode:    modeStream,
		columns: cols,
		limit:   q.Limit,
		offset:  q.Offset,
	}
	if len(cols) == 0 {
		// SELECT *: shard rows arrive in tree order; compare every
		// column left to right.
		for i, k := range keys {
			st.cmp = append(st.cmp, keyCol{col: i, desc: k.desc})
		}
	} else {
		if colIndex(cols, sr.Partition) < 0 {
			return local, nil
		}
		// Prefix check: each leading tree-order attribute must be
		// projected, and the comparator walks them in tree order at
		// their projected positions.
		for _, k := range keys[:len(cols)] {
			c := colIndex(cols, k.attr)
			if c < 0 {
				return local, nil
			}
			st.cmp = append(st.cmp, keyCol{col: c, desc: k.desc})
		}
	}
	sq := *q
	sq.Offset = 0
	sq.Limit = 0
	if q.Limit > 0 {
		sq.Limit = q.Limit + q.Offset
		st.pushdown = sq.Limit
	}
	st.shardQ = &sq
	st.shardSQL = sql.Render(&sq)
	return st, nil
}

// planAggregate compiles an aggregate query: shard rows carry group
// keys plus mergeable partials (AVG ships as SUM and COUNT and is
// finalised with the engine's own division), HAVING always applies at
// the coordinator (a group straddling shards has no final value until
// its partials meet), and ORDER BY on an aggregate output forces the
// buffered mode.
func planAggregate(q *query.Query, sr *catalog.ShardRelation) (*strategy, error) {
	aggOut := make(map[string]bool, len(q.Aggregates))
	for _, a := range q.Aggregates {
		aggOut[a.OutName()] = true
	}
	buffered := false
	for _, o := range q.OrderBy {
		if aggOut[o.Attr] {
			buffered = true
		}
	}

	// Shard aggregate list: originals with AVG replaced by a SUM in
	// place, plus one trailing COUNT(*) per AVG, so non-AVG columns keep
	// their positions.
	shardAggs := make([]query.Aggregate, 0, len(q.Aggregates))
	outAggs := make([]partialRef, len(q.Aggregates))
	for i, a := range q.Aggregates {
		if a.Fn == query.Avg {
			shardAggs = append(shardAggs, query.Aggregate{
				Fn: query.Sum, Arg: a.Arg, As: fmt.Sprintf("__avg%d_sum", i),
			})
		} else {
			shardAggs = append(shardAggs, a)
		}
		outAggs[i] = partialRef{sum: i, cnt: -1}
	}
	for i, a := range q.Aggregates {
		if a.Fn == query.Avg {
			outAggs[i].cnt = len(shardAggs)
			shardAggs = append(shardAggs, query.Aggregate{
				Fn: query.Count, As: fmt.Sprintf("__avg%d_cnt", i),
			})
		}
	}
	fields, err := engine.PartialFields(shardAggs)
	if err != nil {
		return nil, err
	}

	st := &strategy{
		columns: q.OutputAttrs(),
		nGroup:  len(q.GroupBy),
		fields:  fields,
		outAggs: outAggs,
		having:  q.Having,
		limit:   q.Limit,
		offset:  q.Offset,
	}
	for _, h := range q.Having {
		c := colIndex(st.columns, h.Attr)
		if c < 0 {
			return &strategy{mode: modeLocal}, nil
		}
		st.havingCol = append(st.havingCol, c)
	}

	base := plan.GroupOutputOrder(q) // serial lex base order of group rows
	sq := *q
	sq.Aggregates = shardAggs
	sq.Having = nil
	sq.Offset = 0
	sq.Limit = 0
	if buffered {
		st.mode = modeBuffered
		// Shards stream in the serial base order — GroupOutputOrder of
		// the original query, requested explicitly as an ascending ORDER
		// BY so the shard's own output order matches the merge comparator
		// even when the original ORDER BY mixes aggregate aliases with
		// group attributes. The coordinator merges in that base order and
		// then stable-sorts by the full ORDER BY, which reproduces the
		// serial stable sort over the same base.
		sq.OrderBy = nil
		for _, g := range base {
			sq.OrderBy = append(sq.OrderBy, query.OrderItem{Attr: g})
			st.cmp = append(st.cmp, keyCol{col: colIndex(st.columns, g)})
		}
		for _, o := range q.OrderBy {
			st.orderBy = append(st.orderBy, keyCol{col: colIndex(st.columns, o.Attr), desc: o.Desc})
		}
	} else {
		st.mode = modeGroupStream
		// Shard output order = stable sort by ORDER BY over the base,
		// which totals to: ORDER BY keys first, then the remaining base
		// attributes ascending.
		seen := make(map[int]bool)
		for _, o := range q.OrderBy {
			c := colIndex(st.columns, o.Attr)
			st.cmp = append(st.cmp, keyCol{col: c, desc: o.Desc})
			seen[c] = true
		}
		for _, g := range base {
			if c := colIndex(st.columns, g); !seen[c] {
				st.cmp = append(st.cmp, keyCol{col: c})
				seen[c] = true
			}
		}
		if q.Limit > 0 && len(q.Having) == 0 {
			// k+m merged groups consume at most k+m groups per stream.
			sq.Limit = q.Limit + q.Offset
			st.pushdown = sq.Limit
		}
	}
	st.shardQ = &sq
	st.shardSQL = sql.Render(&sq)
	return st, nil
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// resumeSQL renders the shard query adjusted to resume a broken stream
// after consumed rows have already been delivered: the replica seeks
// straight to the next row through the ranked OFFSET path, so failover
// costs O(log n), not a re-scan.
func (st *strategy) resumeSQL(consumed int) string {
	if consumed == 0 {
		return st.shardSQL
	}
	rq := *st.shardQ
	rq.Offset = consumed
	if st.pushdown > 0 {
		rq.Limit = st.pushdown - consumed
	}
	return sql.Render(&rq)
}
