package cluster

// The stitcher: k-way merges shard row streams back into serial output
// order. The invariant the whole cluster package exists to uphold is
// that a distributed query's byte stream equals the serial server's:
// rows forward the exact bytes a shard produced (wire.Row keeps raw
// JSON), aggregate partials fold with the engine's own merge algebra,
// and ties across shards break by shard index — which under contiguous
// ascending partition ranges is exactly the serial enumeration order.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/wire"
)

// parseVal decodes one raw JSON column value into an engine value, the
// inverse of the server's GoValue encoding. Numbers without a fraction
// or exponent decode as Int — matching how integer-valued results
// encode — so merge arithmetic and comparisons run in the same domain
// the serial engine used.
func parseVal(raw json.RawMessage) (values.Value, error) {
	t := bytes.TrimSpace(raw)
	if len(t) == 0 {
		return values.Value{}, fmt.Errorf("cluster: empty column value")
	}
	switch t[0] {
	case '"':
		var s string
		if err := json.Unmarshal(t, &s); err != nil {
			return values.Value{}, err
		}
		return values.NewString(s), nil
	case 't', 'f':
		var b bool
		if err := json.Unmarshal(t, &b); err != nil {
			return values.Value{}, err
		}
		return values.NewBool(b), nil
	case 'n':
		if !bytes.Equal(t, []byte("null")) {
			return values.Value{}, fmt.Errorf("cluster: bad value %q", t)
		}
		return values.NullValue(), nil
	case '[':
		var elems []json.RawMessage
		if err := json.Unmarshal(t, &elems); err != nil {
			return values.Value{}, err
		}
		vs := make([]values.Value, len(elems))
		for i, e := range elems {
			v, err := parseVal(e)
			if err != nil {
				return values.Value{}, err
			}
			vs[i] = v
		}
		return values.NewVec(vs), nil
	default:
		if !bytes.ContainsAny(t, ".eE") {
			var i int64
			if err := json.Unmarshal(t, &i); err == nil {
				return values.NewInt(i), nil
			}
		}
		var f float64
		if err := json.Unmarshal(t, &f); err != nil {
			return values.Value{}, fmt.Errorf("cluster: bad value %q: %w", t, err)
		}
		return values.NewFloat(f), nil
	}
}

// mrow is one shard row staged at the merge front: the raw bytes to
// forward, the parsed comparator key, and (aggregate modes) the parsed
// partial columns ready for the merge algebra.
type mrow struct {
	raw      wire.Row
	key      []values.Value
	partials []values.Value
	shard    int
}

func newMrow(st *strategy, row wire.Row, shard int) (*mrow, error) {
	if st.mode != modeStream {
		if want := st.nGroup + len(st.fields); len(row) != want {
			return nil, fmt.Errorf("cluster: shard %d row has %d columns, want %d", shard, len(row), want)
		}
	}
	mr := &mrow{raw: row, shard: shard, key: make([]values.Value, len(st.cmp))}
	for j, k := range st.cmp {
		if k.col < 0 || k.col >= len(row) {
			return nil, fmt.Errorf("cluster: shard %d row has no column %d", shard, k.col)
		}
		v, err := parseVal(row[k.col])
		if err != nil {
			return nil, err
		}
		mr.key[j] = v
	}
	if st.mode != modeStream {
		mr.partials = make([]values.Value, len(st.fields))
		for j := range st.fields {
			v, err := parseVal(row[st.nGroup+j])
			if err != nil {
				return nil, err
			}
			mr.partials[j] = v
		}
	}
	return mr, nil
}

// less orders merge-front rows: comparator keys first (respecting
// direction), then shard index — which reproduces the serial order
// because equal keys across shards can only arise from rows the serial
// enumeration would emit in partition-range (= shard) order.
func (st *strategy) less(a, b *mrow) bool {
	for j, k := range st.cmp {
		c := values.Compare(a.key[j], b.key[j])
		if k.desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return a.shard < b.shard
}

// sameKey reports whether two merge-front rows carry the same group key.
func (st *strategy) sameKey(a, b *mrow) bool {
	for j := range st.cmp {
		if values.Compare(a.key[j], b.key[j]) != 0 {
			return false
		}
	}
	return true
}

// merger holds one open shard stream per shard plus the staged head row
// of each; memory is O(shards), not O(result).
type merger struct {
	st      *strategy
	streams []*shardStream
	heads   []*mrow
}

// refill advances stream i to its next row (nil head = exhausted).
func (m *merger) refill(i int) error {
	m.heads[i] = nil
	row, err := m.streams[i].next()
	if err != nil || row == nil {
		return err
	}
	mr, err := newMrow(m.st, row, i)
	if err != nil {
		return err
	}
	m.heads[i] = mr
	return nil
}

// prime opens every shard stream and stages its first row. An error
// here happens before the response header is committed, so it can still
// travel as an HTTP error status.
func (m *merger) prime() error {
	for i := range m.streams {
		if err := m.refill(i); err != nil {
			return err
		}
	}
	return nil
}

// minHead returns the index of the smallest staged row, or -1 when all
// streams are exhausted. Linear scan: shard counts are single digits.
func (m *merger) minHead() int {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || m.st.less(h, m.heads[best]) {
			best = i
		}
	}
	return best
}

func (m *merger) close() {
	for _, ss := range m.streams {
		if ss != nil {
			ss.close()
		}
	}
}

// mergeGroup pops the smallest group from the merge front, folding the
// partials of every shard that contributed a row for it (streams arrive
// sorted by group key, so all contributors are at the front together).
// It returns the finalised output row (group keys forwarded raw from
// the lowest contributing shard, aggregates re-encoded after the merge)
// plus the finalised aggregate values for HAVING and ORDER BY, or a nil
// row when the merge front is empty.
func (m *merger) mergeGroup() ([]json.RawMessage, []values.Value, error) {
	st := m.st
	i := m.minHead()
	if i < 0 {
		return nil, nil, nil
	}
	lead := m.heads[i]
	acc := make([]values.Value, len(st.fields)) // Null: the merge identity
	engine.MergePartialAggRow(st.fields, acc, lead.partials)
	if err := m.refill(i); err != nil {
		return nil, nil, err
	}
	for {
		j := m.minHead()
		if j < 0 || !st.sameKey(m.heads[j], lead) {
			break
		}
		engine.MergePartialAggRow(st.fields, acc, m.heads[j].partials)
		if err := m.refill(j); err != nil {
			return nil, nil, err
		}
	}
	out := make([]json.RawMessage, 0, st.nGroup+len(st.outAggs))
	out = append(out, lead.raw[:st.nGroup]...)
	finals := make([]values.Value, len(st.outAggs))
	for ai, pr := range st.outAggs {
		v := acc[pr.sum]
		if pr.cnt >= 0 {
			v = engine.FinalizeAvg(acc[pr.sum], acc[pr.cnt])
		}
		finals[ai] = v
		b, err := json.Marshal(engine.GoValue(v))
		if err != nil {
			return nil, nil, err
		}
		out = append(out, json.RawMessage(b))
	}
	return out, finals, nil
}

// keep evaluates the coordinator-held HAVING clauses over a group's
// finalised aggregate values.
func (st *strategy) keep(finals []values.Value) bool {
	for i, h := range st.having {
		if !h.Op.Holds(finals[st.havingCol[i]-st.nGroup], h.Const) {
			return false
		}
	}
	return true
}

// sink receives the stitched response. Implementations mirror the
// serial server's two response shapes (streaming NDJSON and buffered
// JSON) byte for byte.
type sink interface {
	// header commits the response header; rows may follow. An error
	// means the client is gone: stop silently, exactly like the serial
	// server mid-stream.
	header(cols []string, cached bool) error
	// row delivers one output row's raw column values.
	row(cols []json.RawMessage) error
	// done terminates the response. errMsg is non-empty when the merge
	// failed after the header was committed.
	done(rowCount int, truncated bool, errMsg string)
}

// emitter applies the coordinator-held OFFSET, LIMIT and row cap to the
// stitched row sequence, mirroring the serial server's accounting:
// limit stops cleanly, the cap marks the response truncated.
type emitter struct {
	snk       sink
	offset    int
	limit     int
	maxRows   int
	skipped   int
	emitted   int
	truncated bool
}

// emit forwards one row, returning false when no further rows are
// wanted; a non-nil error means the sink's client went away.
func (e *emitter) emit(row []json.RawMessage) (bool, error) {
	if e.skipped < e.offset {
		e.skipped++
		return true, nil
	}
	if e.limit > 0 && e.emitted >= e.limit {
		return false, nil
	}
	if e.maxRows > 0 && e.emitted >= e.maxRows {
		e.truncated = true
		return false, nil
	}
	if err := e.snk.row(row); err != nil {
		return false, err
	}
	e.emitted++
	return true, nil
}

// gather fans the compiled strategy out over the shard groups and
// stitches the streams into snk. It returns a non-nil error only for
// failures before the response header was committed (the caller turns
// those into an HTTP error status); later failures travel in the
// trailer, like the serial server's.
func (co *Coordinator) gather(ctx context.Context, st *strategy, db string, cached bool, snk sink) error {
	n := len(co.groups)
	m := &merger{st: st, streams: make([]*shardStream, n), heads: make([]*mrow, n)}
	for i := range m.streams {
		m.streams[i] = &shardStream{co: co, ctx: ctx, shard: i, db: db, st: st}
	}
	defer m.close()
	if err := m.prime(); err != nil {
		return err
	}
	cols := st.columns
	if len(cols) == 0 {
		// SELECT *: adopt a shard's header — identical on every shard,
		// since all shards serve the same schema.
		for _, ss := range m.streams {
			if ss.header.Columns != nil {
				cols = ss.header.Columns
				break
			}
		}
	}
	if err := snk.header(cols, cached); err != nil {
		return nil
	}

	em := &emitter{snk: snk, offset: st.offset, limit: st.limit, maxRows: co.maxRows}
	var streamErr error
loop:
	switch st.mode {
	case modeStream:
		for {
			i := m.minHead()
			if i < 0 {
				break loop
			}
			h := m.heads[i]
			cont, werr := em.emit(h.raw)
			if werr != nil {
				return nil
			}
			if !cont {
				break loop
			}
			if err := m.refill(i); err != nil {
				streamErr = err
				break loop
			}
		}
	case modeGroupStream:
		for {
			out, finals, err := m.mergeGroup()
			if err != nil {
				streamErr = err
				break loop
			}
			if out == nil {
				break loop
			}
			if !st.keep(finals) {
				continue
			}
			cont, werr := em.emit(out)
			if werr != nil {
				return nil
			}
			if !cont {
				break loop
			}
		}
	case modeBuffered:
		type brow struct {
			raw  []json.RawMessage
			sort []values.Value
		}
		var rows []brow
		for {
			out, finals, err := m.mergeGroup()
			if err != nil {
				streamErr = err
				break
			}
			if out == nil {
				break
			}
			if !st.keep(finals) {
				continue
			}
			key := make([]values.Value, len(st.orderBy))
			for j, k := range st.orderBy {
				if k.col < st.nGroup {
					v, err := parseVal(out[k.col])
					if err != nil {
						streamErr = err
						break
					}
					key[j] = v
				} else {
					key[j] = finals[k.col-st.nGroup]
				}
			}
			if streamErr != nil {
				break
			}
			rows = append(rows, brow{raw: out, sort: key})
		}
		if streamErr != nil {
			break loop
		}
		// Rows arrive in the serial base order; a stable sort by the
		// ORDER BY list over that order reproduces the serial stable
		// sort exactly, DESC ties included.
		sort.SliceStable(rows, func(a, b int) bool {
			for j, k := range st.orderBy {
				c := values.Compare(rows[a].sort[j], rows[b].sort[j])
				if k.desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		for _, r := range rows {
			cont, werr := em.emit(r.raw)
			if werr != nil {
				return nil
			}
			if !cont {
				break
			}
		}
	}
	errMsg := ""
	if streamErr != nil {
		errMsg = streamErr.Error()
	}
	snk.done(em.emitted, em.truncated, errMsg)
	return nil
}
