// Package cluster implements the scatter-gather coordinator for
// distributed serving: it partitions a catalogue into per-shard
// snapshots by root-union range (catalog.Split), ships them to shard
// workers over POST /shard/install (Ship), fans each query out over the
// NDJSON wire protocol of docs/PROTOCOL.md, and stitches the shard
// streams back together so the distributed response is byte-identical
// to the serial server's.
//
// The coordinator is itself an http.Handler speaking the same protocol
// as internal/server: POST /query (streaming NDJSON or buffered JSON),
// /healthz, /stats. Queries the distribution planner cannot prove
// shard-safe — joins, projections dropping the partition attribute,
// requests for other databases — replay against a local full-catalogue
// fallback handler, so the coordinator never answers a query wrongly:
// it either distributes with a proof of order preservation or degrades
// to serial execution.
//
// Robustness: every shard query retries across the shard's replicas
// with exponential backoff, a hedge request races a second replica when
// the first is slow to produce its header, replicas that recently
// failed are routed around until a cooldown passes, and a stream torn
// mid-row fails over to another replica, resuming at the exact next
// undelivered row via an OFFSET rewrite (O(log n) through the ranked
// seek path, because replicas serve identical snapshots).
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/server/cache"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/wire"

	"context"
	"encoding/json"
)

// Config configures a Coordinator.
type Config struct {
	// Groups lists, per shard, the base URLs of the replicas serving
	// that shard (e.g. "http://10.0.0.7:8080"). len(Groups) must equal
	// Manifest.Shards and every group needs at least one replica.
	Groups [][]string
	// Manifest describes how the catalogue was partitioned; Ship
	// returns it, and it round-trips through its JSON file form.
	Manifest *catalog.ShardManifest
	// Local serves queries the planner keeps local: joins, other
	// databases, non-distributable shapes. Typically an internal/server
	// Server over the full catalogue. Required.
	Local http.Handler
	// Client issues shard requests; nil uses a default client with no
	// overall timeout (streams are cancelled via request contexts).
	Client *http.Client
	// MaxRows caps rows per distributed response (marked truncated),
	// mirroring the server option; 0 means unlimited.
	MaxRows int
	// CacheSize bounds the distribution-strategy cache; defaults to 256.
	CacheSize int
	// Retries is the number of additional full replica passes after the
	// first failed one; defaults to 2. Negative disables retries.
	Retries int
	// RetryBackoff is the sleep before the first retry pass, doubling
	// each pass; defaults to 25ms.
	RetryBackoff time.Duration
	// HedgeDelay is how long the first replica may stay silent before a
	// hedge request races a second one; 0 picks the 150ms default,
	// negative disables hedging.
	HedgeDelay time.Duration
}

// ShardStat is one shard's fan-out accounting in the /stats response.
type ShardStat struct {
	Replicas  []string `json:"replicas"`
	Queries   uint64   `json:"queries"`
	Rows      uint64   `json:"rows"`
	Retries   uint64   `json:"retries"`
	Hedges    uint64   `json:"hedges"`
	Failovers uint64   `json:"failovers"`
}

// StatsResponse is the coordinator's GET /stats body.
type StatsResponse struct {
	Catalog        string      `json:"catalog"`
	Shards         []ShardStat `json:"shards"`
	Queries        uint64      `json:"queries"`
	Distributed    uint64      `json:"distributed"`
	LocalFallbacks uint64      `json:"localFallbacks"`
	StrategyCache  cache.Stats `json:"strategyCache"`
	Draining       bool        `json:"draining,omitempty"`
}

// shardStats is the per-shard atomic counter block behind ShardStat.
type shardStats struct {
	Queries, Rows, Retries, Hedges, Failovers atomic.Uint64
}

// replicaCooldown is how long a replica stays deprioritised after a
// transport failure before it is tried eagerly again.
const replicaCooldown = 3 * time.Second

// Coordinator fans queries out over shard workers and stitches the
// results. Create with New; it implements http.Handler.
type Coordinator struct {
	man        *catalog.ShardManifest
	groups     [][]string
	local      http.Handler
	client     *http.Client
	maxRows    int
	retries    int
	backoff    time.Duration
	hedgeDelay time.Duration
	strategies *cache.LRU
	stats      []shardStats
	mux        *http.ServeMux

	// lastFail maps replica base URL -> time.Time of its most recent
	// transport failure; candidates sorts recently-failed replicas last.
	lastFail sync.Map

	queries        atomic.Uint64
	distributed    atomic.Uint64
	localFallbacks atomic.Uint64

	// Drain bookkeeping, same shape as internal/server: a mutex-guarded
	// in-flight counter (begin may race a waiting Drain, which is the
	// pattern sync.WaitGroup forbids).
	draining atomic.Bool
	drainMu  sync.Mutex
	inflight int
	idle     chan struct{}
}

// New builds a Coordinator from the configuration.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("cluster: no shard manifest")
	}
	if len(cfg.Groups) != cfg.Manifest.Shards {
		return nil, fmt.Errorf("cluster: %d replica groups for %d shards", len(cfg.Groups), cfg.Manifest.Shards)
	}
	for i, g := range cfg.Groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
	}
	if cfg.Local == nil {
		return nil, errors.New("cluster: no local fallback handler")
	}
	co := &Coordinator{
		man:        cfg.Manifest,
		groups:     cfg.Groups,
		local:      cfg.Local,
		client:     cfg.Client,
		maxRows:    cfg.MaxRows,
		retries:    cfg.Retries,
		backoff:    cfg.RetryBackoff,
		hedgeDelay: cfg.HedgeDelay,
		stats:      make([]shardStats, len(cfg.Groups)),
	}
	if co.client == nil {
		co.client = &http.Client{}
	}
	if co.retries == 0 {
		co.retries = 2
	} else if co.retries < 0 {
		co.retries = 0
	}
	if co.backoff == 0 {
		co.backoff = 25 * time.Millisecond
	}
	if co.hedgeDelay == 0 {
		co.hedgeDelay = 150 * time.Millisecond
	} else if co.hedgeDelay < 0 {
		co.hedgeDelay = 0
	}
	size := cfg.CacheSize
	if size == 0 {
		size = 256
	}
	co.strategies = cache.New(size)
	co.mux = http.NewServeMux()
	co.mux.HandleFunc("/query", co.handleQuery)
	co.mux.HandleFunc("/healthz", co.handleHealthz)
	co.mux.HandleFunc("/stats", co.handleStats)
	// Everything else — /exec, /compact, /snapshot — passes through to
	// the local handler, which owns the full catalogue.
	co.mux.Handle("/", cfg.Local)
	return co, nil
}

// ServeHTTP implements http.Handler.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.mux.ServeHTTP(w, r)
}

func (co *Coordinator) shardStat(i int) *shardStats { return &co.stats[i] }

// noteFailure records a transport failure against a replica so routing
// deprioritises it until the cooldown passes.
func (co *Coordinator) noteFailure(base string) {
	co.lastFail.Store(base, time.Now())
}

// candidates returns a shard's replicas, healthy ones first (preserving
// configured order within each class), so retries and failovers land on
// replicas not known to be struggling.
func (co *Coordinator) candidates(shard int) []string {
	grp := co.groups[shard]
	out := make([]string, 0, len(grp))
	var cooling []string
	for _, base := range grp {
		if t, ok := co.lastFail.Load(base); ok && time.Since(t.(time.Time)) < replicaCooldown {
			cooling = append(cooling, base)
			continue
		}
		out = append(out, base)
	}
	return append(out, cooling...)
}

// begin registers an in-flight request unless the coordinator is
// draining; end must be called when it completes.
func (co *Coordinator) begin() bool {
	co.drainMu.Lock()
	defer co.drainMu.Unlock()
	if co.draining.Load() {
		return false
	}
	co.inflight++
	return true
}

func (co *Coordinator) end() {
	co.drainMu.Lock()
	co.inflight--
	if co.inflight == 0 && co.idle != nil {
		close(co.idle)
		co.idle = nil
	}
	co.drainMu.Unlock()
}

// StartDrain refuses new queries with 503 and turns /healthz unhealthy,
// without waiting for in-flight fan-outs.
func (co *Coordinator) StartDrain() { co.draining.Store(true) }

// Drain is StartDrain plus the wait: it blocks until every in-flight
// fan-out — shard streams included — has completed or ctx expires.
// Workers are drained separately (they own their snapshots); the
// coordinator holds no state that outlives its requests.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.drainMu.Lock()
	co.draining.Store(true)
	if co.inflight == 0 {
		co.drainMu.Unlock()
		return nil
	}
	if co.idle == nil {
		co.idle = make(chan struct{})
	}
	idle := co.idle
	co.drainMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain: %w", ctx.Err())
	}
}

// Draining reports whether StartDrain or Drain has been called.
func (co *Coordinator) Draining() bool { return co.draining.Load() }

// Stats returns a snapshot of the fan-out counters.
func (co *Coordinator) Stats() StatsResponse {
	resp := StatsResponse{
		Catalog:        co.man.Catalog,
		Queries:        co.queries.Load(),
		Distributed:    co.distributed.Load(),
		LocalFallbacks: co.localFallbacks.Load(),
		StrategyCache:  co.strategies.Stats(),
		Draining:       co.draining.Load(),
	}
	for i := range co.stats {
		s := &co.stats[i]
		resp.Shards = append(resp.Shards, ShardStat{
			Replicas:  append([]string(nil), co.groups[i]...),
			Queries:   s.Queries.Load(),
			Rows:      s.Rows.Load(),
			Retries:   s.Retries.Load(),
			Hedges:    s.Hedges.Load(),
			Failovers: s.Failovers.Load(),
		})
	}
	return resp
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.Stats())
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if co.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"role":   "coordinator",
		"shards": len(co.groups),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// strategyFor resolves the distribution strategy for a statement
// through the LRU cache; the cached flag feeds the response header,
// exactly like the serial server's plan cache.
func (co *Coordinator) strategyFor(sqlText string) (*strategy, bool, error) {
	key := sql.Normalize(sqlText)
	if v, ok := co.strategies.Get(key); ok {
		return v.(*strategy), true, nil
	}
	q, err := sql.Parse(sqlText)
	if err != nil {
		return nil, false, err
	}
	if err := q.Validate(); err != nil {
		return nil, false, err
	}
	st, err := planStrategy(q, co.man)
	if err != nil {
		return nil, false, err
	}
	co.strategies.Put(key, st)
	return st, false, nil
}

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, wire.ErrorBody{Error: "use POST"})
		return
	}
	if !co.begin() {
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorBody{Error: "coordinator is shutting down"})
		return
	}
	defer co.end()
	co.queries.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorBody{Error: "reading body: " + err.Error()})
		return
	}
	var req wire.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorBody{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, wire.ErrorBody{Error: `missing "sql"`})
		return
	}

	// replay hands the untouched request to the local full-catalogue
	// server, which also produces the canonical error responses.
	replay := func() {
		co.localFallbacks.Add(1)
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		co.local.ServeHTTP(w, r2)
	}
	if req.DB != "" && req.DB != co.man.Catalog {
		replay()
		return
	}
	st, cached, err := co.strategyFor(req.SQL)
	if err != nil || st.mode == modeLocal {
		// Parse errors replay too: the local server reports them with
		// its canonical message and status.
		replay()
		return
	}
	co.distributed.Add(1)

	start := time.Now()
	var snk sink
	if strings.Contains(r.Header.Get("Accept"), wire.ContentType) {
		snk = &ndjsonSink{w: w, start: start}
	} else {
		snk = &bufferedSink{w: w, start: start, cached: cached}
	}
	if err := co.gather(r.Context(), st, co.man.Catalog, cached, snk); err != nil {
		// Failed before the header: the status line is still ours.
		status := http.StatusBadGateway
		var qe *queryError
		if errors.As(err, &qe) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, wire.ErrorBody{Error: err.Error()})
	}
}

// ndjsonSink streams the stitched rows with the serial server's framing:
// header, raw rows flushed every flushEvery, trailer.
type ndjsonSink struct {
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	start   time.Time
	buf     []byte
	n       int
}

const flushEvery = 64

func (s *ndjsonSink) flush() {
	if s.flusher != nil {
		s.flusher.Flush()
	}
}

func (s *ndjsonSink) header(cols []string, cached bool) error {
	s.w.Header().Set("Content-Type", wire.ContentType)
	s.w.WriteHeader(http.StatusOK)
	s.enc = json.NewEncoder(s.w)
	s.flusher, _ = s.w.(http.Flusher)
	if err := s.enc.Encode(wire.Header{Columns: cols, Cached: cached}); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *ndjsonSink) row(cols []json.RawMessage) error {
	s.buf = wire.AppendRow(s.buf[:0], cols)
	if _, err := s.w.Write(s.buf); err != nil {
		return err
	}
	s.n++
	if s.n%flushEvery == 0 {
		s.flush()
	}
	return nil
}

func (s *ndjsonSink) done(rowCount int, truncated bool, errMsg string) {
	_ = s.enc.Encode(wire.Trailer{
		RowCount:      rowCount,
		Truncated:     truncated,
		ElapsedMillis: float64(time.Since(s.start)) / float64(time.Millisecond),
		Error:         errMsg,
	})
	s.flush()
}

// bufferedSink accumulates the stitched rows into the serial server's
// buffered JSON response shape. Nothing is written until done, so a
// merge failure can still use an HTTP error status.
type bufferedSink struct {
	w      http.ResponseWriter
	start  time.Time
	cached bool
	cols   []string
	rows   [][]json.RawMessage
}

// queryResponse mirrors the serial server's QueryResponse JSON shape;
// rows stay raw so forwarded bytes survive re-encoding.
type queryResponse struct {
	Columns       []string            `json:"columns"`
	Rows          [][]json.RawMessage `json:"rows"`
	RowCount      int                 `json:"rowCount"`
	Truncated     bool                `json:"truncated,omitempty"`
	Cached        bool                `json:"cached"`
	ElapsedMillis float64             `json:"elapsedMillis"`
}

func (s *bufferedSink) header(cols []string, cached bool) error {
	s.cols = cols
	s.cached = cached
	s.rows = make([][]json.RawMessage, 0, 16)
	return nil
}

func (s *bufferedSink) row(cols []json.RawMessage) error {
	s.rows = append(s.rows, append([]json.RawMessage(nil), cols...))
	return nil
}

func (s *bufferedSink) done(rowCount int, truncated bool, errMsg string) {
	if errMsg != "" {
		writeJSON(s.w, http.StatusBadRequest, wire.ErrorBody{Error: errMsg})
		return
	}
	writeJSON(s.w, http.StatusOK, queryResponse{
		Columns:       s.cols,
		Rows:          s.rows,
		RowCount:      rowCount,
		Truncated:     truncated,
		Cached:        s.cached,
		ElapsedMillis: float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}
