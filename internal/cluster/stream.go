package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/factordb/fdb/internal/wire"
)

// queryError is a deterministic error from a shard (bad SQL, unknown
// relation, execution failure): retrying another replica would fail
// identically, so it propagates to the client instead.
type queryError struct{ msg string }

func (e *queryError) Error() string { return e.msg }

// frameReader decodes one replica's NDJSON response: header first, then
// rows until the trailer.
type frameReader struct {
	body   io.ReadCloser
	br     *bufio.Reader
	header wire.Header
	base   string // replica base URL, for failure attribution
	// cancel, when set, releases the per-attempt context a hedged open
	// created for this stream; close calls it.
	cancel context.CancelFunc
}

// next returns the next row, or (nil, nil) at a clean trailer. A
// trailer carrying an execution error surfaces as a *queryError; a torn
// stream (transport drop before the trailer) surfaces as a transport
// error the caller may fail over from.
func (fr *frameReader) next() (wire.Row, error) {
	line, err := fr.br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("stream torn before trailer: %w", err)
	}
	kind, err := wire.Classify(line)
	if err != nil {
		return nil, err
	}
	switch kind {
	case wire.KindRow:
		return wire.DecodeRow(line)
	case wire.KindTrailer:
		tr, err := wire.DecodeTrailer(line)
		if err != nil {
			return nil, err
		}
		if tr.Error != "" {
			return nil, &queryError{msg: tr.Error}
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unexpected frame mid-stream: %.80s", line)
	}
}

func (fr *frameReader) close() {
	if fr.body != nil {
		fr.body.Close()
		fr.body = nil
	}
	if fr.cancel != nil {
		fr.cancel()
		fr.cancel = nil
	}
}

// openReplica issues the shard query against one replica and reads the
// stream header. A non-200 response or a malformed header is an error;
// 4xx bodies become *queryError (no failover), everything else is
// transport-class.
func (co *Coordinator) openReplica(ctx context.Context, base, db, sqlText string) (*frameReader, error) {
	body, err := json.Marshal(wire.QueryRequest{SQL: sqlText, DB: db})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err := co.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		msg := string(b)
		if eb, err := wire.DecodeError(b); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &queryError{msg: msg}
		}
		return nil, fmt.Errorf("replica %s: status %d: %s", base, resp.StatusCode, msg)
	}
	fr := &frameReader{body: resp.Body, br: bufio.NewReaderSize(resp.Body, 64<<10), base: base}
	line, err := fr.br.ReadBytes('\n')
	if err != nil {
		fr.close()
		return nil, fmt.Errorf("replica %s: reading header: %w", base, err)
	}
	if kind, err := wire.Classify(line); err != nil || kind != wire.KindHeader {
		fr.close()
		if eb, err := wire.DecodeError(line); err == nil && eb.Error != "" {
			return nil, &queryError{msg: eb.Error}
		}
		return nil, fmt.Errorf("replica %s: expected header, got %.80s", base, line)
	}
	h, err := wire.DecodeHeader(line)
	if err != nil {
		fr.close()
		return nil, err
	}
	fr.header = h
	return fr, nil
}

// shardStream is one logical shard's row stream with retry, hedging and
// mid-stream failover. Replicas serve identical snapshots, so a resumed
// stream continues byte-identically from the next undelivered row.
type shardStream struct {
	co       *Coordinator
	ctx      context.Context
	shard    int
	db       string
	st       *strategy
	consumed int // rows delivered to the merger
	fr       *frameReader
	header   wire.Header // first successfully opened stream's header
	opened   bool
	done     bool
}

// next returns the shard's next row, (nil, nil) when the stream is
// exhausted, or an error after all replicas failed.
func (ss *shardStream) next() (wire.Row, error) {
	for {
		if ss.done {
			return nil, nil
		}
		if ss.fr == nil {
			if ss.st.pushdown > 0 && ss.consumed >= ss.st.pushdown {
				// The pushed-down LIMIT is spent; nothing left to fetch.
				ss.done = true
				return nil, nil
			}
			fr, err := ss.open()
			if err != nil {
				ss.done = true
				return nil, err
			}
			ss.fr = fr
			if ss.header.Columns == nil {
				ss.header = fr.header
			}
		}
		row, err := ss.fr.next()
		if err == nil {
			if row == nil {
				ss.done = true
				ss.fr.close()
				ss.fr = nil
				return nil, nil
			}
			ss.consumed++
			ss.co.shardStat(ss.shard).Rows.Add(1)
			return row, nil
		}
		var qe *queryError
		if errors.As(err, &qe) || ss.ctx.Err() != nil {
			ss.done = true
			ss.fr.close()
			ss.fr = nil
			return nil, err
		}
		// Transport drop mid-stream: fail over to another replica,
		// resuming at the first undelivered row via OFFSET.
		ss.co.noteFailure(ss.fr.base)
		ss.fr.close()
		ss.fr = nil
		ss.co.shardStat(ss.shard).Failovers.Add(1)
	}
}

func (ss *shardStream) close() {
	if ss.fr != nil {
		ss.fr.close()
		ss.fr = nil
	}
	ss.done = true
}

// open connects the stream (or reconnects it at the resume offset),
// trying replicas healthy-first with hedging on the first attempt and
// backoff between full passes.
func (ss *shardStream) open() (*frameReader, error) {
	sqlText := ss.st.resumeSQL(ss.consumed)
	if !ss.opened {
		ss.opened = true
		ss.co.shardStat(ss.shard).Queries.Add(1)
	}
	var lastErr error
	for pass := 0; pass <= ss.co.retries; pass++ {
		if pass > 0 {
			ss.co.shardStat(ss.shard).Retries.Add(1)
			select {
			case <-time.After(ss.co.backoff << (pass - 1)):
			case <-ss.ctx.Done():
				return nil, ss.ctx.Err()
			}
		}
		cands := ss.co.candidates(ss.shard)
		if pass == 0 && len(cands) > 1 && ss.co.hedgeDelay > 0 {
			fr, err := ss.openHedged(cands, sqlText)
			if err == nil {
				return fr, nil
			}
			var qe *queryError
			if errors.As(err, &qe) {
				return nil, err
			}
			lastErr = err
			continue
		}
		for _, base := range cands {
			fr, err := ss.co.openReplica(ss.ctx, base, ss.db, sqlText)
			if err == nil {
				return fr, nil
			}
			var qe *queryError
			if errors.As(err, &qe) {
				return nil, err
			}
			ss.co.noteFailure(base)
			lastErr = err
		}
	}
	return nil, fmt.Errorf("shard %d: all replicas failed: %w", ss.shard, lastErr)
}

// openHedged races the primary replica against a hedge launched after
// hedgeDelay of silence: whichever stream delivers its header first
// wins; the loser's attempt context is cancelled. Each attempt gets its
// own context so cancelling the loser cannot tear down the winner's
// body (the winner's cancel travels with its frameReader and fires on
// close). This trims tail latency when one replica is slow but alive.
func (ss *shardStream) openHedged(cands []string, sqlText string) (*frameReader, error) {
	type result struct {
		idx int
		fr  *frameReader
		err error
	}
	results := make(chan result, 2)
	var cancels []context.CancelFunc
	launch := func(idx int) {
		cctx, cancel := context.WithCancel(ss.ctx)
		cancels = append(cancels, cancel)
		go func() {
			fr, err := ss.co.openReplica(cctx, cands[idx], ss.db, sqlText)
			if err != nil {
				ss.co.noteFailure(cands[idx])
				cancel()
			} else {
				fr.cancel = cancel
			}
			results <- result{idx, fr, err}
		}()
	}
	launch(0)
	launched, got := 1, 0
	timer := time.NewTimer(ss.co.hedgeDelay)
	defer timer.Stop()
	var firstErr error
	for got < launched {
		select {
		case r := <-results:
			got++
			if r.err == nil {
				for i, c := range cancels {
					if i != r.idx {
						c()
					}
				}
				if rem := launched - got; rem > 0 {
					// Reap the loser in the background so its body closes.
					go func() {
						for i := 0; i < rem; i++ {
							if lr := <-results; lr.fr != nil {
								lr.fr.close()
							}
						}
					}()
				}
				return r.fr, nil
			}
			var qe *queryError
			if firstErr == nil || errors.As(r.err, &qe) {
				firstErr = r.err
			}
		case <-timer.C:
			if launched < len(cands) && launched < 2 {
				ss.co.shardStat(ss.shard).Hedges.Add(1)
				launch(1)
				launched++
			}
		}
	}
	return nil, firstErr
}
