package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/cluster"
	"github.com/factordb/fdb/internal/server"
)

// Example stands up a two-shard scatter-gather cluster end to end:
// plain fdbserver workers receive their shard snapshots over the wire,
// and a coordinator fans a grouped aggregate out and folds the partial
// states back together — producing exactly the rows a serial server
// over the undivided catalogue would.
func Example() {
	orders, err := fdb.NewRelation("Orders", []string{"customer", "price"}, []fdb.Tuple{
		{fdb.NewString("anna"), fdb.NewInt(12)},
		{fdb.NewString("anna"), fdb.NewInt(5)},
		{fdb.NewString("luca"), fdb.NewInt(9)},
		{fdb.NewString("mario"), fdb.NewInt(7)},
		{fdb.NewString("mario"), fdb.NewInt(3)},
	})
	if err != nil {
		panic(err)
	}
	db := fdb.Database{"Orders": orders}
	cat, err := catalog.Build("shop", db)
	if err != nil {
		panic(err)
	}

	// Two single-replica shard workers: bare servers that get their
	// data shipped, persisting it in a shard directory for warm
	// restarts.
	groups := make([][]string, 2)
	for i := range groups {
		dir, err := os.MkdirTemp("", "shard")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		w, err := server.New(server.Config{ShardDir: dir})
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(w)
		defer ts.Close()
		groups[i] = []string{ts.URL}
	}
	man, err := cluster.Ship(context.Background(), nil, groups, cat)
	if err != nil {
		panic(err)
	}

	// The coordinator needs a local full-catalogue server as the
	// fallback for non-distributable statements (joins, etc.).
	local, err := server.New(server.Config{
		Databases: map[string]fdb.Database{"shop": db},
		DefaultDB: "shop",
	})
	if err != nil {
		panic(err)
	}
	co, err := cluster.New(cluster.Config{Groups: groups, Manifest: man, Local: local})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(co)
	defer front.Close()

	resp, err := http.Post(front.URL+"/query", "application/json", bytes.NewReader([]byte(
		`{"sql": "SELECT customer, SUM(price) AS total FROM Orders GROUP BY customer ORDER BY customer"}`)))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		panic(err)
	}
	for _, row := range qr.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// anna 17
	// luca 9
	// mario 10
}
