package cluster

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
)

// testManifest describes a catalogue with one split relation R
// (partitioned on its first attribute a) and one replicated relation S.
func testManifest() *catalog.ShardManifest {
	return &catalog.ShardManifest{
		Catalog: "shop",
		Shards:  2,
		Relations: []catalog.ShardRelation{
			{Name: "R", Attrs: []string{"a", "b", "c"}, Partition: "a", Rows: []int{3, 2}},
			{Name: "S", Attrs: []string{"x"}, Rows: []int{4, 4}},
		},
	}
}

func mustPlan(t *testing.T, sqlText string) *strategy {
	t.Helper()
	q, err := sql.Parse(sqlText)
	if err != nil {
		t.Fatalf("parse %q: %v", sqlText, err)
	}
	st, err := planStrategy(q, testManifest())
	if err != nil {
		t.Fatalf("plan %q: %v", sqlText, err)
	}
	return st
}

func TestPlanLocalFallbacks(t *testing.T) {
	cases := []string{
		"SELECT * FROM R, S WHERE a = x", // join
		"SELECT * FROM S",                // replicated-only relation
		"SELECT * FROM Unknown",          // not in the manifest
		"SELECT b, c FROM R ORDER BY b",  // projection drops partition attr
		"SELECT count(*) AS n FROM S",    // aggregate over replicated relation
		"SELECT a, c FROM R",             // projection not a tree-order prefix (skips b)
		"SELECT a, b FROM R ORDER BY c",  // ORDER BY attr outside the projection
	}
	for _, sqlText := range cases {
		if st := mustPlan(t, sqlText); st.mode != modeLocal {
			t.Errorf("%q: mode %s, want local", sqlText, st.mode)
		}
	}
	// nil manifest: everything is local.
	q, err := sql.Parse("SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	st, err := planStrategy(q, nil)
	if err != nil || st.mode != modeLocal {
		t.Fatalf("nil manifest: mode %v err %v", st.mode, err)
	}
}

func TestPlanScan(t *testing.T) {
	st := mustPlan(t, "SELECT * FROM R ORDER BY b DESC LIMIT 5 OFFSET 2")
	if st.mode != modeStream {
		t.Fatalf("mode %s, want stream", st.mode)
	}
	if len(st.columns) != 0 {
		t.Fatalf("SELECT * should adopt the shard header, got columns %v", st.columns)
	}
	// The engine restructures the scan so the output columns arrive in
	// tree order (b, a, c); the merge compares them left to right with
	// the ORDER BY direction on the hoisted prefix.
	want := []keyCol{{col: 0, desc: true}, {col: 1}, {col: 2}}
	if len(st.cmp) != len(want) {
		t.Fatalf("cmp %v, want %v", st.cmp, want)
	}
	for i := range want {
		if st.cmp[i] != want[i] {
			t.Fatalf("cmp[%d] = %+v, want %+v", i, st.cmp[i], want[i])
		}
	}
	// LIMIT 5 OFFSET 2 pushes LIMIT 7 to shards; OFFSET stays here.
	if st.pushdown != 7 || st.limit != 5 || st.offset != 2 {
		t.Fatalf("pushdown %d limit %d offset %d", st.pushdown, st.limit, st.offset)
	}
	if st.shardQ.Offset != 0 || st.shardQ.Limit != 7 {
		t.Fatalf("shard query offset %d limit %d", st.shardQ.Offset, st.shardQ.Limit)
	}
	if _, err := sql.Parse(st.shardSQL); err != nil {
		t.Fatalf("shard SQL %q does not re-parse: %v", st.shardSQL, err)
	}

	// A projection that is a tree-order prefix and keeps the partition
	// attribute distributes; the comparator walks the prefix in tree
	// order at the projected positions.
	st = mustPlan(t, "SELECT a, b FROM R")
	if st.mode != modeStream {
		t.Fatalf("prefix projection: mode %s", st.mode)
	}
	if got := []keyCol{{col: 0}, {col: 1}}; st.cmp[0] != got[0] || st.cmp[1] != got[1] {
		t.Fatalf("cmp %v", st.cmp)
	}
	// ORDER BY restructures the tree, so (b, a) is the prefix here.
	st = mustPlan(t, "SELECT a, b FROM R ORDER BY b DESC")
	if st.mode != modeStream {
		t.Fatalf("restructured prefix projection: mode %s", st.mode)
	}
	if got := []keyCol{{col: 1, desc: true}, {col: 0}}; st.cmp[0] != got[0] || st.cmp[1] != got[1] {
		t.Fatalf("cmp %v", st.cmp)
	}
}

func TestPlanGroupStream(t *testing.T) {
	st := mustPlan(t, "SELECT b, sum(c) AS total FROM R GROUP BY b ORDER BY b LIMIT 3")
	if st.mode != modeGroupStream {
		t.Fatalf("mode %s, want group-stream", st.mode)
	}
	if st.nGroup != 1 || len(st.fields) != 1 || len(st.outAggs) != 1 {
		t.Fatalf("nGroup %d fields %d outAggs %d", st.nGroup, len(st.fields), len(st.outAggs))
	}
	if st.outAggs[0] != (partialRef{sum: 0, cnt: -1}) {
		t.Fatalf("outAggs %+v", st.outAggs)
	}
	if st.pushdown != 3 {
		t.Fatalf("pushdown %d, want 3", st.pushdown)
	}
	// HAVING disables the limit pushdown and lands coordinator-side.
	st = mustPlan(t, "SELECT b, sum(c) AS total FROM R GROUP BY b HAVING total > 10 ORDER BY b LIMIT 3")
	if st.pushdown != 0 {
		t.Fatalf("pushdown with HAVING = %d, want 0", st.pushdown)
	}
	if len(st.having) != 1 || st.havingCol[0] != 1 || st.having[0].Op != fops.GT {
		t.Fatalf("having %+v cols %v", st.having, st.havingCol)
	}
	if values.Compare(st.having[0].Const, values.NewInt(10)) != 0 {
		t.Fatalf("having const %v", st.having[0].Const)
	}
	if len(st.shardQ.Having) != 0 {
		t.Fatalf("shard query kept HAVING: %v", st.shardQ.Having)
	}
}

func TestPlanAvgRewrite(t *testing.T) {
	st := mustPlan(t, "SELECT b, avg(c) AS ac, count(*) AS n FROM R GROUP BY b ORDER BY b")
	if st.mode != modeGroupStream {
		t.Fatalf("mode %s", st.mode)
	}
	// Shards compute sum(c), count(*), count(*): AVG in place as its sum,
	// its count appended at the end so other columns keep positions.
	aggs := st.shardQ.Aggregates
	if len(aggs) != 3 {
		t.Fatalf("shard aggregates %v", aggs)
	}
	if aggs[0].Fn != query.Sum || aggs[0].Arg != "c" || !strings.HasPrefix(aggs[0].As, "__avg0") {
		t.Fatalf("avg sum partial %+v", aggs[0])
	}
	if aggs[1].Fn != query.Count || aggs[1].As != "n" {
		t.Fatalf("count kept its position: %+v", aggs[1])
	}
	if aggs[2].Fn != query.Count || !strings.HasPrefix(aggs[2].As, "__avg0") {
		t.Fatalf("avg count partial %+v", aggs[2])
	}
	if st.outAggs[0] != (partialRef{sum: 0, cnt: 2}) || st.outAggs[1] != (partialRef{sum: 1, cnt: -1}) {
		t.Fatalf("outAggs %+v", st.outAggs)
	}
	// The rewritten statement must survive the wire: render and re-parse.
	q2, err := sql.Parse(st.shardSQL)
	if err != nil {
		t.Fatalf("shard SQL %q: %v", st.shardSQL, err)
	}
	if len(q2.Aggregates) != 3 || q2.Aggregates[2].As != aggs[2].As {
		t.Fatalf("round-trip lost the rewrite: %q -> %+v", st.shardSQL, q2.Aggregates)
	}
}

func TestPlanBuffered(t *testing.T) {
	st := mustPlan(t, "SELECT b, sum(c) AS total FROM R GROUP BY b ORDER BY total DESC, b LIMIT 4 OFFSET 1")
	if st.mode != modeBuffered {
		t.Fatalf("mode %s, want buffered", st.mode)
	}
	// Shards stream in explicit base order (the group attrs ascending);
	// the original ORDER BY waits for the coordinator sort.
	if len(st.shardQ.OrderBy) != 1 || st.shardQ.OrderBy[0] != (query.OrderItem{Attr: "b"}) {
		t.Fatalf("shard ORDER BY %v", st.shardQ.OrderBy)
	}
	if len(st.orderBy) != 2 || st.orderBy[0] != (keyCol{col: 1, desc: true}) || st.orderBy[1] != (keyCol{col: 0}) {
		t.Fatalf("coordinator ORDER BY %v", st.orderBy)
	}
	if st.pushdown != 0 {
		t.Fatalf("buffered mode must not push LIMIT down, got %d", st.pushdown)
	}
	if st.limit != 4 || st.offset != 1 {
		t.Fatalf("limit %d offset %d", st.limit, st.offset)
	}
}

func TestResumeSQL(t *testing.T) {
	st := mustPlan(t, "SELECT * FROM R ORDER BY a LIMIT 10")
	if got := st.resumeSQL(0); got != st.shardSQL {
		t.Fatalf("resume at 0 rewrote the statement: %q", got)
	}
	rq, err := sql.Parse(st.resumeSQL(4))
	if err != nil {
		t.Fatal(err)
	}
	if rq.Offset != 4 || rq.Limit != 6 {
		t.Fatalf("resume at 4: OFFSET %d LIMIT %d, want 4 and 6", rq.Offset, rq.Limit)
	}
	// Unlimited shard query: resume adjusts only the offset.
	st = mustPlan(t, "SELECT * FROM R ORDER BY a")
	rq, err = sql.Parse(st.resumeSQL(7))
	if err != nil {
		t.Fatal(err)
	}
	if rq.Offset != 7 || rq.Limit != 0 {
		t.Fatalf("resume: OFFSET %d LIMIT %d, want 7 and 0", rq.Offset, rq.Limit)
	}
}
