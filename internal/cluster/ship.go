package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/wire"
)

// Ship partitions cat into len(groups) shards by root-union range and
// installs shard i on every replica of groups[i] through POST
// /shard/install. Workers validate, persist and mmap the snapshot
// before swapping it in, so a failed ship leaves them serving whatever
// they served before. Ship returns the manifest the coordinator needs
// to plan distribution; persist it with catalog.WriteShardFiles (or its
// JSON form) so a restarted coordinator can skip re-sharding.
func Ship(ctx context.Context, client *http.Client, groups [][]string, cat *catalog.Catalog) (*catalog.ShardManifest, error) {
	if client == nil {
		client = &http.Client{}
	}
	shards, man, err := catalog.Split(cat, len(groups))
	if err != nil {
		return nil, err
	}
	for i, grp := range groups {
		var buf bytes.Buffer
		if _, err := shards[i].WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("cluster: encoding shard %d: %w", i, err)
		}
		for _, base := range grp {
			if err := install(ctx, client, base, man.Catalog, buf.Bytes()); err != nil {
				return nil, fmt.Errorf("cluster: shipping shard %d to %s: %w", i, base, err)
			}
		}
	}
	return man, nil
}

// install posts one shard snapshot to one replica.
func install(ctx context.Context, client *http.Client, base, db string, snapshot []byte) error {
	u := base + "/shard/install?db=" + url.QueryEscape(db)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		msg := string(b)
		if eb, err := wire.DecodeError(b); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		return fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	return nil
}
