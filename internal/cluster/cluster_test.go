package cluster

// The golden suite: a scatter-gather cluster over real HTTP listeners
// must answer every workload query byte-identically to a serial server
// over the undivided catalogue — including under mid-stream replica
// failure, dead replicas and hedged reads. Only the trailer's elapsed
// time may differ.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"context"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/server"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/wire"
	"github.com/factordb/fdb/internal/workload"
)

// testData builds the workload catalogue: the views R1, R2, R3 plus the
// base relations (so join queries exercise the local fallback).
func testData(t *testing.T) (fdb.Database, *catalog.Catalog) {
	t.Helper()
	ds := workload.Generate(workload.Config{Scale: 1})
	r1, err := ds.FlatR1()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ds.FlatR2()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ds.R3()
	if err != nil {
		t.Fatal(err)
	}
	db := fdb.Database{
		"R1": r1, "R2": r2, "R3": r3,
		"Orders": ds.Orders, "Packages": ds.Packages, "Items": ds.Items,
	}
	cat, err := catalog.Build("shop", db)
	if err != nil {
		t.Fatal(err)
	}
	return db, cat
}

func newServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testCluster is a full serving topology: a serial reference server, a
// second identical server as the coordinator's local fallback, and
// shards×replicas bare workers behind real listeners.
type testCluster struct {
	serial  *server.Server
	co      *Coordinator
	workers []*server.Server
}

// newTestCluster builds the topology, ships the shards and returns the
// cluster. proxy, when non-nil, wraps each shard's first replica URL
// (after shipping, so installs bypass it) — used to interpose tearing
// or slow replicas.
func newTestCluster(t *testing.T, shards, replicas int, hedge time.Duration, proxy func(shard int, base string) string) *testCluster {
	t.Helper()
	db, cat := testData(t)
	tc := &testCluster{
		serial: newServer(t, server.Config{Databases: map[string]fdb.Database{"shop": db}, DefaultDB: "shop"}),
	}
	local := newServer(t, server.Config{Databases: map[string]fdb.Database{"shop": db}, DefaultDB: "shop"})

	groups := make([][]string, shards)
	for i := 0; i < shards; i++ {
		for j := 0; j < replicas; j++ {
			w := newServer(t, server.Config{ShardDir: t.TempDir()})
			ts := httptest.NewServer(w)
			t.Cleanup(ts.Close)
			tc.workers = append(tc.workers, w)
			groups[i] = append(groups[i], ts.URL)
		}
	}
	man, err := Ship(context.Background(), nil, groups, cat)
	if err != nil {
		t.Fatal(err)
	}
	if proxy != nil {
		for i := range groups {
			groups[i][0] = proxy(i, groups[i][0])
		}
	}
	tc.co, err = New(Config{
		Groups:       groups,
		Manifest:     man,
		Local:        local,
		HedgeDelay:   hedge,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// goldenQueries is the workload Q1–Q13 plus LIMIT/OFFSET, DESC, HAVING,
// AVG and fallback variants, rendered to SQL.
func goldenQueries() map[string]string {
	qs := map[string]*query.Query{
		"Q1": workload.Q1(), "Q2": workload.Q2(), "Q3": workload.Q3(),
		"Q4": workload.Q4(), "Q5": workload.Q5(), "Q6": workload.Q6(),
		"Q7": workload.Q7(), "Q8": workload.Q8(), "Q9": workload.Q9(),
		"Q10": workload.Q10(0), "Q10_limit": workload.Q10(10),
		"Q11": workload.Q11(0), "Q11_limit": workload.Q11(10),
		"Q12": workload.Q12(0), "Q12_limit": workload.Q12(10),
		"Q13": workload.Q13(0), "Q13_limit": workload.Q13(10),
	}
	with := func(name string, q *query.Query, mut func(*query.Query)) {
		mut(q)
		qs[name] = q
	}
	with("Q6_page", workload.Q6(), func(q *query.Query) { q.Limit = 4; q.Offset = 1 })
	with("Q7_page", workload.Q7(), func(q *query.Query) { q.Limit = 5; q.Offset = 3 })
	with("Q7_desc", workload.Q7(), func(q *query.Query) { q.OrderBy[0].Desc = true })
	with("Q8_desc", workload.Q8(), func(q *query.Query) { q.OrderBy[0].Desc = true })
	with("Q12_page", workload.Q12(10), func(q *query.Query) { q.Offset = 5 })
	with("Q2_having", workload.Q2(), func(q *query.Query) {
		q.Having = []query.Filter{{Attr: "revenue", Op: fops.GT, Const: values.NewInt(150)}}
		q.OrderBy = []query.OrderItem{{Attr: "customer"}}
	})
	// ORDER BY mixing an aggregate alias with a group attribute: the
	// buffered mode's base-order contract.
	with("Q3_mixed", workload.Q3(), func(q *query.Query) {
		q.OrderBy = []query.OrderItem{{Attr: "total", Desc: true}, {Attr: "date"}}
		q.Limit = 12
	})
	qs["avg_stream"] = &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Avg, Arg: "price", As: "ap"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
	qs["avg_buffered"] = &query.Query{
		Relations:  []string{"R1"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Avg, Arg: "price", As: "ap"}},
		OrderBy:    []query.OrderItem{{Attr: "ap", Desc: true}},
		Limit:      7,
	}
	qs["minmax"] = &query.Query{
		Relations: []string{"R1"},
		GroupBy:   []string{"package"},
		Aggregates: []query.Aggregate{
			{Fn: query.Min, Arg: "price", As: "lo"},
			{Fn: query.Max, Arg: "price", As: "hi"},
			{Fn: query.Count, As: "n"},
		},
		OrderBy: []query.OrderItem{{Attr: "package"}},
	}
	qs["count_star"] = &query.Query{
		Relations:  []string{"R1"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
	}
	qs["scan_all"] = &query.Query{Relations: []string{"R1"}}
	qs["scan_filter"] = &query.Query{
		Relations: []string{"R2"},
		Filters:   []query.Filter{{Attr: "price", Op: fops.GT, Const: values.NewInt(10)}},
		OrderBy:   []query.OrderItem{{Attr: "package"}, {Attr: "date"}, {Attr: "item"}},
	}
	// Local fallbacks, golden all the same: a projection dropping the
	// partition attribute, and a join over the base relations.
	qs["proj_fallback"] = &query.Query{
		Relations:  []string{"R2"},
		Projection: []string{"date", "package"},
		OrderBy:    []query.OrderItem{{Attr: "date"}, {Attr: "package"}},
	}
	if j, err := workload.FlatAggQuery(2); err == nil {
		j.OrderBy = []query.OrderItem{{Attr: "customer"}}
		qs["join_fallback"] = j
	}
	out := make(map[string]string, len(qs))
	for name, q := range qs {
		out[name] = sql.Render(q)
	}
	return out
}

// post issues one /query request; ndjson selects the streaming protocol.
func post(t *testing.T, h http.Handler, sqlText string, ndjson bool) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(wire.QueryRequest{SQL: sqlText})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if ndjson {
		req.Header.Set("Accept", wire.ContentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func splitLines(b []byte) [][]byte {
	lines := bytes.Split(b, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// compareNDJSON requires got to equal want byte for byte, except the
// trailer's elapsed time.
func compareNDJSON(t *testing.T, name string, want, got *httptest.ResponseRecorder) {
	t.Helper()
	if want.Code != got.Code {
		t.Fatalf("%s: status %d, want %d (body %s)", name, got.Code, want.Code, got.Body)
	}
	wl, gl := splitLines(want.Body.Bytes()), splitLines(got.Body.Bytes())
	if len(wl) != len(gl) {
		t.Fatalf("%s: %d lines, want %d\nserial tail: %s\ncluster tail: %s",
			name, len(gl), len(wl), tail(wl), tail(gl))
	}
	for i := 0; i < len(wl)-1; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			t.Fatalf("%s line %d:\nserial:  %s\ncluster: %s", name, i, wl[i], gl[i])
		}
	}
	var wt, gt wire.Trailer
	if err := json.Unmarshal(wl[len(wl)-1], &wt); err != nil {
		t.Fatalf("%s: serial trailer: %v", name, err)
	}
	if err := json.Unmarshal(gl[len(gl)-1], &gt); err != nil {
		t.Fatalf("%s: cluster trailer: %v", name, err)
	}
	wt.ElapsedMillis, gt.ElapsedMillis = 0, 0
	if wt != gt {
		t.Fatalf("%s: trailer %+v, want %+v", name, gt, wt)
	}
}

func tail(lines [][]byte) []byte {
	if len(lines) == 0 {
		return nil
	}
	return lines[len(lines)-1]
}

// compareBuffered requires the non-streaming JSON responses to match,
// except elapsed time.
func compareBuffered(t *testing.T, name string, want, got *httptest.ResponseRecorder) {
	t.Helper()
	if want.Code != got.Code {
		t.Fatalf("%s: status %d, want %d (body %s)", name, got.Code, want.Code, got.Body)
	}
	var wm, gm map[string]any
	if err := json.Unmarshal(want.Body.Bytes(), &wm); err != nil {
		t.Fatalf("%s: serial body: %v", name, err)
	}
	if err := json.Unmarshal(got.Body.Bytes(), &gm); err != nil {
		t.Fatalf("%s: cluster body: %v", name, err)
	}
	delete(wm, "elapsedMillis")
	delete(gm, "elapsedMillis")
	if !reflect.DeepEqual(wm, gm) {
		t.Fatalf("%s:\nserial:  %v\ncluster: %v", name, wm, gm)
	}
}

// TestScatterGatherGolden: at 1, 2, 3 and 4 shards, every workload
// query — streaming and buffered — answers byte-identically to the
// serial server. One shard degenerates to whole-relation replication,
// so it exercises the local fallback across the board; three shards
// makes the segment cuts uneven.
func TestScatterGatherGolden(t *testing.T) {
	queries := goldenQueries()
	for _, shards := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			tc := newTestCluster(t, shards, 1, -1, nil)
			for name, sqlText := range queries {
				compareNDJSON(t, name, post(t, tc.serial, sqlText, true), post(t, tc.co, sqlText, true))
				compareBuffered(t, name, post(t, tc.serial, sqlText, false), post(t, tc.co, sqlText, false))
			}
			stats := tc.co.Stats()
			if shards > 1 && stats.Distributed == 0 {
				t.Fatalf("no queries distributed at %d shards: %+v", shards, stats)
			}
			if stats.LocalFallbacks == 0 {
				t.Fatalf("fallback queries not accounted: %+v", stats)
			}
			if err := tc.co.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// tearingProxy relays to a worker but cuts every /query stream after a
// fixed number of rows, simulating a worker dying mid-stream.
type tearingProxy struct {
	h     http.Handler
	rows  int
	tears atomic.Int32
}

func (p *tearingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/query" {
		p.h.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	p.h.ServeHTTP(rec, r)
	res := rec.Result()
	defer res.Body.Close()
	for k, vs := range res.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	body := rec.Body.Bytes()
	lines := bytes.SplitAfter(body, []byte("\n"))
	// header + rows + trailer: only tear streams long enough to have
	// undelivered rows left.
	if rec.Code != http.StatusOK || len(lines) <= p.rows+2 {
		w.WriteHeader(rec.Code)
		_, _ = w.Write(body)
		return
	}
	w.WriteHeader(http.StatusOK)
	for i := 0; i <= p.rows; i++ {
		_, _ = w.Write(lines[i])
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	p.tears.Add(1)
	panic(http.ErrAbortHandler) // cut the connection mid-stream
}

// TestFailoverMidStream: the primary replica of every shard tears each
// query stream after a few rows; the coordinator must fail over to the
// healthy replica and resume at the exact next row — the merged output
// stays byte-identical, with no duplicated or dropped rows.
func TestFailoverMidStream(t *testing.T) {
	proxies := map[int]*tearingProxy{}
	tc := newTestCluster(t, 2, 2, -1, func(shard int, base string) string {
		p := &tearingProxy{h: mustReverse(t, base), rows: 7}
		ts := httptest.NewServer(p)
		t.Cleanup(ts.Close)
		proxies[shard] = p
		return ts.URL
	})
	for _, name := range []string{"scan", "groups", "buffered"} {
		var sqlText string
		switch name {
		case "scan":
			sqlText = sql.Render(workload.Q10(0))
		case "groups":
			sqlText = sql.Render(workload.Q1())
		case "buffered":
			sqlText = sql.Render(workload.Q7())
		}
		compareNDJSON(t, name, post(t, tc.serial, sqlText, true), post(t, tc.co, sqlText, true))
	}
	stats := tc.co.Stats()
	var failovers, tears uint64
	for _, s := range stats.Shards {
		failovers += s.Failovers
	}
	for _, p := range proxies {
		tears += uint64(p.tears.Load())
	}
	if failovers == 0 || tears == 0 {
		t.Fatalf("expected mid-stream failovers, got failovers=%d tears=%d (%+v)", failovers, tears, stats)
	}
}

// mustReverse returns a handler that forwards requests to base over
// real HTTP (a minimal reverse proxy for test topologies).
func mustReverse(t *testing.T, base string) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	})
}

// TestDeadReplicaRouting: a shard whose first replica refuses
// connections must transparently serve from its second replica.
func TestDeadReplicaRouting(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	tc := newTestCluster(t, 2, 2, -1, func(shard int, base string) string { return deadURL })
	sqlText := sql.Render(workload.Q2())
	compareNDJSON(t, "dead-primary", post(t, tc.serial, sqlText, true), post(t, tc.co, sqlText, true))
	// The dead replica is now in cooldown: the next query routes around
	// it without another connection failure.
	compareNDJSON(t, "cooldown", post(t, tc.serial, sqlText, true), post(t, tc.co, sqlText, true))
}

// TestHedgedRead: when the primary replica is slow to answer, a hedge
// fires against the second replica and wins without corrupting output.
func TestHedgedRead(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 5*time.Millisecond, func(shard int, base string) string {
		inner := mustReverse(t, base)
		slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/query" {
				time.Sleep(300 * time.Millisecond)
			}
			inner.ServeHTTP(w, r)
		})
		ts := httptest.NewServer(slow)
		t.Cleanup(ts.Close)
		return ts.URL
	})
	sqlText := sql.Render(workload.Q4())
	compareNDJSON(t, "hedged", post(t, tc.serial, sqlText, true), post(t, tc.co, sqlText, true))
	stats := tc.co.Stats()
	var hedges uint64
	for _, s := range stats.Shards {
		hedges += s.Hedges
	}
	if hedges == 0 {
		t.Fatalf("expected hedged opens, stats %+v", stats)
	}
}

// TestCoordinatorDrain: a draining coordinator refuses queries with 503
// and reports unhealthy, while its stats survive.
func TestCoordinatorDrain(t *testing.T) {
	tc := newTestCluster(t, 2, 1, -1, nil)
	sqlText := sql.Render(workload.Q5())
	if rec := post(t, tc.co, sqlText, true); rec.Code != http.StatusOK {
		t.Fatalf("pre-drain query: %d", rec.Code)
	}
	if err := tc.co.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := post(t, tc.co, sqlText, true); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: %d, want 503", rec.Code)
	}
	rec := httptest.NewRecorder()
	tc.co.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", rec.Code)
	}
	if !tc.co.Stats().Draining {
		t.Fatal("stats should report draining")
	}
}

// TestCoordinatorStats: the /stats endpoint accounts queries per shard.
func TestCoordinatorStats(t *testing.T) {
	tc := newTestCluster(t, 2, 1, -1, nil)
	sqlText := sql.Render(workload.Q2())
	post(t, tc.co, sqlText, true)
	rec := httptest.NewRecorder()
	tc.co.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Catalog != "shop" || len(resp.Shards) != 2 {
		t.Fatalf("stats %+v", resp)
	}
	for i, s := range resp.Shards {
		if s.Queries == 0 || s.Rows == 0 {
			t.Fatalf("shard %d unaccounted: %+v", i, s)
		}
	}
	if resp.Distributed != 1 || resp.Queries != 1 {
		t.Fatalf("query counters %+v", resp)
	}
}
