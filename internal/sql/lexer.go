// Package sql implements a small SQL front-end for the query model of
// package query: SELECT with aggregates, FROM over named relations, WHERE
// with attribute equalities and comparisons with constants, GROUP BY,
// HAVING, ORDER BY (ASC/DESC) and LIMIT — the query class of Section 2 of
// the paper.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AND": true,
	"AS": true, "ASC": true, "DESC": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPSERT": true, "NULL": true,
}

// lex tokenises the input. Identifiers are case-preserved; keywords are
// recognised case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1])) && startsValue(toks)):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '.') {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{kind: tokKeyword, text: strings.ToUpper(word), pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: i})
			}
			i = j
		case strings.ContainsRune("(),*;", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == '=':
			toks = append(toks, token{kind: tokSymbol, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at offset %d", i)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at the current position would begin a
// literal (after a comparison operator or comma) rather than being an
// operator.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	last := toks[len(toks)-1]
	if last.kind == tokSymbol {
		switch last.text {
		case "=", "<", "<=", ">", ">=", "<>", "!=", ",", "(":
			return true
		}
	}
	return false
}
