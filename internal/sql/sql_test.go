package sql

import (
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
)

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`SELECT customer, SUM(price) AS revenue, COUNT(*)
		FROM Orders, Packages, Items
		WHERE package = package2 AND item = item2 AND price > 1
		GROUP BY customer
		HAVING revenue >= 10
		ORDER BY revenue DESC, customer ASC
		LIMIT 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 || q.Relations[1] != "Packages" {
		t.Errorf("relations = %v", q.Relations)
	}
	if len(q.Equalities) != 2 || q.Equalities[0].A != "package" {
		t.Errorf("equalities = %v", q.Equalities)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != fops.GT || q.Filters[0].Const.Int() != 1 {
		t.Errorf("filters = %v", q.Filters)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "customer" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if len(q.Aggregates) != 2 || q.Aggregates[0].As != "revenue" || q.Aggregates[1].Fn != query.Count {
		t.Errorf("aggregates = %v", q.Aggregates)
	}
	if len(q.Having) != 1 || q.Having[0].Attr != "revenue" || q.Having[0].Op != fops.GE {
		t.Errorf("having = %v", q.Having)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order by = %v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseSPJ(t *testing.T) {
	q, err := Parse(`SELECT pizza, customer FROM Orders ORDER BY pizza`)
	if err != nil {
		t.Fatal(err)
	}
	if q.IsAggregate() {
		t.Error("SPJ query misclassified as aggregate")
	}
	if len(q.Projection) != 2 {
		t.Errorf("projection = %v", q.Projection)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse(`SELECT * FROM R2 ORDER BY package, item, date LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 0 {
		t.Error("star should leave projection empty")
	}
	if q.Limit != 10 || len(q.OrderBy) != 3 {
		t.Errorf("order/limit = %v / %d", q.OrderBy, q.Limit)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	want := []query.AggFn{query.Count, query.Sum, query.Min, query.Max, query.Avg}
	for i, fn := range want {
		if q.Aggregates[i].Fn != fn {
			t.Errorf("aggregate %d = %v, want %v", i, q.Aggregates[i].Fn, fn)
		}
	}
}

func TestParseStringsAndNegatives(t *testing.T) {
	q, err := Parse(`SELECT * FROM R WHERE name = 'O''Brien' AND x >= -5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Const.Str() != "O'Brien" {
		t.Errorf("string literal = %q", q.Filters[0].Const)
	}
	if q.Filters[1].Const.Int() != -5 {
		t.Errorf("negative literal = %v", q.Filters[1].Const)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM R`,
		`SELECT x FROM`,
		`SELECT x R`,
		`SELECT x FROM R WHERE`,
		`SELECT x FROM R WHERE x <`,
		`SELECT x FROM R WHERE x < y`, // non-equality between attributes
		`SELECT SUM() FROM R`,
		`SELECT SUM(x FROM R`,
		`SELECT x, SUM(y) FROM R GROUP BY z`, // x not in GROUP BY
		`SELECT x FROM R GROUP BY x`,         // GROUP BY without aggregates
		`SELECT x FROM R LIMIT nope`,
		`SELECT x FROM R ORDER BY`,
		`SELECT x FROM R extra`,
		`SELECT x FROM R WHERE name = 'unterminated`,
		`SELECT x FROM R WHERE x ! y`,
		`SELECT x FROM R HAVING x > 1`, // HAVING without aggregates
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("accepted invalid SQL: %s", s)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select customer, sum(price) as r from R group by customer order by r desc`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregates[0].As != "r" || !q.OrderBy[0].Desc {
		t.Error("lower-case keywords not handled")
	}
}
