package sql

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

func mustMutation(t *testing.T, input string) *query.Mutation {
	t.Helper()
	stmt, err := ParseStatement(input)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", input, err)
	}
	m, ok := stmt.(*query.Mutation)
	if !ok {
		t.Fatalf("ParseStatement(%q) = %T, want *query.Mutation", input, stmt)
	}
	return m
}

func TestParseInsert(t *testing.T) {
	m := mustMutation(t, `INSERT INTO Orders VALUES (1, 'alice', 3.5), (2, 'bob', NULL);`)
	if m.Op != query.OpInsert || m.Relation != "Orders" {
		t.Fatalf("got %s %s", m.Op, m.Relation)
	}
	if len(m.Rows) != 2 || len(m.Rows[0]) != 3 {
		t.Fatalf("rows %v", m.Rows)
	}
	if m.Rows[0][0].Int() != 1 || m.Rows[0][1].Str() != "alice" || m.Rows[0][2].Float() != 3.5 {
		t.Fatalf("row 0 = %v", m.Rows[0])
	}
	if m.Rows[1][2].Kind() != values.Null {
		t.Fatalf("row 1 col 2 = %v, want NULL", m.Rows[1][2])
	}
}

func TestParseUpsert(t *testing.T) {
	m := mustMutation(t, `upsert into Items values (7, 19)`)
	if m.Op != query.OpUpsert || m.Relation != "Items" {
		t.Fatalf("got %s %s", m.Op, m.Relation)
	}
	if len(m.Rows) != 1 || m.Rows[0][0].Int() != 7 {
		t.Fatalf("rows %v", m.Rows)
	}
}

func TestParseDelete(t *testing.T) {
	m := mustMutation(t, `DELETE FROM Orders WHERE customer = 3 AND price >= 10`)
	if m.Op != query.OpDelete || m.Relation != "Orders" {
		t.Fatalf("got %s %s", m.Op, m.Relation)
	}
	if len(m.Where) != 2 {
		t.Fatalf("filters %v", m.Where)
	}
	if m.Where[0].Attr != "customer" || m.Where[0].Op != fops.EQ || m.Where[0].Const.Int() != 3 {
		t.Fatalf("filter 0 = %+v", m.Where[0])
	}
	if m.Where[1].Attr != "price" || m.Where[1].Op != fops.GE {
		t.Fatalf("filter 1 = %+v", m.Where[1])
	}
}

func TestParseDeleteAll(t *testing.T) {
	m := mustMutation(t, `DELETE FROM Orders`)
	if len(m.Where) != 0 {
		t.Fatalf("filters %v", m.Where)
	}
}

func TestParseStatementSelect(t *testing.T) {
	stmt, err := ParseStatement(`SELECT customer FROM Orders`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*query.Query); !ok {
		t.Fatalf("got %T, want *query.Query", stmt)
	}
}

func TestParseStatementErrors(t *testing.T) {
	cases := []struct {
		input string
		want  string
	}{
		{`INSERT Orders VALUES (1)`, "INTO"},
		{`INSERT INTO VALUES (1)`, "relation name"},
		{`INSERT INTO Orders (1)`, "VALUES"},
		{`INSERT INTO Orders VALUES 1`, "("},
		{`INSERT INTO Orders VALUES ()`, "literal"},
		{`INSERT INTO Orders VALUES (1,)`, "literal"},
		{`INSERT INTO Orders VALUES (1), (1, 2)`, "row 1 has 2 values"},
		{`INSERT INTO Orders VALUES (1) garbage`, "unexpected"},
		{`DELETE Orders`, "FROM"},
		{`DELETE FROM Orders WHERE`, "attribute"},
		{`DELETE FROM Orders WHERE customer`, "operator"},
		{`DELETE FROM Orders WHERE customer = `, "literal"},
		{`DELETE FROM Orders WHERE customer AND 3`, "operator"},
		{`UPSERT INTO Orders VALUES`, "("},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.input)
		if err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error containing %q", c.input, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseStatement(%q) = %q, want mention of %q", c.input, err, c.want)
		}
	}
}

// TestMutationStringRoundTrips: the canonical rendering must reparse to
// an equivalent mutation.
func TestMutationStringRoundTrips(t *testing.T) {
	for _, input := range []string{
		`INSERT INTO Orders VALUES (1, 'x'), (2, 'y')`,
		`UPSERT INTO Items VALUES (3, 14)`,
		`DELETE FROM Orders WHERE customer < 5`,
		`DELETE FROM Orders`,
	} {
		m := mustMutation(t, input)
		m2 := mustMutation(t, m.String())
		if m.String() != m2.String() {
			t.Errorf("round trip of %q: %q != %q", input, m.String(), m2.String())
		}
	}
}
