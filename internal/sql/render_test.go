package sql

import (
	"reflect"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

// TestRenderRoundTrip: Parse(Render(q)) must be structurally identical
// to q across the query surface the coordinator rewrites.
func TestRenderRoundTrip(t *testing.T) {
	qs := []*query.Query{
		{Relations: []string{"R1"}, Projection: []string{"a", "b"}},
		{Relations: []string{"R2"}}, // SELECT *
		{
			Relations:  []string{"R1"},
			GroupBy:    []string{"package", "date", "customer"},
			Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
		},
		{
			Relations:  []string{"R1"},
			Aggregates: []query.Aggregate{{Fn: query.Count}, {Fn: query.Min, Arg: "price", As: "lo"}},
		},
		{
			Relations:  []string{"R1"},
			GroupBy:    []string{"customer"},
			Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
			OrderBy:    []query.OrderItem{{Attr: "revenue", Desc: true}, {Attr: "customer"}},
			Having:     []query.Filter{{Attr: "revenue", Op: fops.GT, Const: values.NewInt(10)}},
			Limit:      5,
			Offset:     20,
		},
		{
			Relations:  []string{"Orders", "Packages", "Items"},
			Equalities: []query.Equality{{A: "package", B: "package2"}, {A: "item", B: "item2"}},
			Filters: []query.Filter{
				{Attr: "price", Op: fops.LE, Const: values.NewInt(12)},
				{Attr: "city", Op: fops.NE, Const: values.NewString("O'Hare")},
				{Attr: "score", Op: fops.GE, Const: values.NewFloat(2.5)},
				{Attr: "ratio", Op: fops.LT, Const: values.NewFloat(3)},
			},
			GroupBy:    []string{"customer"},
			Aggregates: []query.Aggregate{{Fn: query.Avg, Arg: "price", As: "m"}},
		},
		{
			Relations: []string{"R3"},
			OrderBy:   []query.OrderItem{{Attr: "customer"}, {Attr: "date"}, {Attr: "package"}},
			Limit:     10,
		},
	}
	for _, q := range qs {
		text := Render(q)
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(Render(%s)) = %v\nrendered: %s", q, err, text)
		}
		if !reflect.DeepEqual(got, q) {
			t.Fatalf("round trip changed the query\nrendered: %s\n got: %#v\nwant: %#v", text, got, q)
		}
	}
}

// TestRenderCanonical: equal queries render to equal strings and the
// rendering is stable under re-parse (fixed point).
func TestRenderCanonical(t *testing.T) {
	text := `select customer , SUM(price) as revenue from R1 group by customer order by revenue desc limit 3 offset 6`
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	r1 := Render(q)
	q2, err := Parse(r1)
	if err != nil {
		t.Fatalf("Parse(%s): %v", r1, err)
	}
	if r2 := Render(q2); r2 != r1 {
		t.Fatalf("render not a fixed point: %q then %q", r1, r2)
	}
	want := "SELECT customer, SUM(price) AS revenue FROM R1 GROUP BY customer ORDER BY revenue DESC LIMIT 3 OFFSET 6"
	if r1 != want {
		t.Fatalf("Render = %q, want %q", r1, want)
	}
}
