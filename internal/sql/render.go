package sql

import (
	"strconv"
	"strings"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

// Render serialises a query back to SQL text accepted by Parse. It is
// the inverse the distributed coordinator relies on to rewrite a parsed
// statement for shard workers — strip or shrink LIMIT/OFFSET, drop
// HAVING, alias aggregates, resume a failed stream at an offset — and
// round-trips: Parse(Render(q)) is structurally identical to q for
// every query in the supported subset.
//
// Rendering is canonical (upper-case keywords, single spaces), so equal
// queries render to equal strings; it is not Normalize, which
// canonicalises unparsed text.
func Render(q *query.Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.IsAggregate() {
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g)
		}
		for i, a := range q.Aggregates {
			if i > 0 || len(q.GroupBy) > 0 {
				b.WriteString(", ")
			}
			b.WriteString(renderAggregate(a))
		}
	} else if len(q.Projection) > 0 {
		b.WriteString(strings.Join(q.Projection, ", "))
	} else {
		b.WriteString("*")
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Relations, ", "))

	var conds []string
	for _, e := range q.Equalities {
		conds = append(conds, e.A+" = "+e.B)
	}
	for _, f := range q.Filters {
		conds = append(conds, f.Attr+" "+renderOp(f.Op)+" "+renderValue(f.Const))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(q.GroupBy, ", "))
	}
	if len(q.Having) > 0 {
		hs := make([]string, len(q.Having))
		for i, h := range q.Having {
			hs[i] = h.Attr + " " + renderOp(h.Op) + " " + renderValue(h.Const)
		}
		b.WriteString(" HAVING ")
		b.WriteString(strings.Join(hs, " AND "))
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Attr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(q.Offset))
	}
	return b.String()
}

func renderAggregate(a query.Aggregate) string {
	arg := a.Arg
	if a.Fn == query.Count && arg == "" {
		arg = "*"
	}
	s := strings.ToUpper(a.Fn.String()) + "(" + arg + ")"
	if a.As != "" {
		s += " AS " + a.As
	}
	return s
}

func renderOp(op fops.CmpOp) string {
	switch op {
	case fops.EQ:
		return "="
	case fops.NE:
		return "<>"
	case fops.LT:
		return "<"
	case fops.LE:
		return "<="
	case fops.GT:
		return ">"
	case fops.GE:
		return ">="
	default:
		return "?"
	}
}

// renderValue renders a literal the lexer reads back: decimal integers,
// plain decimal floats (the lexer has no exponent form), single-quoted
// strings with ” escaping.
func renderValue(v values.Value) string {
	switch v.Kind() {
	case values.Int:
		return strconv.FormatInt(v.Int(), 10)
	case values.Float:
		s := strconv.FormatFloat(v.Float(), 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0" // keep the literal a float on re-parse
		}
		return s
	case values.String:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	default:
		return v.String()
	}
}
