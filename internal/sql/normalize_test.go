package sql

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"SELECT  *\n FROM Items ;", "SELECT * FROM Items"},
		{"select * from Items", "SELECT * FROM Items"},
		{"SELECT name FROM T WHERE x = 'a  b'", "SELECT name FROM T WHERE x = 'a  b'"},
		{"SELECT name FROM T WHERE x = 'it''s'", "SELECT name FROM T WHERE x = 'it''s'"},
		// Only one trailing semicolon is dropped (matching the parser);
		// a doubled terminator keeps a distinct key so it cannot collide
		// with a cached valid statement.
		{"SELECT * FROM Items;;", "SELECT * FROM Items ;"},
		// Unlexable input falls back to whitespace collapsing.
		{"SELECT !\tbroken", "SELECT ! broken"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if Normalize("SELECT * FROM items") == Normalize("SELECT * FROM Items") {
		t.Error("identifier case must be preserved")
	}
}
