package sql

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"SELECT  *\n FROM Items ;", "SELECT * FROM Items"},
		{"select * from Items", "SELECT * FROM Items"},
		{"SELECT name FROM T WHERE x = 'a  b'", "SELECT name FROM T WHERE x = 'a  b'"},
		{"SELECT name FROM T WHERE x = 'it''s'", "SELECT name FROM T WHERE x = 'it''s'"},
		// Only one trailing semicolon is dropped (matching the parser);
		// a doubled terminator keeps a distinct key so it cannot collide
		// with a cached valid statement.
		{"SELECT * FROM Items;;", "SELECT * FROM Items ;"},
		// Unlexable input falls back to whitespace collapsing.
		{"SELECT !\tbroken", "SELECT ! broken"},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if Normalize("SELECT * FROM items") == Normalize("SELECT * FROM Items") {
		t.Error("identifier case must be preserved")
	}
}

// TestNormalizeKeepsLimitOffsetLiterals asserts statements differing
// only in a LIMIT or OFFSET literal normalise to distinct keys: the
// plan cache keys on Normalize, so a collision here would serve a
// cached λk+m plan across different k or m.
func TestNormalizeKeepsLimitOffsetLiterals(t *testing.T) {
	base := "SELECT a FROM R ORDER BY a"
	variants := []string{
		base,
		base + " LIMIT 5",
		base + " LIMIT 10",
		base + " LIMIT 5 OFFSET 10",
		base + " LIMIT 5 OFFSET 20",
		base + " LIMIT 10 OFFSET 5",
		base + " OFFSET 5",
	}
	seen := map[string]string{}
	for _, v := range variants {
		key := Normalize(v)
		if prev, dup := seen[key]; dup {
			t.Errorf("Normalize conflates %q and %q (both %q)", prev, v, key)
		}
		seen[key] = v
	}
	// Other literal kinds must stay distinct too.
	if Normalize("SELECT a FROM R WHERE a = 1") == Normalize("SELECT a FROM R WHERE a = 2") {
		t.Error("Normalize conflates distinct numeric comparison literals")
	}
	if Normalize("SELECT a FROM R WHERE a = 'x'") == Normalize("SELECT a FROM R WHERE a = 'y'") {
		t.Error("Normalize conflates distinct string literals")
	}
}
