package sql

import (
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

// DML statements:
//
//	INSERT INTO rel VALUES (lit, ...) [, (lit, ...)]...
//	UPSERT INTO rel VALUES (lit, ...) [, (lit, ...)]...
//	DELETE FROM rel [WHERE attr op lit [AND attr op lit]...]
//
// Literals are numbers, strings and NULL. UPSERT keys on the relation's
// first attribute: each new row replaces the existing rows whose first
// attribute compares equal.

// ParseStatement compiles one SQL statement — SELECT, INSERT, DELETE or
// UPSERT — into the logical model of package query. SELECT yields a
// *query.Query, the DML verbs a *query.Mutation.
func ParseStatement(input string) (query.Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt query.Statement
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "INSERT":
		stmt, err = p.parseWrite(query.OpInsert)
	case t.kind == tokKeyword && t.text == "UPSERT":
		stmt, err = p.parseWrite(query.OpUpsert)
	case t.kind == tokKeyword && t.text == "DELETE":
		stmt, err = p.parseDelete()
	default:
		stmt, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf(p.peek(), "unexpected %q after statement", p.peek().text)
	}
	switch s := stmt.(type) {
	case *query.Query:
		err = s.Validate()
	case *query.Mutation:
		err = s.Validate()
	}
	if err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseWrite parses the shared body of INSERT and UPSERT:
// <verb> INTO rel VALUES (row) [, (row)]...
func (p *parser) parseWrite(op query.MutOp) (*query.Mutation, error) {
	p.next() // the verb, already inspected by the caller
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected relation name, got %q", t.text)
	}
	m := &query.Mutation{Op: op, Relation: t.text}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		row, err := p.parseRow()
		if err != nil {
			return nil, err
		}
		m.Rows = append(m.Rows, row)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	return m, nil
}

// parseRow parses one parenthesised literal row.
func (p *parser) parseRow() ([]values.Value, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var row []values.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return row, nil
}

// parseLiteral parses one value literal: a number, a string, or NULL.
func (p *parser) parseLiteral() (values.Value, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber, t.kind == tokString:
		return literal(t), nil
	case t.kind == tokKeyword && t.text == "NULL":
		return values.NullValue(), nil
	default:
		return values.Value{}, p.errf(t, "expected literal, got %q", t.text)
	}
}

// parseDelete parses DELETE FROM rel [WHERE cond [AND cond]...]; every
// condition compares an attribute with a constant.
func (p *parser) parseDelete() (*query.Mutation, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected relation name, got %q", t.text)
	}
	m := &query.Mutation{Op: query.OpDelete, Relation: t.text}
	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		for {
			f, err := p.parseDeleteCond()
			if err != nil {
				return nil, err
			}
			m.Where = append(m.Where, f)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	return m, nil
}

func (p *parser) parseDeleteCond() (query.Filter, error) {
	lhs := p.next()
	if lhs.kind != tokIdent {
		return query.Filter{}, p.errf(lhs, "expected attribute in WHERE, got %q", lhs.text)
	}
	opTok := p.next()
	op, err := parseOp(opTok.text)
	if err != nil {
		return query.Filter{}, p.errf(opTok, "unknown operator %q", opTok.text)
	}
	rhs := p.next()
	if rhs.kind != tokNumber && rhs.kind != tokString {
		return query.Filter{}, p.errf(rhs, "expected literal in WHERE, got %q", rhs.text)
	}
	return query.Filter{Attr: lhs.text, Op: op, Const: literal(rhs)}, nil
}
