package sql

import "strings"

// Normalize returns a canonical one-line spelling of a SQL statement:
// tokens separated by single spaces, keywords uppercased, string
// literals re-quoted, and a trailing semicolon dropped. Two statements
// that differ only in whitespace, keyword case or a trailing semicolon
// normalise to the same text, which makes the result a good plan-cache
// key. Identifier case is preserved (identifiers are case-sensitive).
//
// Input that does not tokenise falls back to whitespace collapsing, so
// Normalize is total: the caller can key a cache by the result and let
// the parser report the error on the (single) miss.
func Normalize(input string) string {
	toks, err := lex(input)
	if err != nil {
		return strings.Join(strings.Fields(input), " ")
	}
	// Trim the EOF token and at most one trailing semicolon — exactly
	// what the parser accepts. Statements the parser rejects (stray
	// mid-statement or doubled terminators) keep their semicolons and
	// therefore distinct cache keys, so they fail consistently instead
	// of colliding with a cached valid statement.
	end := len(toks) - 1
	if end > 0 && toks[end-1].kind == tokSymbol && toks[end-1].text == ";" {
		end--
	}
	var b strings.Builder
	for _, t := range toks[:end] {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokString {
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		} else {
			b.WriteString(t.text)
		}
	}
	return b.String()
}
