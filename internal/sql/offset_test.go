package sql

import (
	"strings"
	"testing"
)

func TestParseLimitOffset(t *testing.T) {
	q, err := Parse(`SELECT a FROM R ORDER BY a LIMIT 5 OFFSET 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 || q.Offset != 10 {
		t.Fatalf("limit=%d offset=%d, want 5, 10", q.Limit, q.Offset)
	}
}

func TestParseOffsetWithoutLimit(t *testing.T) {
	q, err := Parse(`SELECT a FROM R ORDER BY a OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 0 || q.Offset != 3 {
		t.Fatalf("limit=%d offset=%d, want 0, 3", q.Limit, q.Offset)
	}
}

func TestParseOffsetErrors(t *testing.T) {
	for _, stmt := range []string{
		`SELECT a FROM R OFFSET`,
		`SELECT a FROM R OFFSET x`,
		`SELECT a FROM R OFFSET -1`,
		`SELECT a FROM R OFFSET 1 LIMIT 2`, // OFFSET must follow LIMIT
	} {
		if _, err := Parse(stmt); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", stmt)
		}
	}
}

// TestParseErrorsCarryPosition asserts parse errors name the byte
// position of the offending token.
func TestParseErrorsCarryPosition(t *testing.T) {
	cases := []struct {
		stmt string
		frag string
	}{
		{`SELECT a FROM R LIMIT x`, "at position 23"},
		{`SELECT a FROM R OFFSET x`, "at position 24"},
		{`SELECT a FROM 5`, "at position 15"},
		{`SELECT a FROM R WHERE = 3`, "at position 23"},
	}
	for _, c := range cases {
		_, err := Parse(c.stmt)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.stmt)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.stmt, err, c.frag)
		}
	}
}

// TestNormalizeOffsetSpelling asserts the OFFSET clause normalises to a
// canonical spelling, keeping plan-cache keys stable across clients.
func TestNormalizeOffsetSpelling(t *testing.T) {
	variants := []string{
		"SELECT a FROM R LIMIT 5 OFFSET 10",
		"select a from R limit 5 offset 10;",
		"SELECT  a\nFROM R\n LIMIT 5\tOffset 10",
	}
	want := Normalize(variants[0])
	if !strings.Contains(want, "OFFSET 10") {
		t.Fatalf("Normalize did not uppercase OFFSET: %q", want)
	}
	for _, v := range variants[1:] {
		if got := Normalize(v); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", v, got, want)
		}
	}
}
