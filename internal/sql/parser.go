package sql

import (
	"fmt"
	"strconv"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

// Parse compiles one SELECT statement into the logical query model.
func Parse(input string) (*query.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf(p.peek(), "unexpected %q after statement", p.peek().text)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// errf builds a parse error carrying the byte position of the offending
// token, so callers see where in the statement the parse failed.
func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("sql: %s at position %d", fmt.Sprintf(format, args...), t.pos+1)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf(t, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return p.errf(t, "expected %q, got %q", sym, t.text)
	}
	return nil
}

// parseCount parses the non-negative integer operand of LIMIT or OFFSET.
func (p *parser) parseCount(clause string) (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errf(t, "expected number after %s, got %q", clause, t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf(t, "invalid %s %q", clause, t.text)
	}
	return n, nil
}

// selectItem is one SELECT-list entry before classification.
type selectItem struct {
	attr string // plain attribute, or
	agg  *query.Aggregate
}

func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &query.Query{}
	star := false
	var items []selectItem
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.next()
		star = true
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected relation name, got %q", t.text)
		}
		q.Relations = append(q.Relations, t.text)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}

	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		for {
			if err := p.parseCondition(q); err != nil {
				return nil, err
			}
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "GROUP" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, p.errf(t, "expected attribute in GROUP BY, got %q", t.text)
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "HAVING" {
		p.next()
		for {
			f, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			q.Having = append(q.Having, f)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "ORDER" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, p.errf(t, "expected attribute in ORDER BY, got %q", t.text)
			}
			item := query.OrderItem{Attr: t.text}
			if p.peek().kind == tokKeyword && (p.peek().text == "ASC" || p.peek().text == "DESC") {
				item.Desc = p.next().text == "DESC"
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "LIMIT" {
		p.next()
		n, err := p.parseCount("LIMIT")
		if err != nil {
			return nil, err
		}
		q.Limit = n
	}

	if p.peek().kind == tokKeyword && p.peek().text == "OFFSET" {
		p.next()
		n, err := p.parseCount("OFFSET")
		if err != nil {
			return nil, err
		}
		q.Offset = n
	}

	// Classify the select list.
	hasAgg := false
	for _, it := range items {
		if it.agg != nil {
			hasAgg = true
		}
	}
	switch {
	case hasAgg:
		inG := map[string]bool{}
		for _, g := range q.GroupBy {
			inG[g] = true
		}
		for _, it := range items {
			if it.agg != nil {
				q.Aggregates = append(q.Aggregates, *it.agg)
				continue
			}
			if !inG[it.attr] {
				return nil, fmt.Errorf("sql: attribute %q must appear in GROUP BY", it.attr)
			}
		}
	case star:
		// Projection empty = all attributes.
	default:
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: GROUP BY without aggregates in the SELECT list")
		}
		for _, it := range items {
			q.Projection = append(q.Projection, it.attr)
		}
	}
	return q, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.next()
	if t.kind == tokKeyword {
		var fn query.AggFn
		switch t.text {
		case "COUNT":
			fn = query.Count
		case "SUM":
			fn = query.Sum
		case "MIN":
			fn = query.Min
		case "MAX":
			fn = query.Max
		case "AVG":
			fn = query.Avg
		default:
			return selectItem{}, p.errf(t, "unexpected keyword %q in SELECT list", t.text)
		}
		if err := p.expectSymbol("("); err != nil {
			return selectItem{}, err
		}
		agg := &query.Aggregate{Fn: fn}
		arg := p.next()
		switch {
		case arg.kind == tokSymbol && arg.text == "*" && fn == query.Count:
			// count(*)
		case arg.kind == tokIdent:
			agg.Arg = arg.text
		default:
			return selectItem{}, p.errf(arg, "bad aggregate argument %q", arg.text)
		}
		if err := p.expectSymbol(")"); err != nil {
			return selectItem{}, err
		}
		if p.peek().kind == tokKeyword && p.peek().text == "AS" {
			p.next()
			alias := p.next()
			if alias.kind != tokIdent {
				return selectItem{}, p.errf(alias, "expected alias after AS, got %q", alias.text)
			}
			agg.As = alias.text
		}
		return selectItem{agg: agg}, nil
	}
	if t.kind != tokIdent {
		return selectItem{}, p.errf(t, "expected attribute or aggregate, got %q", t.text)
	}
	return selectItem{attr: t.text}, nil
}

func parseOp(text string) (fops.CmpOp, error) {
	switch text {
	case "=":
		return fops.EQ, nil
	case "<>", "!=":
		return fops.NE, nil
	case "<":
		return fops.LT, nil
	case "<=":
		return fops.LE, nil
	case ">":
		return fops.GT, nil
	case ">=":
		return fops.GE, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", text)
	}
}

func (p *parser) parseCondition(q *query.Query) error {
	lhs := p.next()
	if lhs.kind != tokIdent {
		return p.errf(lhs, "expected attribute in WHERE, got %q", lhs.text)
	}
	opTok := p.next()
	if opTok.kind != tokSymbol {
		return p.errf(opTok, "expected comparison operator, got %q", opTok.text)
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return p.errf(opTok, "unknown operator %q", opTok.text)
	}
	rhs := p.next()
	switch rhs.kind {
	case tokIdent:
		if op != fops.EQ {
			return p.errf(opTok, "only equality is supported between attributes (%s %s %s)", lhs.text, opTok.text, rhs.text)
		}
		q.Equalities = append(q.Equalities, query.Equality{A: lhs.text, B: rhs.text})
	case tokNumber, tokString:
		q.Filters = append(q.Filters, query.Filter{Attr: lhs.text, Op: op, Const: literal(rhs)})
	default:
		return p.errf(rhs, "expected attribute or literal, got %q", rhs.text)
	}
	return nil
}

func (p *parser) parseHavingCond() (query.Filter, error) {
	lhs := p.next()
	if lhs.kind != tokIdent {
		return query.Filter{}, p.errf(lhs, "expected aggregate alias in HAVING, got %q", lhs.text)
	}
	opTok := p.next()
	op, err := parseOp(opTok.text)
	if err != nil {
		return query.Filter{}, p.errf(opTok, "unknown operator %q", opTok.text)
	}
	rhs := p.next()
	if rhs.kind != tokNumber && rhs.kind != tokString {
		return query.Filter{}, p.errf(rhs, "expected literal in HAVING, got %q", rhs.text)
	}
	return query.Filter{Attr: lhs.text, Op: op, Const: literal(rhs)}, nil
}

func literal(t token) values.Value {
	if t.kind == tokString {
		return values.NewString(t.text)
	}
	return values.Parse(t.text)
}
