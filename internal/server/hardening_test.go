package server

// Hardening regressions for the streaming and plan-cache paths: a
// client abort mid-row must still return the pooled store and must not
// emit a trailer after a partial row, and the plan cache must never
// conflate statements differing in LIMIT/OFFSET literals nor share
// ExecShared base snapshots across databases.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/engine"
)

// abortWriter is a ResponseWriter whose Write fails once a byte budget
// is spent, completing a partial write first — the observable shape of
// a client that disconnects mid-row.
type abortWriter struct {
	hdr    http.Header
	buf    bytes.Buffer
	budget int
	status int
}

func (w *abortWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}

func (w *abortWriter) WriteHeader(code int) { w.status = code }

func (w *abortWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("client gone")
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		w.buf.Write(p[:n])
		return n, errors.New("client gone")
	}
	w.budget -= len(p)
	w.buf.Write(p)
	return len(p), nil
}

func (w *abortWriter) Flush() {}

// bigServer serves one large relation so streams span many rows.
func bigServer(t *testing.T, rows int, cfg Config) *Server {
	t.Helper()
	var csv strings.Builder
	csv.WriteString("k,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%d,%d\n", i, i%97)
	}
	rel, err := fdb.ReadCSV("Big", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Databases = map[string]fdb.Database{"big": {"Big": rel}}
	return newTestServer(t, cfg)
}

// TestNDJSONAbortMidRowReturnsStore aborts the response writer partway
// through a row: the handler must close the cursor (returning the
// pooled store exactly once) and must not write a trailer after the
// partial row.
func TestNDJSONAbortMidRowReturnsStore(t *testing.T) {
	s := bigServer(t, 20000, Config{})
	body, _ := json.Marshal(QueryRequest{SQL: `SELECT k, v FROM Big ORDER BY k`})
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	r.Header.Set("Accept", "application/x-ndjson")
	// Enough budget for the header and a few hundred rows, then a
	// partial write of a row.
	w := &abortWriter{budget: 2100}
	before := engine.StorePoolReturns()
	s.ServeHTTP(w, r)
	if d := engine.StorePoolReturns() - before; d != 1 {
		t.Fatalf("pooled store returned %d times after aborted stream, want exactly 1", d)
	}
	out := w.buf.String()
	if strings.Contains(out, `"rowCount"`) {
		t.Fatalf("trailer written after a partial row:\n...%s", out[len(out)-200:])
	}
	if strings.HasSuffix(out, "\n") {
		t.Fatalf("output ends on a line boundary; the abort should have cut a row mid-line")
	}
	// The server must still answer cleanly afterwards.
	resp, rec := postQuery(t, s, QueryRequest{SQL: `SELECT k FROM Big WHERE k < 3 ORDER BY k`})
	if resp == nil {
		t.Fatalf("follow-up query failed: %s", rec.Body)
	}
	if resp.RowCount != 3 {
		t.Fatalf("follow-up rowCount = %d, want 3", resp.RowCount)
	}
}

// TestNDJSONAbortBeforeRowsReturnsStore aborts so early that even the
// header write fails.
func TestNDJSONAbortBeforeRowsReturnsStore(t *testing.T) {
	s := bigServer(t, 5000, Config{})
	body, _ := json.Marshal(QueryRequest{SQL: `SELECT k FROM Big ORDER BY k`})
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	r.Header.Set("Accept", "application/x-ndjson")
	w := &abortWriter{budget: 0}
	before := engine.StorePoolReturns()
	s.ServeHTTP(w, r)
	if d := engine.StorePoolReturns() - before; d != 1 {
		t.Fatalf("pooled store returned %d times, want exactly 1", d)
	}
	if w.buf.Len() != 0 {
		t.Fatalf("wrote %d bytes on a dead connection", w.buf.Len())
	}
}

// TestPlanCacheKeysLimitOffsetLiterals asserts statements differing
// only in LIMIT/OFFSET literals get distinct cache entries: a cached
// λk+m plan must never be served for different k or m.
func TestPlanCacheKeysLimitOffsetLiterals(t *testing.T) {
	s := newTestServer(t, Config{})
	base := `SELECT item2, price FROM Items ORDER BY item2`
	cases := []struct {
		sql  string
		want int
	}{
		{base + ` LIMIT 1`, 1},
		{base + ` LIMIT 2`, 2},
		{base + ` LIMIT 3`, 3},
		{base + ` LIMIT 2 OFFSET 3`, 1}, // Items has 4 rows
		{base + ` LIMIT 2 OFFSET 1`, 2},
	}
	// First pass compiles, second pass must hit the cache and still
	// honour each statement's own literals.
	for pass := 0; pass < 2; pass++ {
		for _, c := range cases {
			resp, rec := postQuery(t, s, QueryRequest{SQL: c.sql})
			if resp == nil {
				t.Fatalf("%s: %s", c.sql, rec.Body)
			}
			if resp.RowCount != c.want {
				t.Fatalf("pass %d: %s returned %d rows, want %d", pass, c.sql, resp.RowCount, c.want)
			}
			if pass == 1 && !resp.Cached {
				t.Fatalf("pass 1: %s did not hit the plan cache", c.sql)
			}
		}
	}
}

// TestPlanCacheNotSharedAcrossDatabases primes the same (identically
// normalising) statement on two databases: each must serve its own
// data — a shared ExecShared snapshot would leak one catalogue's rows
// into the other.
func TestPlanCacheNotSharedAcrossDatabases(t *testing.T) {
	mk := func(price int) fdb.Database {
		rel, err := fdb.ReadCSV("Items", strings.NewReader(fmt.Sprintf("item2,price\nx,%d\n", price)))
		if err != nil {
			t.Fatal(err)
		}
		return fdb.Database{"Items": rel}
	}
	s := newTestServer(t, Config{
		Databases: map[string]fdb.Database{"a": mk(1), "b": mk(2)},
		DefaultDB: "a",
	})
	const q = `SELECT price FROM Items`
	check := func(db string, want float64) {
		t.Helper()
		// Twice: compile pass and cached pass.
		for pass := 0; pass < 2; pass++ {
			resp, rec := postQuery(t, s, QueryRequest{SQL: q, DB: db})
			if resp == nil {
				t.Fatalf("db %s: %s", db, rec.Body)
			}
			if len(resp.Rows) != 1 || resp.Rows[0][0].(float64) != want {
				t.Fatalf("db %s pass %d: rows = %v, want [[%v]]", db, pass, resp.Rows, want)
			}
		}
	}
	check("a", 1)
	check("b", 2) // must not see a's snapshot despite the identical key
	check("a", 1) // and a must still see its own after b primed
}
