package server

// Tests for the write path endpoints: POST /exec DML, POST /compact and
// the writable gauges on /stats.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/factordb/fdb"
)

// newMutableServer backs the pizzeria database with a mutable catalogue
// in a temp directory.
func newMutableServer(t *testing.T) (*Server, *fdb.MutableCatalog) {
	t.Helper()
	m, err := fdb.CreateMutable(filepath.Join(t.TempDir(), "cat"), "pizzeria", pizzeria(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	s, err := New(Config{Mutables: map[string]*fdb.MutableCatalog{"pizzeria": m}})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func postJSON(t *testing.T, h http.Handler, path string, req any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	return rec
}

func postExec(t *testing.T, h http.Handler, req ExecRequest) (*ExecResponse, *httptest.ResponseRecorder) {
	t.Helper()
	rec := postJSON(t, h, "/exec", req)
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var resp ExecResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, rec.Body)
	}
	return &resp, rec
}

func TestExecRoundTrip(t *testing.T) {
	s, _ := newMutableServer(t)

	// Anna orders a Margherita (base only, price 6) on Sunday.
	resp, rec := postExec(t, s, ExecRequest{SQL: `INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita')`})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.RowsAffected != 1 || resp.Generation != 1 {
		t.Fatalf("exec response = %+v", resp)
	}

	// The write is immediately visible to /query.
	qr, qrec := postQuery(t, s, QueryRequest{SQL: revenueSQL})
	if qr == nil {
		t.Fatalf("status %d: %s", qrec.Code, qrec.Body)
	}
	if qr.RowCount != 4 {
		t.Fatalf("rowCount after insert = %d, want 4", qr.RowCount)
	}
	var annaRevenue float64
	for _, row := range qr.Rows {
		if row[0] == "Anna" {
			annaRevenue = row[1].(float64)
		}
	}
	if annaRevenue != 6 {
		t.Fatalf("Anna's revenue = %v, want 6", annaRevenue)
	}

	// Deleting her order restores the original result.
	resp, rec = postExec(t, s, ExecRequest{SQL: `DELETE FROM Orders WHERE customer = 'Anna'`})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.RowsAffected != 1 || resp.Generation != 2 {
		t.Fatalf("exec response = %+v", resp)
	}
	if qr, _ := postQuery(t, s, QueryRequest{SQL: revenueSQL}); qr == nil || qr.RowCount != 3 {
		t.Fatalf("rowCount after delete = %+v", qr)
	}

	// An upsert re-pricing ham changes revenues through the join.
	if resp, rec := postExec(t, s, ExecRequest{SQL: `UPSERT INTO Items VALUES ('ham', 2)`}); resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	qr, _ = postQuery(t, s, QueryRequest{SQL: revenueSQL})
	if qr == nil {
		t.Fatal("query after upsert failed")
	}
	// Mario: 2×Capricciosa (base 6 + ham 2 + mushrooms 1 = 9) + Margherita 6 = 24.
	if got := qr.Rows[0]; got[0] != "Mario" || got[1] != float64(24) {
		t.Fatalf("top row after upsert = %v, want [Mario 24]", got)
	}
}

func TestExecErrors(t *testing.T) {
	s, _ := newMutableServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/exec", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /exec status = %d", rec.Code)
	}
	if _, rec := postExec(t, s, ExecRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty sql status = %d", rec.Code)
	}
	if _, rec := postExec(t, s, ExecRequest{SQL: "INSERT INTO", DB: "pizzeria"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error status = %d", rec.Code)
	}
	if _, rec := postExec(t, s, ExecRequest{SQL: "SELECT * FROM Items"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("SELECT via /exec status = %d", rec.Code)
	}
	if _, rec := postExec(t, s, ExecRequest{SQL: "DELETE FROM Orders", DB: "nope"}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown db status = %d", rec.Code)
	}
	if _, rec := postExec(t, s, ExecRequest{SQL: `INSERT INTO Nope VALUES (1)`}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown relation status = %d", rec.Code)
	}

	// A static database rejects writes.
	static := newTestServer(t, Config{})
	if _, rec := postExec(t, static, ExecRequest{SQL: `DELETE FROM Orders`}); rec.Code != http.StatusBadRequest {
		t.Fatalf("read-only db status = %d", rec.Code)
	}
}

func TestCompactEndpoint(t *testing.T) {
	s, m := newMutableServer(t)
	if resp, rec := postExec(t, s, ExecRequest{SQL: `INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita')`}); resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}

	rec := postJSON(t, s, "/compact", CompactRequest{})
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", rec.Code, rec.Body)
	}
	var resp CompactResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.WALEpoch != 2 {
		t.Fatalf("walEpoch = %d, want 2", resp.WALEpoch)
	}
	if st := m.Stats(); st.Compactions != 1 || st.DeltaRows != 0 {
		t.Fatalf("stats after compact: %+v", st)
	}

	// Queries still see the write after compaction.
	if qr, _ := postQuery(t, s, QueryRequest{SQL: revenueSQL}); qr == nil || qr.RowCount != 4 {
		t.Fatalf("post-compaction query = %+v", qr)
	}

	if rec := postJSON(t, s, "/compact", CompactRequest{DB: "nope"}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown db compact status = %d", rec.Code)
	}
	static := newTestServer(t, Config{})
	if rec := postJSON(t, static, "/compact", CompactRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("read-only compact status = %d", rec.Code)
	}
}

func TestStatsWritableGauges(t *testing.T) {
	s, _ := newMutableServer(t)
	if resp, rec := postExec(t, s, ExecRequest{SQL: `INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita')`}); resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if _, rec := postExec(t, s, ExecRequest{SQL: `SELECT`}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad statement status = %d", rec.Code)
	}
	st := serveStats(t, s)
	if st.Execs != 1 || st.ExecErrors != 1 || st.RowsWritten != 1 {
		t.Fatalf("stats = execs %d errors %d rows %d", st.Execs, st.ExecErrors, st.RowsWritten)
	}
	ds, ok := st.Databases["pizzeria"]
	if !ok || !ds.Writable || ds.Mutable == nil {
		t.Fatalf("database stats = %+v", ds)
	}
	if ds.Mutable.Generation != 1 || ds.Mutable.InsertRows != 1 || ds.Mutable.WALRecords != 1 {
		t.Fatalf("mutable stats = %+v", ds.Mutable)
	}
	if ds.Mutable.WALBytes == 0 {
		t.Fatal("WALBytes gauge is zero after a logged write")
	}
}
