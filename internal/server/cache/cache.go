// Package cache provides a concurrency-safe LRU cache with hit/miss
// accounting. The query server uses it to memoise prepared query plans
// keyed by normalised SQL text, so repeated queries skip parsing, path-
// order search and f-plan optimisation.
package cache

import (
	"container/list"
	"sync"
)

// LRU is a fixed-capacity least-recently-used cache. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use.
type LRU struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type entry struct {
	key string
	val any
}

// New returns an empty cache holding at most capacity entries. A
// capacity below 1 is treated as 1.
func New(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value cached under key, marking it most recently used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put caches val under key, evicting the least recently used entry when
// the cache is full. Putting an existing key updates its value and marks
// it most recently used.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	el := c.ll.PushFront(&entry{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}
