package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a becomes most recently used
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should be cached", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPutExisting(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want 2", v)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("capacity clamps to 1; a should be cached")
	}
	c.Put("b", 2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted at capacity 1")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g+i)%32)
				if v, ok := c.Get(k); ok {
					_ = v.(int)
				} else {
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Fatalf("len = %d exceeds capacity", n)
	}
}
