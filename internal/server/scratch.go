package server

import (
	"slices"
	"sync"
)

// rowScratch is the per-query response-building scratch: the rows slice
// and one flat cell arena that individual rows are sliced from. Both
// are recycled through a sync.Pool so the steady-state query path does
// not allocate a fresh buffer per row.
//
// Rows are handed out as sub-slices of cells; when cells grows past its
// capacity the earlier rows keep pointing into the previous backing
// array, which stays valid — growth only costs the reuse of that one
// request's spill, not correctness.
type rowScratch struct {
	rows  [][]any
	cells []any
}

// row returns a fresh w-wide row backed by the cell arena. The caller
// collects rows into a slice seeded with sc.rows[:0] and writes it back
// to sc.rows afterwards, so the pool retains the grown capacity.
func (sc *rowScratch) row(w int) []any {
	n := len(sc.cells)
	sc.cells = slices.Grow(sc.cells, w)[:n+w]
	return sc.cells[n : n+w : n+w]
}

// maxPooledCells bounds how much cell memory a pooled scratch may pin
// between requests; larger buffers are dropped for the GC.
const maxPooledCells = 1 << 16

var scratchPool = sync.Pool{New: func() any { return &rowScratch{} }}

func getScratch() *rowScratch {
	sc := scratchPool.Get().(*rowScratch)
	if sc.rows == nil {
		// Non-nil so an empty result encodes as [] rather than null.
		sc.rows = make([][]any, 0, 16)
	}
	sc.rows = sc.rows[:0]
	sc.cells = sc.cells[:0]
	return sc
}

// putScratch returns the scratch to the pool after the response has been
// encoded. Cells are cleared so pooled buffers do not pin row values.
func putScratch(sc *rowScratch) {
	if cap(sc.cells) > maxPooledCells {
		return
	}
	clear(sc.cells[:cap(sc.cells)])
	clear(sc.rows[:cap(sc.rows)])
	scratchPool.Put(sc)
}
