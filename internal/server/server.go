// Package server implements the fdbserver HTTP/JSON query service: one
// or more databases are loaded into a shared read-only in-memory store
// and queried concurrently over POST /query, executing through the fdb
// facade.
//
// The hot path is lock-free with respect to the data: base relations are
// never mutated, f-plan operators build new factorisation structure
// rather than rewriting inputs, and every request enumerates its own
// result, so any number of readers can share one store. Each cached
// plan keeps an immutable arena-store snapshot of its factorised base
// relations (Prepared.ExecShared); a query starts from a slab copy of
// that snapshot in a pooled store and returns it when done
// (Result.Close), and response row buffers likewise come from a
// sync.Pool — so the steady-state query path allocates only on
// high-water-mark growth. The only shared mutable state is the
// per-database LRU plan cache (package cache), which maps normalised
// SQL text to prepared plans so repeated queries skip parsing,
// path-order search and f-plan optimisation, and the metrics window
// behind /stats. A bounded worker pool (Config.Workers) caps the number
// of queries executing simultaneously; excess requests wait for a slot
// or give up when their context is cancelled.
//
// Endpoints:
//
//	POST /query    {"sql": "...", "db": "name"} → columns + rows JSON
//	GET  /healthz  liveness probe
//	GET  /stats    query counters, latency percentiles, cache hit rates
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server/cache"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
)

// Config configures a Server.
type Config struct {
	// Databases maps database names to their relations. The maps and
	// relations must not be modified after the server starts serving.
	Databases map[string]fdb.Database
	// DefaultDB names the database used when a request omits "db".
	// Optional when exactly one database is configured.
	DefaultDB string
	// Workers bounds the number of concurrently executing queries;
	// defaults to GOMAXPROCS.
	Workers int
	// CacheSize is the per-database plan cache capacity in entries;
	// defaults to 256.
	CacheSize int
	// MaxRows caps the number of rows returned per query (the response
	// is marked truncated when it applies); 0 means unlimited.
	MaxRows int
}

// database is one served database with its private plan cache.
type database struct {
	name  string
	db    fdb.Database
	plans *cache.LRU
}

// Server is the HTTP query service. Create with New; it implements
// http.Handler.
type Server struct {
	eng       *fdb.Engine
	dbs       map[string]*database
	defaultDB string
	sem       chan struct{}
	maxRows   int
	met       *metrics
	mux       *http.ServeMux
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	if len(cfg.Databases) == 0 {
		return nil, errors.New("server: no databases configured")
	}
	defaultDB := cfg.DefaultDB
	if defaultDB == "" {
		if len(cfg.Databases) > 1 {
			return nil, errors.New("server: DefaultDB required with multiple databases")
		}
		for name := range cfg.Databases {
			defaultDB = name
		}
	}
	if _, ok := cfg.Databases[defaultDB]; !ok {
		return nil, fmt.Errorf("server: default database %q not configured", defaultDB)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	s := &Server{
		eng:       fdb.NewEngine(),
		dbs:       make(map[string]*database, len(cfg.Databases)),
		defaultDB: defaultDB,
		sem:       make(chan struct{}, workers),
		maxRows:   cfg.MaxRows,
		met:       newMetrics(),
		mux:       http.NewServeMux(),
	}
	for name, db := range cfg.Databases {
		s.dbs[name] = &database{name: name, db: db, plans: cache.New(cacheSize)}
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the SELECT statement to execute.
	SQL string `json:"sql"`
	// DB names the target database; empty selects the default.
	DB string `json:"db,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Columns       []string `json:"columns"`
	Rows          [][]any  `json:"rows"`
	RowCount      int      `json:"rowCount"`
	Truncated     bool     `json:"truncated,omitempty"`
	Cached        bool     `json:"cached"`
	ElapsedMillis float64  `json:"elapsedMillis"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "sql"`})
		return
	}
	name := req.DB
	if name == "" {
		name = s.defaultDB
	}
	d, ok := s.dbs[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}

	// One worker slot covers planning and execution; waiting requests
	// abandon the queue when the client goes away.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while waiting for a worker"})
		return
	}

	// Per-query response scratch comes from a pool; it is released only
	// after the response has been encoded, since the rows alias it.
	sc := getScratch()
	start := time.Now()
	resp, err := s.runQuery(d, req.SQL, sc)
	elapsed := time.Since(start)
	s.met.record(elapsed, err != nil)
	if err != nil {
		putScratch(sc)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
	putScratch(sc)
}

// runQuery resolves the plan (through the cache) and enumerates the
// result into a response whose rows are backed by the pooled scratch.
//
// Execution goes through ExecShared: the server's relations are
// immutable by contract, so each cached plan keeps an arena-store
// snapshot of its factorised base relations and every query starts from
// a slab copy of it instead of re-sorting the base data. The copy lives
// in a pooled store that Result.Close recycles after enumeration.
func (s *Server) runQuery(d *database, sqlText string, sc *rowScratch) (*QueryResponse, error) {
	prep, cached, err := s.prepared(d, sqlText)
	if err != nil {
		return nil, err
	}
	res, err := prep.ExecShared(d.db)
	if err != nil {
		return nil, err
	}
	defer res.Close()
	resp := &QueryResponse{Columns: res.Schema(), Cached: cached, Rows: sc.rows[:0]}
	err = res.ForEach(func(t fdb.Tuple) bool {
		if s.maxRows > 0 && len(resp.Rows) >= s.maxRows {
			resp.Truncated = true
			return false
		}
		row := sc.row(len(t))
		for i, v := range t {
			row[i] = valueJSON(v)
		}
		resp.Rows = append(resp.Rows, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	sc.rows = resp.Rows
	resp.RowCount = len(resp.Rows)
	return resp, nil
}

// prepared returns the cached plan for the statement, compiling and
// caching it on a miss. Concurrent misses on one key may both compile;
// the results are interchangeable and the last Put wins, so no
// per-key locking is needed.
func (s *Server) prepared(d *database, sqlText string) (*fdb.PreparedQuery, bool, error) {
	key := sql.Normalize(sqlText)
	if v, ok := d.plans.Get(key); ok {
		return v.(*fdb.PreparedQuery), true, nil
	}
	q, err := fdb.ParseSQL(sqlText)
	if err != nil {
		return nil, false, err
	}
	p, err := s.eng.Prepare(q, d.db)
	if err != nil {
		return nil, false, err
	}
	d.plans.Put(key, p)
	return p, false, nil
}

// valueJSON converts an engine value to its JSON representation.
func valueJSON(v values.Value) any {
	switch v.Kind() {
	case values.Int:
		return v.Int()
	case values.Float:
		return v.Float()
	case values.String:
		return v.Str()
	case values.Bool:
		return v.Bool()
	case values.Vec:
		out := make([]any, v.VecLen())
		for i := range out {
			out[i] = valueJSON(v.VecAt(i))
		}
		return out
	default: // Null
		return nil
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"databases": len(s.dbs),
	})
}

// DBStats describes one database in the /stats response.
type DBStats struct {
	Relations        int         `json:"relations"`
	PlanCache        cache.Stats `json:"planCache"`
	PlanCacheHitRate float64     `json:"planCacheHitRate"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Snapshot
	Workers   int                `json:"workers"`
	Databases map[string]DBStats `json:"databases"`
}

// Stats returns the server's current metrics (also served at /stats).
func (s *Server) Stats() StatsResponse {
	out := StatsResponse{
		Snapshot:  s.met.snapshot(),
		Workers:   cap(s.sem),
		Databases: make(map[string]DBStats, len(s.dbs)),
	}
	for name, d := range s.dbs {
		cs := d.plans.Stats()
		out.Databases[name] = DBStats{
			Relations:        len(d.db),
			PlanCache:        cs,
			PlanCacheHitRate: cs.HitRate(),
		}
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
