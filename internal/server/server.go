// Package server implements the fdbserver HTTP/JSON query service: one
// or more databases are loaded into a shared read-only in-memory store
// and queried concurrently over POST /query, executing through the fdb
// facade.
//
// The hot path is lock-free with respect to the data: base relations are
// never mutated, f-plan operators build new factorisation structure
// rather than rewriting inputs, and every request enumerates its own
// result, so any number of readers can share one store. Each cached
// plan keeps an immutable arena-store snapshot of its factorised base
// relations (Prepared.ExecShared); a query starts from a slab copy of
// that snapshot in a pooled store and returns it when done
// (Result.Close), and response row buffers likewise come from a
// sync.Pool — so the steady-state query path allocates only on
// high-water-mark growth. The only shared mutable state is the
// per-database LRU plan cache (package cache), which maps normalised
// SQL text to prepared plans so repeated queries skip parsing,
// path-order search and f-plan optimisation, and the metrics window
// behind /stats. A bounded worker pool (Config.Workers) caps the number
// of queries executing simultaneously; excess requests wait for a slot
// or give up when their context is cancelled.
//
// Endpoints:
//
//	POST /query     {"sql": "...", "db": "name"} → columns + rows JSON
//	POST /exec      {"sql": "...", "db": "name"} → rows affected; DML
//	                (INSERT/DELETE/UPSERT) against a mutable database
//	POST /compact   fold a mutable database's WAL into a fresh snapshot
//	POST /snapshot  persist catalogues atomically to their configured
//	                snapshot paths (Config.Snapshots)
//	GET  /healthz   liveness probe (503 once draining)
//	GET  /stats     query counters, latency percentiles, cache hit rates,
//	                write and WAL/compaction gauges
//
// Databases configured through Config.Mutables are writable: queries run
// against the catalogue's current lock-free view (each write publishes a
// new immutable view, so in-flight queries are never disturbed), and
// /exec applies mutations durably through the write-ahead log.
//
// Shutdown is ordered: Drain refuses new work and waits out in-flight
// requests (streaming responses, snapshot writes) so the process can
// exit without cutting a cursor off mid-row.
//
// A request with "Accept: application/x-ndjson" streams instead of
// buffering: the response is newline-delimited JSON — a header object
// {"columns": ...}, one array per row straight off the engine's
// cursor, and a trailer object {"rowCount": ...} — so the first row
// arrives before enumeration completes and response memory stays O(1)
// in the result size. The stream is driven by the request context:
// a client that disconnects stops the enumeration promptly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server/cache"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
)

// Config configures a Server.
type Config struct {
	// Databases maps database names to their relations. The maps and
	// relations must not be modified after the server starts serving.
	Databases map[string]fdb.Database
	// DefaultDB names the database used when a request omits "db".
	// Optional when exactly one database is configured.
	DefaultDB string
	// Workers bounds the number of concurrently executing queries;
	// defaults to GOMAXPROCS.
	Workers int
	// Parallelism bounds the intra-query parallelism of each executing
	// query (segment workers over the factorised representation; see
	// fdb.Engine.Parallelism): 0 means GOMAXPROCS, 1 disables. On a
	// loaded server inter-query concurrency (Workers) usually saturates
	// the cores already; raise this for latency-sensitive workloads
	// with few concurrent heavy queries.
	Parallelism int
	// CacheSize is the per-database plan cache capacity in entries;
	// defaults to 256.
	CacheSize int
	// MaxRows caps the number of rows returned per query (the response
	// is marked truncated when it applies); 0 means unlimited.
	MaxRows int
	// Snapshots maps database names to catalogue snapshot paths. A
	// database with a path here can be persisted through POST /snapshot:
	// the catalogue (schema, flat tuples, factorised stores) is written
	// atomically — temp file, fsync, rename — so a crash mid-write never
	// clobbers the previous snapshot. Databases without a path are
	// skipped by /snapshot.
	Snapshots map[string]string
	// Mutables maps database names to opened mutable catalogues; these
	// databases accept DML through POST /exec and serve queries against
	// the catalogue's current view. Names must not collide with
	// Databases. The server does not close the catalogues; the caller
	// owns their lifecycle (close after Drain).
	Mutables map[string]*fdb.MutableCatalog
}

// database is one served database with its private plan cache. Exactly
// one of db (static, immutable) and mut (writable) is set.
type database struct {
	name  string
	db    fdb.Database
	mut   *fdb.MutableCatalog
	plans *cache.LRU
}

// data returns the relations to query: the static map, or the mutable
// catalogue's current lock-free view.
func (d *database) data() fdb.Database {
	if d.mut != nil {
		return d.mut.View()
	}
	return d.db
}

// Server is the HTTP query service. Create with New; it implements
// http.Handler.
type Server struct {
	eng       *fdb.Engine
	dbs       map[string]*database
	defaultDB string
	sem       chan struct{}
	maxRows   int
	snapshots map[string]string
	met       *metrics
	mux       *http.ServeMux

	// Write-path counters (mutable databases only).
	execs       atomic.Uint64
	execErrors  atomic.Uint64
	rowsWritten atomic.Int64

	// draining refuses new work once StartDrain/Drain has been called;
	// inflight counts requests (including streaming responses and
	// snapshot writes) that Drain must wait out before the process may
	// exit. A mutex-guarded counter rather than a sync.WaitGroup: the
	// counter legitimately reaches zero while new begin() calls race a
	// waiting Drain, which is exactly the Add-concurrent-with-Wait
	// pattern WaitGroup forbids.
	draining atomic.Bool
	drainMu  sync.Mutex
	inflight int
	// idle is non-nil while a Drain waits for inflight to reach zero;
	// the end() that takes the counter to zero closes it.
	idle chan struct{}
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	total := len(cfg.Databases) + len(cfg.Mutables)
	if total == 0 {
		return nil, errors.New("server: no databases configured")
	}
	for name := range cfg.Mutables {
		if _, dup := cfg.Databases[name]; dup {
			return nil, fmt.Errorf("server: database %q configured as both static and mutable", name)
		}
	}
	defaultDB := cfg.DefaultDB
	if defaultDB == "" {
		if total > 1 {
			return nil, errors.New("server: DefaultDB required with multiple databases")
		}
		for name := range cfg.Databases {
			defaultDB = name
		}
		for name := range cfg.Mutables {
			defaultDB = name
		}
	}
	if _, ok := cfg.Databases[defaultDB]; !ok {
		if _, ok := cfg.Mutables[defaultDB]; !ok {
			return nil, fmt.Errorf("server: default database %q not configured", defaultDB)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	eng := fdb.NewEngine()
	eng.Parallelism = cfg.Parallelism
	s := &Server{
		eng:       eng,
		dbs:       make(map[string]*database, total),
		defaultDB: defaultDB,
		sem:       make(chan struct{}, workers),
		maxRows:   cfg.MaxRows,
		snapshots: cfg.Snapshots,
		met:       newMetrics(),
		mux:       http.NewServeMux(),
	}
	for name := range cfg.Snapshots {
		if _, ok := cfg.Databases[name]; ok {
			continue
		}
		if _, ok := cfg.Mutables[name]; ok {
			continue
		}
		return nil, fmt.Errorf("server: snapshot path for unknown database %q", name)
	}
	for name, db := range cfg.Databases {
		s.dbs[name] = &database{name: name, db: db, plans: cache.New(cacheSize)}
	}
	for name, mut := range cfg.Mutables {
		s.dbs[name] = &database{name: name, mut: mut, plans: cache.New(cacheSize)}
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/exec", s.handleExec)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	return s, nil
}

// begin registers one unit of in-flight work unless the server is
// draining; it reports whether the caller may proceed (and must call
// end when done).
func (s *Server) begin() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) end() {
	s.drainMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.drainMu.Unlock()
}

// StartDrain transitions the server into shutdown without waiting: new
// queries and snapshot writes are refused with 503 Service Unavailable
// and /healthz turns unhealthy so load balancers stop routing. Call it
// before closing the listener so clients on kept-alive connections get
// a clean 503 instead of a reset; Drain calls it implicitly.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain is StartDrain plus the wait: it blocks until every in-flight
// request — including streaming responses holding open cursors and
// snapshot writes awaiting their atomic rename — has completed, or ctx
// expires. The process must not exit until Drain returns: exiting
// earlier would tear down enumerations mid-row. Drain is idempotent
// and safe to call concurrently.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	if s.inflight == 0 {
		s.drainMu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.drainMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Draining reports whether StartDrain or Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the SELECT statement to execute.
	SQL string `json:"sql"`
	// DB names the target database; empty selects the default.
	DB string `json:"db,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Columns       []string `json:"columns"`
	Rows          [][]any  `json:"rows"`
	RowCount      int      `json:"rowCount"`
	Truncated     bool     `json:"truncated,omitempty"`
	Cached        bool     `json:"cached"`
	ElapsedMillis float64  `json:"elapsedMillis"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "sql"`})
		return
	}
	name := req.DB
	if name == "" {
		name = s.defaultDB
	}
	d, ok := s.dbs[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}

	// One worker slot covers planning, execution and (for NDJSON)
	// streaming; waiting requests abandon the queue when the client goes
	// away.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while waiting for a worker"})
		return
	}

	if wantsNDJSON(r) {
		s.streamQuery(w, r, d, req.SQL)
		return
	}

	// Per-query response scratch comes from a pool; it is released only
	// after the response has been encoded, since the rows alias it.
	sc := getScratch()
	start := time.Now()
	resp, err := s.runQuery(r, d, req.SQL, sc)
	elapsed := time.Since(start)
	s.met.record(elapsed, err != nil)
	if err != nil {
		putScratch(sc)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
	putScratch(sc)
}

// ExecRequest is the POST /exec body.
type ExecRequest struct {
	// SQL is the DML statement (INSERT / DELETE / UPSERT) to execute.
	SQL string `json:"sql"`
	// DB names the target database; empty selects the default.
	DB string `json:"db,omitempty"`
}

// ExecResponse is the POST /exec success body.
type ExecResponse struct {
	RowsAffected  int64   `json:"rowsAffected"`
	Generation    uint64  `json:"generation"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// handleExec applies one DML statement to a mutable database. The
// response is written only after the statement's WAL record has been
// group-committed, so an acknowledged write survives a crash.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req ExecRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "sql"`})
		return
	}
	name := req.DB
	if name == "" {
		name = s.defaultDB
	}
	d, ok := s.dbs[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}
	if d.mut == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("database %q is read-only", name)})
		return
	}
	stmt, err := fdb.ParseStatement(req.SQL)
	if err != nil {
		s.execErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	mut, ok := stmt.(*fdb.Mutation)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "statement is a query; use /query"})
		return
	}
	start := time.Now()
	n, err := d.mut.Apply(r.Context(), mut)
	if err != nil {
		s.execErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.execs.Add(1)
	s.rowsWritten.Add(n)
	writeJSON(w, http.StatusOK, ExecResponse{
		RowsAffected:  n,
		Generation:    d.mut.Generation(),
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// CompactRequest is the POST /compact body.
type CompactRequest struct {
	// DB names the mutable database to compact; empty selects the
	// default.
	DB string `json:"db,omitempty"`
}

// CompactResponse is the POST /compact success body.
type CompactResponse struct {
	WALEpoch      uint64  `json:"walEpoch"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// handleCompact folds a mutable database's WAL and delta layers into a
// fresh catalogue snapshot. Queries and writes continue throughout; a
// concurrent compaction returns 409 Conflict.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req CompactRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	name := req.DB
	if name == "" {
		name = s.defaultDB
	}
	d, ok := s.dbs[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}
	if d.mut == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("database %q is read-only", name)})
		return
	}
	start := time.Now()
	if err := d.mut.Compact(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fdb.ErrCompactionRunning) {
			status = http.StatusConflict
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	st := d.mut.Stats()
	writeJSON(w, http.StatusOK, CompactResponse{
		WALEpoch:      st.WALEpoch,
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// wantsNDJSON reports whether the client asked for a streaming
// newline-delimited JSON response.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// ndjsonHeader is the first line of a streaming response.
type ndjsonHeader struct {
	Columns []string `json:"columns"`
	Cached  bool     `json:"cached"`
}

// ndjsonTrailer is the last line of a streaming response. An error
// after streaming began cannot change the HTTP status any more, so it
// travels in the trailer's Error field.
type ndjsonTrailer struct {
	RowCount      int     `json:"rowCount"`
	Truncated     bool    `json:"truncated,omitempty"`
	ElapsedMillis float64 `json:"elapsedMillis"`
	Error         string  `json:"error,omitempty"`
}

// flushEvery bounds how many rows may sit in HTTP buffers before the
// stream is flushed to the client: small enough that slow consumers
// see steady progress (and the first row promptly), large enough to
// amortise the flush syscall.
const flushEvery = 64

// streamQuery executes the statement and streams its rows as NDJSON
// straight off the engine cursor: one reused row buffer, no response
// materialisation, cancellation via the request context.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, d *database, sqlText string) {
	start := time.Now()
	fail := func(err error) {
		s.met.record(time.Since(start), true)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
	prep, cached, err := s.prepared(d, sqlText)
	if err != nil {
		fail(err)
		return
	}
	res, err := prep.ExecSharedContext(r.Context(), d.data())
	if err != nil {
		fail(err)
		return
	}
	// The cursor is closed before the result on every exit path below
	// (deferred LIFO), which joins any parallel segment workers and only
	// then recycles the pooled store — a client abort mid-stream must
	// never leave workers reading a store that went back to the pool.
	defer res.Close()
	rows, err := res.Rows(r.Context())
	if err != nil {
		fail(err)
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w) // Encode terminates every value with \n
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(ndjsonHeader{Columns: rows.Columns(), Cached: cached}); err != nil {
		s.met.record(time.Since(start), true)
		return
	}
	flush() // first bytes (and shortly after, the first row) leave now

	trailer := ndjsonTrailer{}
	wroteErr := false
	row := make([]any, 0, len(rows.Columns()))
	for rows.Next() {
		if s.maxRows > 0 && trailer.RowCount >= s.maxRows {
			trailer.Truncated = true
			break
		}
		row = row[:0]
		for _, v := range rows.Tuple() {
			row = append(row, valueJSON(v))
		}
		if err := enc.Encode(row); err != nil {
			// The client went away mid-stream (possibly mid-row): stop
			// enumerating and write nothing further — a trailer after a
			// partial row would corrupt the line protocol for any proxy
			// still reading.
			wroteErr = true
			break
		}
		trailer.RowCount++
		if trailer.RowCount%flushEvery == 0 {
			flush()
		}
	}
	if wroteErr {
		s.met.record(time.Since(start), true)
		return
	}
	if err := rows.Err(); err != nil {
		trailer.Error = err.Error()
	}
	trailer.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	_ = enc.Encode(trailer)
	flush()
	s.met.record(time.Since(start), trailer.Error != "")
}

// runQuery resolves the plan (through the cache) and enumerates the
// result into a response whose rows are backed by the pooled scratch.
//
// Execution goes through ExecShared: the server's relations are
// immutable by contract, so each cached plan keeps an arena-store
// snapshot of its factorised base relations and every query starts from
// a slab copy of it instead of re-sorting the base data. The copy lives
// in a pooled store that Result.Close recycles after enumeration.
func (s *Server) runQuery(r *http.Request, d *database, sqlText string, sc *rowScratch) (*QueryResponse, error) {
	prep, cached, err := s.prepared(d, sqlText)
	if err != nil {
		return nil, err
	}
	res, err := prep.ExecSharedContext(r.Context(), d.data())
	if err != nil {
		return nil, err
	}
	defer res.Close()
	rows, err := res.Rows(r.Context())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	resp := &QueryResponse{Columns: res.Schema(), Cached: cached, Rows: sc.rows[:0]}
	for rows.Next() {
		t := rows.Tuple()
		if s.maxRows > 0 && len(resp.Rows) >= s.maxRows {
			resp.Truncated = true
			break
		}
		row := sc.row(len(t))
		for i, v := range t {
			row[i] = valueJSON(v)
		}
		resp.Rows = append(resp.Rows, row)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	sc.rows = resp.Rows
	resp.RowCount = len(resp.Rows)
	return resp, nil
}

// prepared returns the cached plan for the statement, compiling and
// caching it on a miss. Concurrent misses on one key may both compile;
// the results are interchangeable and the last Put wins, so no
// per-key locking is needed.
func (s *Server) prepared(d *database, sqlText string) (*fdb.PreparedQuery, bool, error) {
	key := sql.Normalize(sqlText)
	if v, ok := d.plans.Get(key); ok {
		return v.(*fdb.PreparedQuery), true, nil
	}
	q, err := fdb.ParseSQL(sqlText)
	if err != nil {
		return nil, false, err
	}
	p, err := s.eng.Prepare(q, d.data())
	if err != nil {
		return nil, false, err
	}
	d.plans.Put(key, p)
	return p, false, nil
}

// valueJSON converts an engine value to its JSON representation.
func valueJSON(v values.Value) any { return fdb.GoValue(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":    "draining",
			"databases": len(s.dbs),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"databases": len(s.dbs),
	})
}

// SnapshotRequest is the POST /snapshot body (optional: an empty body
// snapshots every database that has a configured path).
type SnapshotRequest struct {
	// DB restricts the snapshot to one database.
	DB string `json:"db,omitempty"`
}

// SnapshotResponse is the POST /snapshot success body.
type SnapshotResponse struct {
	// Snapshots maps each persisted database to its snapshot path.
	Snapshots     map[string]string `json:"snapshots"`
	ElapsedMillis float64           `json:"elapsedMillis"`
}

// handleSnapshot persists catalogues to their configured paths. Each
// write is atomic (temp file + fsync + rename), and the write counts as
// in-flight work, so a drain triggered mid-snapshot waits for the
// rename rather than killing the process over a half-written temp file.
// Relations are immutable by the server's contract, so the snapshot is
// consistent without pausing queries.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req SnapshotRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	targets := make(map[string]string)
	if req.DB != "" {
		path, ok := s.snapshots[req.DB]
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no snapshot path configured for database %q", req.DB)})
			return
		}
		targets[req.DB] = path
	} else {
		for name, path := range s.snapshots {
			targets[name] = path
		}
	}
	if len(targets) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no snapshot paths configured"})
		return
	}
	start := time.Now()
	resp := SnapshotResponse{Snapshots: make(map[string]string, len(targets))}
	for name, path := range targets {
		if err := fdb.SaveCatalogFile(path, name, s.dbs[name].data()); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		resp.Snapshots[name] = path
	}
	resp.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// DBStats describes one database in the /stats response.
type DBStats struct {
	Relations        int         `json:"relations"`
	PlanCache        cache.Stats `json:"planCache"`
	PlanCacheHitRate float64     `json:"planCacheHitRate"`
	// Writable marks a mutable database; Mutable carries its write-path
	// gauges (generation, delta sizes, WAL bytes, compactions).
	Writable bool              `json:"writable,omitempty"`
	Mutable  *fdb.MutableStats `json:"mutable,omitempty"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Snapshot
	Workers int `json:"workers"`
	// Parallel is the per-query worker accounting: cumulative counts of
	// queries run with an intra-query parallelism budget and of segment
	// workers spawned per engine layer.
	Parallel fdb.ParStats `json:"parallel"`
	// Offsets reports how OFFSET clauses were applied: by ranked direct
	// seek over the subtree-count index, or by the linear skip loop.
	Offsets fdb.OffsetStats `json:"offsets"`
	// Execs / ExecErrors / RowsWritten count POST /exec statements and
	// the rows they affected across all mutable databases.
	Execs       uint64             `json:"execs"`
	ExecErrors  uint64             `json:"execErrors"`
	RowsWritten int64              `json:"rowsWritten"`
	Databases   map[string]DBStats `json:"databases"`
}

// Stats returns the server's current metrics (also served at /stats).
func (s *Server) Stats() StatsResponse {
	out := StatsResponse{
		Snapshot:    s.met.snapshot(),
		Workers:     cap(s.sem),
		Parallel:    fdb.ParallelStats(),
		Offsets:     fdb.SeekSkipStats(),
		Execs:       s.execs.Load(),
		ExecErrors:  s.execErrors.Load(),
		RowsWritten: s.rowsWritten.Load(),
		Databases:   make(map[string]DBStats, len(s.dbs)),
	}
	for name, d := range s.dbs {
		cs := d.plans.Stats()
		ds := DBStats{
			Relations:        len(d.data()),
			PlanCache:        cs,
			PlanCacheHitRate: cs.HitRate(),
		}
		if d.mut != nil {
			ms := d.mut.Stats()
			ds.Writable = true
			ds.Mutable = &ms
		}
		out.Databases[name] = ds
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
