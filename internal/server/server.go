// Package server implements the fdbserver HTTP/JSON query service: one
// or more databases are loaded into a shared read-only in-memory store
// and queried concurrently over POST /query, executing through the fdb
// facade.
//
// The hot path is lock-free with respect to the data: base relations are
// never mutated, f-plan operators build new factorisation structure
// rather than rewriting inputs, and every request enumerates its own
// result, so any number of readers can share one store. Each cached
// plan keeps an immutable arena-store snapshot of its factorised base
// relations (Prepared.ExecShared); a query starts from a slab copy of
// that snapshot in a pooled store and returns it when done
// (Result.Close), and response row buffers likewise come from a
// sync.Pool — so the steady-state query path allocates only on
// high-water-mark growth. The only shared mutable state is the
// per-database LRU plan cache (package cache), which maps normalised
// SQL text to prepared plans so repeated queries skip parsing,
// path-order search and f-plan optimisation, and the metrics window
// behind /stats. A bounded worker pool (Config.Workers) caps the number
// of queries executing simultaneously; excess requests wait for a slot
// or give up when their context is cancelled.
//
// Endpoints:
//
//	POST /query     {"sql": "...", "db": "name"} → columns + rows JSON
//	POST /exec      {"sql": "...", "db": "name"} → rows affected; DML
//	                (INSERT/DELETE/UPSERT) against a mutable database
//	POST /compact   fold a mutable database's WAL into a fresh snapshot
//	POST /snapshot  persist catalogues atomically to their configured
//	                snapshot paths (Config.Snapshots)
//	POST /shard/install  accept a catalogue snapshot (raw .fdbcat bytes)
//	                and hot-swap it into the served set (Config.ShardDir;
//	                how a coordinator ships shards to workers)
//	GET  /healthz   liveness probe (503 once draining)
//	GET  /stats     query counters, latency percentiles, cache hit rates,
//	                write and WAL/compaction gauges
//
// Databases configured through Config.Mutables are writable: queries run
// against the catalogue's current lock-free view (each write publishes a
// new immutable view, so in-flight queries are never disturbed), and
// /exec applies mutations durably through the write-ahead log.
//
// Shutdown is ordered: Drain refuses new work and waits out in-flight
// requests (streaming responses, snapshot writes) so the process can
// exit without cutting a cursor off mid-row.
//
// A request with "Accept: application/x-ndjson" streams instead of
// buffering: the response is newline-delimited JSON — a header object
// {"columns": ...}, one array per row straight off the engine's
// cursor, and a trailer object {"rowCount": ...} — so the first row
// arrives before enumeration completes and response memory stays O(1)
// in the result size. The stream is driven by the request context:
// a client that disconnects stops the enumeration promptly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server/cache"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Databases maps database names to their relations. The maps and
	// relations must not be modified after the server starts serving.
	Databases map[string]fdb.Database
	// DefaultDB names the database used when a request omits "db".
	// Optional when exactly one database is configured.
	DefaultDB string
	// Workers bounds the number of concurrently executing queries;
	// defaults to GOMAXPROCS.
	Workers int
	// Parallelism bounds the intra-query parallelism of each executing
	// query (segment workers over the factorised representation; see
	// fdb.Engine.Parallelism): 0 means GOMAXPROCS, 1 disables. On a
	// loaded server inter-query concurrency (Workers) usually saturates
	// the cores already; raise this for latency-sensitive workloads
	// with few concurrent heavy queries.
	Parallelism int
	// CacheSize is the per-database plan cache capacity in entries;
	// defaults to 256.
	CacheSize int
	// MaxRows caps the number of rows returned per query (the response
	// is marked truncated when it applies); 0 means unlimited.
	MaxRows int
	// Snapshots maps database names to catalogue snapshot paths. A
	// database with a path here can be persisted through POST /snapshot:
	// the catalogue (schema, flat tuples, factorised stores) is written
	// atomically — temp file, fsync, rename — so a crash mid-write never
	// clobbers the previous snapshot. Databases without a path are
	// skipped by /snapshot.
	Snapshots map[string]string
	// Mutables maps database names to opened mutable catalogues; these
	// databases accept DML through POST /exec and serve queries against
	// the catalogue's current view. Names must not collide with
	// Databases. The server does not close the catalogues; the caller
	// owns their lifecycle (close after Drain).
	Mutables map[string]*fdb.MutableCatalog
	// ShardDir enables the POST /shard/install endpoint: a coordinator
	// ships a catalogue snapshot (shard) as the request body, the server
	// persists it atomically under this directory, mmaps it, and
	// hot-swaps it into the served database set without interrupting
	// in-flight queries. Empty disables the endpoint. With ShardDir set
	// the server may start with no databases at all (a bare worker
	// awaiting its shard); snapshots persisted by a previous run are
	// reloaded at startup, so a worker restarts warm without a re-ship.
	ShardDir string
}

// database is one served database with its private plan cache. Exactly
// one of db (static, immutable) and mut (writable) is set; cat is
// additionally set when the data is an installed shard snapshot the
// server owns (and must eventually close).
type database struct {
	name  string
	db    fdb.Database
	mut   *fdb.MutableCatalog
	cat   *fdb.Catalog
	plans *cache.LRU
}

// data returns the relations to query: the static map, or the mutable
// catalogue's current lock-free view.
func (d *database) data() fdb.Database {
	if d.mut != nil {
		return d.mut.View()
	}
	return d.db
}

// Server is the HTTP query service. Create with New; it implements
// http.Handler.
type Server struct {
	eng       *fdb.Engine
	sem       chan struct{}
	maxRows   int
	cacheSize int
	snapshots map[string]string
	shardDir  string
	met       *metrics
	mux       *http.ServeMux

	// dbMu guards the served database set and the default name: shard
	// installs hot-swap entries while queries resolve names under the
	// read lock. retired holds snapshots superseded by an install; they
	// stay mapped until the server drains, because in-flight queries
	// (and cached plans) may still alias their bytes.
	dbMu      sync.RWMutex
	dbs       map[string]*database
	defaultDB string
	retired   []*fdb.Catalog

	// Write-path counters (mutable databases only).
	execs       atomic.Uint64
	execErrors  atomic.Uint64
	rowsWritten atomic.Int64
	installs    atomic.Uint64

	// draining refuses new work once StartDrain/Drain has been called;
	// inflight counts requests (including streaming responses and
	// snapshot writes) that Drain must wait out before the process may
	// exit. A mutex-guarded counter rather than a sync.WaitGroup: the
	// counter legitimately reaches zero while new begin() calls race a
	// waiting Drain, which is exactly the Add-concurrent-with-Wait
	// pattern WaitGroup forbids.
	draining atomic.Bool
	drainMu  sync.Mutex
	inflight int
	// idle is non-nil while a Drain waits for inflight to reach zero;
	// the end() that takes the counter to zero closes it.
	idle chan struct{}
}

// New builds a Server from the configuration.
func New(cfg Config) (*Server, error) {
	total := len(cfg.Databases) + len(cfg.Mutables)
	if total == 0 && cfg.ShardDir == "" {
		return nil, errors.New("server: no databases configured")
	}
	for name := range cfg.Mutables {
		if _, dup := cfg.Databases[name]; dup {
			return nil, fmt.Errorf("server: database %q configured as both static and mutable", name)
		}
	}
	defaultDB := cfg.DefaultDB
	if defaultDB == "" {
		if total > 1 {
			return nil, errors.New("server: DefaultDB required with multiple databases")
		}
		for name := range cfg.Databases {
			defaultDB = name
		}
		for name := range cfg.Mutables {
			defaultDB = name
		}
	}
	if defaultDB != "" {
		if _, ok := cfg.Databases[defaultDB]; !ok {
			if _, ok := cfg.Mutables[defaultDB]; !ok {
				return nil, fmt.Errorf("server: default database %q not configured", defaultDB)
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize <= 0 {
		cacheSize = 256
	}
	eng := fdb.NewEngine()
	eng.Parallelism = cfg.Parallelism
	s := &Server{
		eng:       eng,
		dbs:       make(map[string]*database, total),
		defaultDB: defaultDB,
		sem:       make(chan struct{}, workers),
		maxRows:   cfg.MaxRows,
		cacheSize: cacheSize,
		snapshots: cfg.Snapshots,
		shardDir:  cfg.ShardDir,
		met:       newMetrics(),
		mux:       http.NewServeMux(),
	}
	for name := range cfg.Snapshots {
		if _, ok := cfg.Databases[name]; ok {
			continue
		}
		if _, ok := cfg.Mutables[name]; ok {
			continue
		}
		return nil, fmt.Errorf("server: snapshot path for unknown database %q", name)
	}
	for name, db := range cfg.Databases {
		s.dbs[name] = &database{name: name, db: db, plans: cache.New(cacheSize)}
	}
	for name, mut := range cfg.Mutables {
		s.dbs[name] = &database{name: name, mut: mut, plans: cache.New(cacheSize)}
	}
	if cfg.ShardDir != "" {
		// Warm restart: shards installed in a previous run were
		// persisted under ShardDir by /shard/install; reload them so a
		// worker comes back serving without a re-ship. Sorted glob so
		// the implicit default database is deterministic.
		paths, err := filepath.Glob(filepath.Join(cfg.ShardDir, "*.fdbcat"))
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		for _, p := range paths {
			name := strings.TrimSuffix(filepath.Base(p), ".fdbcat")
			if _, taken := s.dbs[name]; taken {
				continue // explicit -data/-mutable config wins
			}
			cat, err := fdb.LoadCatalogFile(p, true)
			if err != nil {
				s.closeOwned()
				return nil, fmt.Errorf("server: reloading shard %s: %w", p, err)
			}
			s.dbs[name] = &database{name: name, db: cat.DB, cat: cat, plans: cache.New(cacheSize)}
			if s.defaultDB == "" {
				s.defaultDB = name
			}
		}
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/exec", s.handleExec)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/shard/install", s.handleShardInstall)
	return s, nil
}

// lookup resolves a request's database name (empty selects the default)
// to its served entry under the read lock, so resolution is stable
// against a concurrent shard install.
func (s *Server) lookup(name string) (*database, string, bool) {
	s.dbMu.RLock()
	defer s.dbMu.RUnlock()
	if name == "" {
		name = s.defaultDB
	}
	d, ok := s.dbs[name]
	return d, name, ok
}

// begin registers one unit of in-flight work unless the server is
// draining; it reports whether the caller may proceed (and must call
// end when done).
func (s *Server) begin() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) end() {
	s.drainMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.drainMu.Unlock()
}

// StartDrain transitions the server into shutdown without waiting: new
// queries and snapshot writes are refused with 503 Service Unavailable
// and /healthz turns unhealthy so load balancers stop routing. Call it
// before closing the listener so clients on kept-alive connections get
// a clean 503 instead of a reset; Drain calls it implicitly.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain is StartDrain plus the wait: it blocks until every in-flight
// request — including streaming responses holding open cursors and
// snapshot writes awaiting their atomic rename — has completed, or ctx
// expires. The process must not exit until Drain returns: exiting
// earlier would tear down enumerations mid-row. Drain is idempotent
// and safe to call concurrently.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	if s.inflight == 0 {
		s.drainMu.Unlock()
		s.closeOwned()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.drainMu.Unlock()
	select {
	case <-idle:
		s.closeOwned()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// closeOwned releases the mmap'd snapshots the server owns — installed
// shards and snapshots retired by later installs. Only safe once the
// server has drained: no in-flight query may still alias their bytes.
func (s *Server) closeOwned() {
	s.dbMu.Lock()
	cats := s.retired
	s.retired = nil
	for _, d := range s.dbs {
		if d.cat != nil {
			cats = append(cats, d.cat)
			d.cat = nil
		}
	}
	s.dbMu.Unlock()
	for _, c := range cats {
		_ = c.Close()
	}
}

// Draining reports whether StartDrain or Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// QueryRequest is the POST /query body (a wire.QueryRequest; the NDJSON
// protocol frames live in internal/wire, specified in docs/PROTOCOL.md).
type QueryRequest = wire.QueryRequest

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Columns       []string `json:"columns"`
	Rows          [][]any  `json:"rows"`
	RowCount      int      `json:"rowCount"`
	Truncated     bool     `json:"truncated,omitempty"`
	Cached        bool     `json:"cached"`
	ElapsedMillis float64  `json:"elapsedMillis"`
}

// errorResponse is the JSON body of every non-200 response.
type errorResponse = wire.ErrorBody

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "sql"`})
		return
	}
	d, name, ok := s.lookup(req.DB)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}

	// One worker slot covers planning, execution and (for NDJSON)
	// streaming; waiting requests abandon the queue when the client goes
	// away.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "cancelled while waiting for a worker"})
		return
	}

	if wantsNDJSON(r) {
		s.streamQuery(w, r, d, req.SQL)
		return
	}

	// Per-query response scratch comes from a pool; it is released only
	// after the response has been encoded, since the rows alias it.
	sc := getScratch()
	start := time.Now()
	resp, err := s.runQuery(r, d, req.SQL, sc)
	elapsed := time.Since(start)
	s.met.record(elapsed, err != nil)
	if err != nil {
		putScratch(sc)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	resp.ElapsedMillis = float64(elapsed) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
	putScratch(sc)
}

// ExecRequest is the POST /exec body.
type ExecRequest struct {
	// SQL is the DML statement (INSERT / DELETE / UPSERT) to execute.
	SQL string `json:"sql"`
	// DB names the target database; empty selects the default.
	DB string `json:"db,omitempty"`
}

// ExecResponse is the POST /exec success body.
type ExecResponse struct {
	RowsAffected  int64   `json:"rowsAffected"`
	Generation    uint64  `json:"generation"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// handleExec applies one DML statement to a mutable database. The
// response is written only after the statement's WAL record has been
// group-committed, so an acknowledged write survives a crash.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req ExecRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "sql"`})
		return
	}
	d, name, ok := s.lookup(req.DB)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}
	if d.mut == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("database %q is read-only", name)})
		return
	}
	stmt, err := fdb.ParseStatement(req.SQL)
	if err != nil {
		s.execErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	mut, ok := stmt.(*fdb.Mutation)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "statement is a query; use /query"})
		return
	}
	start := time.Now()
	n, err := d.mut.Apply(r.Context(), mut)
	if err != nil {
		s.execErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.execs.Add(1)
	s.rowsWritten.Add(n)
	writeJSON(w, http.StatusOK, ExecResponse{
		RowsAffected:  n,
		Generation:    d.mut.Generation(),
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// CompactRequest is the POST /compact body.
type CompactRequest struct {
	// DB names the mutable database to compact; empty selects the
	// default.
	DB string `json:"db,omitempty"`
}

// CompactResponse is the POST /compact success body.
type CompactResponse struct {
	WALEpoch      uint64  `json:"walEpoch"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// handleCompact folds a mutable database's WAL and delta layers into a
// fresh catalogue snapshot. Queries and writes continue throughout; a
// concurrent compaction returns 409 Conflict.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req CompactRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	d, name, ok := s.lookup(req.DB)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
		return
	}
	if d.mut == nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("database %q is read-only", name)})
		return
	}
	start := time.Now()
	if err := d.mut.Compact(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, fdb.ErrCompactionRunning) {
			status = http.StatusConflict
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	st := d.mut.Stats()
	writeJSON(w, http.StatusOK, CompactResponse{
		WALEpoch:      st.WALEpoch,
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// wantsNDJSON reports whether the client asked for a streaming
// newline-delimited JSON response.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// flushEvery bounds how many rows may sit in HTTP buffers before the
// stream is flushed to the client: small enough that slow consumers
// see steady progress (and the first row promptly), large enough to
// amortise the flush syscall.
const flushEvery = 64

// streamQuery executes the statement and streams its rows as NDJSON
// straight off the engine cursor: one reused row buffer, no response
// materialisation, cancellation via the request context.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, d *database, sqlText string) {
	start := time.Now()
	fail := func(err error) {
		s.met.record(time.Since(start), true)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
	prep, cached, err := s.prepared(d, sqlText)
	if err != nil {
		fail(err)
		return
	}
	res, err := prep.ExecSharedContext(r.Context(), d.data())
	if err != nil {
		fail(err)
		return
	}
	// The cursor is closed before the result on every exit path below
	// (deferred LIFO), which joins any parallel segment workers and only
	// then recycles the pooled store — a client abort mid-stream must
	// never leave workers reading a store that went back to the pool.
	defer res.Close()
	rows, err := res.Rows(r.Context())
	if err != nil {
		fail(err)
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w) // Encode terminates every value with \n
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(wire.Header{Columns: rows.Columns(), Cached: cached}); err != nil {
		s.met.record(time.Since(start), true)
		return
	}
	flush() // first bytes (and shortly after, the first row) leave now

	trailer := wire.Trailer{}
	wroteErr := false
	row := make([]any, 0, len(rows.Columns()))
	for rows.Next() {
		if s.maxRows > 0 && trailer.RowCount >= s.maxRows {
			trailer.Truncated = true
			break
		}
		row = row[:0]
		for _, v := range rows.Tuple() {
			row = append(row, valueJSON(v))
		}
		if err := enc.Encode(row); err != nil {
			// The client went away mid-stream (possibly mid-row): stop
			// enumerating and write nothing further — a trailer after a
			// partial row would corrupt the line protocol for any proxy
			// still reading.
			wroteErr = true
			break
		}
		trailer.RowCount++
		if trailer.RowCount%flushEvery == 0 {
			flush()
		}
	}
	if wroteErr {
		s.met.record(time.Since(start), true)
		return
	}
	if err := rows.Err(); err != nil {
		trailer.Error = err.Error()
	}
	trailer.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	_ = enc.Encode(trailer)
	flush()
	s.met.record(time.Since(start), trailer.Error != "")
}

// runQuery resolves the plan (through the cache) and enumerates the
// result into a response whose rows are backed by the pooled scratch.
//
// Execution goes through ExecShared: the server's relations are
// immutable by contract, so each cached plan keeps an arena-store
// snapshot of its factorised base relations and every query starts from
// a slab copy of it instead of re-sorting the base data. The copy lives
// in a pooled store that Result.Close recycles after enumeration.
func (s *Server) runQuery(r *http.Request, d *database, sqlText string, sc *rowScratch) (*QueryResponse, error) {
	prep, cached, err := s.prepared(d, sqlText)
	if err != nil {
		return nil, err
	}
	res, err := prep.ExecSharedContext(r.Context(), d.data())
	if err != nil {
		return nil, err
	}
	defer res.Close()
	rows, err := res.Rows(r.Context())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	resp := &QueryResponse{Columns: res.Schema(), Cached: cached, Rows: sc.rows[:0]}
	for rows.Next() {
		t := rows.Tuple()
		if s.maxRows > 0 && len(resp.Rows) >= s.maxRows {
			resp.Truncated = true
			break
		}
		row := sc.row(len(t))
		for i, v := range t {
			row[i] = valueJSON(v)
		}
		resp.Rows = append(resp.Rows, row)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	sc.rows = resp.Rows
	resp.RowCount = len(resp.Rows)
	return resp, nil
}

// prepared returns the cached plan for the statement, compiling and
// caching it on a miss. Concurrent misses on one key may both compile;
// the results are interchangeable and the last Put wins, so no
// per-key locking is needed.
func (s *Server) prepared(d *database, sqlText string) (*fdb.PreparedQuery, bool, error) {
	key := sql.Normalize(sqlText)
	if v, ok := d.plans.Get(key); ok {
		return v.(*fdb.PreparedQuery), true, nil
	}
	q, err := fdb.ParseSQL(sqlText)
	if err != nil {
		return nil, false, err
	}
	p, err := s.eng.Prepare(q, d.data())
	if err != nil {
		return nil, false, err
	}
	d.plans.Put(key, p)
	return p, false, nil
}

// valueJSON converts an engine value to its JSON representation.
func valueJSON(v values.Value) any { return fdb.GoValue(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.dbMu.RLock()
	n := len(s.dbs)
	s.dbMu.RUnlock()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":    "draining",
			"databases": n,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"databases": n,
	})
}

// SnapshotRequest is the POST /snapshot body (optional: an empty body
// snapshots every database that has a configured path).
type SnapshotRequest struct {
	// DB restricts the snapshot to one database.
	DB string `json:"db,omitempty"`
}

// SnapshotResponse is the POST /snapshot success body.
type SnapshotResponse struct {
	// Snapshots maps each persisted database to its snapshot path.
	Snapshots     map[string]string `json:"snapshots"`
	ElapsedMillis float64           `json:"elapsedMillis"`
}

// handleSnapshot persists catalogues to their configured paths. Each
// write is atomic (temp file + fsync + rename), and the write counts as
// in-flight work, so a drain triggered mid-snapshot waits for the
// rename rather than killing the process over a half-written temp file.
// Relations are immutable by the server's contract, so the snapshot is
// consistent without pausing queries.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	var req SnapshotRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid JSON body: " + err.Error()})
		return
	}
	targets := make(map[string]string)
	if req.DB != "" {
		path, ok := s.snapshots[req.DB]
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no snapshot path configured for database %q", req.DB)})
			return
		}
		targets[req.DB] = path
	} else {
		for name, path := range s.snapshots {
			targets[name] = path
		}
	}
	if len(targets) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no snapshot paths configured"})
		return
	}
	start := time.Now()
	resp := SnapshotResponse{Snapshots: make(map[string]string, len(targets))}
	for name, path := range targets {
		d, _, ok := s.lookup(name)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown database %q", name)})
			return
		}
		if err := fdb.SaveCatalogFile(path, name, d.data()); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		resp.Snapshots[name] = path
	}
	resp.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

// ShardInstallResponse is the POST /shard/install success body.
type ShardInstallResponse struct {
	// DB is the database name the shard now serves under.
	DB string `json:"db"`
	// Relations and Rows describe the installed snapshot.
	Relations int `json:"relations"`
	Rows      int `json:"rows"`
	// Path is where the snapshot was persisted.
	Path          string  `json:"path"`
	ElapsedMillis float64 `json:"elapsedMillis"`
}

// handleShardInstall accepts a catalogue snapshot (the raw .fdbcat
// container) as the request body, persists it atomically under
// Config.ShardDir, mmaps it and hot-swaps it into the served set under
// the name given by the "db" query parameter (default: the catalogue's
// own name). In-flight queries keep reading the superseded snapshot —
// it is retired, not closed, until the server drains — while new
// queries see the new data and a fresh plan cache. This is how a
// coordinator ships shards to workers and how a warm standby is
// populated before failover.
func (s *Server) handleShardInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if s.shardDir == "" {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "shard installs not enabled (no shard directory configured)"})
		return
	}
	if !s.begin() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is shutting down"})
		return
	}
	defer s.end()
	start := time.Now()

	// Spool the snapshot to a temp file in the shard directory, fsync,
	// validate by loading, and only then rename over the final name —
	// a torn upload or corrupt payload never clobbers a good shard, and
	// the mmap stays valid across the rename (same inode).
	tmp, err := os.CreateTemp(s.shardDir, "install.tmp*")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	tmpName := tmp.Name()
	removeTmp := true
	defer func() {
		if removeTmp {
			os.Remove(tmpName)
		}
	}()
	if _, err := io.Copy(tmp, http.MaxBytesReader(w, r.Body, 1<<31)); err != nil {
		tmp.Close()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading snapshot body: " + err.Error()})
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if err := tmp.Close(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	cat, err := fdb.LoadCatalogFile(tmpName, true)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid snapshot: " + err.Error()})
		return
	}
	name := r.URL.Query().Get("db")
	if name == "" {
		name = cat.Name
	}
	if name == "" {
		cat.Close()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "snapshot has no name; pass ?db="})
		return
	}
	final := filepath.Join(s.shardDir, name+".fdbcat")
	if err := os.Rename(tmpName, final); err != nil {
		cat.Close()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	removeTmp = false

	rows := 0
	for _, rel := range cat.DB {
		rows += len(rel.Tuples)
	}
	s.dbMu.Lock()
	if old, ok := s.dbs[name]; ok && old.mut != nil {
		s.dbMu.Unlock()
		cat.Close()
		writeJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf("database %q is mutable; refusing to overwrite it with a shard", name)})
		return
	} else if ok && old.cat != nil {
		s.retired = append(s.retired, old.cat)
	}
	s.dbs[name] = &database{name: name, db: cat.DB, cat: cat, plans: cache.New(s.cacheSize)}
	if s.defaultDB == "" {
		s.defaultDB = name
	}
	s.dbMu.Unlock()
	s.installs.Add(1)
	writeJSON(w, http.StatusOK, ShardInstallResponse{
		DB:            name,
		Relations:     len(cat.DB),
		Rows:          rows,
		Path:          final,
		ElapsedMillis: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// DBStats describes one database in the /stats response.
type DBStats struct {
	Relations        int         `json:"relations"`
	PlanCache        cache.Stats `json:"planCache"`
	PlanCacheHitRate float64     `json:"planCacheHitRate"`
	// Writable marks a mutable database; Mutable carries its write-path
	// gauges (generation, delta sizes, WAL bytes, compactions).
	Writable bool              `json:"writable,omitempty"`
	Mutable  *fdb.MutableStats `json:"mutable,omitempty"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Snapshot
	Workers int `json:"workers"`
	// Parallel is the per-query worker accounting: cumulative counts of
	// queries run with an intra-query parallelism budget and of segment
	// workers spawned per engine layer.
	Parallel fdb.ParStats `json:"parallel"`
	// Offsets reports how OFFSET clauses were applied: by ranked direct
	// seek over the subtree-count index, or by the linear skip loop.
	Offsets fdb.OffsetStats `json:"offsets"`
	// Execs / ExecErrors / RowsWritten count POST /exec statements and
	// the rows they affected across all mutable databases.
	Execs       uint64 `json:"execs"`
	ExecErrors  uint64 `json:"execErrors"`
	RowsWritten int64  `json:"rowsWritten"`
	// ShardInstalls counts snapshots accepted through /shard/install.
	ShardInstalls uint64             `json:"shardInstalls,omitempty"`
	Databases     map[string]DBStats `json:"databases"`
}

// Stats returns the server's current metrics (also served at /stats).
func (s *Server) Stats() StatsResponse {
	out := StatsResponse{
		Snapshot:      s.met.snapshot(),
		Workers:       cap(s.sem),
		Parallel:      fdb.ParallelStats(),
		Offsets:       fdb.SeekSkipStats(),
		Execs:         s.execs.Load(),
		ExecErrors:    s.execErrors.Load(),
		RowsWritten:   s.rowsWritten.Load(),
		ShardInstalls: s.installs.Load(),
		Databases:     make(map[string]DBStats, len(s.dbs)),
	}
	s.dbMu.RLock()
	served := make([]*database, 0, len(s.dbs))
	for _, d := range s.dbs {
		served = append(served, d)
	}
	s.dbMu.RUnlock()
	for _, d := range served {
		name := d.name
		cs := d.plans.Stats()
		ds := DBStats{
			Relations:        len(d.data()),
			PlanCache:        cs,
			PlanCacheHitRate: cs.HitRate(),
		}
		if d.mut != nil {
			ms := d.mut.Stats()
			ds.Writable = true
			ds.Mutable = &ms
		}
		out.Databases[name] = ds
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
