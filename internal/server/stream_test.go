package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/wire"
)

// postNDJSON sends a streaming query and splits the NDJSON response
// into header, row lines and trailer.
func postNDJSON(t *testing.T, h http.Handler, req QueryRequest) (wire.Header, [][]any, wire.Trailer, *httptest.ResponseRecorder) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	r.Header.Set("Accept", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		return wire.Header{}, nil, wire.Trailer{}, rec
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON response has %d lines, want >= 2:\n%s", len(lines), rec.Body)
	}
	var hdr wire.Header
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("decoding header line %q: %v", lines[0], err)
	}
	var trailer wire.Trailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("decoding trailer line %q: %v", lines[len(lines)-1], err)
	}
	var rows [][]any
	for _, l := range lines[1 : len(lines)-1] {
		var row []any
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("decoding row line %q: %v", l, err)
		}
		rows = append(rows, row)
	}
	return hdr, rows, trailer, rec
}

func TestNDJSONRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	hdr, rows, trailer, _ := postNDJSON(t, s, QueryRequest{SQL: revenueSQL})
	if want := []string{"customer", "revenue"}; fmt.Sprint(hdr.Columns) != fmt.Sprint(want) {
		t.Fatalf("columns = %v, want %v", hdr.Columns, want)
	}
	if len(rows) != 3 || trailer.RowCount != 3 {
		t.Fatalf("rows = %d, trailer.rowCount = %d, want 3", len(rows), trailer.RowCount)
	}
	if trailer.Error != "" {
		t.Fatalf("trailer.error = %q", trailer.Error)
	}
	if rows[0][0] != "Mario" || rows[0][1].(float64) != 22 {
		t.Fatalf("top row = %v, want [Mario 22]", rows[0])
	}

	// The streamed rows must be identical to the buffered path's.
	buffered, _ := postQuery(t, s, QueryRequest{SQL: revenueSQL})
	if fmt.Sprint(buffered.Rows) != fmt.Sprint(rows) {
		t.Fatalf("stream rows %v differ from buffered rows %v", rows, buffered.Rows)
	}
}

func TestNDJSONOffsetPagination(t *testing.T) {
	s := newTestServer(t, Config{})
	_, all, _, _ := postNDJSON(t, s, QueryRequest{SQL: `SELECT item2, price FROM Items ORDER BY price DESC, item2`})
	var paged [][]any
	for off := 0; off < len(all); off += 2 {
		stmt := fmt.Sprintf(`SELECT item2, price FROM Items ORDER BY price DESC, item2 LIMIT 2 OFFSET %d`, off)
		_, rows, _, _ := postNDJSON(t, s, QueryRequest{SQL: stmt})
		paged = append(paged, rows...)
	}
	if fmt.Sprint(paged) != fmt.Sprint(all) {
		t.Fatalf("paged = %v, all = %v", paged, all)
	}
}

func TestNDJSONParseError(t *testing.T) {
	s := newTestServer(t, Config{})
	_, _, _, rec := postNDJSON(t, s, QueryRequest{SQL: "SELEC x"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

func TestNDJSONMaxRows(t *testing.T) {
	s := newTestServer(t, Config{MaxRows: 2})
	_, rows, trailer, _ := postNDJSON(t, s, QueryRequest{SQL: `SELECT item2, price FROM Items ORDER BY item2`})
	if len(rows) != 2 || !trailer.Truncated {
		t.Fatalf("rows = %d truncated = %v, want 2 rows truncated", len(rows), trailer.Truncated)
	}
}

// flushRecorder wraps a ResponseRecorder and records how much of the
// body had been written at each Flush.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushedAt []int
}

func (f *flushRecorder) Flush() {
	f.flushedAt = append(f.flushedAt, f.Body.Len())
}

// TestNDJSONFlushesHeaderBeforeRows asserts the stream is flushed to
// the client right after the header line — before any row is encoded —
// so the first bytes (and time-to-first-row) do not wait for the full
// enumeration.
func TestNDJSONFlushesHeaderBeforeRows(t *testing.T) {
	s := newTestServer(t, Config{})
	body, _ := json.Marshal(QueryRequest{SQL: revenueSQL})
	r := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	r.Header.Set("Accept", "application/x-ndjson")
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	s.ServeHTTP(rec, r)
	if len(rec.flushedAt) < 2 {
		t.Fatalf("stream flushed %d times, want >= 2 (header + trailer)", len(rec.flushedAt))
	}
	firstLine := rec.Body.String()[:rec.flushedAt[0]]
	if strings.Count(firstLine, "\n") != 1 || !strings.Contains(firstLine, `"columns"`) {
		t.Fatalf("first flush was %q, want exactly the header line", firstLine)
	}
}

// TestNDJSONClientDisconnect streams a large result over a real HTTP
// connection, drops the client mid-stream, and verifies the server
// stays healthy (the enumeration goroutine stops instead of spinning
// on a dead connection).
func TestNDJSONClientDisconnect(t *testing.T) {
	// A single relation large enough that the stream spans many flushes.
	var csv strings.Builder
	csv.WriteString("k,v\n")
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&csv, "%d,%d\n", i, i%97)
	}
	rel, err := fdb.ReadCSV("Big", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Databases: map[string]fdb.Database{"big": {"Big": rel}}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{SQL: `SELECT k, v FROM Big ORDER BY k`})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 10; i++ { // header + a few rows
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading line %d: %v", i, err)
		}
	}
	cancel()
	resp.Body.Close()

	// The server must keep answering within a bounded time: the worker
	// slot held by the cancelled stream is released once the enumeration
	// notices the dead connection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/healthz")
		if err == nil {
			r2.Body.Close()
			if r2.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover after client disconnect")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// And a fresh buffered query still works.
	var n struct{ RowCount int }
	r3, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql":"SELECT k FROM Big WHERE k < 5 ORDER BY k"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if err := json.NewDecoder(r3.Body).Decode(&n); err != nil {
		t.Fatal(err)
	}
	if n.RowCount != 5 {
		t.Fatalf("rowCount = %d, want 5", n.RowCount)
	}
}
