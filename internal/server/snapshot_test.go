package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/factordb/fdb"
)

func postSnapshot(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/snapshot", strings.NewReader(body)))
	return rec
}

func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pizzeria.fdbcat")
	db := pizzeria(t)
	s := newTestServer(t, Config{
		Databases: map[string]fdb.Database{"pizzeria": db},
		Snapshots: map[string]string{"pizzeria": path},
	})

	// GET is rejected; POST with an empty body snapshots everything.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /snapshot: status %d", rec.Code)
	}
	rec = postSnapshot(t, s, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /snapshot: status %d: %s", rec.Code, rec.Body)
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Snapshots["pizzeria"] != path {
		t.Fatalf("snapshot paths: %v", resp.Snapshots)
	}

	// The snapshot must load and answer queries identically to the live
	// database.
	cat, err := fdb.LoadCatalogFile(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	const q = "SELECT customer, SUM(price) AS total FROM Orders, Pizzas, Items WHERE pizza = pizza2 AND item = item2 GROUP BY customer ORDER BY total DESC"
	want, rec1 := postQuery(t, s, QueryRequest{SQL: q})
	if rec1.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec1.Code, rec1.Body)
	}
	s2 := newTestServer(t, Config{Databases: map[string]fdb.Database{"pizzeria": cat.DB}})
	got, rec2 := postQuery(t, s2, QueryRequest{SQL: q})
	if rec2.Code != http.StatusOK {
		t.Fatalf("query on loaded snapshot: %d %s", rec2.Code, rec2.Body)
	}
	w, _ := json.Marshal(want.Rows)
	g, _ := json.Marshal(got.Rows)
	if !bytes.Equal(w, g) {
		t.Fatalf("snapshot-backed server answers differently:\nlive: %s\nload: %s", w, g)
	}

	// Re-snapshotting overwrites atomically: no temp droppings.
	if rec := postSnapshot(t, s, `{"db":"pizzeria"}`); rec.Code != http.StatusOK {
		t.Fatalf("re-snapshot: %d %s", rec.Code, rec.Body)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot directory has %d entries, want 1", len(entries))
	}

	// Unknown database and unconfigured paths are 404s.
	if rec := postSnapshot(t, s, `{"db":"nope"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown db: status %d", rec.Code)
	}
	s3 := newTestServer(t, Config{})
	if rec := postSnapshot(t, s3, ""); rec.Code != http.StatusNotFound {
		t.Fatalf("no paths configured: status %d", rec.Code)
	}
}

func TestSnapshotPathForUnknownDB(t *testing.T) {
	_, err := New(Config{
		Databases: map[string]fdb.Database{"pizzeria": pizzeria(t)},
		Snapshots: map[string]string{"ghost": "x.fdbcat"},
	})
	if err == nil {
		t.Fatal("snapshot path for unknown database accepted")
	}
}

// gatedWriter blocks the handler inside Write until released, modelling
// a slow streaming client; it lets the drain test hold a query in
// flight deterministically.
type gatedWriter struct {
	hdr     http.Header
	started chan struct{} // closed on first Write
	release chan struct{} // Write blocks until closed
	once    sync.Once
	mu      sync.Mutex
	n       int
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{
		hdr:     make(http.Header),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gatedWriter) Header() http.Header  { return g.hdr }
func (g *gatedWriter) WriteHeader(code int) {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	g.mu.Lock()
	g.n += len(p)
	g.mu.Unlock()
	return len(p), nil
}

// TestDrainWaitsForInFlightQueries is the shutdown-ordering regression
// test: Drain must refuse new work immediately but return only after
// in-flight (streaming) queries have finished — the process exiting on
// Drain's return must never cut a cursor off mid-stream.
func TestDrainWaitsForInFlightQueries(t *testing.T) {
	s := newTestServer(t, Config{})

	// StartDrain flips refusal without blocking (the pre-Shutdown step
	// in fdbserver); on an idle server Drain then returns immediately.
	s2 := newTestServer(t, Config{})
	s2.StartDrain()
	if !s2.Draining() {
		t.Fatal("StartDrain did not mark the server draining")
	}
	if _, rec := postQuery(t, s2, QueryRequest{SQL: "SELECT customer FROM Orders"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query after StartDrain: status %d", rec.Code)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	gw := newGatedWriter()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"sql":"SELECT customer, date, pizza FROM Orders ORDER BY customer"}`))
	req.Header.Set("Accept", "application/x-ndjson")
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.ServeHTTP(gw, req)
	}()
	<-gw.started // the streaming handler is now mid-response

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()

	// While draining: new queries are refused, healthz reports draining.
	waitFor(t, func() bool { return s.Draining() })
	if _, rec := postQuery(t, s, QueryRequest{SQL: "SELECT customer FROM Orders"}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d", rec.Code)
	}

	// Drain must still be blocked on the in-flight stream.
	select {
	case err := <-drainDone:
		t.Fatalf("Drain returned (%v) while a stream was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gw.release) // let the stream finish
	<-handlerDone
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	gw.mu.Lock()
	n := gw.n
	gw.mu.Unlock()
	if n == 0 {
		t.Fatal("stream wrote nothing")
	}
	// Idempotent and immediate once drained.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainTimeout: a drain whose context expires reports the context
// error instead of hanging.
func TestDrainTimeout(t *testing.T) {
	s := newTestServer(t, Config{})
	gw := newGatedWriter()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"sql":"SELECT customer FROM Orders"}`))
	req.Header.Set("Accept", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(gw, req)
	}()
	<-gw.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned nil despite a stuck stream")
	}
	close(gw.release)
	<-done
}

// TestSnapshotDuringDrainRefused: snapshot writes are part of the
// drained work — new ones are refused once draining.
func TestSnapshotDuringDrainRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.fdbcat")
	s := newTestServer(t, Config{
		Databases: map[string]fdb.Database{"pizzeria": pizzeria(t)},
		Snapshots: map[string]string{"pizzeria": path},
	})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rec := postSnapshot(t, s, ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("snapshot during drain: status %d", rec.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
