package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/sql"
)

func pizzeria(t *testing.T) fdb.Database {
	t.Helper()
	read := func(name, csv string) *fdb.Relation {
		rel, err := fdb.ReadCSV(name, strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	return fdb.Database{
		"Orders": read("Orders",
			"customer,date,pizza\n"+
				"Mario,Monday,Capricciosa\n"+
				"Mario,Tuesday,Margherita\n"+
				"Pietro,Friday,Hawaii\n"+
				"Lucia,Friday,Hawaii\n"+
				"Mario,Friday,Capricciosa\n"),
		"Pizzas": read("Pizzas",
			"pizza2,item\n"+
				"Margherita,base\nCapricciosa,base\nCapricciosa,ham\nCapricciosa,mushrooms\n"+
				"Hawaii,base\nHawaii,ham\nHawaii,pineapple\n"),
		"Items": read("Items",
			"item2,price\nbase,6\nham,1\nmushrooms,1\npineapple,2\n"),
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Databases == nil {
		cfg.Databases = map[string]fdb.Database{"pizzeria": pizzeria(t)}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postQuery(t *testing.T, h http.Handler, req QueryRequest) (*QueryResponse, *httptest.ResponseRecorder) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, rec.Body)
	}
	return &resp, rec
}

const revenueSQL = `SELECT customer, SUM(price) AS revenue
	FROM Orders, Pizzas, Items
	WHERE pizza = pizza2 AND item = item2
	GROUP BY customer ORDER BY revenue DESC, customer`

func TestQueryRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, rec := postQuery(t, s, QueryRequest{SQL: revenueSQL})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if want := []string{"customer", "revenue"}; !equalStrings(resp.Columns, want) {
		t.Fatalf("columns = %v, want %v", resp.Columns, want)
	}
	if resp.RowCount != 3 || len(resp.Rows) != 3 {
		t.Fatalf("rowCount = %d, rows = %v", resp.RowCount, resp.Rows)
	}
	// Mario ordered Capricciosa twice (8 each) and Margherita (6) → 22.
	if got := resp.Rows[0]; got[0] != "Mario" || got[1] != float64(22) {
		t.Fatalf("top row = %v, want [Mario 22]", got)
	}
	if resp.Cached {
		t.Fatal("first execution reported cached")
	}
}

func TestQuerySelectStar(t *testing.T) {
	s := newTestServer(t, Config{})
	resp, rec := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM Items`})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Columns) != 2 || resp.RowCount != 4 {
		t.Fatalf("columns = %v rowCount = %d", resp.Columns, resp.RowCount)
	}
}

func TestPlanCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	first, rec := postQuery(t, s, QueryRequest{SQL: revenueSQL})
	if first == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	// Same statement with different whitespace, keyword case and a
	// trailing semicolon must hit the cache and give identical rows.
	variant := `select customer, sum(price) as revenue
		from Orders, Pizzas, Items where pizza = pizza2 and item = item2
		group by customer order by revenue desc, customer;`
	second, rec := postQuery(t, s, QueryRequest{SQL: variant})
	if second == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !second.Cached {
		t.Fatal("normalised repeat was not a cache hit")
	}
	if fmt.Sprint(second.Rows) != fmt.Sprint(first.Rows) {
		t.Fatalf("cached rows differ:\n%v\n%v", second.Rows, first.Rows)
	}
	st := s.Stats()
	db := st.Databases["pizzeria"]
	if db.PlanCache.Hits != 1 || db.PlanCache.Misses != 1 {
		t.Fatalf("cache stats = %+v", db.PlanCache)
	}
	if db.PlanCacheHitRate <= 0 {
		t.Fatalf("hit rate = %v, want > 0", db.PlanCacheHitRate)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 2})
	stmts := []string{
		`SELECT * FROM Items`,
		`SELECT * FROM Pizzas`,
		`SELECT * FROM Orders`,
	}
	for _, q := range stmts {
		if resp, rec := postQuery(t, s, QueryRequest{SQL: q}); resp == nil {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	// Items was least recently used and must have been evicted.
	resp, rec := postQuery(t, s, QueryRequest{SQL: stmts[0]})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Cached {
		t.Fatal("evicted statement reported as cache hit")
	}
	resp, rec = postQuery(t, s, QueryRequest{SQL: stmts[2]})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !resp.Cached {
		t.Fatal("recently used statement missed the cache")
	}
}

// TestConcurrentQueries drives many goroutines through the full
// parse/prepare/cache/execute path; run with -race it is the server's
// concurrency-safety test.
func TestConcurrentQueries(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	stmts := []string{
		revenueSQL,
		`SELECT * FROM Orders ORDER BY customer`,
		`SELECT pizza, COUNT(*) AS n FROM Orders GROUP BY pizza ORDER BY n DESC`,
		`SELECT item, MIN(price) AS lo, MAX(price) AS hi FROM Pizzas, Items WHERE item = item2 GROUP BY item`,
		`SELECT customer FROM Orders WHERE date = 'Friday'`,
	}
	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := stmts[(g+i)%len(stmts)]
				body, _ := json.Marshal(QueryRequest{SQL: q})
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d: %s", g, rec.Code, rec.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != goroutines*iters {
		t.Fatalf("queries = %d, want %d", st.Queries, goroutines*iters)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	db := st.Databases["pizzeria"]
	if db.PlanCacheHitRate <= 0 {
		t.Fatalf("plan cache hit rate = %v, want > 0 under repetition", db.PlanCacheHitRate)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  *http.Request
		code int
	}{
		{"get method", httptest.NewRequest(http.MethodGet, "/query", nil), http.StatusMethodNotAllowed},
		{"bad json", httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{")), http.StatusBadRequest},
		{"missing sql", httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{}")), http.StatusBadRequest},
		{"parse error", httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"sql":"SELEC x"}`)), http.StatusBadRequest},
		{"unknown relation", httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"sql":"SELECT * FROM Nope"}`)), http.StatusBadRequest},
		{"unknown database", httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"sql":"SELECT * FROM Items","db":"nope"}`)), http.StatusNotFound},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, tc.req)
		if rec.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body)
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: body is not an error response: %s", tc.name, rec.Body)
		}
	}
}

func TestMaxRowsTruncation(t *testing.T) {
	s := newTestServer(t, Config{MaxRows: 2})
	resp, rec := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM Items`})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.RowCount != 2 || !resp.Truncated {
		t.Fatalf("rowCount = %d truncated = %v, want 2 rows truncated", resp.RowCount, resp.Truncated)
	}
}

func TestMultipleDatabases(t *testing.T) {
	tiny, err := fdb.ReadCSV("T", strings.NewReader("x\n1\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		Databases: map[string]fdb.Database{
			"pizzeria": pizzeria(t),
			"tiny":     {"T": tiny},
		},
		DefaultDB: "pizzeria",
	})
	resp, rec := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM T`, DB: "tiny"})
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.RowCount != 2 {
		t.Fatalf("rowCount = %d, want 2", resp.RowCount)
	}
	// The default database does not know T.
	if resp, rec := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM T`}); resp != nil {
		t.Fatal("query against default database should have failed")
	} else if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	if resp, r := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM Items`}); resp == nil {
		t.Fatalf("status %d: %s", r.Code, r.Body)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v\n%s", err, rec.Body)
	}
	if st.Queries != 1 || st.P50Millis < 0 {
		t.Fatalf("stats = %+v", st)
	}
	// An OFFSET query through the shared (ranked) execution path must
	// surface in the seek-vs-skip routing counters.
	if resp, r := postQuery(t, s, QueryRequest{SQL: `SELECT * FROM Items OFFSET 1`}); resp == nil {
		t.Fatalf("status %d: %s", r.Code, r.Body)
	}
	st2 := serveStats(t, s)
	if before, after := st.Offsets.SeekOffsets+st.Offsets.SkipOffsets,
		st2.Offsets.SeekOffsets+st2.Offsets.SkipOffsets; after <= before {
		t.Fatalf("OFFSET query did not advance the routing counters: %+v -> %+v", st.Offsets, st2.Offsets)
	}
	if st2.Offsets.SeekOffsets <= st.Offsets.SeekOffsets {
		t.Fatalf("ranked shared execution did not take the seek route: %+v -> %+v", st.Offsets, st2.Offsets)
	}
}

// serveStats fetches and decodes /stats.
func serveStats(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats body: %v\n%s", err, rec.Body)
	}
	return st
}

func TestNormalizeKeysMatch(t *testing.T) {
	a := sql.Normalize("SELECT  *\n FROM Items;")
	b := sql.Normalize("select * from Items")
	if a != b {
		t.Fatalf("normalised keys differ: %q vs %q", a, b)
	}
	if c := sql.Normalize("SELECT * FROM items"); c == a {
		t.Fatal("identifier case must be preserved")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
