package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/factordb/fdb"
)

// catalogBytes serialises db as a catalogue snapshot named name.
func catalogBytes(t *testing.T, name string, db fdb.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := fdb.SaveCatalog(&buf, name, db); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postInstall(t *testing.T, s *Server, path string, body []byte) (*ShardInstallResponse, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var resp ShardInstallResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding install response: %v\n%s", err, rec.Body)
	}
	return &resp, rec
}

// TestShardInstallBareWorker: a server started with no databases at all
// accepts a shipped snapshot, serves it as the default database, and
// hot-swaps to a replacement.
func TestShardInstallBareWorker(t *testing.T) {
	s, err := New(Config{ShardDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// No databases yet: queries cannot resolve.
	if _, rec := postQuery(t, s, QueryRequest{SQL: "SELECT * FROM Orders"}); rec.Code != http.StatusNotFound {
		t.Fatalf("bare worker query: %d, want 404", rec.Code)
	}

	resp, rec := postInstall(t, s, "/shard/install", catalogBytes(t, "pizzeria", pizzeria(t)))
	if resp == nil {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	if resp.DB != "pizzeria" || resp.Relations != 3 {
		t.Fatalf("install response %+v", resp)
	}
	q, rec := postQuery(t, s, QueryRequest{SQL: "SELECT COUNT(*) AS n FROM Orders"})
	if q == nil {
		t.Fatalf("query after install: %d %s", rec.Code, rec.Body)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != float64(5) {
		t.Fatalf("rows %v", q.Rows)
	}

	// Replace with a smaller shard of the same database: new queries see
	// the new data and the plan cache was reset.
	shard := fdb.Database{"Orders": pizzeria(t)["Orders"]}
	sub := fdb.Database{}
	rel := shard["Orders"]
	sub["Orders"], err = fdb.NewRelation("Orders", rel.Attrs, rel.Tuples[:2])
	if err != nil {
		t.Fatal(err)
	}
	if resp, rec = postInstall(t, s, "/shard/install?db=pizzeria", catalogBytes(t, "pizzeria", sub)); resp == nil {
		t.Fatalf("reinstall: %d %s", rec.Code, rec.Body)
	}
	q, rec = postQuery(t, s, QueryRequest{SQL: "SELECT COUNT(*) AS n FROM Orders"})
	if q == nil {
		t.Fatalf("query after reinstall: %d %s", rec.Code, rec.Body)
	}
	if q.Rows[0][0] != float64(2) {
		t.Fatalf("after reinstall rows %v, want 2", q.Rows)
	}
	if got := s.Stats().ShardInstalls; got != 2 {
		t.Fatalf("ShardInstalls = %d, want 2", got)
	}
	// Drain releases the retired and current snapshots.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardInstallRejects: disabled endpoint, corrupt payloads and
// mutable-name collisions are refused without clobbering served data.
func TestShardInstallRejects(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, rec := postInstall(t, s, "/shard/install", catalogBytes(t, "x", pizzeria(t))); rec.Code != http.StatusNotFound {
		t.Fatalf("install without ShardDir: %d, want 404", rec.Code)
	}

	s, err := New(Config{ShardDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, rec := postInstall(t, s, "/shard/install", []byte("not a catalogue")); rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt install: %d, want 400", rec.Code)
	}
	// Valid install, then a corrupt one: the good data must survive.
	if resp, rec := postInstall(t, s, "/shard/install", catalogBytes(t, "pizzeria", pizzeria(t))); resp == nil {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	if _, rec := postInstall(t, s, "/shard/install?db=pizzeria", []byte{0xde, 0xad}); rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt reinstall: %d, want 400", rec.Code)
	}
	q, rec := postQuery(t, s, QueryRequest{SQL: "SELECT COUNT(*) AS n FROM Orders"})
	if q == nil {
		t.Fatalf("query after corrupt reinstall: %d %s", rec.Code, rec.Body)
	}
	if q.Rows[0][0] != float64(5) {
		t.Fatalf("rows %v, want 5", q.Rows)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShardWarmRestart: a worker restarted with the same shard
// directory reloads the snapshots a previous run installed — no re-ship
// needed — and explicit config takes precedence over a persisted shard
// of the same name.
func TestShardWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{ShardDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if resp, rec := postInstall(t, s1, "/shard/install", catalogBytes(t, "pizzeria", pizzeria(t))); resp == nil {
		t.Fatalf("install: %d %s", rec.Code, rec.Body)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same directory serves the
	// persisted shard as its default database immediately.
	s2, err := New(Config{ShardDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	q, rec := postQuery(t, s2, QueryRequest{SQL: "SELECT COUNT(*) AS n FROM Orders"})
	if q == nil {
		t.Fatalf("query after warm restart: %d %s", rec.Code, rec.Body)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != float64(5) {
		t.Fatalf("rows %v, want [[5]]", q.Rows)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Explicit configuration under the same name wins over the
	// persisted shard file.
	rel, err := fdb.NewRelation("Solo", []string{"a"}, []fdb.Tuple{{fdb.NewInt(1)}})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := New(Config{
		Databases: map[string]fdb.Database{"pizzeria": {"Solo": rel}},
		ShardDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, rec = postQuery(t, s3, QueryRequest{SQL: "SELECT COUNT(*) AS n FROM Solo"})
	if q == nil {
		t.Fatalf("query against explicit config: %d %s", rec.Code, rec.Body)
	}
	if q.Rows[0][0] != float64(1) {
		t.Fatalf("rows %v, want [[1]]", q.Rows)
	}
	if err := s3.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
