package server

import (
	"sort"
	"sync"
	"time"
)

// latWindow is the number of recent query latencies retained for
// percentile estimation. Percentiles are computed over this sliding
// window, not the full history, so they track current behaviour.
const latWindow = 4096

// metrics accumulates query counters and a sliding window of latencies.
// All methods are safe for concurrent use.
type metrics struct {
	mu      sync.Mutex
	started time.Time
	queries uint64
	errors  uint64
	lat     [latWindow]time.Duration
	latN    int // total recorded; window holds min(latN, latWindow)
}

func newMetrics() *metrics {
	return &metrics{started: time.Now()}
}

// record notes one completed query.
func (m *metrics) record(d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	if failed {
		m.errors++
	}
	m.lat[m.latN%latWindow] = d
	m.latN++
}

// Snapshot is a point-in-time view of the server's query metrics.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Queries       uint64  `json:"queries"`
	Errors        uint64  `json:"errors"`
	P50Millis     float64 `json:"p50Millis"`
	P90Millis     float64 `json:"p90Millis"`
	P99Millis     float64 `json:"p99Millis"`
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, m.lat[:n])
	s := Snapshot{
		UptimeSeconds: time.Since(m.started).Seconds(),
		Queries:       m.queries,
		Errors:        m.errors,
	}
	m.mu.Unlock()

	if n == 0 {
		return s
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return float64(window[idx]) / float64(time.Millisecond)
	}
	s.P50Millis = pct(0.50)
	s.P90Millis = pct(0.90)
	s.P99Millis = pct(0.99)
	return s
}
