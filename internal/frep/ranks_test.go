package frep

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/values"
)

// TestBuildRanksTotals pins the ranked totals against CountPlain on
// random forests: the index must reproduce every subtree cardinality
// exactly, and cover the whole store.
func TestBuildRanksTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 100; iter++ {
		f, rel := randForest(rng)
		s := NewStore()
		roots, err := BuildStoreUnchecked(s, rel, f)
		if err != nil {
			t.Fatal(err)
		}
		if s.NodeRanked(roots[0]) && s.Len(roots[0]) > 0 {
			t.Fatalf("iter %d: non-trivial node ranked before BuildRanks", iter)
		}
		if err := s.BuildRanks(); err != nil {
			t.Fatal(err)
		}
		if !s.HasRanks() {
			t.Fatalf("iter %d: BuildRanks left the store incompletely ranked", iter)
		}
		for id := 0; id < s.NodeCount(); id++ {
			if !s.NodeRanked(NodeID(id)) {
				t.Fatalf("iter %d: node %d not ranked after BuildRanks", iter, id)
			}
			got, ok := s.RankTotal(NodeID(id))
			if !ok {
				t.Fatalf("iter %d: RankTotal(%d) not available", iter, id)
			}
			if want := s.CountPlain(NodeID(id)); got != want {
				t.Fatalf("iter %d: RankTotal(%d) = %d, want CountPlain %d", iter, id, got, want)
			}
		}
		// Appending after BuildRanks keeps the prefix valid but clears
		// completeness; the old roots stay ranked.
		nid := s.AddLeaf(ivs(1, 2, 3))
		if s.HasRanks() {
			t.Fatalf("iter %d: HasRanks true after post-rank append", iter)
		}
		if s.NodeRanked(nid) {
			t.Fatalf("iter %d: post-rank node reports ranked", iter)
		}
		for _, r := range roots {
			if !s.NodeRanked(r) {
				t.Fatalf("iter %d: pre-rank root lost its ranking", iter)
			}
		}
	}
}

// TestRanksSnapshotRoundTrip: a ranked store persists as version 2 and
// round-trips (zero-copy and copying) with its index intact and
// canonical bytes; an unranked store persists as the byte-stable
// version 1.
func TestRanksSnapshotRoundTrip(t *testing.T) {
	rel, f := testRel(t)
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(v1[8:10]); got != 1 {
		t.Fatalf("unranked store encoded as version %d, want 1", got)
	}

	if err := s.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	v2, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(v2[8:10]); got != 2 {
		t.Fatalf("ranked store encoded as version %d, want 2", got)
	}
	if len(v2) != len(v1)+8*len(s.vals) {
		t.Fatalf("v2 snapshot is %d bytes, want v1 %d + %d rank bytes", len(v2), len(v1), 8*len(s.vals))
	}

	for _, zeroCopy := range []bool{false, true} {
		ld, err := LoadSnapshot(v2, zeroCopy)
		if err != nil {
			t.Fatalf("zeroCopy=%v: %v", zeroCopy, err)
		}
		if !ld.HasRanks() {
			t.Fatalf("zeroCopy=%v: loaded store lost its ranks", zeroCopy)
		}
		for i, r := range roots {
			got, ok := ld.RankTotal(r)
			if !ok || got != s.CountPlain(r) {
				t.Fatalf("zeroCopy=%v: root %d RankTotal = %d (ok=%v), want %d", zeroCopy, i, got, ok, s.CountPlain(r))
			}
		}
		re, err := ld.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, v2) {
			t.Fatalf("zeroCopy=%v: re-encoded snapshot is not canonical", zeroCopy)
		}
	}

	// The v1 bytes of the same store still load — rank-less — and
	// re-encode to themselves.
	ld, err := LoadSnapshot(v1, true)
	if err != nil {
		t.Fatal(err)
	}
	if ld.HasRanks() || ld.NodeRanked(roots[0]) {
		t.Fatal("v1 snapshot loaded with ranks out of nowhere")
	}
	re, err := ld.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, v1) {
		t.Fatal("v1 snapshot did not re-encode canonically")
	}
}

// patchSnap clones a snapshot, applies mut to its payload, and reseals
// both checksums so the corruption reaches the structural validators.
func patchSnap(b []byte, mut func(payload []byte)) []byte {
	out := append([]byte(nil), b...)
	payload := out[snapHeaderLen:]
	mut(payload)
	binary.LittleEndian.PutUint32(out[56:60], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint32(out[60:64], crc32.Checksum(out[0:60], crcTable))
	return out
}

// TestHostileRankSections: corrupt, truncated or inconsistent rank
// sections must error (never panic) even with valid checksums.
func TestHostileRankSections(t *testing.T) {
	rel, f := testRel(t)
	s := NewStore()
	if _, err := BuildStoreUnchecked(s, rel, f); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	v2, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	ranksOff := len(v2) - snapHeaderLen - 8*len(s.vals)

	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"truncated", v2[:len(v2)-8], "snapshot"},
		{"flipped-rank-bit-no-reseal", func() []byte {
			b := append([]byte(nil), v2...)
			b[snapHeaderLen+ranksOff] ^= 1
			return b
		}(), "checksum"},
		{"inflated-count", patchSnap(v2, func(p []byte) {
			r := binary.LittleEndian.Uint64(p[ranksOff:])
			binary.LittleEndian.PutUint64(p[ranksOff:], r+5)
		}), "rank"},
		{"decreasing-prefix", patchSnap(v2, func(p []byte) {
			binary.LittleEndian.PutUint64(p[ranksOff+8:], 0)
		}), "decrease"},
		{"over-cap", patchSnap(v2, func(p []byte) {
			for i := 0; i < len(s.vals); i++ {
				binary.LittleEndian.PutUint64(p[ranksOff+8*i:], maxRankTotal+uint64(i)+1)
			}
		}), "rank"},
		{"v2-without-flag", func() []byte {
			b := append([]byte(nil), v2...)
			binary.LittleEndian.PutUint16(b[10:12], 0)
			binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], crcTable))
			return b
		}(), "flags"},
	}
	for _, tc := range cases {
		for _, zeroCopy := range []bool{false, true} {
			_, err := LoadSnapshot(tc.b, zeroCopy)
			if err == nil {
				t.Fatalf("%s (zeroCopy=%v): hostile snapshot accepted", tc.name, zeroCopy)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s (zeroCopy=%v): error %q does not mention %q", tc.name, zeroCopy, err, tc.want)
			}
		}
	}
}

// TestGraftExtendsRanks: grafting a completely ranked store into a
// completely ranked target keeps the target complete, so grafted fact
// roots stay directly seekable; grafting into a store with unranked
// appends leaves the grafted nodes unranked but the prefix intact.
func TestGraftExtendsRanks(t *testing.T) {
	mkRanked := func() (*Store, NodeID) {
		rel, f := testRel(t)
		s := NewStore()
		roots, err := BuildStoreUnchecked(s, rel, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.BuildRanks(); err != nil {
			t.Fatal(err)
		}
		return s, roots[0]
	}
	src, root := mkRanked()
	want, _ := src.RankTotal(root)

	dst := NewStore() // fresh stores are trivially completely ranked
	remap := dst.Graft(src)
	if !dst.HasRanks() {
		t.Fatal("graft of ranked into fresh store lost completeness")
	}
	got, ok := dst.RankTotal(remap(root))
	if !ok || got != want {
		t.Fatalf("grafted root RankTotal = %d (ok=%v), want %d", got, ok, want)
	}

	// Graft again: still complete, totals independent per grafted tree.
	remap2 := dst.Graft(src)
	if !dst.HasRanks() {
		t.Fatal("second graft lost completeness")
	}
	if got, ok := dst.RankTotal(remap2(root)); !ok || got != want {
		t.Fatalf("second grafted root RankTotal = %d (ok=%v), want %d", got, ok, want)
	}

	// An unranked append breaks completeness; a following graft must not
	// extend, and the grafted nodes report unranked.
	dst.AddLeaf(ivs(9))
	remap3 := dst.Graft(src)
	if dst.HasRanks() {
		t.Fatal("graft after unranked append claims completeness")
	}
	if dst.NodeRanked(remap3(root)) {
		t.Fatal("graft after unranked append produced a ranked node")
	}
	if _, ok := dst.RankTotal(remap(root)); !ok {
		t.Fatal("earlier grafted root lost its ranking")
	}
}

// TestWeightedSegments: quantile splits cover the window exactly, never
// exceed p, collapse under skew, and fall back to uniform splits on
// unranked stores.
func TestWeightedSegments(t *testing.T) {
	s := NewStore()
	// Root with a hot first value: kid 0 has 1000 tuples, the 7 others 1.
	big := make([]values.Value, 1000)
	for i := range big {
		big[i] = values.NewInt(int64(i))
	}
	hot := s.AddLeaf(big)
	one := s.AddLeaf(ivs(42))
	rootVals := ivs(0, 1, 2, 3, 4, 5, 6, 7)
	kids := []NodeID{hot, one, one, one, one, one, one, one}
	root := s.Add(rootVals, 1, kids)

	// Unranked: must be exactly the uniform split.
	if segs, uniform := WeightedSegments(s, root, 4), Segments(8, 4); len(segs) != len(uniform) {
		t.Fatalf("unranked WeightedSegments = %v, want uniform %v", segs, uniform)
	}

	if err := s.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		segs := WeightedSegments(s, root, p)
		if len(segs) == 0 || len(segs) > p && p >= 1 {
			t.Fatalf("p=%d: %d segments", p, len(segs))
		}
		lo := 0
		for _, sg := range segs {
			if sg[0] != lo || sg[1] <= sg[0] {
				t.Fatalf("p=%d: segments %v do not tile [0,8)", p, segs)
			}
			lo = sg[1]
		}
		if lo != 8 {
			t.Fatalf("p=%d: segments %v do not cover [0,8)", p, segs)
		}
		if p >= 2 {
			// The hot value dominates: the first segment must be just it.
			if segs[0] != [2]int{0, 1} {
				t.Fatalf("p=%d: first segment %v, want the hot value alone (segments %v)", p, segs[0], segs)
			}
		}
	}
}
