package frep

import (
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// FuzzSeek drives ranked direct access with decoded snapshots: any store
// the loader accepts (including ones with rank sections the fuzzer
// mutated into strange-but-valid shapes) must support Total, Seek and
// WeightedSegments without panics or out-of-range access, and Seek(k)
// must still agree with Skip(k) wherever an enumerator can be built.
func FuzzSeek(f *testing.F) {
	seed := func(ranked bool) {
		s := NewStore()
		leaf := s.AddLeaf([]values.Value{values.NewInt(1), values.NewInt(2), values.NewInt(3)})
		mid := s.Add([]values.Value{values.NewInt(10), values.NewInt(11)}, 1, []NodeID{leaf, leaf})
		s.Add([]values.Value{values.NewInt(0)}, 2, []NodeID{mid, leaf})
		if ranked {
			if err := s.BuildRanks(); err != nil {
				f.Fatal(err)
			}
		}
		b, err := s.SnapshotBytes()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, uint8(2), uint16(3))
	}
	seed(false)
	seed(true)

	f.Fuzz(func(t *testing.T, data []byte, rootPick uint8, k16 uint16) {
		st, err := LoadSnapshot(data, true)
		if err != nil {
			return
		}
		// Rank reads must stay in-bounds on every node, ranked or not.
		for id := 0; id < st.NodeCount(); id++ {
			n := NodeID(id)
			_, _ = st.RankTotal(n)
			_ = WeightedSegments(st, n, 4)
		}
		if st.NodeCount() == 0 {
			return
		}
		root := NodeID(int(rootPick) % st.NodeCount())
		shape, ok := uniformShape(st, root)
		if !ok {
			return
		}
		fr := ftree.New()
		attrSeq := 0
		budget := 64
		rootNode := buildShapeTree(fr, shape, &attrSeq, &budget)
		if rootNode == nil {
			return // structure too large to mirror; nothing to check
		}
		fr.Roots = append(fr.Roots, rootNode)

		mk := func() *StoreEnumerator {
			en, err := NewStoreEnumerator(fr, st, []NodeID{root}, nil)
			if err != nil {
				t.Fatalf("enumerator over mirrored shape: %v", err)
			}
			return en
		}
		total := mk().Total()
		k := int(k16)
		a, b := mk(), mk()
		na, nb := a.Skip(k), b.Seek(k)
		if na != nb {
			t.Fatalf("k=%d total=%d: Skip = %d, Seek = %d", k, total, na, nb)
		}
		for i := 0; i < 4; i++ {
			oka, okb := a.Next(), b.Next()
			if oka != okb {
				t.Fatalf("k=%d row %d: Skip stream Next=%v, Seek stream Next=%v", k, i, oka, okb)
			}
			if !oka {
				break
			}
			if relation.Compare(a.Tuple(), b.Tuple()) != 0 {
				t.Fatalf("k=%d row %d: Skip %v, Seek %v", k, i, a.Tuple(), b.Tuple())
			}
		}
	})
}

// shapeNode is the interned kid structure of a store subtree.
type shapeNode struct {
	kids []int // handles into the interner's table
}

// uniformShape checks that every value of every node in id's subtree has
// kids of identical shape and no empty unions below the root — the
// structural invariants real builders guarantee and the enumerator's
// planned slots rely on. It returns an interned handle tree for id.
// Handles keep the check linear even on heavily shared DAGs.
func uniformShape(s *Store, root NodeID) (*shapeTable, bool) {
	tb := &shapeTable{
		s:      s,
		byID:   map[NodeID]int{},
		intern: map[string]int{},
	}
	if s.Len(root) == 0 {
		tb.root = -2 // empty root: fine, stream is empty
		return tb, true
	}
	h := tb.sig(root, true)
	if h < 0 {
		return nil, false
	}
	tb.root = h
	return tb, true
}

type shapeTable struct {
	s      *Store
	byID   map[NodeID]int
	intern map[string]int
	nodes  []shapeNode
	root   int
}

// sig returns the interned shape handle of id, or −1 when the subtree is
// non-uniform or contains an empty union (top permits emptiness).
func (tb *shapeTable) sig(id NodeID, top bool) int {
	if h, ok := tb.byID[id]; ok {
		return h
	}
	n := tb.s.Len(id)
	if n == 0 {
		if top {
			return -2
		}
		return -1
	}
	row0 := tb.s.KidRow(id, 0)
	kids := make([]int, len(row0))
	for j, kid := range row0 {
		if kids[j] = tb.sig(kid, false); kids[j] < 0 {
			return -1
		}
	}
	for v := 1; v < n; v++ {
		for j, kid := range tb.s.KidRow(id, v) {
			if tb.sig(kid, false) != kids[j] {
				return -1
			}
		}
	}
	key := fmt.Sprint(kids)
	h, ok := tb.intern[key]
	if !ok {
		h = len(tb.nodes)
		tb.nodes = append(tb.nodes, shapeNode{kids: kids})
		tb.intern[key] = h
	}
	tb.byID[id] = h
	return h
}

// buildShapeTree mirrors an interned shape as an f-tree (one fresh
// attribute per node). Shared shapes expand into distinct tree nodes, so
// budget caps the expansion on adversarial DAGs.
func buildShapeTree(fr *ftree.Forest, tb *shapeTable, attrSeq *int, budget *int) *ftree.Node {
	tok := fr.NewToken()
	var build func(h int) *ftree.Node
	build = func(h int) *ftree.Node {
		if *budget <= 0 {
			return nil
		}
		*budget--
		n := &ftree.Node{
			Attrs: []string{fmt.Sprintf("a%d", *attrSeq)},
			Deps:  ftree.NewTokenSet(tok),
		}
		*attrSeq++
		if h < 0 { // empty root: a bare single-attribute loop
			return n
		}
		for _, kh := range tb.nodes[h].kids {
			c := build(kh)
			if c == nil {
				return nil
			}
			c.Parent = n
			n.Children = append(n.Children, c)
		}
		return n
	}
	return build(tb.root)
}
