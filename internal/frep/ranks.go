package frep

// The ranked index: per-value subtree tuple counts stored as a fourth
// arena section. For every value a of the value slab that belongs to
// some union node, let W(a) be the number of flat tuples represented by
// that value together with its kid subtrees (the product of the kids'
// totals, or 1 for a leaf value). The index stores the running prefix
// sum ranks[a] = Σ_{a' ≤ a} W(a') over the whole slab, so any node's
// total — and any contiguous value window's total — is one subtraction,
// and "which value contains the q-th tuple" is a binary search. This is
// the precomputation behind ranked direct access (Seek), O(1) COUNT(*),
// and weighted parallel splits.
//
// The index is a prefix property: a store built and ranked once may keep
// appending nodes (operators derive new representations by appending);
// the ranks over the original prefix stay valid, and nodes whose value
// and kid windows lie inside the ranked prefix keep answering in O(1).
// rankedKids records the kid-slab length covered when the index was
// built: a node whose kid window lies below it was appended before the
// index was computed, so all its kid references resolve to nodes whose
// own windows are inside the ranked prefix.

import (
	"fmt"
	"math/bits"
	"sort"
)

// maxRankTotal caps any prefix sum of the ranked index. Totals beyond
// 2⁶² tuples cannot be enumerated anyway; the cap keeps every window
// subtraction and every Seek product comfortably inside uint64.
const maxRankTotal = uint64(1) << 62

// rankOwner resolves the store holding the rank slab: overlays read
// their base's index (overlays never build ranks of their own, and the
// base is not appended to while overlays live).
func (s *Store) rankOwner() *Store {
	if s.base != nil {
		return s.base
	}
	return s
}

// HasRanks reports whether the ranked index covers the store's entire
// current contents (every value and kid slab entry). Appending nodes
// after BuildRanks clears this without invalidating the ranked prefix.
func (s *Store) HasRanks() bool {
	if s.base != nil {
		return false
	}
	return len(s.ranks) == len(s.vals) && int(s.rankedKids) == len(s.kids)
}

// NodeRanked reports whether union id is covered by the ranked index:
// its value window lies inside the ranked prefix and its kid window
// inside the kid-slab prefix recorded at BuildRanks time (which, by
// construction, means every node reachable from it is covered too).
func (s *Store) NodeRanked(id NodeID) bool {
	o := s.rankOwner()
	h := s.hdr(id)
	if uint64(h.valOff)+uint64(h.nVals) > uint64(len(o.ranks)) {
		return false
	}
	if nk := uint64(h.nVals) * uint64(h.arity); nk > 0 {
		if uint64(h.kidOff)+nk > uint64(o.rankedKids) {
			return false
		}
	}
	return true
}

// rankBefore returns the prefix sum strictly before absolute value-slab
// index a (0 for a == 0). The caller guarantees a ≤ len(ranks).
func rankBefore(ranks []uint64, a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return ranks[a-1]
}

// windowTuples returns the number of tuples represented by values
// [lo, hi) of union id, and whether the window is covered by the ranked
// index.
func (s *Store) windowTuples(id NodeID, lo, hi int) (uint64, bool) {
	if !s.NodeRanked(id) {
		return 0, false
	}
	if lo < 0 {
		lo = 0
	}
	h := s.hdr(id)
	if hi > int(h.nVals) {
		hi = int(h.nVals)
	}
	if lo >= hi {
		return 0, true
	}
	ranks := s.rankOwner().ranks
	base := uint64(h.valOff)
	return ranks[base+uint64(hi)-1] - rankBefore(ranks, base+uint64(lo)), true
}

// RankTotal returns the total number of flat tuples represented by the
// subtree of union id, when the ranked index covers it. The empty node
// reports 0.
func (s *Store) RankTotal(id NodeID) (int64, bool) {
	t, ok := s.windowTuples(id, 0, s.Len(id))
	if !ok {
		return 0, false
	}
	return int64(t), true // totals are capped at 2⁶², so int64 is exact
}

// rankSeek finds the value position of union id — iterating the window
// [lo, hi) ascending or descending — that contains the q-th tuple
// (0-based, in iteration order), returning the position and the number
// of tuples strictly before it in iteration order. The caller
// guarantees the node is ranked, lo ≤ hi valid, and q less than the
// window's tuple count.
func (s *Store) rankSeek(id NodeID, lo, hi int, q uint64, desc bool) (int, uint64) {
	ranks := s.rankOwner().ranks
	base := uint64(s.hdr(id).valOff)
	pre := func(p int) uint64 { return rankBefore(ranks, base+uint64(p)) }
	if !desc {
		// Smallest v with the inclusive sum through v exceeding q; values
		// of weight 0 are never selected (their inclusive sum equals their
		// exclusive one).
		d := sort.Search(hi-lo, func(d int) bool { return pre(lo+d+1)-pre(lo) > q })
		pos := lo + d
		return pos, pre(pos) - pre(lo)
	}
	// Descending: the tuples before position p are those of values after
	// it. Find the smallest p whose suffix sum is ≤ q (suffix sums shrink
	// as p grows, so the predicate is monotone).
	d := sort.Search(hi-lo, func(d int) bool { return pre(hi)-pre(lo+d+1) <= q })
	pos := lo + d
	return pos, pre(hi) - pre(pos+1)
}

// BuildRanks computes the ranked index over the store's current
// contents in one pass over the node slab. It must be called on a plain
// store (not an overlay). Nodes whose value window starts before the
// running cursor alias an earlier window (segment views) and contribute
// nothing new. An error is returned — and the store left unranked — if
// any subtree total would exceed maxRankTotal.
func (s *Store) BuildRanks() error {
	if s.base != nil {
		return fmt.Errorf("frep: BuildRanks on an overlay store")
	}
	ranks := s.ranks[:0]
	s.ranks = nil
	s.rankedKids = 0
	if cap(ranks) < len(s.vals) {
		ranks = make([]uint64, 0, len(s.vals))
	}
	var running uint64
	for id := range s.nodes {
		h := &s.nodes[id]
		if h.nVals == 0 || int(h.valOff) < len(ranks) {
			continue // empty node or alias over an earlier window
		}
		// Defensive gap fill (unreachable for stores built through Add):
		// values owned by no node weigh 0.
		for len(ranks) < int(h.valOff) {
			ranks = append(ranks, running)
		}
		for v := 0; v < int(h.nVals); v++ {
			w := uint64(1)
			for j := 0; j < int(h.arity); j++ {
				kh := &s.nodes[s.kids[h.kidOff+uint32(v)*h.arity+uint32(j)]]
				kt := uint64(0)
				if kh.nVals > 0 {
					end := uint64(kh.valOff) + uint64(kh.nVals)
					kt = ranks[end-1] - rankBefore(ranks, uint64(kh.valOff))
				}
				hi, lo := bits.Mul64(w, kt)
				if hi != 0 || lo > maxRankTotal {
					return fmt.Errorf("frep: BuildRanks: subtree count overflow at node %d", id)
				}
				w = lo
			}
			if running > maxRankTotal-w {
				return fmt.Errorf("frep: BuildRanks: prefix count overflow at node %d", id)
			}
			running += w
			ranks = append(ranks, running)
		}
	}
	for len(ranks) < len(s.vals) {
		ranks = append(ranks, running)
	}
	s.ranks = ranks
	s.rankedKids = uint32(len(s.kids))
	return nil
}

// WeightedSegments splits the value window [0, Len(id)) of union id
// into at most p contiguous windows of near-equal represented tuple
// count, using the ranked index — the skew-aware counterpart of
// Segments. A heavily skewed union yields fewer (possibly one) windows:
// a window never splits below one value, and empty windows are dropped.
// When the index does not cover id, or it represents no tuples, this
// falls back to the arity-uniform Segments.
func WeightedSegments(s *Store, id NodeID, p int) [][2]int {
	n := s.Len(id)
	total, ok := s.windowTuples(id, 0, n)
	if !ok || total == 0 || p < 2 || n < 2 {
		return Segments(n, p)
	}
	if p > n {
		p = n
	}
	ranks := s.rankOwner().ranks
	base := uint64(s.hdr(id).valOff)
	pre := func(v int) uint64 { return rankBefore(ranks, base+uint64(v)) }
	out := make([][2]int, 0, p)
	lo := 0
	for w := 1; w <= p && lo < n; w++ {
		hi := n
		if w < p {
			// The w-th quantile boundary: the number of values whose
			// cumulative weight stays within w/p of the total.
			qhi, qlo := bits.Mul64(total, uint64(w))
			target, _ := bits.Div64(qhi, qlo, uint64(p))
			hi = lo + sort.Search(n-lo, func(d int) bool { return pre(lo+d+1) > target })
			if hi <= lo {
				hi = lo + 1 // never split below one value
			}
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// extendRanksForGraft extends a complete ranked index across a Graft of
// other (itself completely ranked) into s, keeping s complete; called by
// Graft with the slab base offsets captured before appending. On
// overflow the extension is abandoned and s keeps only its ranked
// prefix.
func (s *Store) extendRanksForGraft(other *Store) {
	last := uint64(0)
	if len(s.ranks) > 0 {
		last = s.ranks[len(s.ranks)-1]
	}
	if len(other.ranks) > 0 && last > maxRankTotal-other.ranks[len(other.ranks)-1] {
		return // keep the valid prefix; the grafted nodes stay unranked
	}
	for _, r := range other.ranks {
		s.ranks = append(s.ranks, r+last)
	}
	s.rankedKids = uint32(len(s.kids))
}
