package frep

// Linear-path set merge and tuple removal: the write path's delta layer
// keeps each relation's current contents as one factorisation over the
// relation's linear path, maintained incrementally inside an overlay
// store. MergeLinear folds a freshly factorised insert batch into the
// current root in time proportional to the touched prefix paths;
// RemoveTuples rebuilds only the nodes on tombstoned paths. Both exploit
// that linear-path factorisations of sets are canonical — strictly
// ascending values per union, one kid per value — so the incremental
// result is structurally identical to a from-scratch build of the merged
// flat relation (the property the DML goldens assert).

import (
	"fmt"

	"github.com/factordb/fdb/internal/values"
)

// MergeLinear returns the set union of two linear-path factorisations
// living in s (typically the current root and a just-built batch root in
// the same overlay). Values comparing equal merge into one entry keeping
// the left-hand representative, with their subtrees merged recursively;
// equal leaf values collapse (relations are sets). Untouched subtrees
// are shared, not copied, so the cost is proportional to the overlap
// plus the smaller side. Both arguments must have the same depth.
func MergeLinear(s *Store, a, b NodeID) NodeID {
	if a == EmptyNode {
		return b
	}
	if b == EmptyNode {
		return a
	}
	ar, br := s.Arity(a), s.Arity(b)
	if ar != br {
		panic(fmt.Sprintf("frep: MergeLinear of arities %d and %d", ar, br))
	}
	if ar > 1 {
		panic(fmt.Sprintf("frep: MergeLinear of arity %d (not a linear path)", ar))
	}
	av, bv := s.Vals(a), s.Vals(b)
	vals := make([]values.Value, 0, len(av)+len(bv))
	var kids []NodeID
	if ar > 0 {
		kids = make([]NodeID, 0, len(av)+len(bv))
	}
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch c := values.Compare(av[i], bv[j]); {
		case c < 0:
			vals = append(vals, av[i])
			if ar > 0 {
				kids = append(kids, s.Kid(a, i, 0))
			}
			i++
		case c > 0:
			vals = append(vals, bv[j])
			if ar > 0 {
				kids = append(kids, s.Kid(b, j, 0))
			}
			j++
		default:
			vals = append(vals, av[i])
			if ar > 0 {
				kids = append(kids, MergeLinear(s, s.Kid(a, i, 0), s.Kid(b, j, 0)))
			}
			i++
			j++
		}
	}
	for ; i < len(av); i++ {
		vals = append(vals, av[i])
		if ar > 0 {
			kids = append(kids, s.Kid(a, i, 0))
		}
	}
	for ; j < len(bv); j++ {
		vals = append(vals, bv[j])
		if ar > 0 {
			kids = append(kids, s.Kid(b, j, 0))
		}
	}
	return s.Add(vals, ar, kids)
}

// RemoveTuples returns root with the given tuples removed from the
// linear-path factorisation. Tombstones must be sorted lexicographically
// by values.Compare and each must have exactly the path's depth; tuples
// not present are ignored. Untouched subtrees are shared; only nodes on
// tombstoned paths are rebuilt. Removing every tuple yields EmptyNode.
func RemoveTuples(s *Store, root NodeID, tombs [][]values.Value) NodeID {
	if root == EmptyNode || len(tombs) == 0 {
		return root
	}
	id, _ := removeAt(s, root, tombs, 0)
	return id
}

func removeAt(s *Store, id NodeID, tombs [][]values.Value, d int) (NodeID, bool) {
	vals := s.Vals(id)
	ar := s.Arity(id)
	if ar > 1 {
		panic(fmt.Sprintf("frep: RemoveTuples over arity %d (not a linear path)", ar))
	}
	newVals := make([]values.Value, 0, len(vals))
	var newKids []NodeID
	if ar > 0 {
		newKids = make([]NodeID, 0, len(vals))
	}
	changed := false
	k := 0
	for i := 0; i < len(vals); i++ {
		v := vals[i]
		for k < len(tombs) && values.Compare(tombs[k][d], v) < 0 {
			k++ // tombstone for an absent value: ignore
		}
		g := k
		for g < len(tombs) && values.Compare(tombs[g][d], v) == 0 {
			g++
		}
		if g == k {
			newVals = append(newVals, v)
			if ar > 0 {
				newKids = append(newKids, s.Kid(id, i, 0))
			}
			continue
		}
		if ar == 0 {
			changed = true // tombstoned leaf value: drop
			k = g
			continue
		}
		kid, ch := removeAt(s, s.Kid(id, i, 0), tombs[k:g], d+1)
		k = g
		if kid == EmptyNode {
			changed = true // the whole subtree under v vanished
			continue
		}
		changed = changed || ch
		newVals = append(newVals, v)
		newKids = append(newKids, kid)
	}
	if !changed {
		return id, false
	}
	return s.Add(newVals, ar, newKids), true
}
