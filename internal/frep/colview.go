package frep

// The columnar view: a per-store kind-run index over the value slab that
// lets hot operators process whole union value windows as raw []int64
// payloads (ints directly, floats and bools as their payload bits)
// through the vectorised kernels of internal/frep/kernel, instead of
// per-value values.Value dispatch.
//
// Like the ranked index (ranks.go), the column index is a side section
// built in one pass over the slab and is a prefix property: a store may
// keep appending after BuildCols, and windows that lie inside the
// indexed prefix keep qualifying for kernels, while windows beyond it —
// or spanning a kind change, or of String/Vec/Null kind — fall back to
// the scalar path. Kernel and scalar paths are byte-identical by
// construction (the kernels reproduce values.Compare / values.Add
// semantics bit for bit), so the dispatch is purely a performance
// decision.
//
// The index is immutable once built and shared by pointer across
// CloneInto and Snapshot; Reset drops the pointer (never truncates the
// shared slices), and Graft extends it copy-on-write.

import (
	"math"
	"sort"
	"sync/atomic"

	"github.com/factordb/fdb/internal/frep/kernel"
	"github.com/factordb/fdb/internal/values"
)

// EnableKernels gates every vectorised fast path. It exists so tests can
// force the scalar fallback and assert byte-identical results, and so
// benchmarks can measure the kernel speedup in-process. It must only be
// toggled when no queries are in flight.
var EnableKernels = true

// KernelStatsEnabled turns on the dispatch counters below. Off by
// default so the hot path pays only an untaken branch.
var KernelStatsEnabled = false

// KernelStats counts kernel dispatches and scalar fallbacks since the
// last reset, for tests that assert the fast path actually engaged.
type KernelStats struct {
	SelectKernel      uint64 // SelectConstKernel handled the node
	SelectFallback    uint64 // SelectConstKernel declined (mixed/unindexed run)
	AggKernel         uint64 // γ leaf evaluated by kernels
	AggFallback       uint64 // γ leaf fell back to the scalar fold
	Find              uint64 // FindValue answered via a search kernel
	FindFallback      uint64 // FindValue fell back to scalar sort.Search
	Intersect         uint64 // IntersectPairs handled the pair
	IntersectFallback uint64 // IntersectPairs declined
}

var kstats struct {
	selectKernel, selectFallback atomic.Uint64
	aggKernel, aggFallback       atomic.Uint64
	find, findFallback           atomic.Uint64
	intersect, intersectFallback atomic.Uint64
}

// ResetKernelStats zeroes the dispatch counters.
func ResetKernelStats() {
	kstats.selectKernel.Store(0)
	kstats.selectFallback.Store(0)
	kstats.aggKernel.Store(0)
	kstats.aggFallback.Store(0)
	kstats.find.Store(0)
	kstats.findFallback.Store(0)
	kstats.intersect.Store(0)
	kstats.intersectFallback.Store(0)
}

// ReadKernelStats returns the current dispatch counters.
func ReadKernelStats() KernelStats {
	return KernelStats{
		SelectKernel:      kstats.selectKernel.Load(),
		SelectFallback:    kstats.selectFallback.Load(),
		AggKernel:         kstats.aggKernel.Load(),
		AggFallback:       kstats.aggFallback.Load(),
		Find:              kstats.find.Load(),
		FindFallback:      kstats.findFallback.Load(),
		Intersect:         kstats.intersect.Load(),
		IntersectFallback: kstats.intersectFallback.Load(),
	}
}

// colIndex is the kind-run index over the leading nVals entries of the
// value slab: every value's raw payload, plus the slab partitioned into
// maximal runs of equal kind (runEnds[i] is the absolute end offset of
// run i, runKinds[i] its kind). Immutable once built.
type colIndex struct {
	pay      []int64
	runEnds  []uint32
	runKinds []values.Kind
	nVals    uint32
}

// colOwner resolves the store holding the column index: overlays read
// their base's (overlays never build an index of their own, and the base
// is not appended to while overlays live).
func (s *Store) colOwner() *Store {
	if s.base != nil {
		return s.base
	}
	return s
}

// HasCols reports whether the column index covers the store's entire
// current value slab. Appending after BuildCols clears this without
// invalidating the indexed prefix.
func (s *Store) HasCols() bool {
	if s.base != nil {
		return false
	}
	return s.cols != nil && int(s.cols.nVals) == len(s.vals)
}

// BuildCols computes the column index over the store's current value
// slab in one pass. It must be called on a plain store (not an overlay).
// Safe on frozen (snapshot-loaded) stores: the index is a side section
// and the slabs are only read.
func (s *Store) BuildCols() {
	if s.base != nil {
		panic("frep: BuildCols on an overlay store")
	}
	n := len(s.vals)
	c := &colIndex{
		pay:   make([]int64, n),
		nVals: uint32(n),
	}
	var cur values.Kind
	for i, v := range s.vals {
		c.pay[i] = v.Raw()
		if k := v.Kind(); i == 0 || k != cur {
			if i > 0 {
				c.runEnds = append(c.runEnds, uint32(i))
				c.runKinds = append(c.runKinds, cur)
			}
			cur = k
		}
	}
	if n > 0 {
		c.runEnds = append(c.runEnds, uint32(n))
		c.runKinds = append(c.runKinds, cur)
	}
	s.cols = c
}

// colRun returns the kind and payload slice of the value-slab window
// [off, off+n) when the column index covers it and the window lies
// inside one kind run. n must be > 0.
func (s *Store) colRun(off, n uint32) (values.Kind, []int64, bool) {
	c := s.colOwner().cols
	if c == nil || uint64(off)+uint64(n) > uint64(c.nVals) {
		return 0, nil, false
	}
	ri := sort.Search(len(c.runEnds), func(i int) bool { return c.runEnds[i] > off })
	if c.runEnds[ri] < off+n {
		return 0, nil, false // window spans a kind change
	}
	end := off + n
	return c.runKinds[ri], c.pay[off:end:end], true
}

// ColRun returns the kind and raw payloads of union id's value window
// when it is covered by the column index and kind-homogeneous. The
// returned slice aliases the index; callers must not modify it.
func (s *Store) ColRun(id NodeID) (values.Kind, []int64, bool) {
	h := s.hdr(id)
	if h.nVals == 0 {
		return 0, nil, false
	}
	return s.colRun(h.valOff, h.nVals)
}

// SelectConstKernel evaluates σ_{value op c} over union id through the
// comparison kernels, returning the resulting node and true when the
// fast path applied (reusing id itself when every value passes, or
// EmptyNode when none does). It returns false — having done nothing —
// when the node's window is not covered by the column index, spans a
// kind change, or involves kinds the kernels do not handle; the caller
// then runs the scalar loop. bits is a caller-owned scratch bitmap,
// reused across calls.
func (s *Store) SelectConstKernel(id NodeID, op kernel.Op, c values.Value, bits *[]uint64) (NodeID, bool) {
	h := s.hdr(id)
	n := h.nVals
	if n == 0 {
		return EmptyNode, true
	}
	if !EnableKernels {
		return EmptyNode, false
	}
	k, pay, ok := s.colRun(h.valOff, n)
	if !ok {
		if KernelStatsEnabled {
			kstats.selectFallback.Add(1)
		}
		return EmptyNode, false
	}
	ck := c.Kind()
	sameRank := k == ck ||
		((k == values.Int || k == values.Float) && (ck == values.Int || ck == values.Float))
	if !sameRank {
		// The whole run compares with c by kind rank alone, so the verdict
		// is uniform: keep the node untouched or drop it, O(1) either way.
		if KernelStatsEnabled {
			kstats.selectKernel.Add(1)
		}
		if op.HoldsCmp(values.Compare(s.Val(id, 0), c)) {
			return id, true
		}
		return EmptyNode, true
	}
	bm := kernel.Bitmap(*bits, int(n))
	*bits = bm
	var cnt int
	switch {
	case k == values.Int && ck == values.Int,
		k == values.Bool && ck == values.Bool:
		cnt = kernel.CmpConstInt64(pay, c.Raw(), op, bm)
	case k == values.Float:
		cnt = kernel.CmpConstFloatBits(pay, c.AsFloat(), op, bm)
	case k == values.Int && ck == values.Float:
		cnt = kernel.CmpConstInt64AsFloat(pay, c.AsFloat(), op, bm)
	default: // String/Vec/Null runs: scalar path
		if KernelStatsEnabled {
			kstats.selectFallback.Add(1)
		}
		return EmptyNode, false
	}
	if KernelStatsEnabled {
		kstats.selectKernel.Add(1)
	}
	switch cnt {
	case int(n):
		return id, true
	case 0:
		return EmptyNode, true
	}
	return s.appendFiltered(id, bm, cnt), true
}

// appendFiltered appends a copy of union id keeping only the values
// whose bit is set, copying whole selected runs of the value and kid
// slabs per bitmap run instead of per value.
func (s *Store) appendFiltered(id NodeID, bm []uint64, nSel int) NodeID {
	hv := *s.hdr(id) // by value: the header pointer dangles if s.nodes grows
	nNodes, nVals, nKids := s.counts()
	if nNodes >= math.MaxUint32 ||
		nVals+nSel > math.MaxUint32 ||
		nKids+nSel*int(hv.arity) > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	nid := NodeID(uint32(nNodes))
	s.nodes = append(s.nodes, nodeHdr{
		valOff: uint32(nVals),
		kidOff: uint32(nKids),
		nVals:  uint32(nSel),
		arity:  hv.arity,
	})
	n := int(hv.nVals)
	for pos := 0; pos < n; {
		a, b := kernel.NextRun(bm, pos, n)
		if a == b {
			break
		}
		s.vals = append(s.vals, s.valSlice(hv.valOff+uint32(a), uint32(b-a))...)
		if hv.arity > 0 {
			s.kids = append(s.kids,
				s.kidSlice(hv.kidOff+uint32(a)*hv.arity, uint32(b-a)*hv.arity)...)
		}
		pos = b
	}
	return nid
}

// FindValue locates v within union id's sorted value window, returning
// the first position whose value is not below v and whether it equals v
// — the kernel-accelerated form of sort.Search over values.Compare.
func (s *Store) FindValue(id NodeID, v values.Value) (int, bool) {
	h := s.hdr(id)
	n := h.nVals
	if n > 0 && EnableKernels {
		if k, pay, ok := s.colRun(h.valOff, n); ok {
			vk := v.Kind()
			switch {
			case k == values.Int && vk == values.Int,
				k == values.Bool && vk == values.Bool:
				if KernelStatsEnabled {
					kstats.find.Add(1)
				}
				return kernel.SearchInt64(pay, v.Raw())
			case k == values.Float && (vk == values.Float || vk == values.Int):
				if KernelStatsEnabled {
					kstats.find.Add(1)
				}
				return kernel.SearchFloatBits(pay, v.AsFloat())
			case k == values.Int && vk == values.Float:
				if KernelStatsEnabled {
					kstats.find.Add(1)
				}
				return kernel.SearchInt64AsFloat(pay, v.AsFloat())
			}
		}
	}
	if KernelStatsEnabled {
		kstats.findFallback.Add(1)
	}
	vals := s.valSlice(h.valOff, n)
	pos := sort.Search(len(vals), func(i int) bool {
		return values.Compare(vals[i], v) >= 0
	})
	return pos, pos < len(vals) && values.Compare(vals[pos], v) == 0
}

// IntersectPairs appends to out the index pairs (i, j) of equal values
// between unions x and y, and reports whether the kernels handled the
// pair. False means out is unchanged and the caller must run the scalar
// two-pointer merge. Pass out[:0] to reuse scratch.
func (s *Store) IntersectPairs(x, y NodeID, out [][2]int32) ([][2]int32, bool) {
	if !EnableKernels {
		return out, false
	}
	hx, hy := s.hdr(x), s.hdr(y)
	if hx.nVals == 0 || hy.nVals == 0 {
		return out, true // empty intersection, no pairs
	}
	kx, px, ok := s.colRun(hx.valOff, hx.nVals)
	if !ok {
		if KernelStatsEnabled {
			kstats.intersectFallback.Add(1)
		}
		return out, false
	}
	ky, py, ok := s.colRun(hy.valOff, hy.nVals)
	if !ok || kx != ky {
		if KernelStatsEnabled {
			kstats.intersectFallback.Add(1)
		}
		return out, false
	}
	switch kx {
	case values.Int, values.Bool:
		out = kernel.IntersectInt64(px, py, out)
	case values.Float:
		out = kernel.IntersectFloatBits(px, py, out)
	default:
		if KernelStatsEnabled {
			kstats.intersectFallback.Add(1)
		}
		return out, false
	}
	if KernelStatsEnabled {
		kstats.intersect.Add(1)
	}
	return out, true
}

// RemoveKidColumn appends a copy of union id with kid column col removed
// from every row (arity reduced by one), bulk-copying the value window
// and the kid slab in column-gap chunks instead of building per value.
// Used by the Remove operator's leaf rebuild.
func (s *Store) RemoveKidColumn(id NodeID, col int) NodeID {
	hv := *s.hdr(id) // by value: the header pointer dangles if s.nodes grows
	n := int(hv.nVals)
	arity := int(hv.arity)
	newArity := arity - 1
	nNodes, nVals, nKids := s.counts()
	if nNodes >= math.MaxUint32 ||
		nVals+n > math.MaxUint32 ||
		nKids+n*newArity > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	nid := NodeID(uint32(nNodes))
	s.nodes = append(s.nodes, nodeHdr{
		valOff: uint32(nVals),
		kidOff: uint32(nKids),
		nVals:  uint32(n),
		arity:  uint32(newArity),
	})
	s.vals = append(s.vals, s.valSlice(hv.valOff, hv.nVals)...)
	if newArity == 0 || n == 0 {
		return nid
	}
	// The kept kid entries are the flat window minus positions
	// i*arity+col: a head of length col, n-1 inter-row chunks of length
	// arity (spanning row boundaries), and a tail of length arity-col-1.
	kids := s.kidSlice(hv.kidOff, uint32(n*arity))
	s.kids = append(s.kids, kids[:col]...)
	for i := 1; i < n; i++ {
		s.kids = append(s.kids, kids[(i-1)*arity+col+1:i*arity+col]...)
	}
	s.kids = append(s.kids, kids[(n-1)*arity+col+1:]...)
	return nid
}

// extendColsForGraft extends a complete column index across a Graft of
// other (itself completely indexed) into s, keeping s complete. The
// extension is copy-on-write: snapshots and clones sharing the old index
// keep seeing it unchanged.
func (s *Store) extendColsForGraft(other *Store) {
	old := s.cols
	oc := other.cols
	c := &colIndex{
		pay:      make([]int64, 0, len(old.pay)+len(oc.pay)),
		runEnds:  make([]uint32, 0, len(old.runEnds)+len(oc.runEnds)),
		runKinds: make([]values.Kind, 0, len(old.runKinds)+len(oc.runKinds)),
		nVals:    uint32(len(s.vals)),
	}
	c.pay = append(append(c.pay, old.pay...), oc.pay...)
	c.runEnds = append(c.runEnds, old.runEnds...)
	for _, e := range oc.runEnds {
		c.runEnds = append(c.runEnds, e+old.nVals)
	}
	c.runKinds = append(append(c.runKinds, old.runKinds...), oc.runKinds...)
	s.cols = c
}
