package frep

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// buildLinear factorises tuples over the linear path of attrs into s.
func buildLinear(t *testing.T, s *Store, attrs []string, tuples []relation.Tuple) NodeID {
	t.Helper()
	rel, err := relation.New("R", attrs, tuples)
	if err != nil {
		t.Fatal(err)
	}
	f := ftree.New()
	f.NewRelationPath(attrs...)
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	return roots[0]
}

func randTuples(rng *rand.Rand, n, arity, domain int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		tp := make(relation.Tuple, arity)
		for j := range tp {
			tp[j] = values.NewInt(int64(rng.Intn(domain)))
		}
		out[i] = tp
	}
	return out
}

// dedupe sorts and removes full-tuple duplicates (set semantics).
func dedupe(ts []relation.Tuple) []relation.Tuple {
	sort.Slice(ts, func(i, j int) bool { return relation.Compare(ts[i], ts[j]) < 0 })
	out := ts[:0]
	for i, t := range ts {
		if i > 0 && relation.Compare(ts[i-1], t) == 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// TestMergeLinearEqualsRebuild: merging two factorised batches must be
// structurally identical to factorising their union from scratch —
// across arities, overlaps and empty sides.
func TestMergeLinearEqualsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, arity := range []int{1, 2, 3, 4} {
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		for trial := 0; trial < 20; trial++ {
			na, nb := rng.Intn(40), rng.Intn(40)
			a := dedupe(randTuples(rng, na, arity, 8))
			b := dedupe(randTuples(rng, nb, arity, 8))

			s := NewStore()
			ra := buildLinear(t, s, attrs, a)
			rb := buildLinear(t, s, attrs, b)
			merged := MergeLinear(s, ra, rb)

			union := dedupe(append(append([]relation.Tuple{}, a...), b...))
			ref := NewStore()
			rr := buildLinear(t, ref, attrs, union)

			if !EqualStore(s, merged, ref, rr) {
				t.Fatalf("arity %d trial %d: merge of %d+%d tuples differs from rebuild of %d",
					arity, trial, len(a), len(b), len(union))
			}
		}
	}
}

// TestMergeLinearEmptySides: EmptyNode is the identity.
func TestMergeLinearEmptySides(t *testing.T) {
	s := NewStore()
	r := buildLinear(t, s, []string{"x", "y"}, []relation.Tuple{
		{values.NewInt(1), values.NewInt(2)},
	})
	if got := MergeLinear(s, EmptyNode, r); got != r {
		t.Fatalf("merge(empty, r) = %d, want %d", got, r)
	}
	if got := MergeLinear(s, r, EmptyNode); got != r {
		t.Fatalf("merge(r, empty) = %d, want %d", got, r)
	}
	if got := MergeLinear(s, EmptyNode, EmptyNode); got != EmptyNode {
		t.Fatal("merge(empty, empty) != empty")
	}
}

// TestRemoveTuplesEqualsRebuild: removing a random subset must be
// structurally identical to factorising the survivors from scratch,
// including removing everything (EmptyNode) and removing nothing.
func TestRemoveTuplesEqualsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, arity := range []int{1, 2, 3} {
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		for trial := 0; trial < 20; trial++ {
			all := dedupe(randTuples(rng, 30+rng.Intn(30), arity, 6))
			var doomed, kept []relation.Tuple
			for _, tp := range all {
				if rng.Intn(3) == 0 {
					doomed = append(doomed, tp)
				} else {
					kept = append(kept, tp)
				}
			}
			s := NewStore()
			root := buildLinear(t, s, attrs, all)
			tombs := make([][]values.Value, len(doomed))
			for i, tp := range doomed {
				tombs[i] = tp
			}
			sort.Slice(tombs, func(i, j int) bool {
				return relation.Compare(tombs[i], tombs[j]) < 0
			})
			got := RemoveTuples(s, root, tombs)

			ref := NewStore()
			want := buildLinear(t, ref, attrs, kept)
			if !EqualStore(s, got, ref, want) {
				t.Fatalf("arity %d trial %d: remove %d of %d differs from rebuild",
					arity, trial, len(doomed), len(all))
			}
		}
	}
}

// TestRemoveTuplesAbsentAndUnchanged: tombstones for absent tuples are
// ignored, and a no-op removal returns the original node (sharing, not
// copying).
func TestRemoveTuplesAbsentAndUnchanged(t *testing.T) {
	s := NewStore()
	root := buildLinear(t, s, []string{"x", "y"}, []relation.Tuple{
		{values.NewInt(1), values.NewInt(10)},
		{values.NewInt(2), values.NewInt(20)},
	})
	absent := [][]values.Value{
		{values.NewInt(1), values.NewInt(99)},
		{values.NewInt(3), values.NewInt(30)},
	}
	if got := RemoveTuples(s, root, absent); got != root {
		t.Fatalf("no-op removal rebuilt the root: %d != %d", got, root)
	}
	if got := RemoveTuples(s, root, nil); got != root {
		t.Fatal("empty tombstone set changed the root")
	}
}

// TestRemoveTuplesAll: removing every tuple collapses to EmptyNode.
func TestRemoveTuplesAll(t *testing.T) {
	s := NewStore()
	tuples := []relation.Tuple{
		{values.NewInt(1), values.NewInt(10)},
		{values.NewInt(2), values.NewInt(20)},
	}
	root := buildLinear(t, s, []string{"x", "y"}, tuples)
	tombs := [][]values.Value{tuples[0], tuples[1]}
	if got := RemoveTuples(s, root, tombs); got != EmptyNode {
		t.Fatalf("removing all tuples left node %d", got)
	}
}

// TestMergeIntoOverlay: the write path's exact shape — base store
// frozen, batches built and merged inside an overlay — must equal a
// from-scratch build, and the overlay's Snapshot must preserve it.
func TestMergeIntoOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	attrs := []string{"x", "y", "z"}
	base := dedupe(randTuples(rng, 50, 3, 10))

	bs := NewStore()
	root := buildLinear(t, bs, attrs, base)

	ov := bs.Overlay()
	cur := root
	all := append([]relation.Tuple{}, base...)
	for batch := 0; batch < 5; batch++ {
		add := dedupe(randTuples(rng, 10, 3, 10))
		// Keep only tuples not already present, as the write path does.
		var fresh []relation.Tuple
		for _, tp := range add {
			found := false
			for _, ex := range all {
				if relation.Compare(tp, ex) == 0 {
					found = true
					break
				}
			}
			if !found {
				fresh = append(fresh, tp)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		br := buildLinear(t, ov, attrs, fresh)
		cur = MergeLinear(ov, cur, br)
		all = append(all, fresh...)
	}
	all = dedupe(all)

	ref := NewStore()
	want := buildLinear(t, ref, attrs, all)
	if !EqualStore(ov, cur, ref, want) {
		t.Fatal("overlay-merged factorisation differs from from-scratch rebuild")
	}
	snap := ov.Snapshot()
	if !EqualStore(snap, cur, ref, want) {
		t.Fatal("overlay snapshot lost the merged factorisation")
	}
}
