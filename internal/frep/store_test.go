package frep

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func ivs(vs ...int64) []values.Value {
	out := make([]values.Value, len(vs))
	for i, v := range vs {
		out[i] = values.NewInt(v)
	}
	return out
}

func testRel(t testing.TB) (*relation.Relation, *ftree.Forest) {
	t.Helper()
	ts := []relation.Tuple{}
	for _, row := range [][3]int64{
		{1, 10, 100}, {1, 10, 200}, {1, 20, 100},
		{2, 10, 300}, {2, 30, 100}, {3, 30, 300},
	} {
		ts = append(ts, relation.Tuple{
			values.NewInt(row[0]), values.NewInt(row[1]), values.NewInt(row[2]),
		})
	}
	rel := relation.MustNew("R", []string{"a", "b", "c"}, ts)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	return rel, f
}

// TestBuildStoreMatchesBuild asserts the arena build produces the same
// structure as the pointer-based build, node for node.
func TestBuildStoreMatchesBuild(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStoreInvariantsAll(f, s, roots); err != nil {
		t.Fatal(err)
	}
	for i := range roots {
		if !EqualStoreUnion(s, roots[i], legacy[i]) {
			t.Fatalf("root %d: arena and legacy builds differ", i)
		}
	}
	if got, want := s.CountPlain(roots[0]), CountPlain(f.Roots[0], legacy[0]); got != want {
		t.Fatalf("CountPlain = %d, want %d", got, want)
	}
	if got, want := s.SingletonsAll(roots), SingletonsAll(legacy); got != want {
		t.Fatalf("Singletons = %d, want %d", got, want)
	}
}

func TestStoreConversionsRoundTrip(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	ids := s.FromUnions(legacy)
	back := s.ToUnions(ids)
	for i := range legacy {
		if !Equal(legacy[i], back[i]) {
			t.Fatalf("root %d: ToUnion(FromUnion(u)) differs from u", i)
		}
		if !EqualStoreUnion(s, ids[i], legacy[i]) {
			t.Fatalf("root %d: EqualStoreUnion false after FromUnion", i)
		}
	}
}

func TestStoreCloneAndSnapshot(t *testing.T) {
	rel, f := testRel(t)
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.Clone()
	snap := s.Snapshot()
	// Appends to any copy must not disturb the others: each copy gets a
	// node with different contents at the same id.
	added := s.AddLeaf(ivs(7, 8, 9))
	clAdded := cl.AddLeaf(ivs(1))
	snapAdded := snap.AddLeaf(ivs(2, 3))
	for _, st := range []*Store{cl, snap} {
		if !EqualStore(st, roots[0], s, roots[0]) {
			t.Fatal("copies diverged on shared prefix")
		}
	}
	if added != clAdded || added != snapAdded {
		t.Fatalf("appended ids diverged: %d/%d/%d", added, clAdded, snapAdded)
	}
	if s.Len(added) != 3 || cl.Len(clAdded) != 1 || snap.Len(snapAdded) != 2 {
		t.Fatalf("appended nodes leaked across copies: %d/%d/%d values",
			s.Len(added), cl.Len(clAdded), snap.Len(snapAdded))
	}
}

func TestStoreResetReusesSlabs(t *testing.T) {
	rel, f := testRel(t)
	s := NewStore()
	if _, err := BuildStoreUnchecked(s, rel, f); err != nil {
		t.Fatal(err)
	}
	nodes, vals, kids := s.MemStats()
	if nodes == 1 || vals == 0 || kids == 0 {
		t.Fatalf("expected populated slabs, got %d/%d/%d", nodes, vals, kids)
	}
	s.Reset()
	nodes, vals, kids = s.MemStats()
	if nodes != 1 || vals != 0 || kids != 0 {
		t.Fatalf("after Reset: %d/%d/%d, want 1/0/0", nodes, vals, kids)
	}
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStoreInvariantsAll(f, s, roots); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGraft(t *testing.T) {
	rel, f := testRel(t)
	a := NewStore()
	b := NewStore()
	aRoots, err := BuildStoreUnchecked(a, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	bRoots, err := BuildStoreUnchecked(b, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	remap := a.Graft(b)
	moved := remap(bRoots[0])
	if !EqualStore(a, moved, b, bRoots[0]) {
		t.Fatal("grafted subtree differs from source")
	}
	if !EqualStore(a, moved, a, aRoots[0]) {
		t.Fatal("grafted subtree differs from equivalent native build")
	}
}

func TestStoreEmptyNode(t *testing.T) {
	s := NewStore()
	if got := s.Add(nil, 3, nil); got != EmptyNode {
		t.Fatalf("Add of no values = %d, want EmptyNode", got)
	}
	if s.Len(EmptyNode) != 0 || s.Arity(EmptyNode) != 0 {
		t.Fatal("EmptyNode must have no values and arity 0")
	}
}

// TestEvalStoreMatchesEval runs the composite evaluator over both
// representations of the same data.
func TestEvalStoreMatchesEval(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	fields := []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "c"},
		{Fn: ftree.Min, Arg: "b"},
		{Fn: ftree.Max, Arg: "c"},
	}
	ev, err := NewEvaluator(f.Roots[0], fields)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ev.Eval(legacy[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.EvalStore(s, roots[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if values.Compare(want[i], got[i]) != 0 {
			t.Fatalf("field %d: legacy %v, arena %v", i, want[i], got[i])
		}
	}
	cl, err := CountStore(f.Roots[0], s, roots[0])
	if err != nil {
		t.Fatal(err)
	}
	if cl != want[0].Int() {
		t.Fatalf("CountStore = %d, want %d", cl, want[0].Int())
	}
}

// TestStoreEnumeratorMatchesEnumerator diffs full enumerations, in
// document order and under an explicit order.
func TestStoreEnumeratorMatchesEnumerator(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]OrderSpec{
		nil,
		{{Attr: "a", Desc: true}, {Attr: "b"}},
	} {
		le, err := NewEnumerator(f, legacy, order)
		if err != nil {
			t.Fatal(err)
		}
		se, err := NewStoreEnumerator(f, s, roots, order)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			ln, sn := le.Next(), se.Next()
			if ln != sn {
				t.Fatalf("order %v: Next() diverged at tuple %d (%v vs %v)", order, i, ln, sn)
			}
			if !ln {
				break
			}
			lt, st := le.Tuple(), se.Tuple()
			for c := range lt {
				if values.Compare(lt[c], st[c]) != 0 {
					t.Fatalf("order %v tuple %d col %d: %v vs %v", order, i, c, lt[c], st[c])
				}
			}
		}
	}
}

// TestStoreGroupEnumeratorMatches diffs grouped enumeration with
// aggregates between the representations.
func TestStoreGroupEnumeratorMatches(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	g := []OrderSpec{{Attr: "a"}}
	fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "c"}}
	lg, err := NewGroupEnumerator(f, legacy, g, fields)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewStoreGroupEnumerator(f, s, roots, g, fields)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		lok, lerr := lg.Next()
		sok, serr := sg.Next()
		if (lerr != nil) != (serr != nil) {
			t.Fatalf("group %d: errors diverged: %v vs %v", i, lerr, serr)
		}
		if lerr != nil {
			break
		}
		if lok != sok {
			t.Fatalf("group %d: Next() diverged (%v vs %v)", i, lok, sok)
		}
		if !lok {
			break
		}
		lt, st := lg.Tuple(), sg.Tuple()
		for c := range lt {
			if values.Compare(lt[c], st[c]) != 0 {
				t.Fatalf("group %d col %d: %v vs %v", i, c, lt[c], st[c])
			}
		}
	}
}

// TestStoreCodecInterchange writes from each representation and reads
// into each, asserting byte-identical encodings and equal decodes.
func TestStoreCodecInterchange(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	var lbuf, sbuf bytes.Buffer
	if err := WriteTo(&lbuf, f, legacy); err != nil {
		t.Fatal(err)
	}
	if err := WriteStoreTo(&sbuf, f, s, roots); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lbuf.Bytes(), sbuf.Bytes()) {
		t.Fatal("legacy and arena encodings differ")
	}
	// Legacy bytes → arena store.
	_, s2, roots2, err := ReadStoreFrom(bytes.NewReader(lbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range roots2 {
		if !EqualStoreUnion(s2, roots2[i], legacy[i]) {
			t.Fatalf("root %d differs after arena decode", i)
		}
	}
	// Arena bytes → legacy unions.
	_, back, err := ReadFrom(bytes.NewReader(sbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if !Equal(back[i], legacy[i]) {
			t.Fatalf("root %d differs after legacy decode of arena bytes", i)
		}
	}
}

func TestFlattenStoreMatchesFlatten(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := Flatten(f, legacy)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := FlattenStore(f, s, roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf.Tuples) != len(sf.Tuples) {
		t.Fatalf("FlattenStore has %d tuples, Flatten %d", len(sf.Tuples), len(lf.Tuples))
	}
	for i := range lf.Tuples {
		if relation.Compare(lf.Tuples[i], sf.Tuples[i]) != 0 {
			t.Fatalf("tuple %d differs: %v vs %v", i, lf.Tuples[i], sf.Tuples[i])
		}
	}
}
