package frep

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

func TestFormatPaperNotation(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	s := Format(f, roots)
	for _, frag := range []string{"⟨pizza:Capricciosa⟩", "∪", "×", "⟨price:6⟩"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Format missing %q:\n%s", frag, s)
		}
	}
}

func TestFormatEmptyAndForest(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("a")
	f.NewRelationPath("b")
	empty := &Union{}
	one := &Union{Vals: []values.Value{values.NewInt(7)}}
	s := Format(f, []*Union{empty, one})
	if !strings.Contains(s, "∅") {
		t.Errorf("empty union should render as ∅: %s", s)
	}
	if !strings.Contains(s, "⟨b:7⟩") {
		t.Errorf("singleton should render: %s", s)
	}
}

func TestComputeScalarErrors(t *testing.T) {
	// frep-level check via fops is covered there; here: flat schema for
	// aliased nodes.
	f := ftree.New()
	tok := f.NewToken()
	n := &ftree.Node{
		Agg:   &ftree.Agg{Fields: []ftree.AggField{{Fn: ftree.Count}}, Over: []string{"x"}},
		Alias: "n",
		Deps:  ftree.NewTokenSet(tok),
	}
	f.Roots = []*ftree.Node{n}
	cols := FlatSchema(f)
	if len(cols) != 1 || cols[0] != "n" {
		t.Errorf("aliased single-field node should use its alias: %v", cols)
	}
	n.Agg.Fields = append(n.Agg.Fields, ftree.AggField{Fn: ftree.Sum, Arg: "x"})
	cols = FlatSchema(f)
	if len(cols) != 2 || !strings.HasPrefix(cols[0], "n.") {
		t.Errorf("multi-field aliased node should use alias.field: %v", cols)
	}
}
