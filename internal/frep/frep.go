// Package frep implements factorised representations of relations
// (Definition 1 of the paper) over f-trees: nested expressions built from
// unions, products and singletons, stored densely.
//
// The representation over an f-tree node t with children c₁…c_k is a
// union
//
//	U = ⋃_i ⟨t : v_i⟩ × U_{i,1} × ⋯ × U_{i,k}
//
// stored as a Union value with Vals sorted strictly ascending — the
// paper's global ordering invariant, which every operator preserves and
// which enables merge-by-intersection and ordered constant-delay
// enumeration. A representation over a forest is one Union per root; the
// empty relation is a Union with no values.
//
// The package provides construction from a relation (Build), flattening,
// cardinality via the paper's count algorithm, aggregate evaluation
// (Section 3.2) and constant-delay enumerators (Section 4). Structural
// operators that rewrite representations together with their f-trees live
// in package fops.
package frep

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// Union is the factorised representation over one f-tree node: parallel
// slices of sorted distinct values and, for each value, one child Union
// per child of the f-tree node. Kids is nil when the node is a leaf in the
// f-tree; otherwise len(Kids) == len(Vals) and len(Kids[i]) equals the
// number of children of the node.
type Union struct {
	Vals []values.Value
	Kids [][]*Union
}

// Len returns the number of values in the union.
func (u *Union) Len() int { return len(u.Vals) }

// IsEmpty reports whether the union represents the empty relation.
func (u *Union) IsEmpty() bool { return len(u.Vals) == 0 }

// KidsAt returns the child representations for value i, or nil for a leaf
// node.
func (u *Union) KidsAt(i int) []*Union {
	if u.Kids == nil {
		return nil
	}
	return u.Kids[i]
}

// Clone deep-copies the union.
func (u *Union) Clone() *Union {
	out := &Union{Vals: make([]values.Value, len(u.Vals))}
	copy(out.Vals, u.Vals)
	if u.Kids != nil {
		out.Kids = make([][]*Union, len(u.Kids))
		for i, ks := range u.Kids {
			row := make([]*Union, len(ks))
			for j, k := range ks {
				row[j] = k.Clone()
			}
			out.Kids[i] = row
		}
	}
	return out
}

// CloneAll deep-copies a forest representation.
func CloneAll(roots []*Union) []*Union {
	out := make([]*Union, len(roots))
	for i, r := range roots {
		out[i] = r.Clone()
	}
	return out
}

// Equal reports deep structural equality of two unions.
func Equal(a, b *Union) bool {
	if len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Vals {
		if values.Compare(a.Vals[i], b.Vals[i]) != 0 {
			return false
		}
	}
	an, bn := len(a.Kids), len(b.Kids)
	if (an == 0) != (bn == 0) {
		// One side has explicit empty kid rows; compare leniently by
		// treating nil as rows of zero kids.
		for i := 0; i < len(a.Vals); i++ {
			if len(a.KidsAt(i)) != len(b.KidsAt(i)) {
				return false
			}
		}
		return true
	}
	if a.Kids != nil {
		for i := range a.Kids {
			if len(a.Kids[i]) != len(b.Kids[i]) {
				return false
			}
			for j := range a.Kids[i] {
				if !Equal(a.Kids[i][j], b.Kids[i][j]) {
					return false
				}
			}
		}
	}
	return true
}

// Singletons returns the total number of singletons in the representation
// — the paper's size measure for factorisations.
func (u *Union) Singletons() int {
	n := len(u.Vals)
	for _, ks := range u.Kids {
		for _, k := range ks {
			n += k.Singletons()
		}
	}
	return n
}

// SingletonsAll sums Singletons over a forest representation.
func SingletonsAll(roots []*Union) int {
	n := 0
	for _, r := range roots {
		n += r.Singletons()
	}
	return n
}

// CheckInvariants verifies the representation invariants for u against
// f-tree node n: values strictly ascending, kid arity equal to the node's
// child count, and no empty unions below the top level (operators prune
// them). It returns the first violation found.
func CheckInvariants(n *ftree.Node, u *Union) error {
	return checkInv(n, u, true)
}

func checkInv(n *ftree.Node, u *Union, top bool) error {
	if !top && u.IsEmpty() {
		return fmt.Errorf("frep: empty union below top level at node %s", n.Label())
	}
	for i := 1; i < len(u.Vals); i++ {
		if values.Compare(u.Vals[i-1], u.Vals[i]) >= 0 {
			return fmt.Errorf("frep: values not strictly ascending at node %s: %v ≥ %v",
				n.Label(), u.Vals[i-1], u.Vals[i])
		}
	}
	if len(n.Children) == 0 {
		if u.Kids != nil {
			for i := range u.Kids {
				if len(u.Kids[i]) != 0 {
					return fmt.Errorf("frep: leaf node %s has kids", n.Label())
				}
			}
		}
		return nil
	}
	if len(u.Kids) != len(u.Vals) {
		return fmt.Errorf("frep: node %s has %d values but %d kid rows", n.Label(), len(u.Vals), len(u.Kids))
	}
	for i := range u.Kids {
		if len(u.Kids[i]) != len(n.Children) {
			return fmt.Errorf("frep: node %s value %d has %d kids, want %d",
				n.Label(), i, len(u.Kids[i]), len(n.Children))
		}
		for j, k := range u.Kids[i] {
			if err := checkInv(n.Children[j], k, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckInvariantsAll verifies a forest representation.
func CheckInvariantsAll(f *ftree.Forest, roots []*Union) error {
	if len(roots) != len(f.Roots) {
		return fmt.Errorf("frep: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	for i, r := range f.Roots {
		if err := CheckInvariants(r, roots[i]); err != nil {
			return err
		}
	}
	return nil
}

// Build factorises a relation over the given f-tree and verifies that the
// f-tree's independence assumptions hold for this relation (the
// represented relation equals the input up to duplicate elimination). All
// f-tree nodes must be atomic. Build is O(|rel|·depth·log|rel|) plus a
// verification pass.
func Build(rel *relation.Relation, f *ftree.Forest) ([]*Union, error) {
	roots, err := BuildUnchecked(rel, f)
	if err != nil {
		return nil, err
	}
	distinct := rel.Dedup().Cardinality()
	got := int64(1)
	if len(roots) == 0 {
		if distinct > 1 {
			return nil, fmt.Errorf("frep: empty f-tree cannot represent %d tuples", distinct)
		}
		return roots, nil
	}
	for i, r := range f.Roots {
		got *= CountPlain(r, roots[i])
		if got == 0 {
			break
		}
	}
	if got != int64(distinct) {
		return nil, fmt.Errorf("frep: relation does not factorise over f-tree: represents %d tuples, relation has %d distinct", got, distinct)
	}
	return roots, nil
}

// BuildUnchecked factorises a relation over the f-tree without verifying
// the f-tree's independence assumptions. If the relation does not satisfy
// them, the result represents a superset of the relation (the join of its
// projections). Use Build unless the f-tree is known to be valid — for
// example a linear path over a single relation, which is always valid.
func BuildUnchecked(rel *relation.Relation, f *ftree.Forest) ([]*Union, error) {
	cols := map[string]int{}
	for i, a := range rel.Attrs {
		cols[a] = i
	}
	for _, n := range f.Nodes() {
		if n.IsAgg() {
			return nil, fmt.Errorf("frep: Build over f-tree with aggregate node %s", n.Label())
		}
		for _, a := range n.Attrs {
			if _, ok := cols[a]; !ok {
				return nil, fmt.Errorf("frep: relation %s has no attribute %q required by f-tree", rel.Name, a)
			}
		}
	}
	treeAttrs := f.AtomicAttrs()
	if len(treeAttrs) != len(rel.Attrs) {
		return nil, fmt.Errorf("frep: f-tree covers %d attributes, relation has %d", len(treeAttrs), len(rel.Attrs))
	}
	if rel.Cardinality() == 0 {
		out := make([]*Union, len(f.Roots))
		for i := range out {
			out[i] = &Union{}
		}
		return out, nil
	}
	rows := make([]int, rel.Cardinality())
	for i := range rows {
		rows[i] = i
	}
	b := &builder{rel: rel, cols: cols}
	out := make([]*Union, len(f.Roots))
	for i, r := range f.Roots {
		u, err := b.build(r, rows)
		if err != nil {
			return nil, err
		}
		out[i] = u
	}
	return out, nil
}

type builder struct {
	rel  *relation.Relation
	cols map[string]int
}

// build groups the given rows by the node's value and recurses into child
// subtrees.
func (b *builder) build(n *ftree.Node, rows []int) (*Union, error) {
	col := b.cols[n.Attrs[0]]
	// Verify class-equality for multi-attribute classes.
	for _, a := range n.Attrs[1:] {
		c := b.cols[a]
		for _, r := range rows {
			if values.Compare(b.rel.Tuples[r][col], b.rel.Tuples[r][c]) != 0 {
				return nil, fmt.Errorf("frep: class %s: tuple %d has unequal values %v and %v",
					n.Label(), r, b.rel.Tuples[r][col], b.rel.Tuples[r][c])
			}
		}
	}
	// Group rows by value.
	sorted := make([]int, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		return values.Less(b.rel.Tuples[sorted[i]][col], b.rel.Tuples[sorted[j]][col])
	})
	u := &Union{}
	if len(n.Children) > 0 {
		u.Kids = [][]*Union{}
	}
	for start := 0; start < len(sorted); {
		v := b.rel.Tuples[sorted[start]][col]
		end := start + 1
		for end < len(sorted) && values.Compare(b.rel.Tuples[sorted[end]][col], v) == 0 {
			end++
		}
		u.Vals = append(u.Vals, v)
		if len(n.Children) > 0 {
			ks := make([]*Union, len(n.Children))
			for j, c := range n.Children {
				k, err := b.build(c, sorted[start:end])
				if err != nil {
					return nil, err
				}
				ks[j] = k
			}
			u.Kids = append(u.Kids, ks)
		}
		start = end
	}
	return u, nil
}

// CountPlain returns the cardinality of the represented relation, treating
// every node (including aggregate nodes) as holding plain values — i.e.
// without the Section 3.1 interpretation of aggregate attributes. Use
// Count for the paper's count algorithm.
func CountPlain(n *ftree.Node, u *Union) int64 {
	if len(n.Children) == 0 {
		return int64(len(u.Vals))
	}
	var total int64
	for i := range u.Vals {
		prod := int64(1)
		for j, k := range u.Kids[i] {
			prod *= CountPlain(n.Children[j], k)
		}
		total += prod
	}
	return total
}

// FlatSchema returns the attribute names of the flattened relation for the
// forest, in DFS pre-order: every member of each atomic class, and one
// column per aggregation field of each aggregate node (named by the node's
// alias when set and the node has a single field, otherwise by
// "label.field").
func FlatSchema(f *ftree.Forest) []string {
	var out []string
	for _, n := range f.Nodes() {
		out = append(out, NodeColumns(n)...)
	}
	return out
}

// NodeColumns returns the flattened column names contributed by one node.
func NodeColumns(n *ftree.Node) []string {
	if !n.IsAgg() {
		return n.Attrs
	}
	if len(n.Agg.Fields) == 1 {
		return []string{n.Label()}
	}
	out := make([]string, len(n.Agg.Fields))
	for i, fl := range n.Agg.Fields {
		base := n.Agg.Label()
		if n.Alias != "" {
			base = n.Alias
		}
		out[i] = base + "." + fl.String()
	}
	return out
}

// Flatten materialises the represented relation. Aggregate nodes
// contribute their stored values as plain columns (no reweighting); use
// engine-level enumeration for interpreted output.
func Flatten(f *ftree.Forest, roots []*Union) (*relation.Relation, error) {
	schema := FlatSchema(f)
	e, err := NewEnumerator(f, roots, nil)
	if err != nil {
		return nil, err
	}
	var tuples []relation.Tuple
	for e.Next() {
		tuples = append(tuples, e.Tuple().Clone())
	}
	return relation.New("flat", schema, tuples)
}
