package frep

// Paired legacy/arena benchmarks for the acceptance criteria of the
// arena refactor: count, aggregate and enumeration with -benchmem must
// show the arena representation allocating far less (≥5×) than the
// pointer-based one. Each pair measures the same per-query work: the
// legacy side builds pointer-linked unions, the arena side reuses one
// pooled store across iterations (exactly what engine.Exec does).

import (
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

const benchN = 20000

func benchStoreRep(b *testing.B, n int) (*ftree.Forest, *Store, []NodeID) {
	b.Helper()
	rel := benchRelation(n)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		b.Fatal(err)
	}
	return f, s, roots
}

// BenchmarkRepBuild factorises the benchmark relation from scratch per
// iteration — the base-relation step of every Exec.
func BenchmarkRepBuild(b *testing.B) {
	rel := benchRelation(benchN)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := BuildUnchecked(rel, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		s := NewStore()
		for i := 0; i < b.N; i++ {
			s.Reset()
			if _, err := BuildStoreUnchecked(s, rel, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepCount builds the representation and runs the Section 3.2
// count algorithm — the paper's COUNT(*) path.
func BenchmarkRepCount(b *testing.B) {
	rel := benchRelation(benchN)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			roots, err := BuildUnchecked(rel, f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Count(f.Roots[0], roots[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		s := NewStore()
		for i := 0; i < b.N; i++ {
			s.Reset()
			roots, err := BuildStoreUnchecked(s, rel, f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := CountStore(f.Roots[0], s, roots[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRepAggregate runs grouped aggregation (ϖ_{a; count, sum(c)})
// over prebuilt representations: the legacy group enumerator allocates
// per group, the arena one evaluates into reused buffers.
func BenchmarkRepAggregate(b *testing.B) {
	fl, legacy := benchFRep(b, benchN)
	fs, s, roots := benchStoreRep(b, benchN)
	g := []OrderSpec{{Attr: "a"}}
	fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "c"}}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ge, err := NewGroupEnumerator(fl, legacy, g, fields)
			if err != nil {
				b.Fatal(err)
			}
			for {
				ok, err := ge.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ge, err := NewStoreGroupEnumerator(fs, s, roots, g, fields)
			if err != nil {
				b.Fatal(err)
			}
			for {
				ok, err := ge.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
		}
	})
}

// BenchmarkRepEnumerate builds the representation and enumerates every
// tuple — the SPJ per-query path (build, then ordered output).
func BenchmarkRepEnumerate(b *testing.B) {
	rel := benchRelation(benchN)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			roots, err := BuildUnchecked(rel, f)
			if err != nil {
				b.Fatal(err)
			}
			e, err := NewEnumerator(f, roots, nil)
			if err != nil {
				b.Fatal(err)
			}
			for e.Next() {
				total++
			}
		}
		_ = total
	})
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		s := NewStore()
		total := 0
		for i := 0; i < b.N; i++ {
			s.Reset()
			roots, err := BuildStoreUnchecked(s, rel, f)
			if err != nil {
				b.Fatal(err)
			}
			e, err := NewStoreEnumerator(f, s, roots, nil)
			if err != nil {
				b.Fatal(err)
			}
			for e.Next() {
				total++
			}
		}
		_ = total
	})
}

// BenchmarkRepSnapshot measures what a concurrent reader pays to get a
// private copy of a whole forest: a deep pointer clone versus a slab
// clone versus an O(1) snapshot.
func BenchmarkRepSnapshot(b *testing.B) {
	_, legacy := benchFRep(b, benchN)
	_, s, _ := benchStoreRep(b, benchN)
	b.Run("legacy-deep-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = CloneAll(legacy)
		}
	})
	b.Run("arena-slab-clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Clone()
		}
	})
	b.Run("arena-snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Snapshot()
		}
	})
}

// BenchmarkRepEvaluator measures steady-state composite aggregation over
// prebuilt representations (no construction).
func BenchmarkRepEvaluator(b *testing.B) {
	fl, legacy := benchFRep(b, benchN)
	fs, s, roots := benchStoreRep(b, benchN)
	fields := []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "c"},
		{Fn: ftree.Min, Arg: "c"},
	}
	out := make([]values.Value, len(fields))
	b.Run("legacy", func(b *testing.B) {
		ev, err := NewEvaluator(fl.Roots[0], fields)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.EvalInto(legacy[0], out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		ev, err := NewEvaluator(fs.Roots[0], fields)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.EvalStoreInto(s, roots[0], out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
