package frep

// This file implements the arena-backed factorised store: all unions of
// a forest live in three contiguous slabs — node headers, a flat value
// slab and a flat child-reference slab — instead of one heap object per
// union linked by pointers. Children are addressed by uint32 node
// indices, so a whole forest clones with three slab copies, snapshots in
// O(1), and traversals walk dense arrays instead of chasing pointers.
// The pointer-based Union remains as a compatibility view (FromUnion /
// ToUnion) so old and new representations can be diffed.
//
// A Store is append-only: nodes are immutable once added, and operators
// derive new representations by appending nodes that reference existing
// ones (structure sharing, exactly like the copy-on-write of the legacy
// representation, but without per-node allocation).

import (
	"fmt"
	"math"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// NodeID addresses one union node within a Store.
type NodeID uint32

// EmptyNode is the canonical empty union; it is present in every Store
// and shared by all arities (an empty union has no values and therefore
// no kid rows).
const EmptyNode NodeID = 0

// nodeHdr is one union's header: its value range in the value slab, its
// kid-reference range in the kid slab, and its arity (kid references per
// value; 0 for f-tree leaves).
type nodeHdr struct {
	valOff uint32
	kidOff uint32
	nVals  uint32
	arity  uint32
}

// Store holds the unions of one or more forests in contiguous slabs.
// It is append-only; nodes are immutable once added. A Store must not
// be appended to concurrently, but any number of goroutines may read it
// (or append to private Snapshots or Overlays of it) in parallel.
//
// A Store created by Overlay is a two-tier view: node ids and slab
// offsets below the base lengths resolve into the base store's slabs in
// place, while appends land in the overlay's private slabs, continuing
// the base's address space. Plain stores have base == nil and all three
// base lengths zero, so the tier checks below reduce to always-false
// compares on the hot read path.
type Store struct {
	nodes []nodeHdr
	vals  []values.Value
	kids  []NodeID

	// Ranked index (see ranks.go): per-value subtree tuple prefix sums
	// over the leading len(ranks) entries of the value slab, plus the
	// kid-slab length covered when the index was built. Empty when no
	// index has been built.
	ranks      []uint64
	rankedKids uint32

	// Column index (see colview.go): raw payloads and kind runs over the
	// leading cols.nVals entries of the value slab, enabling vectorised
	// kernels. Immutable once built; shared by pointer across CloneInto
	// and Snapshot; nil when no index has been built.
	cols *colIndex

	// dirtyVals is the high-water mark of value-slab entries that may
	// hold non-zero data beyond the current length: CloneInto is the only
	// operation that shrinks vals, and it records the pre-shrink length
	// here so Reset clears exactly the used prefix instead of the full
	// capacity (pooled stores typically reuse a large slab for small
	// intermediate results).
	dirtyVals int

	// Overlay state: the read-only lower tier and its slab lengths at
	// the time the overlay was taken. Nil/zero for plain stores.
	base      *Store
	baseNodes uint32
	baseVals  uint32
	baseKids  uint32

	// frozen marks a store loaded from a snapshot (LoadSnapshot /
	// ReadFrom): its slabs may alias read-only mapped memory, so Reset —
	// the only operation that writes in place — is forbidden. All other
	// operations append, and the slabs are capacity-clamped so appends
	// reallocate instead of writing through.
	frozen bool
}

// hdr resolves a node header across the two tiers.
func (s *Store) hdr(id NodeID) *nodeHdr {
	if uint32(id) < s.baseNodes {
		return &s.base.nodes[id]
	}
	return &s.nodes[uint32(id)-s.baseNodes]
}

// valSlice resolves a value range across the two tiers. A node's values
// never span tiers (nodes are appended whole), so one compare picks the
// slab.
func (s *Store) valSlice(off, n uint32) []values.Value {
	if off < s.baseVals {
		return s.base.vals[off : off+n : off+n]
	}
	o := off - s.baseVals
	return s.vals[o : o+n : o+n]
}

// kidSlice resolves a kid-reference range across the two tiers.
func (s *Store) kidSlice(off, n uint32) []NodeID {
	if off < s.baseKids {
		return s.base.kids[off : off+n : off+n]
	}
	o := off - s.baseKids
	return s.kids[o : o+n : o+n]
}

// counts returns the absolute slab lengths (base plus private tiers).
func (s *Store) counts() (nodes, vals, kids int) {
	return int(s.baseNodes) + len(s.nodes),
		int(s.baseVals) + len(s.vals),
		int(s.baseKids) + len(s.kids)
}

// NewStore returns an empty store containing only the canonical empty
// union node.
func NewStore() *Store {
	return &Store{nodes: make([]nodeHdr, 1, 64)}
}

// Reset truncates the store back to only the empty node, keeping slab
// capacity for reuse (the engine pools stores across queries). The value
// slab is cleared so pooled stores do not pin string or vector memory.
func (s *Store) Reset() {
	if s.base != nil {
		panic("frep: Reset of an overlay store")
	}
	if s.frozen {
		panic("frep: Reset of a frozen (snapshot-loaded) store")
	}
	w := len(s.vals)
	if s.dirtyVals > w {
		w = s.dirtyVals
	}
	clear(s.vals[:w])
	s.dirtyVals = 0
	s.nodes = append(s.nodes[:0], nodeHdr{})
	s.vals = s.vals[:0]
	s.kids = s.kids[:0]
	s.ranks = s.ranks[:0]
	s.rankedKids = 0
	s.cols = nil
}

// Len returns the number of values in union id.
func (s *Store) Len(id NodeID) int { return int(s.hdr(id).nVals) }

// Arity returns the number of child references per value of union id.
func (s *Store) Arity(id NodeID) int { return int(s.hdr(id).arity) }

// Vals returns the value slice of union id as a view into the value
// slab. The caller must not modify it.
func (s *Store) Vals(id NodeID) []values.Value {
	h := s.hdr(id)
	return s.valSlice(h.valOff, h.nVals)
}

// Val returns value i of union id.
func (s *Store) Val(id NodeID, i int) values.Value {
	h := s.hdr(id)
	return s.valSlice(h.valOff, h.nVals)[i]
}

// KidRow returns the child references for value i of union id as a view
// into the kid slab. The caller must not modify it.
func (s *Store) KidRow(id NodeID, i int) []NodeID {
	h := s.hdr(id)
	return s.kidSlice(h.kidOff+uint32(i)*h.arity, h.arity)
}

// Kid returns the j-th child reference of value i of union id.
func (s *Store) Kid(id NodeID, i, j int) NodeID {
	h := s.hdr(id)
	off := h.kidOff + uint32(i)*h.arity + uint32(j)
	if off < s.baseKids {
		return s.base.kids[off]
	}
	return s.kids[off-s.baseKids]
}

// NodeCount returns the number of nodes in the store (including the
// empty node, and the base tier for overlays).
func (s *Store) NodeCount() int { return int(s.baseNodes) + len(s.nodes) }

// MemStats reports the slab sizes (base plus private tiers), for
// diagnostics.
func (s *Store) MemStats() (nodes, vals, kids int) { return s.counts() }

// Add appends a union node holding the given sorted values; kids holds
// the concatenated child rows (arity references per value, value-major)
// and must have length len(vals)*arity. Both slices are copied into the
// slabs, so callers may reuse their scratch. An empty vals returns
// EmptyNode. Add panics on malformed input or on slab overflow (more
// than 2³²−1 entries) — both are programming errors, not data errors.
func (s *Store) Add(vals []values.Value, arity int, kids []NodeID) NodeID {
	if len(vals) == 0 {
		return EmptyNode
	}
	if len(kids) != len(vals)*arity {
		panic(fmt.Sprintf("frep: Store.Add: %d kid refs for %d values × arity %d", len(kids), len(vals), arity))
	}
	nNodes, nVals, nKids := s.counts()
	if nNodes >= math.MaxUint32 ||
		nVals+len(vals) > math.MaxUint32 ||
		nKids+len(kids) > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	id := NodeID(uint32(nNodes))
	s.nodes = append(s.nodes, nodeHdr{
		valOff: uint32(nVals),
		kidOff: uint32(nKids),
		nVals:  uint32(len(vals)),
		arity:  uint32(arity),
	})
	s.vals = append(s.vals, vals...)
	s.kids = append(s.kids, kids...)
	return id
}

// AddLeaf appends a leaf union (arity 0) holding the given sorted
// values.
func (s *Store) AddLeaf(vals []values.Value) NodeID { return s.Add(vals, 0, nil) }

// Clone returns a deep copy of the store: three slab copies, regardless
// of how many nodes it holds.
func (s *Store) Clone() *Store {
	out := &Store{}
	s.CloneInto(out)
	return out
}

// CloneInto copies the store's slabs into dst, reusing dst's capacity
// (dst typically comes from a sync.Pool).
func (s *Store) CloneInto(dst *Store) {
	if s.base != nil || dst.base != nil {
		panic("frep: Clone of or into an overlay store")
	}
	// Record how far dst's value slab was previously used before
	// truncating: the next Reset must clear up to that mark (entries
	// beyond the new length could otherwise pin strings and vectors).
	if l := len(dst.vals); l > dst.dirtyVals {
		dst.dirtyVals = l
	}
	dst.nodes = append(dst.nodes[:0], s.nodes...)
	dst.vals = append(dst.vals[:0], s.vals...)
	dst.kids = append(dst.kids[:0], s.kids...)
	dst.ranks = append(dst.ranks[:0], s.ranks...)
	dst.rankedKids = s.rankedKids
	dst.cols = s.cols
}

// Snapshot returns an O(1) immutable view of the store's current
// contents. Both the original and the snapshot may continue to append
// independently: the snapshot's slices are capacity-clamped, so the
// first append to either side copies out of the shared backing arrays
// instead of writing into them. Because nodes are never mutated in
// place, a snapshot is safe to read (and grow) from other goroutines
// while the original keeps appending.
//
// Snapshotting an overlay yields another overlay over the same base
// with the private slabs capacity-clamped — the delta layer's published
// read view: the writer keeps appending to the original overlay while
// readers graft from the snapshot.
func (s *Store) Snapshot() *Store {
	if s.base != nil {
		return &Store{
			base:      s.base,
			baseNodes: s.baseNodes,
			baseVals:  s.baseVals,
			baseKids:  s.baseKids,
			nodes:     s.nodes[:len(s.nodes):len(s.nodes)],
			vals:      s.vals[:len(s.vals):len(s.vals)],
			kids:      s.kids[:len(s.kids):len(s.kids)],
		}
	}
	return &Store{
		nodes:      s.nodes[:len(s.nodes):len(s.nodes)],
		vals:       s.vals[:len(s.vals):len(s.vals)],
		kids:       s.kids[:len(s.kids):len(s.kids)],
		ranks:      s.ranks[:len(s.ranks):len(s.ranks)],
		rankedKids: s.rankedKids,
		cols:       s.cols,
		frozen:     s.frozen,
	}
}

// Overlay returns a store that reads s's current contents in place and
// appends into private slabs, continuing s's node-id and slab address
// space. It is the per-worker append arena of parallel execution: any
// number of overlays may be taken over one base and used concurrently
// (each from a single goroutine), provided the base is not appended to
// while they live. Taking an overlay copies nothing; merging its appends
// back costs AdoptOverlay, which is linear in the overlay's own output
// only. Overlays must not be Reset, Cloned or pooled; Snapshot and
// Graft-from are supported (the write path's delta layers rely on both).
func (s *Store) Overlay() *Store {
	if s.base != nil {
		panic("frep: Overlay of an overlay store")
	}
	return &Store{
		base:      s,
		baseNodes: uint32(len(s.nodes)),
		baseVals:  uint32(len(s.vals)),
		baseKids:  uint32(len(s.kids)),
	}
}

// AdoptOverlay appends the overlay's private slabs into s (which must be
// the overlay's base) and returns a remapping from overlay node ids to
// their ids in s. Ids below the overlay's base length name s's own nodes
// and map to themselves. Overlays are adopted one at a time; the base
// may have grown through earlier adoptions, the remap accounts for the
// shift. The overlay must not be used after adoption.
func (s *Store) AdoptOverlay(o *Store) func(NodeID) NodeID {
	if o.base != s {
		panic("frep: AdoptOverlay of a foreign overlay")
	}
	if len(s.nodes)+len(o.nodes) > math.MaxUint32 ||
		len(s.vals)+len(o.vals) > math.MaxUint32 ||
		len(s.kids)+len(o.kids) > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	nodeBase := uint32(len(s.nodes))
	valBase := uint32(len(s.vals))
	kidBase := uint32(len(s.kids))
	remap := func(id NodeID) NodeID {
		if uint32(id) < o.baseNodes {
			return id
		}
		return NodeID(uint32(id) - o.baseNodes + nodeBase)
	}
	for _, h := range o.nodes {
		// Headers pointing into the base tier (segment views) keep their
		// offsets; private-tier offsets shift to the adoption point.
		if h.valOff >= o.baseVals {
			h.valOff = h.valOff - o.baseVals + valBase
		}
		if h.kidOff >= o.baseKids {
			h.kidOff = h.kidOff - o.baseKids + kidBase
		}
		s.nodes = append(s.nodes, h)
	}
	s.vals = append(s.vals, o.vals...)
	for _, k := range o.kids {
		s.kids = append(s.kids, remap(k))
	}
	return remap
}

// ViewOf appends a node aliasing the value window [lo, hi) of node id:
// an O(1) segment view (no value or kid copies) used to hand contiguous
// root slices to parallel workers. The whole window returns id itself
// and an empty window returns EmptyNode; neither appends.
func (s *Store) ViewOf(id NodeID, lo, hi int) NodeID {
	h := s.hdr(id)
	if lo < 0 || hi > int(h.nVals) || lo > hi {
		panic(fmt.Sprintf("frep: ViewOf window [%d,%d) out of range for %d values", lo, hi, h.nVals))
	}
	if lo >= hi {
		return EmptyNode
	}
	if lo == 0 && hi == int(h.nVals) {
		return id
	}
	nNodes, _, _ := s.counts()
	if nNodes >= math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	nid := NodeID(uint32(nNodes))
	s.nodes = append(s.nodes, nodeHdr{
		valOff: h.valOff + uint32(lo),
		kidOff: h.kidOff + uint32(lo)*h.arity,
		nVals:  uint32(hi - lo),
		arity:  h.arity,
	})
	return nid
}

// Graft appends the contents of other into s and returns a remapping
// function from other's node ids to s's. Used by Product when the two
// factorised relations live in different stores, and by the write path
// when a query grafts a delta overlay (base factorisation plus private
// appends) into its working store. other is unchanged; grafting an
// overlay flattens both tiers into s.
func (s *Store) Graft(other *Store) func(NodeID) NodeID {
	if s.base != nil {
		panic("frep: Graft into an overlay store")
	}
	if other.base != nil {
		return s.graftOverlay(other)
	}
	if len(s.nodes)+len(other.nodes) > math.MaxUint32 ||
		len(s.vals)+len(other.vals) > math.MaxUint32 ||
		len(s.kids)+len(other.kids) > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	// When both sides carry a complete ranked index, the graft extends
	// it (grafted windows keep their internal sums, shifted by s's
	// running total), so fact roots grafted out of ranked catalogues
	// stay directly seekable.
	extendRanks := s.HasRanks() && other.HasRanks()
	// Same for the column index: extend it copy-on-write when both sides
	// carry a complete one, so grafted fact roots stay kernel-eligible.
	extendCols := s.HasCols() && other.HasCols()
	nodeBase := uint32(len(s.nodes))
	valBase := uint32(len(s.vals))
	kidBase := uint32(len(s.kids))
	remap := func(id NodeID) NodeID {
		if id == EmptyNode {
			return EmptyNode
		}
		return NodeID(uint32(id) - 1 + nodeBase)
	}
	for _, h := range other.nodes[1:] {
		s.nodes = append(s.nodes, nodeHdr{
			valOff: h.valOff + valBase,
			kidOff: h.kidOff + kidBase,
			nVals:  h.nVals,
			arity:  h.arity,
		})
	}
	s.vals = append(s.vals, other.vals...)
	for _, k := range other.kids {
		s.kids = append(s.kids, remap(k))
	}
	if extendRanks {
		s.extendRanksForGraft(other)
	}
	if extendCols {
		s.extendColsForGraft(other)
	}
	return remap
}

// graftOverlay flattens a two-tier overlay view into s. The overlay's
// address space is continuous — base-tier entries below the captured
// lengths, private entries above — so copying the base prefix followed
// by the private slabs preserves every header's offsets up to one
// uniform shift per slab, and one remap covers kid references from both
// tiers. The base must not have been appended to while the overlay
// lives (the Overlay contract), so the captured prefix is stable even
// while the overlay's writer keeps appending to a non-snapshot overlay.
func (s *Store) graftOverlay(o *Store) func(NodeID) NodeID {
	base := o.base
	nNodes := int(o.baseNodes) - 1 + len(o.nodes)
	nVals := int(o.baseVals) + len(o.vals)
	nKids := int(o.baseKids) + len(o.kids)
	if len(s.nodes)+nNodes > math.MaxUint32 ||
		len(s.vals)+nVals > math.MaxUint32 ||
		len(s.kids)+nKids > math.MaxUint32 {
		panic("frep: Store slab overflow (2^32 entries)")
	}
	nodeBase := uint32(len(s.nodes))
	valBase := uint32(len(s.vals))
	kidBase := uint32(len(s.kids))
	remap := func(id NodeID) NodeID {
		if id == EmptyNode {
			return EmptyNode
		}
		return NodeID(uint32(id) - 1 + nodeBase)
	}
	appendHdr := func(h nodeHdr) {
		s.nodes = append(s.nodes, nodeHdr{
			valOff: h.valOff + valBase,
			kidOff: h.kidOff + kidBase,
			nVals:  h.nVals,
			arity:  h.arity,
		})
	}
	for _, h := range base.nodes[1:o.baseNodes] {
		appendHdr(h)
	}
	for _, h := range o.nodes {
		appendHdr(h)
	}
	s.vals = append(s.vals, base.vals[:o.baseVals]...)
	s.vals = append(s.vals, o.vals...)
	for _, k := range base.kids[:o.baseKids] {
		s.kids = append(s.kids, remap(k))
	}
	for _, k := range o.kids {
		s.kids = append(s.kids, remap(k))
	}
	return remap
}

// FromUnion copies a legacy pointer-based union into the store and
// returns its node id. Children are added before their parents so every
// kid reference points backwards.
func (s *Store) FromUnion(u *Union) NodeID {
	if u.IsEmpty() {
		return EmptyNode
	}
	arity := 0
	if len(u.Kids) > 0 {
		arity = len(u.Kids[0])
	}
	var kids []NodeID
	if arity > 0 {
		kids = make([]NodeID, 0, len(u.Vals)*arity)
		for i := range u.Vals {
			for _, k := range u.Kids[i] {
				kids = append(kids, s.FromUnion(k))
			}
		}
	}
	return s.Add(u.Vals, arity, kids)
}

// FromUnions copies a legacy forest representation into the store.
func (s *Store) FromUnions(roots []*Union) []NodeID {
	out := make([]NodeID, len(roots))
	for i, r := range roots {
		out[i] = s.FromUnion(r)
	}
	return out
}

// ToUnion materialises the legacy pointer-based view of union id.
func (s *Store) ToUnion(id NodeID) *Union {
	n := s.Len(id)
	out := &Union{Vals: make([]values.Value, n)}
	copy(out.Vals, s.Vals(id))
	if s.Arity(id) > 0 {
		out.Kids = make([][]*Union, n)
		for i := 0; i < n; i++ {
			row := s.KidRow(id, i)
			kr := make([]*Union, len(row))
			for j, k := range row {
				kr[j] = s.ToUnion(k)
			}
			out.Kids[i] = kr
		}
	}
	return out
}

// ToUnions materialises the legacy view of a forest representation.
func (s *Store) ToUnions(roots []NodeID) []*Union {
	out := make([]*Union, len(roots))
	for i, r := range roots {
		out[i] = s.ToUnion(r)
	}
	return out
}

// CountPlain returns the cardinality of the relation represented by
// union id, treating every node as holding plain values (the arena
// counterpart of the package-level CountPlain).
func (s *Store) CountPlain(id NodeID) int64 {
	n := s.Len(id)
	if s.Arity(id) == 0 {
		return int64(n)
	}
	var total int64
	for i := 0; i < n; i++ {
		prod := int64(1)
		for _, k := range s.KidRow(id, i) {
			prod *= s.CountPlain(k)
		}
		total += prod
	}
	return total
}

// Singletons returns the number of singletons below union id — the
// paper's size measure.
func (s *Store) Singletons(id NodeID) int {
	n := s.Len(id)
	for i := 0; i < s.Len(id); i++ {
		for _, k := range s.KidRow(id, i) {
			n += s.Singletons(k)
		}
	}
	return n
}

// SingletonsAll sums Singletons over a forest representation.
func (s *Store) SingletonsAll(roots []NodeID) int {
	n := 0
	for _, r := range roots {
		n += s.Singletons(r)
	}
	return n
}

// EqualStore reports deep structural equality of union x in store a and
// union y in store b.
func EqualStore(a *Store, x NodeID, b *Store, y NodeID) bool {
	if a == b && x == y {
		return true
	}
	if a.Len(x) != b.Len(y) {
		return false
	}
	av, bv := a.Vals(x), b.Vals(y)
	for i := range av {
		if values.Compare(av[i], bv[i]) != 0 {
			return false
		}
	}
	if a.Arity(x) != b.Arity(y) {
		return false
	}
	for i := 0; i < a.Len(x); i++ {
		ar, br := a.KidRow(x, i), b.KidRow(y, i)
		for j := range ar {
			if !EqualStore(a, ar[j], b, br[j]) {
				return false
			}
		}
	}
	return true
}

// EqualStoreUnion reports structural equality between an arena union and
// a legacy pointer-based union, with the same leniency about explicit
// empty kid rows as Equal.
func EqualStoreUnion(s *Store, id NodeID, u *Union) bool {
	if s.Len(id) != len(u.Vals) {
		return false
	}
	sv := s.Vals(id)
	for i := range sv {
		if values.Compare(sv[i], u.Vals[i]) != 0 {
			return false
		}
	}
	for i := 0; i < s.Len(id); i++ {
		row := s.KidRow(id, i)
		ur := u.KidsAt(i)
		if len(row) != len(ur) {
			return false
		}
		for j := range row {
			if !EqualStoreUnion(s, row[j], ur[j]) {
				return false
			}
		}
	}
	return true
}

// CheckStoreInvariants verifies the representation invariants of union
// id against f-tree node n: values strictly ascending, arity equal to
// the node's child count, and no empty unions below the top level.
func CheckStoreInvariants(n *ftree.Node, s *Store, id NodeID) error {
	return checkStoreInv(n, s, id, true)
}

func checkStoreInv(n *ftree.Node, s *Store, id NodeID, top bool) error {
	if !top && s.Len(id) == 0 {
		return fmt.Errorf("frep: empty union below top level at node %s", n.Label())
	}
	vals := s.Vals(id)
	for i := 1; i < len(vals); i++ {
		if values.Compare(vals[i-1], vals[i]) >= 0 {
			return fmt.Errorf("frep: values not strictly ascending at node %s: %v ≥ %v",
				n.Label(), vals[i-1], vals[i])
		}
	}
	if len(vals) == 0 {
		return nil
	}
	if s.Arity(id) != len(n.Children) {
		return fmt.Errorf("frep: node %s has arity %d, want %d children", n.Label(), s.Arity(id), len(n.Children))
	}
	for i := range vals {
		row := s.KidRow(id, i)
		for j, k := range row {
			if err := checkStoreInv(n.Children[j], s, k, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckStoreInvariantsAll verifies a forest representation in the store.
func CheckStoreInvariantsAll(f *ftree.Forest, s *Store, roots []NodeID) error {
	if len(roots) != len(f.Roots) {
		return fmt.Errorf("frep: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	for i, r := range f.Roots {
		if err := CheckStoreInvariants(r, s, roots[i]); err != nil {
			return err
		}
	}
	return nil
}

// UnionBuilder accumulates (value, kid-row) pairs in ascending value
// order and writes them out as one union node. Its scratch buffers are
// reused across Finish calls, so a builder local to an operator loop
// allocates only on high-water-mark growth.
type UnionBuilder struct {
	s     *Store
	arity int
	vals  []values.Value
	kids  []NodeID
}

// Reset points the builder at a store and arity, discarding any
// accumulated state but keeping scratch capacity.
func (b *UnionBuilder) Reset(s *Store, arity int) {
	b.s = s
	b.arity = arity
	b.vals = b.vals[:0]
	b.kids = b.kids[:0]
}

// Append adds one value and its kid row (which must have length arity;
// nil for arity 0). Values must be appended in strictly ascending order;
// the builder does not re-sort.
func (b *UnionBuilder) Append(v values.Value, row []NodeID) {
	b.vals = append(b.vals, v)
	b.kids = append(b.kids, row...)
}

// Len returns the number of values appended since the last Reset or
// Finish.
func (b *UnionBuilder) Len() int { return len(b.vals) }

// Finish writes the accumulated union into the store and resets the
// builder for the next union (same store and arity).
func (b *UnionBuilder) Finish() NodeID {
	id := b.s.Add(b.vals, b.arity, b.kids)
	b.vals = b.vals[:0]
	b.kids = b.kids[:0]
	return id
}
