package frep

// Tests for the columnar view and its kernel dispatch: the column index
// itself, randomized equivalence of the kernel fast paths against their
// scalar references over mixed-kind and NULL-bearing slabs, and the
// white-box Reset/dirtyVals watermark introduced alongside it.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/factordb/fdb/internal/frep/kernel"
	"github.com/factordb/fdb/internal/values"
)

// mixedValuePool draws values across every kind the slab can hold,
// NULLs included, with clustered repeats so kind runs form naturally.
func mixedValuePool(rng *rand.Rand) values.Value {
	switch rng.Intn(10) {
	case 0:
		return values.Value{} // NULL
	case 1:
		return values.NewBool(rng.Intn(2) == 1)
	case 2, 3:
		return values.NewFloat([]float64{-1.5, 0, 0.25, 3.75, math.Inf(1), math.Copysign(0, -1)}[rng.Intn(6)])
	case 4:
		return values.NewString(fmt.Sprintf("s%02d", rng.Intn(20)))
	default:
		return values.NewInt(int64(rng.Intn(40) - 20))
	}
}

// buildSortedLeaf appends a leaf union (arity 0) holding vs in value
// order, as unions store them.
func buildSortedLeaf(s *Store, vs []values.Value) NodeID {
	sort.Slice(vs, func(i, j int) bool { return values.Compare(vs[i], vs[j]) < 0 })
	var b UnionBuilder
	b.Reset(s, 0)
	for _, v := range vs {
		b.Append(v, nil)
	}
	return b.Finish()
}

func TestColRunIndex(t *testing.T) {
	s := NewStore()
	var b UnionBuilder
	b.Reset(s, 0)
	for _, v := range []values.Value{
		values.NewInt(1), values.NewInt(2), values.NewInt(3),
	} {
		b.Append(v, nil)
	}
	ints := b.Finish()
	b.Reset(s, 0)
	b.Append(values.NewInt(7), nil)
	b.Append(values.NewFloat(1.5), nil)
	b.Append(values.NewString("x"), nil)
	mixed := b.Finish()
	s.BuildCols()

	if !s.HasCols() {
		t.Fatal("HasCols false right after BuildCols")
	}
	k, pay, ok := s.ColRun(ints)
	if !ok || k != values.Int {
		t.Fatalf("ColRun(ints) = (%v, ok=%v), want Int run", k, ok)
	}
	if len(pay) != 3 || pay[0] != 1 || pay[2] != 3 {
		t.Fatalf("ColRun(ints) payload = %v", pay)
	}
	if _, _, ok := s.ColRun(mixed); ok {
		t.Fatal("ColRun succeeded on a window spanning kind changes")
	}
	// Appends past the index keep the prefix valid but clear HasCols;
	// the new node's window must not qualify.
	b.Reset(s, 0)
	b.Append(values.NewInt(9), nil)
	late := b.Finish()
	if s.HasCols() {
		t.Fatal("HasCols true after appending past the index")
	}
	if _, _, ok := s.ColRun(late); ok {
		t.Fatal("ColRun covered a window beyond the indexed prefix")
	}
	if _, _, ok := s.ColRun(ints); !ok {
		t.Fatal("indexed prefix stopped qualifying after later appends")
	}
}

// TestSelectConstKernelRandomEquivalence drives SelectConstKernel with
// random mixed-kind unions, operators and constants, checking the
// kernel's output node against a scalar filter over op.HoldsCmp ∘
// values.Compare — the exact semantics of the fops scalar loop.
func TestSelectConstKernelRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		s := NewStore()
		n := rng.Intn(24)
		vs := make([]values.Value, n)
		kindRun := rng.Intn(2) == 0 // half the trials: kind-homogeneous unions
		for i := range vs {
			if kindRun {
				vs[i] = values.NewInt(int64(rng.Intn(40) - 20))
			} else {
				vs[i] = mixedValuePool(rng)
			}
		}
		// Give every value a kid row so filtered kid windows are checked.
		var b UnionBuilder
		b.Reset(s, 1)
		sort.Slice(vs, func(i, j int) bool { return values.Compare(vs[i], vs[j]) < 0 })
		for i, v := range vs {
			b.Append(v, []NodeID{NodeID(i)})
		}
		id := b.Finish()
		s.BuildCols()

		op := kernel.Op(rng.Intn(6))
		c := mixedValuePool(rng)
		var bits []uint64
		out, ok := s.SelectConstKernel(id, op, c, &bits)
		if !ok {
			continue // fallback: nothing to verify, scalar loop takes over
		}
		var wantVals []values.Value
		var wantKids []NodeID
		for i, v := range vs {
			if op.HoldsCmp(values.Compare(v, c)) {
				wantVals = append(wantVals, v)
				wantKids = append(wantKids, NodeID(i))
			}
		}
		if got := s.Len(out); got != len(wantVals) {
			t.Fatalf("trial %d (op %v, c %v): kernel kept %d values, scalar %d",
				trial, op, c, got, len(wantVals))
		}
		for i := range wantVals {
			if values.Compare(s.Val(out, i), wantVals[i]) != 0 {
				t.Fatalf("trial %d: value %d = %v, want %v", trial, i, s.Val(out, i), wantVals[i])
			}
			if got := s.Kid(out, i, 0); got != wantKids[i] {
				t.Fatalf("trial %d: kid row %d = %v, want %v", trial, i, got, wantKids[i])
			}
		}
	}
}

// TestFindValueRandomEquivalence checks the search kernels against the
// scalar sort.Search over values.Compare, across kinds and misses.
func TestFindValueRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		s := NewStore()
		n := 1 + rng.Intn(20)
		vs := make([]values.Value, n)
		mode := rng.Intn(3)
		for i := range vs {
			switch mode {
			case 0:
				vs[i] = values.NewInt(int64(rng.Intn(30)))
			case 1:
				vs[i] = values.NewFloat(float64(rng.Intn(30)) / 2)
			default:
				vs[i] = mixedValuePool(rng)
			}
		}
		id := buildSortedLeaf(s, vs)
		s.BuildCols()

		var needle values.Value
		if rng.Intn(2) == 0 {
			needle = vs[rng.Intn(n)]
		} else {
			needle = mixedValuePool(rng)
		}
		gotPos, gotFound := s.FindValue(id, needle)
		wantPos := sort.Search(n, func(i int) bool {
			return values.Compare(s.Val(id, i), needle) >= 0
		})
		wantFound := wantPos < n && values.Compare(s.Val(id, wantPos), needle) == 0
		if gotPos != wantPos || gotFound != wantFound {
			t.Fatalf("trial %d: FindValue(%v) = (%d, %v), want (%d, %v); union %v",
				trial, needle, gotPos, gotFound, wantPos, wantFound, s.Vals(id))
		}
	}
}

// TestIntersectPairsRandomEquivalence checks the merge-intersect kernels
// against the quadratic reference over values.Compare.
func TestIntersectPairsRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		s := NewStore()
		mk := func() NodeID {
			n := rng.Intn(16)
			vs := make([]values.Value, 0, n)
			seen := map[int64]bool{}
			for len(vs) < n {
				v := int64(rng.Intn(30))
				if seen[v] {
					continue // union values are distinct
				}
				seen[v] = true
				if rng.Intn(4) == 0 {
					vs = append(vs, values.NewFloat(float64(v)/2))
				} else {
					vs = append(vs, values.NewInt(v))
				}
			}
			return buildSortedLeaf(s, vs)
		}
		x, y := mk(), mk()
		s.BuildCols()
		got, ok := s.IntersectPairs(x, y, nil)
		if !ok {
			continue // mixed-kind windows: scalar merge takes over
		}
		var want [][2]int32
		for i := 0; i < s.Len(x); i++ {
			for j := 0; j < s.Len(y); j++ {
				if values.Compare(s.Val(x, i), s.Val(y, j)) == 0 {
					want = append(want, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pair %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestResetClearsDirtyValsWatermark is the white-box test for the Reset
// fix: CloneInto may shrink the live slab below previously-written
// entries, and Reset must still zero the entire high-water region so no
// string/vec payload stays pinned — while never touching the untouched
// capacity tail the old clear(vals[:cap]) paid for.
func TestResetClearsDirtyValsWatermark(t *testing.T) {
	big := NewStore()
	var b UnionBuilder
	b.Reset(big, 0)
	for i := 0; i < 64; i++ {
		b.Append(values.NewString(fmt.Sprintf("pinned-%d", i)), nil)
	}
	b.Finish()

	small := NewStore()
	b.Reset(small, 0)
	b.Append(values.NewInt(1), nil)
	b.Finish()

	dst := NewStore()
	big.CloneInto(dst)   // fills 64 value slots
	small.CloneInto(dst) // shrinks the live slab to 1, watermark stays 64
	if dst.dirtyVals < 64 {
		t.Fatalf("dirtyVals = %d after shrinking CloneInto, want ≥ 64", dst.dirtyVals)
	}
	dst.Reset()
	if dst.dirtyVals != 0 {
		t.Fatalf("dirtyVals = %d after Reset, want 0", dst.dirtyVals)
	}
	tail := dst.vals[:cap(dst.vals)]
	for i, v := range tail {
		if v != (values.Value{}) {
			t.Fatalf("vals[%d] = %v after Reset, want zero (pinned payload leaked)", i, v)
		}
	}
	if dst.cols != nil {
		t.Fatal("cols survived Reset")
	}
}

// BenchmarkStoreReset pins the Reset fast path: resetting a store whose
// live slab is tiny must cost the high-water region, not the full slab
// capacity. The regression mode (clear over cap) shows up as ~64× more
// ns/op here.
func BenchmarkStoreReset(bm *testing.B) {
	big := NewStore()
	var b UnionBuilder
	b.Reset(big, 0)
	for i := 0; i < 1<<16; i++ {
		b.Append(values.NewInt(int64(i)), nil)
	}
	b.Finish()
	small := NewStore()
	b.Reset(small, 0)
	b.Append(values.NewInt(1), nil)
	b.Finish()

	dst := NewStore()
	big.CloneInto(dst) // grow the capacity once
	dst.Reset()
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		small.CloneInto(dst)
		dst.Reset()
	}
}

// FuzzKernelSelect cross-checks SelectConstKernel against the scalar
// reference on fuzzer-chosen unions, operators and constants.
func FuzzKernelSelect(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(4), int64(3), false)
	f.Add([]byte{0, 0, 255, 128, 7, 7, 7}, uint8(0), int64(7), true)
	f.Add([]byte{10, 20, 30}, uint8(2), int64(-1), false)
	f.Add([]byte{}, uint8(5), int64(0), false)
	f.Add([]byte{9, 9, 9, 9}, uint8(1), int64(9), true)
	f.Fuzz(func(t *testing.T, raw []byte, opRaw uint8, c int64, floatConst bool) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		op := kernel.Op(opRaw % 6)
		s := NewStore()
		vs := make([]values.Value, len(raw))
		for i, bv := range raw {
			switch bv % 4 {
			case 0:
				vs[i] = values.NewInt(int64(bv))
			case 1:
				vs[i] = values.NewInt(-int64(bv))
			case 2:
				vs[i] = values.NewFloat(float64(bv) / 4)
			default:
				vs[i] = values.NewFloat(-float64(bv))
			}
		}
		id := buildSortedLeaf(s, vs)
		s.BuildCols()
		var cv values.Value
		if floatConst {
			cv = values.NewFloat(float64(c) / 8)
		} else {
			cv = values.NewInt(c)
		}
		var bits []uint64
		out, ok := s.SelectConstKernel(id, op, cv, &bits)
		if !ok {
			return
		}
		var want []values.Value
		for i := 0; i < s.Len(id); i++ {
			if v := s.Val(id, i); op.HoldsCmp(values.Compare(v, cv)) {
				want = append(want, v)
			}
		}
		if got := s.Len(out); got != len(want) {
			t.Fatalf("kernel kept %d values, scalar %d (op %v, c %v, union %v)",
				got, len(want), op, cv, s.Vals(id))
		}
		for i := range want {
			if values.Compare(s.Val(out, i), want[i]) != 0 {
				t.Fatalf("value %d = %v, want %v", i, s.Val(out, i), want[i])
			}
		}
	})
}
