package frep

import (
	"fmt"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// OrderSpec names an attribute to enumerate by, with direction. Attr may
// be any name resolvable by ftree.ResolveAttr (atomic attribute, aggregate
// alias or aggregate label).
type OrderSpec struct {
	Attr string
	Desc bool
}

// TupleEnum is the common surface of the pointer-based and arena
// enumerators; the engine enumerates through it without knowing the
// representation. Both implementations are pull-based cursors: Next
// advances one step at a time, so a caller may stop, resume, or skip at
// any point, and Skip advances past tuples without assembling them —
// the basis of OFFSET pagination that never materialises skipped
// prefixes.
type TupleEnum interface {
	Schema() []string
	Next() bool
	Tuple() relation.Tuple
	// Skip advances past up to n tuples without assembling them,
	// returning how many were skipped. A following Next positions at the
	// tuple after the skipped prefix.
	Skip(n int) int
}

// GroupEnum is the common surface of the grouped enumerators. Like
// TupleEnum it is a resumable cursor; Skip advances past whole groups
// without evaluating their aggregation parts.
type GroupEnum interface {
	Schema() []string
	Next() (bool, error)
	Tuple() relation.Tuple
	// Skip advances past up to n groups without evaluating their
	// aggregates, returning how many were skipped.
	Skip(n int) int
}

// slotSpec is the representation-independent part of one enumeration
// loop: which f-tree node it iterates, where its union comes from and in
// which direction it advances.
type slotSpec struct {
	node       *ftree.Node
	parentSlot int // index of the parent node's slot, or -1 for roots
	rootIdx    int // index into the roots slice when parentSlot == -1
	childIdx   int // position among the parent's children
	desc       bool
}

// colRef locates one output column: the slot producing it and, for
// multi-field aggregate nodes, the vector component.
type colRef struct {
	slotIdx  int
	fieldIdx int // -1: the value itself; ≥0: vector component
}

// enumPlan is the compiled loop structure of an enumeration: slot order,
// output columns and schema. It is independent of the representation, so
// both the pointer-based Enumerator and the arena StoreEnumerator are
// built from it.
type enumPlan struct {
	slots  []slotSpec
	cols   []colRef
	schema []string
}

// planEnum compiles the slot (loop nesting) order for full enumeration:
// order attributes first, then the remaining nodes in DFS pre-order.
// Ancestors always precede descendants (guaranteed by Theorem 2's
// condition).
func planEnum(f *ftree.Forest, order []OrderSpec) (*enumPlan, error) {
	p := &enumPlan{}
	slotIdx := map[*ftree.Node]int{}
	addSlot := func(n *ftree.Node, desc bool) {
		if _, ok := slotIdx[n]; ok {
			return
		}
		slotIdx[n] = len(p.slots)
		p.slots = append(p.slots, slotSpec{node: n, desc: desc, parentSlot: -1})
	}
	if len(order) > 0 {
		attrs := make([]string, len(order))
		for i, o := range order {
			attrs[i] = o.Attr
		}
		if !f.SupportsOrder(attrs) {
			return nil, fmt.Errorf("frep: f-tree does not support constant-delay enumeration in order %v (Theorem 2)", attrs)
		}
		for _, o := range order {
			n := f.ResolveAttr(o.Attr)
			if n == nil {
				return nil, fmt.Errorf("frep: unknown order attribute %q", o.Attr)
			}
			addSlot(n, o.Desc)
		}
	}
	for _, n := range f.Nodes() {
		addSlot(n, false)
	}
	if err := p.wire(f, slotIdx, false); err != nil {
		return nil, err
	}
	// Output columns in DFS order (same as FlatSchema).
	for _, n := range f.Nodes() {
		p.addCols(n, slotIdx[n])
	}
	p.schema = FlatSchema(f)
	return p, nil
}

// wire fills in parent/child links and root indices for the planned
// slots. groupMode selects the error message for a slot whose parent has
// no earlier slot (impossible for full enumeration, a user error for
// grouping).
func (p *enumPlan) wire(f *ftree.Forest, slotIdx map[*ftree.Node]int, groupMode bool) error {
	rootIdx := map[*ftree.Node]int{}
	for i, r := range f.Roots {
		rootIdx[r] = i
	}
	for i := range p.slots {
		n := p.slots[i].node
		if n.Parent == nil {
			p.slots[i].rootIdx = rootIdx[n]
			continue
		}
		pi, ok := slotIdx[n.Parent]
		if !ok || pi >= i {
			if groupMode {
				return fmt.Errorf("frep: group attribute %s must come after its parent group attribute", n.Label())
			}
			return fmt.Errorf("frep: internal: slot for %s precedes its parent", n.Label())
		}
		p.slots[i].parentSlot = pi
		p.slots[i].childIdx = n.Parent.ChildIndex(n)
	}
	return nil
}

// addCols appends the output columns contributed by node n (at slot si).
func (p *enumPlan) addCols(n *ftree.Node, si int) {
	if n.IsAgg() && len(n.Agg.Fields) > 1 {
		for fi := range n.Agg.Fields {
			p.cols = append(p.cols, colRef{slotIdx: si, fieldIdx: fi})
		}
	} else {
		for range NodeColumns(n) {
			p.cols = append(p.cols, colRef{slotIdx: si, fieldIdx: -1})
		}
	}
}

// slot is one loop of the pointer-based enumeration odometer: its spec
// plus the current union and position within it.
type slot struct {
	slotSpec
	u   *Union
	pos int
}

// Enumerator enumerates the tuples of a factorised representation with
// delay independent of the data size (linear in the schema size), per
// Section 4. With a nil order it enumerates in the representation's
// document order; with an order list it enumerates in lexicographic order
// by those attributes, provided the f-tree supports it (Theorem 2).
type Enumerator struct {
	forest  *ftree.Forest
	roots   []*Union
	slots   []slot
	cols    []colRef
	schema  []string
	tuple   relation.Tuple
	started bool
	done    bool
}

// NewEnumerator creates an enumerator over the representation. order may
// be nil for document order. It fails if the order is not supported by the
// f-tree (restructure first — see fops and the engine) or references
// unknown attributes.
func NewEnumerator(f *ftree.Forest, roots []*Union, order []OrderSpec) (*Enumerator, error) {
	if len(roots) != len(f.Roots) {
		return nil, fmt.Errorf("frep: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	p, err := planEnum(f, order)
	if err != nil {
		return nil, err
	}
	return newEnumeratorFromPlan(f, roots, p), nil
}

func newEnumeratorFromPlan(f *ftree.Forest, roots []*Union, p *enumPlan) *Enumerator {
	e := &Enumerator{forest: f, roots: roots, cols: p.cols, schema: p.schema}
	e.slots = make([]slot, len(p.slots))
	for i, sp := range p.slots {
		e.slots[i] = slot{slotSpec: sp}
	}
	e.tuple = make(relation.Tuple, len(p.cols))
	return e
}

// Schema returns the output column names (FlatSchema of the forest).
func (e *Enumerator) Schema() []string { return e.schema }

// Next advances to the next tuple, returning false when exhausted. The
// first call positions at the first tuple.
func (e *Enumerator) Next() bool {
	if !e.advance() {
		return false
	}
	e.fill()
	return true
}

// Skip advances past up to n tuples without assembling them (no column
// fill), returning how many were skipped. A following Next positions at
// the tuple after the skipped prefix, so skipping costs one odometer
// step per tuple and no output work.
func (e *Enumerator) Skip(n int) int {
	k := 0
	for k < n && e.advance() {
		k++
	}
	return k
}

// advance moves the odometer to the next position without assembling the
// output tuple; it returns false when exhausted.
func (e *Enumerator) advance() bool {
	if e.done {
		return false
	}
	if !e.started {
		e.started = true
		for i := range e.slots {
			if !e.resetSlot(i) {
				e.done = true
				return false
			}
		}
		return true
	}
	for i := len(e.slots) - 1; i >= 0; i-- {
		s := &e.slots[i]
		if s.desc {
			if s.pos > 0 {
				s.pos--
			} else {
				continue
			}
		} else {
			if s.pos+1 < len(s.u.Vals) {
				s.pos++
			} else {
				continue
			}
		}
		for j := i + 1; j < len(e.slots); j++ {
			if !e.resetSlot(j) {
				// Unions below the top level are never empty, and the
				// top level was checked at start; resetting mid-stream
				// cannot fail.
				e.done = true
				return false
			}
		}
		return true
	}
	e.done = true
	return false
}

// resetSlot re-resolves slot i's union from its parent state and rewinds
// its position. It returns false if the union is empty.
func (e *Enumerator) resetSlot(i int) bool {
	s := &e.slots[i]
	if s.parentSlot < 0 {
		s.u = e.roots[s.rootIdx]
	} else {
		p := &e.slots[s.parentSlot]
		s.u = p.u.Kids[p.pos][s.childIdx]
	}
	if len(s.u.Vals) == 0 {
		return false
	}
	if s.desc {
		s.pos = len(s.u.Vals) - 1
	} else {
		s.pos = 0
	}
	return true
}

func (e *Enumerator) fill() {
	for ci, c := range e.cols {
		s := &e.slots[c.slotIdx]
		v := s.u.Vals[s.pos]
		if c.fieldIdx >= 0 {
			v = v.VecAt(c.fieldIdx)
		}
		e.tuple[ci] = v
	}
}

// Tuple returns the current tuple. The returned slice is reused by Next;
// clone it to retain.
func (e *Enumerator) Tuple() relation.Tuple { return e.tuple }

// partSpec is the representation-independent description of one maximal
// non-group subtree to aggregate: where it hangs, which fields its
// evaluator computes, and how those map back to the output fields.
type partSpec struct {
	node       *ftree.Node
	parentSlot int // slot index in the group enumerator; -1 for root parts
	rootIdx    int
	childIdx   int
	evFields   []ftree.AggField
	// fieldIdx[i] maps output field i to the part evaluator's field
	// index, or -1 when the argument is not in this part.
	fieldIdx []int
	// countIdx is the index of the count field in the part's evaluator,
	// or -1 when this part's multiplicity is not needed.
	countIdx int
}

// groupPlan is the compiled structure of grouped enumeration: the group
// slots (an enumPlan over group attributes only), the aggregation parts
// and the field-to-part carrier mapping.
type groupPlan struct {
	ep      *enumPlan
	fields  []ftree.AggField
	parts   []partSpec
	carrier []int // per field: part carrying its argument, or -1
	schema  []string
	nGroup  int
}

// planGroupEnum compiles a grouped enumeration: group attributes g (with
// optional order specs applied to them), aggregation fields over
// everything else.
func planGroupEnum(f *ftree.Forest, g []OrderSpec, fields []ftree.AggField) (*groupPlan, error) {
	gAttrs := make([]string, len(g))
	for i, o := range g {
		gAttrs[i] = o.Attr
	}
	if len(g) > 0 && !f.SupportsGrouping(gAttrs) {
		return nil, fmt.Errorf("frep: f-tree does not support constant-delay grouping by %v (Theorem 1)", gAttrs)
	}
	gp := &groupPlan{fields: fields}
	groupNodes := map[*ftree.Node]bool{}
	for _, a := range gAttrs {
		n := f.ResolveAttr(a)
		if n == nil {
			return nil, fmt.Errorf("frep: unknown group attribute %q", a)
		}
		groupNodes[n] = true
	}
	// Group slots in the requested order (deduplicated by node).
	ep := &enumPlan{}
	slotIdx := map[*ftree.Node]int{}
	for _, o := range g {
		n := f.ResolveAttr(o.Attr)
		if _, ok := slotIdx[n]; ok {
			continue
		}
		slotIdx[n] = len(ep.slots)
		ep.slots = append(ep.slots, slotSpec{node: n, desc: o.Desc, parentSlot: -1})
	}
	if err := ep.wire(f, slotIdx, true); err != nil {
		return nil, err
	}
	// Output columns: group node columns in slot order.
	for _, sp := range ep.slots {
		ep.addCols(sp.node, slotIdx[sp.node])
		gp.schema = append(gp.schema, NodeColumns(sp.node)...)
	}
	ep.schema = append([]string{}, gp.schema...)
	gp.ep = ep
	gp.nGroup = len(gp.schema)

	// Aggregation parts: non-group subtrees hanging below group nodes or
	// at roots. First collect the subtrees, then decide which need a
	// count: a part's multiplicity matters when the query counts tuples
	// or when a sum is carried by some other part.
	type partLoc struct {
		node       *ftree.Node
		parentSlot int
		rootIdx    int
		childIdx   int
	}
	var locs []partLoc
	for i, r := range f.Roots {
		if !groupNodes[r] {
			locs = append(locs, partLoc{node: r, parentSlot: -1, rootIdx: i})
		}
	}
	for si := range ep.slots {
		n := ep.slots[si].node
		for ci, c := range n.Children {
			if !groupNodes[c] {
				locs = append(locs, partLoc{node: c, parentSlot: si, childIdx: ci})
			}
		}
	}
	// Carrier part per non-count field.
	carrierLoc := make([]int, len(fields))
	hasCount := false
	for i, fl := range fields {
		carrierLoc[i] = -1
		if fl.Fn == ftree.Count {
			hasCount = true
			continue
		}
		for li := range locs {
			if findCarrier(locs[li].node, fl.Arg) != nil {
				carrierLoc[i] = li
				break
			}
		}
		if carrierLoc[i] < 0 {
			// The argument may sit in a group node itself (aggregating a
			// grouping attribute is degenerate but legal SQL); not
			// supported by the on-the-fly path.
			return nil, fmt.Errorf("frep: aggregation argument %q not found below the group-by attributes", fl.Arg)
		}
	}
	needsCount := func(li int) bool {
		if hasCount {
			return true
		}
		for i, fl := range fields {
			if fl.Fn == ftree.Sum && carrierLoc[i] != li {
				return true
			}
		}
		return false
	}
	locToPart := make([]int, len(locs))
	for li, loc := range locs {
		locToPart[li] = -1
		var evFields []ftree.AggField
		countIdx := -1
		if needsCount(li) {
			countIdx = 0
			evFields = append(evFields, ftree.AggField{Fn: ftree.Count})
		}
		for i, fl := range fields {
			if fl.Fn != ftree.Count && carrierLoc[i] == li && idxOfField(evFields, fl) < 0 {
				evFields = append(evFields, fl)
			}
		}
		if len(evFields) == 0 {
			continue // irrelevant part: neither counted nor carrying
		}
		// Compile once here to surface composition errors at plan time;
		// each enumerator instantiates its own evaluator (evaluators hold
		// mutable scratch).
		if _, err := NewEvaluator(loc.node, evFields); err != nil {
			return nil, err
		}
		part := partSpec{
			node:       loc.node,
			parentSlot: loc.parentSlot,
			rootIdx:    loc.rootIdx,
			childIdx:   loc.childIdx,
			evFields:   evFields,
			countIdx:   countIdx,
		}
		part.fieldIdx = make([]int, len(fields))
		for i, fl := range fields {
			part.fieldIdx[i] = -1
			if fl.Fn != ftree.Count && carrierLoc[i] == li {
				part.fieldIdx[i] = idxOfField(evFields, fl)
			}
		}
		locToPart[li] = len(gp.parts)
		gp.parts = append(gp.parts, part)
	}
	// Per field: which part carries the argument.
	gp.carrier = make([]int, len(fields))
	for i := range fields {
		gp.carrier[i] = -1
		if carrierLoc[i] >= 0 {
			gp.carrier[i] = locToPart[carrierLoc[i]]
		}
	}
	for _, fl := range fields {
		gp.schema = append(gp.schema, fl.String())
	}
	return gp, nil
}

// GroupEnumerator enumerates one tuple per group over the group-by
// attributes G, computing the aggregation fields over the remaining
// attributes on the fly (Example 1, scenario 3): the f-tree must support
// grouping by G (Theorem 1), all non-group subtrees hang below group nodes
// and are aggregated per group combination without materialising a
// restructured factorisation.
type GroupEnumerator struct {
	inner   *Enumerator // over the group slots only
	fields  []ftree.AggField
	schema  []string
	tuple   relation.Tuple
	nGroup  int
	parts   []aggPart
	carrier []int // per field: index of the part carrying its argument, or -1
}

// aggPart is one maximal non-group subtree to aggregate, with a compiled
// evaluator and the last evaluated values for the current context.
type aggPart struct {
	partSpec
	ev    *Evaluator
	vals  []values.Value
	count int64
}

// NewGroupEnumerator builds a grouped enumerator: group attributes g (with
// optional order specs applied to them), aggregation fields over
// everything else.
func NewGroupEnumerator(f *ftree.Forest, roots []*Union, g []OrderSpec, fields []ftree.AggField) (*GroupEnumerator, error) {
	gp, err := planGroupEnum(f, g, fields)
	if err != nil {
		return nil, err
	}
	ge := &GroupEnumerator{
		inner:   newEnumeratorFromPlan(f, roots, gp.ep),
		fields:  fields,
		schema:  gp.schema,
		nGroup:  gp.nGroup,
		carrier: gp.carrier,
	}
	ge.parts = make([]aggPart, len(gp.parts))
	for i, ps := range gp.parts {
		ev, err := NewEvaluator(ps.node, ps.evFields)
		if err != nil {
			return nil, err
		}
		ge.parts[i] = aggPart{partSpec: ps, ev: ev}
	}
	ge.tuple = make(relation.Tuple, len(gp.schema))
	return ge, nil
}

// Schema returns group columns followed by one column per aggregation
// field.
func (g *GroupEnumerator) Schema() []string { return g.schema }

// Next advances to the next group, returning false when done.
func (g *GroupEnumerator) Next() (bool, error) {
	if len(g.inner.slots) == 0 {
		// Single global group: emit exactly once, even for empty input
		// (count 0, Null aggregates — engines may adjust).
		if g.inner.done {
			return false, nil
		}
		g.inner.done = true
		if err := g.evalParts(); err != nil {
			return false, err
		}
		g.fillAggs()
		return true, nil
	}
	if !g.inner.Next() {
		return false, nil
	}
	copy(g.tuple[:g.nGroup], g.inner.Tuple())
	if err := g.evalParts(); err != nil {
		return false, err
	}
	g.fillAggs()
	return true, nil
}

// Skip advances past up to n groups without evaluating their aggregation
// parts, returning how many were skipped: OFFSET over grouped output
// costs one odometer step per skipped group, not an aggregation.
func (g *GroupEnumerator) Skip(n int) int {
	if len(g.inner.slots) == 0 {
		// Single global group.
		if n > 0 && !g.inner.done {
			g.inner.done = true
			return 1
		}
		return 0
	}
	return g.inner.Skip(n)
}

func (g *GroupEnumerator) evalParts() error {
	for pi := range g.parts {
		p := &g.parts[pi]
		var u *Union
		if p.parentSlot < 0 {
			u = g.inner.roots[p.rootIdx]
		} else {
			s := &g.inner.slots[p.parentSlot]
			u = s.u.Kids[s.pos][p.childIdx]
		}
		vals, err := p.ev.Eval(u)
		if err != nil {
			return err
		}
		p.vals = vals
		if p.countIdx >= 0 {
			p.count = vals[p.countIdx].Int()
		} else {
			p.count = 1 // multiplicity not needed by any output
		}
	}
	return nil
}

func (g *GroupEnumerator) fillAggs() {
	fillAggTuple(g.tuple[g.nGroup:], g.fields, g.carrier, len(g.parts),
		func(pi int) int64 { return g.parts[pi].count },
		func(pi, fi int) values.Value { return g.parts[pi].vals[g.parts[pi].fieldIdx[fi]] })
}

// fillAggTuple assembles the aggregate output fields from per-part counts
// and values; shared by the pointer-based and arena group enumerators.
func fillAggTuple(out relation.Tuple, fields []ftree.AggField, carrier []int, nParts int,
	count func(pi int) int64, val func(pi, fi int) values.Value) {
	for i, fl := range fields {
		var o values.Value
		switch fl.Fn {
		case ftree.Count:
			total := int64(1)
			for pi := 0; pi < nParts; pi++ {
				total *= count(pi)
			}
			o = values.NewInt(total)
		case ftree.Sum:
			v := val(carrier[i], i)
			if v.IsNull() {
				o = values.NullValue()
				break
			}
			mult := int64(1)
			for pi := 0; pi < nParts; pi++ {
				if pi != carrier[i] {
					mult *= count(pi)
				}
			}
			o = values.MulInt(v, mult)
		case ftree.Min, ftree.Max:
			o = val(carrier[i], i)
			// If any sibling part is empty the group has no tuples; only
			// possible at top level, where count 0 already signals it.
		}
		out[i] = o
	}
}

// Tuple returns the current group tuple (group values then aggregates).
// The slice is reused; clone to retain.
func (g *GroupEnumerator) Tuple() relation.Tuple { return g.tuple }
