package frep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func iv(i int64) values.Value  { return values.NewInt(i) }
func sv(s string) values.Value { return values.NewString(s) }

// pizzeria returns the paper's example database (Figure 1) joined:
// R = Orders ⋈ Pizzas ⋈ Items (13 tuples), plus the f-tree T1.
func pizzeria() (*relation.Relation, *ftree.Forest, map[string]*ftree.Node) {
	orders := relation.MustNew("Orders", []string{"customer", "date", "pizza"}, []relation.Tuple{
		{sv("Mario"), sv("Monday"), sv("Capricciosa")},
		{sv("Mario"), sv("Tuesday"), sv("Margherita")},
		{sv("Pietro"), sv("Friday"), sv("Hawaii")},
		{sv("Lucia"), sv("Friday"), sv("Hawaii")},
		{sv("Mario"), sv("Friday"), sv("Capricciosa")},
	})
	pizzas := relation.MustNew("Pizzas", []string{"pizza", "item"}, []relation.Tuple{
		{sv("Margherita"), sv("base")},
		{sv("Capricciosa"), sv("base")},
		{sv("Capricciosa"), sv("ham")},
		{sv("Capricciosa"), sv("mushrooms")},
		{sv("Hawaii"), sv("base")},
		{sv("Hawaii"), sv("ham")},
		{sv("Hawaii"), sv("pineapple")},
	})
	items := relation.MustNew("Items", []string{"item", "price"}, []relation.Tuple{
		{sv("base"), iv(6)},
		{sv("ham"), iv(1)},
		{sv("mushrooms"), iv(1)},
		{sv("pineapple"), iv(2)},
	})
	r := relation.NaturalJoinAll(orders, pizzas, items)

	f := ftree.New()
	o, p, i := f.NewToken(), f.NewToken(), f.NewToken()
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(o, p)}
	date := &ftree.Node{Attrs: []string{"date"}, Deps: ftree.NewTokenSet(o), Parent: pizza}
	customer := &ftree.Node{Attrs: []string{"customer"}, Deps: ftree.NewTokenSet(o), Parent: date}
	item := &ftree.Node{Attrs: []string{"item"}, Deps: ftree.NewTokenSet(p, i), Parent: pizza}
	price := &ftree.Node{Attrs: []string{"price"}, Deps: ftree.NewTokenSet(i), Parent: item}
	pizza.Children = []*ftree.Node{date, item}
	date.Children = []*ftree.Node{customer}
	item.Children = []*ftree.Node{price}
	f.Roots = []*ftree.Node{pizza}
	m := map[string]*ftree.Node{
		"pizza": pizza, "date": date, "customer": customer, "item": item, "price": price,
	}
	return r, f, m
}

func buildPizzeria(t *testing.T) (*relation.Relation, *ftree.Forest, []*Union) {
	t.Helper()
	r, f, _ := pizzeria()
	roots, err := Build(r, f)
	if err != nil {
		t.Fatal(err)
	}
	return r, f, roots
}

func TestBuildPizzeriaFigure1(t *testing.T) {
	r, f, roots := buildPizzeria(t)
	if err := CheckInvariantsAll(f, roots); err != nil {
		t.Fatal(err)
	}
	// Figure 1's factorisation has 26 singletons (3 pizzas, 4 dates, 4
	// customers, 7 items, 7 prices, plus 1 extra date singleton… counted
	// structurally: 3+4+4+7+7+…). Verified by hand: 26.
	if got := SingletonsAll(roots); got != 26 {
		t.Errorf("singletons = %d, want 26", got)
	}
	if got := CountPlain(f.Roots[0], roots[0]); got != 13 {
		t.Errorf("count = %d, want 13", got)
	}
	flat, err := Flatten(f, roots)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(flat, r) {
		t.Errorf("flatten ≠ original:\n%v\nvs\n%v", flat, r)
	}
}

func TestBuildRejectsInvalidFTree(t *testing.T) {
	// A forest with customer and pizza as independent roots cannot
	// represent R (customers depend on pizzas).
	r, _, _ := pizzeria()
	f := ftree.New()
	f.NewRelationPath("customer")
	f.NewRelationPath("pizza", "date", "item", "price")
	if _, err := Build(r, f); err == nil {
		t.Fatal("Build should reject an invalid decomposition")
	}
	// BuildUnchecked accepts it but represents a superset.
	roots, err := BuildUnchecked(r, f)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountAll(f, roots)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 13 {
		t.Errorf("unchecked build should overcount: got %d", n)
	}
}

func TestBuildErrors(t *testing.T) {
	r, _, _ := pizzeria()
	f := ftree.New()
	f.NewRelationPath("pizza", "date")
	if _, err := Build(r, f); err == nil {
		t.Error("f-tree not covering all attributes should fail")
	}
	g := ftree.New()
	g.NewRelationPath("pizza", "date", "customer", "item", "bogus")
	if _, err := Build(r, g); err == nil {
		t.Error("f-tree with unknown attribute should fail")
	}
}

func TestBuildEmptyRelation(t *testing.T) {
	empty := relation.MustNew("E", []string{"a", "b"}, nil)
	f := ftree.New()
	f.NewRelationPath("a", "b")
	roots, err := Build(empty, f)
	if err != nil {
		t.Fatal(err)
	}
	if !roots[0].IsEmpty() {
		t.Error("empty relation should build an empty union")
	}
	flat, err := Flatten(f, roots)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Cardinality() != 0 {
		t.Error("flatten of empty should be empty")
	}
}

func TestBuildMergedClass(t *testing.T) {
	// Class {a,b} requires a=b per tuple.
	rel := relation.MustNew("R", []string{"a", "b"}, []relation.Tuple{
		{iv(1), iv(1)}, {iv(2), iv(2)},
	})
	f := ftree.New()
	tok := f.NewToken()
	n := &ftree.Node{Attrs: []string{"a", "b"}, Deps: ftree.NewTokenSet(tok)}
	f.Roots = []*ftree.Node{n}
	roots, err := Build(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	if roots[0].Len() != 2 {
		t.Errorf("merged class union length = %d, want 2", roots[0].Len())
	}
	bad := relation.MustNew("R", []string{"a", "b"}, []relation.Tuple{{iv(1), iv(2)}})
	if _, err := Build(bad, f); err == nil {
		t.Error("unequal class values should fail")
	}
}

func TestCloneAndEqual(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	c := CloneAll(roots)
	if !Equal(roots[0], c[0]) {
		t.Error("clone should be equal")
	}
	// Mutate the clone.
	c[0].Vals[0] = sv("Zzz")
	if Equal(roots[0], c[0]) {
		t.Error("mutated clone should differ")
	}
	if err := CheckInvariantsAll(f, roots); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestEvaluatorWholeTree(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	root := f.Roots[0]
	ev, err := NewEvaluator(root, []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "price"},
		{Fn: ftree.Min, Arg: "price"},
		{Fn: ftree.Max, Arg: "price"},
		{Fn: ftree.Min, Arg: "customer"},
		{Fn: ftree.Sum, Arg: "date"},
	})
	if err == nil {
		// sum over a string attribute will fail at eval time via Add
		// panics — construct without it instead.
		t.Log("constructed evaluator including string sum; evaluating only numeric fields below")
	}
	ev, err = NewEvaluator(root, []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "price"},
		{Fn: ftree.Min, Arg: "price"},
		{Fn: ftree.Max, Arg: "price"},
		{Fn: ftree.Min, Arg: "customer"},
		{Fn: ftree.Max, Arg: "customer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Eval(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	// R has 13 tuples; Σprice = 2·8 + 2·9 + 6 = 40; min price 1; max 6;
	// min customer "Lucia"; max customer "Pietro".
	want := []values.Value{iv(13), iv(40), iv(1), iv(6), sv("Lucia"), sv("Pietro")}
	for i := range want {
		if values.Compare(got[i], want[i]) != 0 {
			t.Errorf("field %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvaluatorSubtree(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	item := f.AttrNode("item")
	ev, err := NewEvaluator(item, []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}})
	if err != nil {
		t.Fatal(err)
	}
	// The item-subtree occurrence under Capricciosa sums to 8.
	// Capricciosa is Vals[0] (sorted), and item is child 1 of pizza.
	capKids := roots[0].Kids[0]
	got, err := ev.EvalValue(capKids[1])
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 8 {
		t.Errorf("sum_price(Capricciosa items) = %v, want 8", got)
	}
}

func TestEvaluatorAggInterpretation(t *testing.T) {
	// Example 6: Pizzas after γ_count(item):
	// ⟨Capricciosa⟩×⟨count:3⟩ ∪ ⟨Hawaii⟩×⟨count:3⟩ ∪ ⟨Margherita⟩×⟨count:1⟩;
	// a subsequent count(pizza,item) must yield 7, not 3.
	f := ftree.New()
	tok := f.NewToken()
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(tok)}
	cnt := &ftree.Node{
		Agg:    &ftree.Agg{Fields: []ftree.AggField{{Fn: ftree.Count}}, Over: []string{"item"}},
		Deps:   ftree.NewTokenSet(tok),
		Parent: pizza,
	}
	pizza.Children = []*ftree.Node{cnt}
	f.Roots = []*ftree.Node{pizza}

	rep := &Union{
		Vals: []values.Value{sv("Capricciosa"), sv("Hawaii"), sv("Margherita")},
		Kids: [][]*Union{
			{{Vals: []values.Value{iv(3)}}},
			{{Vals: []values.Value{iv(3)}}},
			{{Vals: []values.Value{iv(1)}}},
		},
	}
	if err := CheckInvariants(pizza, rep); err != nil {
		t.Fatal(err)
	}
	n, err := Count(pizza, rep)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("count with aggregate interpretation = %d, want 7", n)
	}
	// CountPlain ignores the interpretation: 3 values × 1 = 3.
	if got := CountPlain(pizza, rep); got != 3 {
		t.Errorf("CountPlain = %d, want 3", got)
	}
}

func TestEvaluatorSumWithCountNodes(t *testing.T) {
	// Example 8: T4 = customer → pizza → {count_date(date), sum_price(item,price)};
	// γ_sum_price over the pizza subtree must give Mario 22.
	f := ftree.New()
	tok := f.NewToken()
	customer := &ftree.Node{Attrs: []string{"customer"}, Deps: ftree.NewTokenSet(tok)}
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(tok), Parent: customer}
	cd := &ftree.Node{
		Agg:    &ftree.Agg{Fields: []ftree.AggField{{Fn: ftree.Count}}, Over: []string{"date"}},
		Deps:   ftree.NewTokenSet(tok),
		Parent: pizza,
	}
	sp := &ftree.Node{
		Agg:    &ftree.Agg{Fields: []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}}, Over: []string{"item", "price"}},
		Deps:   ftree.NewTokenSet(tok),
		Parent: pizza,
	}
	customer.Children = []*ftree.Node{pizza}
	pizza.Children = []*ftree.Node{cd, sp}
	f.Roots = []*ftree.Node{customer}

	single := func(v values.Value) *Union { return &Union{Vals: []values.Value{v}} }
	mario := &Union{
		Vals: []values.Value{sv("Capricciosa"), sv("Margherita")},
		Kids: [][]*Union{
			{single(iv(2)), single(iv(8))},
			{single(iv(1)), single(iv(6))},
		},
	}
	ev, err := NewEvaluator(pizza, []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.EvalValue(mario)
	if err != nil {
		t.Fatal(err)
	}
	// 2·8 + 1·6 = 22 (Example 8).
	if got.Int() != 22 {
		t.Errorf("sum = %v, want 22", got)
	}
	// Counting over the same subtree: 2·1·1 + 1·1·1 … but count over a
	// subtree containing a sum-only aggregate node is invalid
	// composition.
	if _, err := NewEvaluator(pizza, []ftree.AggField{{Fn: ftree.Count}}); err == nil {
		t.Error("count over sum-only aggregate should be rejected")
	}
	// min over the same subtree ignores multiplicities and is fine for
	// an atomic argument… but price is covered by the sum aggregate, so
	// min_price must be rejected too.
	if _, err := NewEvaluator(pizza, []ftree.AggField{{Fn: ftree.Min, Arg: "price"}}); err == nil {
		t.Error("min over sum-covered attribute should be rejected")
	}
}

func TestEvaluatorCompositeVectorValues(t *testing.T) {
	// A composite aggregate node (sum_price, count) stored as vectors.
	f := ftree.New()
	tok := f.NewToken()
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(tok)}
	comp := &ftree.Node{
		Agg: &ftree.Agg{
			Fields: []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}, {Fn: ftree.Count}},
			Over:   []string{"item", "price"},
		},
		Deps:   ftree.NewTokenSet(tok),
		Parent: pizza,
	}
	pizza.Children = []*ftree.Node{comp}
	f.Roots = []*ftree.Node{pizza}

	vec := func(s, c int64) *Union {
		return &Union{Vals: []values.Value{values.NewVec([]values.Value{iv(s), iv(c)})}}
	}
	rep := &Union{
		Vals: []values.Value{sv("Capricciosa"), sv("Hawaii")},
		Kids: [][]*Union{{vec(8, 3)}, {vec(9, 3)}},
	}
	ev, err := NewEvaluator(pizza, []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Eval(rep)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 6 {
		t.Errorf("count = %v, want 6", got[0])
	}
	if got[1].Int() != 17 {
		t.Errorf("sum = %v, want 17 (8+9)", got[1])
	}
}

func TestEvaluatorEmptyRep(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("a", "b")
	ev, err := NewEvaluator(f.Roots[0], []ftree.AggField{
		{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "b"}, {Fn: ftree.Min, Arg: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Eval(&Union{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 0 {
		t.Errorf("count(∅) = %v, want 0", got[0])
	}
	if !got[1].IsNull() || !got[2].IsNull() {
		t.Errorf("sum/min over ∅ should be Null, got %v, %v", got[1], got[2])
	}
}

func TestEvaluatorUnknownAttr(t *testing.T) {
	_, f, _ := buildPizzeria(t)
	if _, err := NewEvaluator(f.Roots[0], []ftree.AggField{{Fn: ftree.Sum, Arg: "bogus"}}); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := NewEvaluator(f.Roots[0], nil); err == nil {
		t.Error("no fields should fail")
	}
}

func TestEnumeratorDocumentOrder(t *testing.T) {
	r, f, roots := buildPizzeria(t)
	e, err := NewEnumerator(f, roots, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSchema := []string{"pizza", "date", "customer", "item", "price"}
	for i, s := range e.Schema() {
		if s != wantSchema[i] {
			t.Fatalf("schema = %v, want %v", e.Schema(), wantSchema)
		}
	}
	var rows []relation.Tuple
	for e.Next() {
		rows = append(rows, e.Tuple().Clone())
	}
	if len(rows) != 13 {
		t.Fatalf("enumerated %d rows, want 13", len(rows))
	}
	// Document order = sorted lexicographically by the DFS attribute
	// order.
	for i := 1; i < len(rows); i++ {
		if relation.Compare(rows[i-1], rows[i]) >= 0 {
			t.Errorf("rows out of order at %d: %v ≥ %v", i, rows[i-1], rows[i])
		}
	}
	got := relation.MustNew("E", e.Schema(), rows)
	if !relation.EqualAsSets(got, r) {
		t.Error("enumerated set ≠ relation")
	}
}

func TestEnumeratorOrdered(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	e, err := NewEnumerator(f, roots, []OrderSpec{
		{Attr: "pizza", Desc: true},
		{Attr: "item"},
		{Attr: "date"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows []relation.Tuple
	pIdx, iIdx, dIdx := 0, 3, 1 // schema stays (pizza,date,customer,item,price)
	for e.Next() {
		rows = append(rows, e.Tuple().Clone())
	}
	if len(rows) != 13 {
		t.Fatalf("enumerated %d rows, want 13", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		c := values.Compare(a[pIdx], b[pIdx])
		if c < 0 {
			t.Fatalf("pizza should be descending at row %d", i)
		}
		if c == 0 {
			ci := values.Compare(a[iIdx], b[iIdx])
			if ci > 0 {
				t.Fatalf("item should be ascending within pizza at row %d", i)
			}
			if ci == 0 && values.Compare(a[dIdx], b[dIdx]) > 0 {
				t.Fatalf("date should be ascending within (pizza,item) at row %d", i)
			}
		}
	}
	if rows[0][pIdx].Str() != "Margherita" {
		t.Errorf("first pizza = %v, want Margherita (descending)", rows[0][pIdx])
	}
}

func TestEnumeratorUnsupportedOrder(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	if _, err := NewEnumerator(f, roots, []OrderSpec{{Attr: "customer"}}); err == nil {
		t.Error("order by customer alone should be unsupported on T1")
	}
	if _, err := NewEnumerator(f, roots, []OrderSpec{{Attr: "nope"}}); err == nil {
		t.Error("unknown order attribute should fail")
	}
}

func TestEnumeratorEmpty(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("a")
	e, err := NewEnumerator(f, []*Union{{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Next() {
		t.Error("empty representation should yield no tuples")
	}
	if e.Next() {
		t.Error("Next after done should stay false")
	}
}

func TestEnumeratorNullaryForest(t *testing.T) {
	f := ftree.New()
	e, err := NewEnumerator(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Next() {
		t.Fatal("empty forest represents the nullary tuple ⟨⟩")
	}
	if len(e.Tuple()) != 0 {
		t.Error("nullary tuple should be empty")
	}
	if e.Next() {
		t.Error("only one nullary tuple")
	}
}

func TestEnumeratorMultiRootProduct(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("a")
	f.NewRelationPath("b")
	ra := &Union{Vals: []values.Value{iv(1), iv(2)}}
	rb := &Union{Vals: []values.Value{iv(10), iv(20), iv(30)}}
	e, err := NewEnumerator(f, []*Union{ra, rb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for e.Next() {
		n++
	}
	if n != 6 {
		t.Errorf("product enumeration = %d rows, want 6", n)
	}
	// One empty root → empty product.
	e2, err := NewEnumerator(f, []*Union{ra, {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Next() {
		t.Error("product with empty factor should be empty")
	}
}

func TestGroupEnumeratorByPizza(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	ge, err := NewGroupEnumerator(f, roots, []OrderSpec{{Attr: "pizza"}}, []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "price"},
		{Fn: ftree.Min, Arg: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		pizza string
		cnt   int64
		sum   int64
		min   int64
	}
	var got []row
	for {
		ok, err := ge.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		tp := ge.Tuple()
		got = append(got, row{tp[0].Str(), tp[1].Int(), tp[2].Int(), tp[3].Int()})
	}
	want := []row{
		{"Capricciosa", 6, 16, 1},
		{"Hawaii", 6, 18, 1},
		{"Margherita", 1, 6, 6},
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGroupEnumeratorGlobal(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	ge, err := NewGroupEnumerator(f, roots, nil, []ftree.AggField{
		{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ge.Next()
	if err != nil || !ok {
		t.Fatalf("want one global group, ok=%v err=%v", ok, err)
	}
	tp := ge.Tuple()
	if tp[0].Int() != 13 || tp[1].Int() != 40 {
		t.Errorf("global aggregates = %v, want (13, 40)", tp)
	}
	ok, err = ge.Next()
	if err != nil || ok {
		t.Error("only one global group expected")
	}
}

func TestGroupEnumeratorUnsupported(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	if _, err := NewGroupEnumerator(f, roots, []OrderSpec{{Attr: "customer"}}, []ftree.AggField{{Fn: ftree.Count}}); err == nil {
		t.Error("grouping by customer unsupported on T1")
	}
}

func TestGroupEnumeratorTwoLevels(t *testing.T) {
	// Group by (pizza, date): date is a child of pizza, supported.
	_, f, roots := buildPizzeria(t)
	ge, err := NewGroupEnumerator(f, roots, []OrderSpec{{Attr: "pizza"}, {Attr: "date"}}, []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	groups := 0
	for {
		ok, err := ge.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		groups++
		total += ge.Tuple()[2].Int()
	}
	// Groups: Capricciosa×{Monday,Friday}, Hawaii×{Friday}, Margherita×{Tuesday} = 4.
	if groups != 4 {
		t.Errorf("groups = %d, want 4", groups)
	}
	if total != 13 {
		t.Errorf("Σcount = %d, want 13", total)
	}
}

// Property: Build → Flatten is the identity (up to dedup) and Count
// matches, on random two-relation joins factorised with the join attribute
// on top.
func TestBuildFlattenRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(name string, attrs []string, n, dom int) *relation.Relation {
			ts := make([]relation.Tuple, n)
			for i := range ts {
				tp := make(relation.Tuple, len(attrs))
				for j := range tp {
					tp[j] = iv(int64(rng.Intn(dom)))
				}
				ts[i] = tp
			}
			return relation.MustNew(name, attrs, ts)
		}
		r := mk("R", []string{"b", "a"}, 1+rng.Intn(20), 4)
		s := mk("S", []string{"b", "c"}, 1+rng.Intn(20), 4)
		j := relation.NaturalJoin(r, s).Dedup()
		if j.Cardinality() == 0 {
			return true
		}
		f := ftree.New()
		rt, st := f.NewToken(), f.NewToken()
		b := &ftree.Node{Attrs: []string{"b"}, Deps: ftree.NewTokenSet(rt, st)}
		a := &ftree.Node{Attrs: []string{"a"}, Deps: ftree.NewTokenSet(rt), Parent: b}
		c := &ftree.Node{Attrs: []string{"c"}, Deps: ftree.NewTokenSet(st), Parent: b}
		b.Children = []*ftree.Node{a, c}
		f.Roots = []*ftree.Node{b}

		roots, err := Build(j, f)
		if err != nil {
			return false
		}
		if err := CheckInvariantsAll(f, roots); err != nil {
			return false
		}
		if CountPlain(b, roots[0]) != int64(j.Cardinality()) {
			return false
		}
		flat, err := Flatten(f, roots)
		if err != nil {
			return false
		}
		return relation.EqualAsSets(flat, j)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: evaluator results match relational aggregation on random
// linear-path factorisations.
func TestEvaluatorMatchesRelationalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{iv(int64(rng.Intn(5))), iv(int64(rng.Intn(7))), iv(int64(rng.Intn(9) - 4))}
		}
		rel := relation.MustNew("R", []string{"x", "y", "z"}, ts).Dedup()
		f := ftree.New()
		f.NewRelationPath("x", "y", "z")
		roots, err := Build(rel, f)
		if err != nil {
			return false
		}
		ev, err := NewEvaluator(f.Roots[0], []ftree.AggField{
			{Fn: ftree.Count},
			{Fn: ftree.Sum, Arg: "z"},
			{Fn: ftree.Min, Arg: "z"},
			{Fn: ftree.Max, Arg: "y"},
		})
		if err != nil {
			return false
		}
		got, err := ev.Eval(roots[0])
		if err != nil {
			return false
		}
		var sum, minz, maxy int64
		minz, maxy = 1<<62, -(1 << 62)
		for _, tp := range rel.Tuples {
			sum += tp[2].Int()
			if tp[2].Int() < minz {
				minz = tp[2].Int()
			}
			if tp[1].Int() > maxy {
				maxy = tp[1].Int()
			}
		}
		return got[0].Int() == int64(rel.Cardinality()) &&
			got[1].Int() == sum && got[2].Int() == minz && got[3].Int() == maxy
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
