package frep

// Parallel aggregation over segmented arena forests. The root union of
// a representation partitions into contiguous value windows; the
// Section 3.2 aggregation algebra is associative field by field (count
// and sum add, min and max take the extremum), so each window evaluates
// independently — a Store is freely readable from any number of
// goroutines — and the partial results merge in segment order into
// exactly the serial result. Integer aggregates merge bit-identically;
// float sums may differ from the serial left-to-right fold in the last
// bits of rounding.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// MinParallelEvalValues is the smallest root union for which parallel
// aggregate evaluation fans out; below it the evaluation runs serially
// (goroutine fan-out would cost more than it saves). Exported so tests
// and benchmarks can force either path.
var MinParallelEvalValues = 2048

// MinParallelEvalWork is the smallest represented tuple count (from the
// ranked index, when it covers the union) for which parallel aggregate
// evaluation fans out. The root value count alone under-estimates work
// skew, but it also over-triggers on shallow trees: a γ over a few
// thousand root values whose subtrees are tiny finishes faster serially
// than the fan-out costs — the measured crossover on the benchmark
// workload sits around 10⁵ represented tuples (see bench_baseline.json's
// parallel series). When the union is not ranked, only the value floor
// applies.
var MinParallelEvalWork = int64(1) << 17

// evalWorkers counts aggregate-evaluation workers spawned by this
// package, for the server's per-query worker accounting.
var evalWorkers atomic.Int64

// ParallelEvalWorkers returns the cumulative number of parallel
// aggregate-evaluation workers spawned.
func ParallelEvalWorkers() int64 { return evalWorkers.Load() }

// Segments splits [0, n) into at most p non-empty contiguous windows of
// near-equal size, in ascending order.
func Segments(n, p int) [][2]int {
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	if n == 0 {
		return nil
	}
	out := make([][2]int, 0, p)
	size, rem := n/p, n%p
	lo := 0
	for w := 0; w < p; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// MergePartials folds the segment result src into the running result
// dst, field by field: count and sum add, min and max take the
// extremum. Null — the value of a non-count field over an empty
// segment — is the identity of every merge, so dst may start as all
// Nulls.
func MergePartials(fields []ftree.AggField, dst, src []values.Value) {
	for i, fl := range fields {
		switch fl.Fn {
		case ftree.Count, ftree.Sum:
			dst[i] = values.Add(dst[i], src[i])
		case ftree.Min:
			dst[i] = values.Min(dst[i], src[i])
		case ftree.Max:
			dst[i] = values.Max(dst[i], src[i])
		}
	}
}

// ParallelEvalStore computes the fields over union id of store s by
// fanning contiguous root segments across at most par workers — each
// with its own compiled Evaluator, all reading the shared store — and
// merging the partial results in segment order. par ≤ 0 means
// GOMAXPROCS; the evaluation runs serially when the effective
// parallelism is 1 or the union is smaller than MinParallelEvalValues.
func ParallelEvalStore(n *ftree.Node, fields []ftree.AggField, s *Store, id NodeID, par int, out []values.Value) error {
	nv := s.Len(id)
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	serial := par < 2 || nv < MinParallelEvalValues
	if !serial {
		if t, ok := s.RankTotal(id); ok && t < MinParallelEvalWork {
			serial = true
		}
	}
	if serial {
		ev, err := NewEvaluator(n, fields)
		if err != nil {
			return err
		}
		return ev.EvalStoreInto(s, id, out)
	}
	segs := Segments(nv, par)
	partials := make([][]values.Value, len(segs))
	errs := make([]error, len(segs))
	evalWorkers.Add(int64(len(segs)))
	var wg sync.WaitGroup
	for w, sg := range segs {
		w, sg := w, sg
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev, err := NewEvaluator(n, fields)
			if err != nil {
				errs[w] = err
				return
			}
			buf := make([]values.Value, len(fields))
			if err := ev.EvalStoreRangeInto(s, id, sg[0], sg[1], buf); err != nil {
				errs[w] = err
				return
			}
			partials[w] = buf
		}()
	}
	wg.Wait()
	for i := range out {
		out[i] = values.Value{}
	}
	for w := range segs {
		if errs[w] != nil {
			return errs[w]
		}
		MergePartials(fields, out, partials[w])
	}
	return nil
}

// ParallelCountStore is CountStore with segment parallelism.
func ParallelCountStore(n *ftree.Node, s *Store, id NodeID, par int) (int64, error) {
	var out [1]values.Value
	if err := ParallelEvalStore(n, []ftree.AggField{{Fn: ftree.Count}}, s, id, par, out[:]); err != nil {
		return 0, err
	}
	return out[0].Int(), nil
}
