package frep

// FuzzCodecRoundTrip drives the codec with arbitrary (but valid)
// factorised representations derived from the fuzz input: a small
// relation and f-tree shape are decoded from the bytes, built in both
// the legacy and arena representations, serialised, and read back into
// both. decode(encode(u)) must be structurally equal to u in every
// combination, and the two representations must produce byte-identical
// encodings.

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// fuzzForest deterministically derives a relation and a linear-path
// f-tree from the input bytes. Returns nil when the input is too short
// to be interesting.
func fuzzForest(data []byte) (*relation.Relation, *ftree.Forest) {
	if len(data) < 4 {
		return nil, nil
	}
	nAttrs := 1 + int(data[0]%4)   // 1..4 columns
	nTuples := 1 + int(data[1]%24) // 1..24 rows
	attrs := make([]string, nAttrs)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	pos := 2
	next := func() byte {
		if pos >= len(data) {
			pos = 2
		}
		b := data[pos]
		pos++
		return b
	}
	tuples := make([]relation.Tuple, nTuples)
	for i := range tuples {
		t := make(relation.Tuple, nAttrs)
		for c := range t {
			b := next()
			// Mix value kinds so the codec's kind tags are exercised.
			switch b % 5 {
			case 0:
				t[c] = values.NewInt(int64(int8(b)))
			case 1:
				t[c] = values.NewFloat(float64(b) / 3)
			case 2:
				t[c] = values.NewString(string([]byte{'x', b}))
			case 3:
				t[c] = values.NewBool(b%2 == 0)
			default:
				t[c] = values.NewInt(int64(b) * 1000)
			}
		}
		tuples[i] = t
	}
	rel, err := relation.New("F", attrs, tuples)
	if err != nil {
		return nil, nil
	}
	f := ftree.New()
	f.NewRelationPath(attrs...)
	return rel, f
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{1, 3, 7, 20, 40, 80, 160, 5})
	f.Add([]byte{3, 20, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 251, 252, 253})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{2, 10, 127, 128, 129, 200, 0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, tree := fuzzForest(data)
		if rel == nil {
			t.Skip("input too short")
		}
		legacy, err := BuildUnchecked(rel, tree)
		if err != nil {
			t.Fatalf("legacy build: %v", err)
		}
		s := NewStore()
		roots, err := BuildStoreUnchecked(s, rel, tree)
		if err != nil {
			t.Fatalf("arena build: %v", err)
		}
		var lbuf, sbuf bytes.Buffer
		if err := WriteTo(&lbuf, tree, legacy); err != nil {
			t.Fatalf("legacy encode: %v", err)
		}
		if err := WriteStoreTo(&sbuf, tree, s, roots); err != nil {
			t.Fatalf("arena encode: %v", err)
		}
		if !bytes.Equal(lbuf.Bytes(), sbuf.Bytes()) {
			t.Fatal("legacy and arena encodings differ")
		}
		// decode(encode(u)) in the legacy representation.
		_, back, err := ReadFrom(bytes.NewReader(lbuf.Bytes()))
		if err != nil {
			t.Fatalf("legacy decode: %v", err)
		}
		if len(back) != len(legacy) {
			t.Fatalf("legacy decode: %d roots, want %d", len(back), len(legacy))
		}
		for i := range back {
			if !Equal(back[i], legacy[i]) {
				t.Fatalf("legacy round trip differs at root %d", i)
			}
		}
		// decode(encode(u)) in the arena representation.
		_, s2, roots2, err := ReadStoreFrom(bytes.NewReader(sbuf.Bytes()))
		if err != nil {
			t.Fatalf("arena decode: %v", err)
		}
		if len(roots2) != len(roots) {
			t.Fatalf("arena decode: %d roots, want %d", len(roots2), len(roots))
		}
		for i := range roots2 {
			if !EqualStore(s2, roots2[i], s, roots[i]) {
				t.Fatalf("arena round trip differs at root %d", i)
			}
			if !EqualStoreUnion(s2, roots2[i], legacy[i]) {
				t.Fatalf("arena decode differs from legacy build at root %d", i)
			}
		}
	})
}
