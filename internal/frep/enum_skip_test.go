package frep

import (
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
)

// collect drains a TupleEnum into cloned tuples.
func collect(t *testing.T, en TupleEnum) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for en.Next() {
		out = append(out, en.Tuple().Clone())
	}
	return out
}

// TestSkipMatchesNext asserts that Skip(k) then Next enumerates exactly
// the suffix after k tuples, on both representations, with and without
// order specs, for every k.
func TestSkipMatchesNext(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	orders := [][]OrderSpec{
		nil,
		{{Attr: "a", Desc: true}, {Attr: "b"}},
	}
	mk := map[string]func(order []OrderSpec) TupleEnum{
		"legacy": func(order []OrderSpec) TupleEnum {
			en, err := NewEnumerator(f, legacy, order)
			if err != nil {
				t.Fatal(err)
			}
			return en
		},
		"arena": func(order []OrderSpec) TupleEnum {
			en, err := NewStoreEnumerator(f, s, roots, order)
			if err != nil {
				t.Fatal(err)
			}
			return en
		},
	}
	for name, newEnum := range mk {
		for oi, order := range orders {
			full := collect(t, newEnum(order))
			for k := 0; k <= len(full)+1; k++ {
				en := newEnum(order)
				skipped := en.Skip(k)
				wantSkipped := k
				if k > len(full) {
					wantSkipped = len(full)
				}
				if skipped != wantSkipped {
					t.Fatalf("%s/order%d: Skip(%d) = %d, want %d", name, oi, k, skipped, wantSkipped)
				}
				rest := collect(t, en)
				if len(rest) != len(full)-wantSkipped {
					t.Fatalf("%s/order%d: after Skip(%d) got %d tuples, want %d", name, oi, k, len(rest), len(full)-wantSkipped)
				}
				for i := range rest {
					if relation.Compare(rest[i], full[wantSkipped+i]) != 0 {
						t.Fatalf("%s/order%d: Skip(%d) row %d = %v, want %v", name, oi, k, i, rest[i], full[wantSkipped+i])
					}
				}
			}
		}
	}
}

// TestGroupSkipMatchesNext asserts the grouped enumerators skip whole
// groups equivalently to stepping, on both representations.
func TestGroupSkipMatchesNext(t *testing.T) {
	rel, f := testRel(t)
	legacy, err := BuildUnchecked(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	g := []OrderSpec{{Attr: "a"}}
	fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "c"}}
	collectG := func(ge GroupEnum) []relation.Tuple {
		var out []relation.Tuple
		for {
			ok, err := ge.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out = append(out, ge.Tuple().Clone())
		}
	}
	mk := map[string]func() GroupEnum{
		"legacy": func() GroupEnum {
			ge, err := NewGroupEnumerator(f, legacy, g, fields)
			if err != nil {
				t.Fatal(err)
			}
			return ge
		},
		"arena": func() GroupEnum {
			ge, err := NewStoreGroupEnumerator(f, s, roots, g, fields)
			if err != nil {
				t.Fatal(err)
			}
			return ge
		},
	}
	for name, newEnum := range mk {
		full := collectG(newEnum())
		if len(full) != 3 { // groups a=1,2,3
			t.Fatalf("%s: %d groups, want 3", name, len(full))
		}
		for k := 0; k <= len(full)+1; k++ {
			ge := newEnum()
			skipped := ge.Skip(k)
			wantSkipped := k
			if k > len(full) {
				wantSkipped = len(full)
			}
			if skipped != wantSkipped {
				t.Fatalf("%s: Skip(%d) = %d, want %d", name, k, skipped, wantSkipped)
			}
			rest := collectG(ge)
			if len(rest) != len(full)-wantSkipped {
				t.Fatalf("%s: after Skip(%d) got %d groups, want %d", name, k, len(rest), len(full)-wantSkipped)
			}
			for i := range rest {
				if relation.Compare(rest[i], full[wantSkipped+i]) != 0 {
					t.Fatalf("%s: Skip(%d) group %d = %v, want %v", name, k, i, rest[i], full[wantSkipped+i])
				}
			}
		}
	}
}
