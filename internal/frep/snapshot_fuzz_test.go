package frep

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb/internal/values"
)

// FuzzSnapshotRoundTrip feeds arbitrary bytes to the snapshot loader:
// corrupt, truncated or version-skewed input must return an error —
// never panic and never produce a store that panics when read — and any
// input that does load must re-encode byte-identically (the format is
// canonical).
func FuzzSnapshotRoundTrip(f *testing.F) {
	seed := func(build func(s *Store)) {
		s := NewStore()
		build(s)
		b, err := s.SnapshotBytes()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(func(s *Store) {}) // empty store
	build := func(s *Store) {
		leaf := s.AddLeaf([]values.Value{values.NewInt(1), values.NewInt(2)})
		strs := s.AddLeaf([]values.Value{
			values.NewString("a"), values.NewString("bb"),
			values.NewVec([]values.Value{values.NewFloat(0.5), values.NullValue()}),
		})
		s.Add([]values.Value{values.NewInt(0), values.NewBool(true)}, 2,
			[]NodeID{leaf, strs, strs, leaf})
	}
	seed(build)
	seed(func(s *Store) { // same store with a ranks section (version 2)
		build(s)
		if err := s.BuildRanks(); err != nil {
			f.Fatal(err)
		}
	})
	// Structurally plausible garbage so the fuzzer starts near the
	// format's edge cases, not at random noise.
	f.Add([]byte(snapMagic))
	f.Add(append([]byte(snapMagic), make([]byte, snapHeaderLen)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, zc := range []bool{false, true} {
			st, err := LoadSnapshot(data, zc)
			if err != nil {
				continue
			}
			// Anything that loads must be fully readable without panics…
			walkStore(st)
			// …and must re-encode to exactly the accepted bytes.
			out, err := st.SnapshotBytes()
			if err != nil {
				t.Fatalf("zeroCopy=%v: loaded store failed to re-encode: %v", zc, err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("zeroCopy=%v: accepted snapshot is not canonical", zc)
			}
		}
		// The streaming reader must agree with the slice loader on
		// accept/reject (modulo trailing bytes, which only LoadSnapshot
		// rejects).
		var st Store
		st.nodes = append(st.nodes, nodeHdr{})
		_, _ = st.ReadFrom(bytes.NewReader(data))
	})
}

// walkStore touches every node, value and kid reference of every node in
// the store, so latent out-of-range references would surface here.
func walkStore(s *Store) {
	for id := 0; id < s.NodeCount(); id++ {
		n := NodeID(id)
		vals := s.Vals(n)
		for i := range vals {
			_ = vals[i].String()
		}
		for i := 0; i < s.Len(n); i++ {
			for _, k := range s.KidRow(n, i) {
				_ = s.Len(k)
			}
		}
	}
}
