package frep

import (
	"fmt"

	"github.com/factordb/fdb/internal/frep/kernel"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// This file implements the recursive aggregation algorithms of
// Section 3.2: count, sum_A, min_A and max_A over a factorised
// representation, with the Section 3.1 interpretation of previously
// computed aggregate attributes (⟨count(X):c⟩ counts as c tuples, etc.),
// evaluated jointly for composite aggregation functions (Section 3.2.4) so
// shared counts are computed once.

type actionKind uint8

const (
	actAbsent   actionKind = iota // field's attribute not in this subtree
	actHere                       // atomic node carrying the argument
	actAggField                   // aggregate node storing the field
	actDescend                    // argument lives under one child
)

type fieldAction struct {
	kind actionKind
	idx  int // field index within the agg node (actAggField) or child index (actDescend)
}

type nodePlan struct {
	// countFieldIdx: -1 for atomic nodes (multiplicity 1 per value),
	// otherwise the index of the Count field within the aggregate node;
	// -2 if the aggregate node has no Count field (its multiplicity is
	// unknowable and poisons counting).
	countFieldIdx int
	actions       []fieldAction

	// leafKernel marks atomic leaf nodes (no children, not an aggregate
	// node): every value has multiplicity 1, so the whole value loop of
	// evalStore reduces to a count plus straight folds over the value
	// window — exactly what the vectorised kernels compute when the
	// window is a kind-homogeneous Int or Float run.
	leafKernel bool
}

// Evaluator computes a fixed list of aggregation functions over
// representations of a fixed f-tree subtree. Compile once, evaluate many
// times (the γ operator calls Eval for every occurrence of the subtree).
// An Evaluator reuses internal per-depth scratch frames and is therefore
// not safe for concurrent use.
type Evaluator struct {
	root      *ftree.Node
	fields    []ftree.AggField
	needCount bool
	plans     map[*ftree.Node]*nodePlan
	frames    []evalFrame
	rootRes   result
}

// evalFrame holds reusable child-result storage for one recursion depth.
type evalFrame struct {
	kids []result
}

func (ev *Evaluator) frame(depth, nKids int) *evalFrame {
	for len(ev.frames) <= depth {
		ev.frames = append(ev.frames, evalFrame{})
	}
	f := &ev.frames[depth]
	for len(f.kids) < nKids {
		f.kids = append(f.kids, result{vals: make([]values.Value, len(ev.fields))})
	}
	return f
}

// NewEvaluator compiles an evaluator for the given fields over the subtree
// rooted at n. It fails if the composition rules of Proposition 2 are
// violated — for example counting over a subtree containing a min
// aggregate, or summing an attribute covered by a count-only aggregate.
func NewEvaluator(n *ftree.Node, fields []ftree.AggField) (*Evaluator, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("frep: evaluator needs at least one field")
	}
	ev := &Evaluator{
		root:   n,
		fields: fields,
		plans:  map[*ftree.Node]*nodePlan{},
	}
	for _, fl := range fields {
		if fl.Fn == ftree.Count {
			ev.needCount = true
		}
		if fl.Fn == ftree.Sum {
			ev.needCount = true
		}
	}
	if err := ev.compile(n); err != nil {
		return nil, err
	}
	// Locate each non-count field's carrier and verify the composition
	// rules along the way.
	for fi, fl := range fields {
		if fl.Fn == ftree.Count {
			continue
		}
		carrier := findCarrier(n, fl.Arg)
		if carrier == nil {
			return nil, fmt.Errorf("frep: attribute %q not in subtree %s", fl.Arg, n.Label())
		}
		if carrier.IsAgg() && idxOfField(carrier.Agg.Fields, fl) < 0 {
			return nil, fmt.Errorf("frep: cannot compute %s over aggregate %s covering %q (Proposition 2)",
				fl, carrier.Label(), fl.Arg)
		}
		_ = fi
	}
	if ev.needCount {
		// Every aggregate node whose multiplicity matters must carry a
		// count field. A node lacking one is acceptable only if it is the
		// exact carrier of every count-consuming field: a requested Count
		// needs every node's multiplicity, and a sum_A needs the
		// multiplicity of every node except A's carrier itself.
		hasCountField := false
		for _, fl := range ev.fields {
			if fl.Fn == ftree.Count {
				hasCountField = true
			}
		}
		var bad *ftree.Node
		n.Walk(func(m *ftree.Node) {
			if bad != nil || !m.IsAgg() {
				return
			}
			if idxOfCount(m.Agg.Fields) >= 0 {
				return
			}
			if hasCountField {
				bad = m
				return
			}
			for _, fl := range ev.fields {
				if fl.Fn == ftree.Sum && idxOfField(m.Agg.Fields, fl) < 0 {
					bad = m
					return
				}
			}
		})
		if bad != nil {
			return nil, fmt.Errorf("frep: cannot count multiplicities of aggregate %s (no count field; Proposition 2)", bad.Label())
		}
	}
	return ev, nil
}

func idxOfField(fields []ftree.AggField, fl ftree.AggField) int {
	for i, f := range fields {
		if f == fl {
			return i
		}
	}
	return -1
}

func idxOfCount(fields []ftree.AggField) int {
	for i, f := range fields {
		if f.Fn == ftree.Count {
			return i
		}
	}
	return -1
}

// findCarrier returns the node in the subtree that carries attribute a:
// an atomic node whose class contains it or an aggregate node covering it.
func findCarrier(n *ftree.Node, a string) *ftree.Node {
	var found *ftree.Node
	n.Walk(func(m *ftree.Node) {
		if found != nil {
			return
		}
		if m.IsAgg() {
			if m.Agg.Covers(a) {
				found = m
			}
		} else if m.HasAttr(a) {
			found = m
		}
	})
	return found
}

func (ev *Evaluator) compile(n *ftree.Node) error {
	p := &nodePlan{countFieldIdx: -1, actions: make([]fieldAction, len(ev.fields))}
	if n.IsAgg() {
		p.countFieldIdx = idxOfCount(n.Agg.Fields)
		if p.countFieldIdx < 0 {
			p.countFieldIdx = -2
		}
	}
	for fi, fl := range ev.fields {
		act := fieldAction{kind: actAbsent}
		switch {
		case fl.Fn == ftree.Count:
			// Count has no carrier; it is assembled from multiplicities.
		case n.IsAgg():
			if i := idxOfField(n.Agg.Fields, fl); i >= 0 {
				act = fieldAction{kind: actAggField, idx: i}
			} else if n.Agg.Covers(fl.Arg) {
				return fmt.Errorf("frep: cannot compute %s over aggregate %s (Proposition 2)", fl, n.Label())
			}
		case n.HasAttr(fl.Arg):
			act = fieldAction{kind: actHere}
		}
		if act.kind == actAbsent && fl.Fn != ftree.Count {
			for ci, c := range n.Children {
				if findCarrier(c, fl.Arg) != nil {
					act = fieldAction{kind: actDescend, idx: ci}
					break
				}
			}
		}
		p.actions[fi] = act
	}
	p.leafKernel = len(n.Children) == 0 && !n.IsAgg()
	ev.plans[n] = p
	for _, c := range n.Children {
		if err := ev.compile(c); err != nil {
			return err
		}
	}
	return nil
}

// result carries the running aggregates for one subtree representation.
// count is -1 ("poisoned") when a multiplicity was unknowable; using a
// poisoned count in an output is an internal error caught by Eval.
type result struct {
	count int64
	vals  []values.Value
}

// Eval computes the evaluator's fields over the representation u of its
// subtree. For an empty representation, count fields evaluate to 0 and
// other fields to Null.
func (ev *Evaluator) Eval(u *Union) ([]values.Value, error) {
	out := make([]values.Value, len(ev.fields))
	if err := ev.EvalInto(u, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalInto is Eval writing into a caller-provided slice of length
// len(fields), avoiding the output allocation on hot paths.
func (ev *Evaluator) EvalInto(u *Union, out []values.Value) error {
	if ev.rootRes.vals == nil {
		ev.rootRes.vals = make([]values.Value, len(ev.fields))
	}
	res := ev.rootRes
	ev.eval(ev.root, u, 0, &res)
	for i, fl := range ev.fields {
		if fl.Fn == ftree.Count {
			if res.count < 0 {
				return fmt.Errorf("frep: poisoned count for %s (invalid aggregate composition)", fl)
			}
			out[i] = values.NewInt(res.count)
		} else {
			if isPoison(res.vals[i]) {
				return fmt.Errorf("frep: poisoned value for %s (invalid aggregate composition)", fl)
			}
			out[i] = res.vals[i]
		}
	}
	return nil
}

// EvalValue is Eval for single-field evaluators, returning the scalar.
func (ev *Evaluator) EvalValue(u *Union) (values.Value, error) {
	vs, err := ev.Eval(u)
	if err != nil {
		return values.Value{}, err
	}
	return vs[0], nil
}

// eval accumulates the aggregates for u into res, which the caller must
// have reset (count 0, vals Null). Child results live in per-depth scratch
// frames so steady-state evaluation does not allocate.
func (ev *Evaluator) eval(n *ftree.Node, u *Union, depth int, res *result) {
	p := ev.plans[n]
	res.count = 0
	for i := range res.vals {
		res.vals[i] = values.Value{}
	}
	nc := len(n.Children)
	var kidRes []result
	if nc > 0 {
		kidRes = ev.frame(depth, nc).kids[:nc]
	}
	for i := range u.Vals {
		// Evaluate children once per value.
		mult := int64(1)
		for j := 0; j < nc; j++ {
			ev.eval(n.Children[j], u.Kids[i][j], depth+1, &kidRes[j])
			if kidRes[j].count < 0 || mult < 0 {
				mult = -1
			} else {
				mult *= kidRes[j].count
			}
		}
		// Multiplicity of this value itself.
		self := int64(1)
		switch {
		case p.countFieldIdx == -2:
			self = -1
		case p.countFieldIdx >= 0:
			fv := fieldValue(u.Vals[i], p.countFieldIdx, len(n.Agg.Fields))
			self = fv.Int()
		}
		cnt := int64(-1)
		if self >= 0 && mult >= 0 {
			cnt = self * mult
		}
		if res.count >= 0 && cnt >= 0 {
			res.count += cnt
		} else {
			res.count = -1
		}
		for fi, act := range p.actions {
			fl := ev.fields[fi]
			switch act.kind {
			case actAbsent:
				// Count fields are assembled from res.count; nothing here.
			case actHere, actAggField:
				var v values.Value
				if act.kind == actHere {
					v = u.Vals[i]
				} else {
					v = fieldValue(u.Vals[i], act.idx, len(n.Agg.Fields))
				}
				switch fl.Fn {
				case ftree.Sum:
					if isPoison(res.vals[fi]) {
						break
					}
					if mult < 0 {
						res.vals[fi] = poisonVal()
					} else {
						res.vals[fi] = values.Add(res.vals[fi], values.MulInt(v, mult))
					}
				case ftree.Min:
					res.vals[fi] = values.Min(res.vals[fi], v)
				case ftree.Max:
					res.vals[fi] = values.Max(res.vals[fi], v)
				}
			case actDescend:
				sub := kidRes[act.idx].vals[fi]
				switch fl.Fn {
				case ftree.Sum:
					if isPoison(res.vals[fi]) {
						break
					}
					// Multiply by the counts of the sibling factors and
					// this node's own multiplicity.
					sibMult := self
					for j := 0; j < nc; j++ {
						if j == act.idx {
							continue
						}
						if kidRes[j].count < 0 || sibMult < 0 {
							sibMult = -1
							break
						}
						sibMult *= kidRes[j].count
					}
					if sibMult < 0 || isPoison(sub) {
						res.vals[fi] = poisonVal()
					} else if !sub.IsNull() {
						res.vals[fi] = values.Add(res.vals[fi], values.MulInt(sub, sibMult))
					}
				case ftree.Min:
					res.vals[fi] = values.Min(res.vals[fi], sub)
				case ftree.Max:
					res.vals[fi] = values.Max(res.vals[fi], sub)
				}
			}
		}
	}
}

// EvalStore is Eval over the arena representation: it computes the
// evaluator's fields over union id of store s.
func (ev *Evaluator) EvalStore(s *Store, id NodeID) ([]values.Value, error) {
	out := make([]values.Value, len(ev.fields))
	if err := ev.EvalStoreInto(s, id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalStoreInto is EvalStore writing into a caller-provided slice of
// length len(fields), avoiding the output allocation on hot paths.
func (ev *Evaluator) EvalStoreInto(s *Store, id NodeID, out []values.Value) error {
	return ev.EvalStoreRangeInto(s, id, 0, s.Len(id), out)
}

// EvalStoreRangeInto is EvalStoreInto restricted to the value window
// [lo, hi) of the root union id: one segment of a parallel evaluation.
// The fields of the paper's aggregation algebra are associative, so
// partial results over contiguous segments combine with MergePartials
// into exactly the full-union result (bit-identically for integer data;
// float sums may differ from the serial fold in the last bits of
// rounding).
func (ev *Evaluator) EvalStoreRangeInto(s *Store, id NodeID, lo, hi int, out []values.Value) error {
	if ev.rootRes.vals == nil {
		ev.rootRes.vals = make([]values.Value, len(ev.fields))
	}
	res := ev.rootRes
	ev.evalStore(ev.root, s, id, lo, hi, 0, &res)
	for i, fl := range ev.fields {
		if fl.Fn == ftree.Count {
			if res.count < 0 {
				return fmt.Errorf("frep: poisoned count for %s (invalid aggregate composition)", fl)
			}
			out[i] = values.NewInt(res.count)
		} else {
			if isPoison(res.vals[i]) {
				return fmt.Errorf("frep: poisoned value for %s (invalid aggregate composition)", fl)
			}
			out[i] = res.vals[i]
		}
	}
	return nil
}

// evalStore mirrors eval over the arena representation: same recursion,
// same per-depth scratch frames, but values and kid rows come from the
// store slabs instead of per-union heap objects. The [lo, hi) window
// restricts the top-level value loop only; recursive calls always cover
// their whole union.
func (ev *Evaluator) evalStore(n *ftree.Node, s *Store, id NodeID, lo, hi int, depth int, res *result) {
	p := ev.plans[n]
	if p.leafKernel && EnableKernels && ev.evalLeafStoreKernel(p, s, id, lo, hi, res) {
		return
	}
	res.count = 0
	for i := range res.vals {
		res.vals[i] = values.Value{}
	}
	nc := len(n.Children)
	var kidRes []result
	if nc > 0 {
		kidRes = ev.frame(depth, nc).kids[:nc]
	}
	uVals := s.Vals(id)
	for i := lo; i < hi; i++ {
		var row []NodeID
		if nc > 0 {
			row = s.KidRow(id, i)
		}
		mult := int64(1)
		for j := 0; j < nc; j++ {
			ev.evalStore(n.Children[j], s, row[j], 0, s.Len(row[j]), depth+1, &kidRes[j])
			if kidRes[j].count < 0 || mult < 0 {
				mult = -1
			} else {
				mult *= kidRes[j].count
			}
		}
		self := int64(1)
		switch {
		case p.countFieldIdx == -2:
			self = -1
		case p.countFieldIdx >= 0:
			fv := fieldValue(uVals[i], p.countFieldIdx, len(n.Agg.Fields))
			self = fv.Int()
		}
		cnt := int64(-1)
		if self >= 0 && mult >= 0 {
			cnt = self * mult
		}
		if res.count >= 0 && cnt >= 0 {
			res.count += cnt
		} else {
			res.count = -1
		}
		for fi, act := range p.actions {
			fl := ev.fields[fi]
			switch act.kind {
			case actAbsent:
				// Count fields are assembled from res.count; nothing here.
			case actHere, actAggField:
				var v values.Value
				if act.kind == actHere {
					v = uVals[i]
				} else {
					v = fieldValue(uVals[i], act.idx, len(n.Agg.Fields))
				}
				switch fl.Fn {
				case ftree.Sum:
					if isPoison(res.vals[fi]) {
						break
					}
					if mult < 0 {
						res.vals[fi] = poisonVal()
					} else {
						res.vals[fi] = values.Add(res.vals[fi], values.MulInt(v, mult))
					}
				case ftree.Min:
					res.vals[fi] = values.Min(res.vals[fi], v)
				case ftree.Max:
					res.vals[fi] = values.Max(res.vals[fi], v)
				}
			case actDescend:
				sub := kidRes[act.idx].vals[fi]
				switch fl.Fn {
				case ftree.Sum:
					if isPoison(res.vals[fi]) {
						break
					}
					sibMult := self
					for j := 0; j < nc; j++ {
						if j == act.idx {
							continue
						}
						if kidRes[j].count < 0 || sibMult < 0 {
							sibMult = -1
							break
						}
						sibMult *= kidRes[j].count
					}
					if sibMult < 0 || isPoison(sub) {
						res.vals[fi] = poisonVal()
					} else if !sub.IsNull() {
						res.vals[fi] = values.Add(res.vals[fi], values.MulInt(sub, sibMult))
					}
				case ftree.Min:
					res.vals[fi] = values.Min(res.vals[fi], sub)
				case ftree.Max:
					res.vals[fi] = values.Max(res.vals[fi], sub)
				}
			}
		}
	}
}

// evalLeafStoreKernel evaluates an atomic leaf node's aggregates through
// the vectorised kernels when the value window [lo, hi) is a
// kind-homogeneous Int or Float run of the column index. It reports
// false — leaving res untouched beyond its reset — when the window does
// not qualify (unindexed, mixed-kind, or a kind the kernels skip: Bool
// sums promote to Float through the scalar AsFloat path, and
// String/Vec/Null never carry numeric aggregates), in which case the
// caller runs the scalar loop.
//
// Byte-identity with the scalar fold: every value has multiplicity 1, so
// the scalar fold is acc = Add(acc, MulInt(v, 1)) left to right from a
// Null accumulator. For Int runs that is a wrapping int64 sum (any
// association); for Float runs it is v0·1.0 then += vi·1.0 — and
// multiplication by 1.0 is exact for every float64 including -0.0 and
// NaN payloads, so kernel.SumFloatBits' strict left-to-right fold from
// the first element reproduces it bit for bit. Min/Max kernels move only
// on strict </>, matching values.Min/Max keeping the earlier operand on
// Compare ties, and the winning stored value is emitted verbatim.
func (ev *Evaluator) evalLeafStoreKernel(p *nodePlan, s *Store, id NodeID, lo, hi int, res *result) bool {
	h := s.hdr(id)
	n := hi - lo
	if n <= 0 {
		res.count = 0
		for i := range res.vals {
			res.vals[i] = values.Value{}
		}
		return true
	}
	k, pay, ok := s.colRun(h.valOff+uint32(lo), uint32(n))
	if !ok || (k != values.Int && k != values.Float) {
		if KernelStatsEnabled {
			kstats.aggFallback.Add(1)
		}
		return false
	}
	res.count = int64(n)
	for i := range res.vals {
		res.vals[i] = values.Value{}
	}
	minIdx, maxIdx := -1, -1
	for fi, act := range p.actions {
		if act.kind != actHere {
			continue // actAbsent: count-only or carried elsewhere, stays Null
		}
		switch ev.fields[fi].Fn {
		case ftree.Sum:
			if k == values.Int {
				res.vals[fi] = values.NewInt(kernel.SumInt64(pay))
			} else {
				res.vals[fi] = values.NewFloat(kernel.SumFloatBits(pay))
			}
		case ftree.Min, ftree.Max:
			if minIdx < 0 {
				if k == values.Int {
					minIdx, maxIdx = kernel.MinMaxInt64(pay)
				} else {
					minIdx, maxIdx = kernel.MinMaxFloatBits(pay)
				}
			}
			idx := minIdx
			if ev.fields[fi].Fn == ftree.Max {
				idx = maxIdx
			}
			res.vals[fi] = s.valSlice(h.valOff, h.nVals)[lo+idx]
		}
	}
	if KernelStatsEnabled {
		kstats.aggKernel.Add(1)
	}
	return true
}

// CountStore is Count over the arena representation.
func CountStore(n *ftree.Node, s *Store, id NodeID) (int64, error) {
	ev, err := NewEvaluator(n, []ftree.AggField{{Fn: ftree.Count}})
	if err != nil {
		return 0, err
	}
	var out [1]values.Value
	if err := ev.EvalStoreInto(s, id, out[:]); err != nil {
		return 0, err
	}
	return out[0].Int(), nil
}

// CountAllStore multiplies CountStore over the roots of a forest
// representation.
func CountAllStore(f *ftree.Forest, s *Store, roots []NodeID) (int64, error) {
	total := int64(1)
	for i, r := range f.Roots {
		c, err := CountStore(r, s, roots[i])
		if err != nil {
			return 0, err
		}
		total *= c
		if total == 0 {
			return 0, nil
		}
	}
	return total, nil
}

// fieldValue extracts the idx-th component of an aggregate node's stored
// value: scalar when the node has a single field, vector otherwise.
func fieldValue(v values.Value, idx, nFields int) values.Value {
	if nFields == 1 {
		return v
	}
	return v.VecAt(idx)
}

// poison sentinel for sum results whose multiplicities were unknowable.
func poisonVal() values.Value { return values.NewString("\x00poisoned") }

func isPoison(v values.Value) bool {
	if v.Kind() != values.String {
		return false
	}
	s := v.Str()
	return len(s) > 0 && s[0] == 0 && s == "\x00poisoned"
}

// Count returns the cardinality of the representation u over subtree n
// under the aggregate-attribute interpretation of Section 3.1 (the paper's
// count algorithm).
func Count(n *ftree.Node, u *Union) (int64, error) {
	ev, err := NewEvaluator(n, []ftree.AggField{{Fn: ftree.Count}})
	if err != nil {
		return 0, err
	}
	v, err := ev.EvalValue(u)
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

// CountAll multiplies Count over the roots of a forest representation.
func CountAll(f *ftree.Forest, roots []*Union) (int64, error) {
	total := int64(1)
	for i, r := range f.Roots {
		c, err := Count(r, roots[i])
		if err != nil {
			return 0, err
		}
		total *= c
		if total == 0 {
			return 0, nil
		}
	}
	return total, nil
}
