package frep

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// snapTestStore builds a small store exercising every value kind, shared
// children and a ViewOf alias node, returning the store and its root.
func snapTestStore(t *testing.T) (*Store, NodeID) {
	t.Helper()
	s := NewStore()
	leafA := s.AddLeaf([]values.Value{
		values.NewInt(1), values.NewInt(2), values.NewInt(42),
	})
	leafB := s.AddLeaf([]values.Value{
		values.NewFloat(1.5), values.NewFloat(2.25),
	})
	leafC := s.AddLeaf([]values.Value{
		values.NewBool(false), values.NewBool(true),
		values.NewString(""), values.NewString("hello"),
		values.NewString("snapshot\x00bytes"),
		values.NewVec([]values.Value{values.NewInt(7), values.NewString("x")}),
	})
	mid := s.Add([]values.Value{
		values.NullValue(), values.NewString("k1"), values.NewString("k2"),
	}, 2, []NodeID{leafA, leafB, leafA, leafC, leafB, leafC})
	view := s.ViewOf(mid, 1, 3)
	root := s.Add([]values.Value{values.NewInt(10), values.NewInt(20)}, 1,
		[]NodeID{mid, view})
	return s, root
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, root := snapTestStore(t)
	buf, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	var w bytes.Buffer
	n, err := s.WriteTo(&w)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(buf)) || !bytes.Equal(w.Bytes(), buf) {
		t.Fatalf("WriteTo and SnapshotBytes disagree (%d vs %d bytes)", n, len(buf))
	}
	if got, err := SnapshotLen(buf); err != nil || got != int64(len(buf)) {
		t.Fatalf("SnapshotLen = %d, %v; want %d", got, err, len(buf))
	}

	for _, zc := range []bool{false, true} {
		ld, err := LoadSnapshot(buf, zc)
		if err != nil {
			t.Fatalf("LoadSnapshot(zeroCopy=%v): %v", zc, err)
		}
		if !EqualStore(s, root, ld, root) {
			t.Fatalf("zeroCopy=%v: loaded store differs structurally", zc)
		}
		// Re-snapshot must be byte-identical: the format is canonical.
		buf2, err := ld.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("zeroCopy=%v: save→load→save is not byte-identical", zc)
		}
	}

	var rd Store
	rd.nodes = append(rd.nodes, nodeHdr{}) // emulate NewStore
	m, err := rd.ReadFrom(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if m != int64(len(buf)) {
		t.Fatalf("ReadFrom consumed %d bytes, want %d", m, len(buf))
	}
	if !EqualStore(s, root, &rd, root) {
		t.Fatal("ReadFrom store differs structurally")
	}
}

func TestSnapshotRoundTripBuiltRelation(t *testing.T) {
	// A store built from a real factorisation round-trips and keeps the
	// representation invariants.
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	var ts []relation.Tuple
	for i := 0; i < 40; i++ {
		ts = append(ts, relation.Tuple{
			values.NewInt(int64(i % 5)),
			values.NewString("b" + string(rune('a'+i%7))),
			values.NewFloat(float64(i) / 4),
		})
	}
	rel := relation.MustNew("R", []string{"a", "b", "c"}, ts).Dedup()
	s := NewStore()
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	ld, err := LoadSnapshot(buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStoreInvariantsAll(f, ld, roots); err != nil {
		t.Fatal(err)
	}
	if !EqualStore(s, roots[0], ld, roots[0]) {
		t.Fatal("loaded store differs structurally")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	s, _ := snapTestStore(t)
	buf, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, b []byte) {
		t.Helper()
		if _, err := LoadSnapshot(b, true); err == nil {
			t.Errorf("%s: LoadSnapshot accepted corrupt input", name)
		}
		var st Store
		st.nodes = append(st.nodes, nodeHdr{})
		if _, err := st.ReadFrom(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadFrom accepted corrupt input", name)
		}
	}

	// Truncations at every interesting boundary.
	for _, n := range []int{0, 4, snapHeaderLen - 1, snapHeaderLen, len(buf) / 2, len(buf) - 1} {
		check("truncated", buf[:n])
	}
	// Bad magic.
	bad := bytes.Clone(buf)
	bad[0] ^= 0xff
	check("magic", bad)
	// Version skew (header CRC recomputed so only the version differs).
	bad = bytes.Clone(buf)
	bad[8] = 99
	rechecksumHeader(bad)
	check("version", bad)
	// Unknown flags.
	bad = bytes.Clone(buf)
	bad[10] = 1
	rechecksumHeader(bad)
	check("flags", bad)
	// Flipped payload byte: CRC must catch it.
	bad = bytes.Clone(buf)
	bad[len(bad)-9] ^= 0x40
	check("payload-bitflip", bad)
	// Flipped header byte: header CRC must catch it.
	bad = bytes.Clone(buf)
	bad[17] ^= 0x01
	check("header-bitflip", bad)
	// Trailing garbage: the slice loader must reject it (the slice is
	// the whole snapshot by contract); the streaming reader stops at the
	// framed length, so only LoadSnapshot is checked.
	if _, err := LoadSnapshot(append(bytes.Clone(buf), 0), true); err == nil {
		t.Error("overlong: LoadSnapshot accepted trailing garbage")
	}
}

func TestSnapshotFrozenStore(t *testing.T) {
	s, root := snapTestStore(t)
	buf, err := s.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	ld, err := LoadSnapshot(buf, true)
	if err != nil {
		t.Fatal(err)
	}
	// Grafting out of a frozen store is allowed…
	dst := NewStore()
	remap := dst.Graft(ld)
	if !EqualStore(s, root, dst, remap(root)) {
		t.Fatal("graft from loaded store differs")
	}
	// …appending to it reallocates rather than writing through…
	before := ld.NodeCount()
	ld.AddLeaf([]values.Value{values.NewInt(1)})
	if ld.NodeCount() != before+1 {
		t.Fatal("append to loaded store failed")
	}
	// …but Reset must panic.
	ld2, err := LoadSnapshot(buf, true)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset of a frozen store did not panic")
			}
		}()
		ld2.Reset()
	}()
}

func TestValueSectionRoundTrip(t *testing.T) {
	vals := []values.Value{
		values.NullValue(),
		values.NewBool(true),
		values.NewInt(-5),
		values.NewFloat(3.75),
		values.NewString("αβγ"),
		values.NewVec([]values.Value{
			values.NewVec([]values.Value{values.NewString("deep")}),
			values.NewInt(9),
		}),
	}
	recs, heap, err := AppendValueSection(nil, nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, zc := range []bool{false, true} {
		got, err := DecodeValueSection(recs, heap, len(vals), zc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if values.Compare(vals[i], got[i]) != 0 {
				t.Fatalf("zeroCopy=%v: value %d: got %v, want %v", zc, i, got[i], vals[i])
			}
		}
	}
	if _, err := DecodeValueSection(recs[:len(recs)-1], heap, len(vals), false); err == nil {
		t.Fatal("short record section accepted")
	}
}

// rechecksumHeader recomputes the header CRC after a deliberate header
// edit, so the test reaches the field check behind it.
func rechecksumHeader(b []byte) {
	crc := crc32.Checksum(b[0:60], crcTable)
	binary.LittleEndian.PutUint32(b[60:64], crc)
}
