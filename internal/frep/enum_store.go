package frep

// Arena counterparts of the constant-delay enumerators: the odometer
// walks uint32 node indices and dense value slabs instead of chasing
// *Union pointers, and grouped enumeration evaluates its parts into
// reused buffers so steady-state enumeration does not allocate.

import (
	"fmt"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// storeSlot is one loop of the arena enumeration odometer: its spec plus
// the current union (as a node id and a cached value-slab view) and
// position.
type storeSlot struct {
	slotSpec
	id   NodeID
	vals []values.Value
	pos  int
}

// StoreEnumerator is Enumerator over the arena representation.
type StoreEnumerator struct {
	store   *Store
	roots   []NodeID
	slots   []storeSlot
	cols    []colRef
	schema  []string
	tuple   relation.Tuple
	started bool
	done    bool

	// Segment window on slot 0, for parallel enumeration; see Restrict.
	segLo, segHi int
	restricted   bool

	// Lazily built ranked direct-access state; see seek.go.
	seekst *seekState
}

// Restrict confines the outermost enumeration loop (slot 0) to value
// positions [lo, hi) of its root union — the basis of segmented
// parallel enumeration: the streams of consecutive windows, drained in
// slot-0 iteration order, concatenate to exactly the unrestricted
// stream. Restrict must be called before the first Next or Skip.
func (e *StoreEnumerator) Restrict(lo, hi int) {
	e.segLo, e.segHi, e.restricted = lo, hi, true
}

// SegmentUniverse returns the number of values in the union driving the
// outermost enumeration loop — the space that Restrict windows
// partition — or 0 when the enumeration has no loops (or, defensively,
// when slot 0 is not a root loop).
func (e *StoreEnumerator) SegmentUniverse() int {
	if len(e.slots) == 0 || e.slots[0].parentSlot >= 0 {
		return 0
	}
	return e.store.Len(e.roots[e.slots[0].rootIdx])
}

// NewStoreEnumerator creates a constant-delay enumerator over the arena
// representation; see NewEnumerator for the order semantics.
func NewStoreEnumerator(f *ftree.Forest, s *Store, roots []NodeID, order []OrderSpec) (*StoreEnumerator, error) {
	if len(roots) != len(f.Roots) {
		return nil, fmt.Errorf("frep: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	p, err := planEnum(f, order)
	if err != nil {
		return nil, err
	}
	return newStoreEnumeratorFromPlan(s, roots, p), nil
}

func newStoreEnumeratorFromPlan(s *Store, roots []NodeID, p *enumPlan) *StoreEnumerator {
	e := &StoreEnumerator{store: s, roots: roots, cols: p.cols, schema: p.schema}
	e.slots = make([]storeSlot, len(p.slots))
	for i, sp := range p.slots {
		e.slots[i] = storeSlot{slotSpec: sp}
	}
	e.tuple = make(relation.Tuple, len(p.cols))
	return e
}

// Schema returns the output column names (FlatSchema of the forest).
func (e *StoreEnumerator) Schema() []string { return e.schema }

// Next advances to the next tuple, returning false when exhausted. The
// first call positions at the first tuple.
func (e *StoreEnumerator) Next() bool {
	if !e.advance() {
		return false
	}
	e.fill()
	return true
}

// Skip advances past up to n tuples without assembling them, returning
// how many were skipped; see Enumerator.Skip.
func (e *StoreEnumerator) Skip(n int) int {
	k := 0
	for k < n && e.advance() {
		k++
	}
	return k
}

// advance moves the odometer to the next position without assembling the
// output tuple; it returns false when exhausted.
func (e *StoreEnumerator) advance() bool {
	if e.done {
		return false
	}
	if !e.started {
		e.started = true
		for i := range e.slots {
			if !e.resetSlot(i) {
				e.done = true
				return false
			}
		}
		return true
	}
	for i := len(e.slots) - 1; i >= 0; i-- {
		s := &e.slots[i]
		lo, hi := 0, len(s.vals)
		if i == 0 && e.restricted {
			lo, hi = e.clampWindow(hi)
		}
		if s.desc {
			if s.pos > lo {
				s.pos--
			} else {
				continue
			}
		} else {
			if s.pos+1 < hi {
				s.pos++
			} else {
				continue
			}
		}
		for j := i + 1; j < len(e.slots); j++ {
			if !e.resetSlot(j) {
				// Unions below the top level are never empty; resetting
				// mid-stream cannot fail.
				e.done = true
				return false
			}
		}
		return true
	}
	e.done = true
	return false
}

// resetSlot re-resolves slot i's union from its parent state and rewinds
// its position. It returns false if the union is empty.
func (e *StoreEnumerator) resetSlot(i int) bool {
	s := &e.slots[i]
	if s.parentSlot < 0 {
		s.id = e.roots[s.rootIdx]
	} else {
		p := &e.slots[s.parentSlot]
		s.id = e.store.Kid(p.id, p.pos, s.childIdx)
	}
	s.vals = e.store.Vals(s.id)
	lo, hi := 0, len(s.vals)
	if i == 0 && e.restricted {
		lo, hi = e.clampWindow(hi)
	}
	if lo >= hi {
		return false
	}
	if s.desc {
		s.pos = hi - 1
	} else {
		s.pos = lo
	}
	return true
}

// clampWindow intersects the Restrict window with [0, n).
func (e *StoreEnumerator) clampWindow(n int) (int, int) {
	lo, hi := e.segLo, e.segHi
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

func (e *StoreEnumerator) fill() {
	for ci, c := range e.cols {
		s := &e.slots[c.slotIdx]
		v := s.vals[s.pos]
		if c.fieldIdx >= 0 {
			v = v.VecAt(c.fieldIdx)
		}
		e.tuple[ci] = v
	}
}

// Tuple returns the current tuple. The returned slice is reused by Next;
// clone it to retain.
func (e *StoreEnumerator) Tuple() relation.Tuple { return e.tuple }

// StoreGroupEnumerator is GroupEnumerator over the arena representation.
// Unlike the pointer-based version it evaluates its aggregation parts
// into reused buffers, so advancing between groups does not allocate.
type StoreGroupEnumerator struct {
	inner   *StoreEnumerator // over the group slots only
	fields  []ftree.AggField
	schema  []string
	tuple   relation.Tuple
	nGroup  int
	parts   []storeAggPart
	carrier []int
	parEval int // see SetParallelEval
}

// Restrict confines the outermost group loop to positions [lo, hi) of
// its root union; see StoreEnumerator.Restrict.
func (g *StoreGroupEnumerator) Restrict(lo, hi int) { g.inner.Restrict(lo, hi) }

// SegmentUniverse returns the size of the union driving the outermost
// group loop, or 0 for a global (loop-free) aggregate; see
// StoreEnumerator.SegmentUniverse.
func (g *StoreGroupEnumerator) SegmentUniverse() int { return g.inner.SegmentUniverse() }

// SetParallelEval enables segment-parallel aggregate evaluation of the
// enumerator's parts with up to par workers. It only takes effect for
// global aggregates (no group loops), where each part is evaluated
// exactly once over a whole root subtree — per-group evaluations stay
// serial, their parallelism comes from windowing the group loop itself.
func (g *StoreGroupEnumerator) SetParallelEval(par int) { g.parEval = par }

// storeAggPart is one maximal non-group subtree to aggregate, with a
// compiled evaluator and a reused output buffer.
type storeAggPart struct {
	partSpec
	ev    *Evaluator
	vals  []values.Value
	count int64
}

// NewStoreGroupEnumerator builds a grouped enumerator over the arena
// representation; see NewGroupEnumerator for the semantics.
func NewStoreGroupEnumerator(f *ftree.Forest, s *Store, roots []NodeID, g []OrderSpec, fields []ftree.AggField) (*StoreGroupEnumerator, error) {
	gp, err := planGroupEnum(f, g, fields)
	if err != nil {
		return nil, err
	}
	ge := &StoreGroupEnumerator{
		inner:   newStoreEnumeratorFromPlan(s, roots, gp.ep),
		fields:  fields,
		schema:  gp.schema,
		nGroup:  gp.nGroup,
		carrier: gp.carrier,
	}
	ge.parts = make([]storeAggPart, len(gp.parts))
	for i, ps := range gp.parts {
		ev, err := NewEvaluator(ps.node, ps.evFields)
		if err != nil {
			return nil, err
		}
		ge.parts[i] = storeAggPart{
			partSpec: ps,
			ev:       ev,
			vals:     make([]values.Value, len(ps.evFields)),
		}
	}
	ge.tuple = make(relation.Tuple, len(gp.schema))
	return ge, nil
}

// Schema returns group columns followed by one column per aggregation
// field.
func (g *StoreGroupEnumerator) Schema() []string { return g.schema }

// Next advances to the next group, returning false when done.
func (g *StoreGroupEnumerator) Next() (bool, error) {
	if len(g.inner.slots) == 0 {
		if g.inner.done {
			return false, nil
		}
		g.inner.done = true
		if err := g.evalParts(); err != nil {
			return false, err
		}
		g.fillAggs()
		return true, nil
	}
	if !g.inner.Next() {
		return false, nil
	}
	copy(g.tuple[:g.nGroup], g.inner.Tuple())
	if err := g.evalParts(); err != nil {
		return false, err
	}
	g.fillAggs()
	return true, nil
}

// Skip advances past up to n groups without evaluating their aggregation
// parts, returning how many were skipped; see GroupEnumerator.Skip.
func (g *StoreGroupEnumerator) Skip(n int) int {
	if len(g.inner.slots) == 0 {
		if n > 0 && !g.inner.done {
			g.inner.done = true
			return 1
		}
		return 0
	}
	return g.inner.Skip(n)
}

func (g *StoreGroupEnumerator) evalParts() error {
	st := g.inner.store
	for pi := range g.parts {
		p := &g.parts[pi]
		var id NodeID
		if p.parentSlot < 0 {
			id = g.inner.roots[p.rootIdx]
		} else {
			s := &g.inner.slots[p.parentSlot]
			id = st.Kid(s.id, s.pos, p.childIdx)
		}
		if g.parEval > 1 && len(g.inner.slots) == 0 {
			if err := ParallelEvalStore(p.node, p.evFields, st, id, g.parEval, p.vals); err != nil {
				return err
			}
		} else if err := p.ev.EvalStoreInto(st, id, p.vals); err != nil {
			return err
		}
		if p.countIdx >= 0 {
			p.count = p.vals[p.countIdx].Int()
		} else {
			p.count = 1 // multiplicity not needed by any output
		}
	}
	return nil
}

func (g *StoreGroupEnumerator) fillAggs() {
	fillAggTuple(g.tuple[g.nGroup:], g.fields, g.carrier, len(g.parts),
		func(pi int) int64 { return g.parts[pi].count },
		func(pi, fi int) values.Value { return g.parts[pi].vals[g.parts[pi].fieldIdx[fi]] })
}

// Tuple returns the current group tuple (group values then aggregates).
// The slice is reused; clone to retain.
func (g *StoreGroupEnumerator) Tuple() relation.Tuple { return g.tuple }
