package frep

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func TestCodecRoundTripPizzeria(t *testing.T) {
	_, f, roots := buildPizzeria(t)
	var buf bytes.Buffer
	if err := WriteTo(&buf, f, roots); err != nil {
		t.Fatal(err)
	}
	f2, roots2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.CanonicalKey() != f2.CanonicalKey() {
		t.Errorf("f-tree changed:\n%s\nvs\n%s", f, f2)
	}
	for i := range roots {
		if !Equal(roots[i], roots2[i]) {
			t.Errorf("representation changed at root %d", i)
		}
	}
}

func TestCodecRoundTripWithAggNodes(t *testing.T) {
	// Include aggregate nodes (vector values, aliases) in the round trip.
	f := ftree.New()
	tok := f.NewToken()
	cust := &ftree.Node{Attrs: []string{"customer"}, Deps: ftree.NewTokenSet(tok)}
	agg := &ftree.Node{
		Agg: &ftree.Agg{
			Fields: []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}, {Fn: ftree.Count}},
			Over:   []string{"item", "price"},
		},
		Alias:  "revenue",
		Deps:   ftree.NewTokenSet(tok),
		Parent: cust,
	}
	cust.Children = []*ftree.Node{agg}
	f.Roots = []*ftree.Node{cust}
	vec := func(s, c int64) *Union {
		return &Union{Vals: []values.Value{values.NewVec([]values.Value{values.NewInt(s), values.NewInt(c)})}}
	}
	rep := &Union{
		Vals: []values.Value{
			values.NewString("Lucia"), values.NewString("Mario"),
		},
		Kids: [][]*Union{{vec(9, 3)}, {vec(22, 7)}},
	}
	var buf bytes.Buffer
	if err := WriteTo(&buf, f, []*Union{rep}); err != nil {
		t.Fatal(err)
	}
	f2, roots2, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n2 := f2.Roots[0].Children[0]
	if !n2.IsAgg() || n2.Alias != "revenue" || len(n2.Agg.Fields) != 2 {
		t.Errorf("aggregate node lost: %+v", n2)
	}
	if !Equal(rep, roots2[0]) {
		t.Error("representation changed")
	}
}

func TestCodecValueKinds(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("x")
	u := &Union{Vals: []values.Value{
		values.NullValue(),
		values.NewBool(false),
		values.NewBool(true),
		values.NewInt(-42),
		values.NewFloat(2.5),
		values.NewString("héllo\x00world"),
	}}
	var buf bytes.Buffer
	if err := WriteTo(&buf, f, []*Union{u}); err != nil {
		t.Fatal(err)
	}
	_, roots, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(u, roots[0]) {
		t.Errorf("values changed: %v vs %v", u.Vals, roots[0].Vals)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := ReadFrom(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := ReadFrom(strings.NewReader("NOTFD\n rest")); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream.
	_, f, roots := buildPizzeria(t)
	var buf bytes.Buffer
	if err := WriteTo(&buf, f, roots); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{7, buf.Len() / 2, buf.Len() - 1} {
		if _, _, err := ReadFrom(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncated stream (%d bytes) should fail", cut)
		}
	}
	// Arity mismatch.
	if err := WriteTo(&buf, f, roots[:0]); err == nil {
		t.Error("root count mismatch should fail")
	}
}

func TestCodecRandomRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{
				values.NewInt(int64(rng.Intn(5))),
				values.NewFloat(float64(rng.Intn(9)) / 2),
				values.NewString(string(rune('a' + rng.Intn(4)))),
			}
		}
		rel := relation.MustNew("R", []string{"x", "y", "z"}, ts).Dedup()
		f := ftree.New()
		f.NewRelationPath("x", "y", "z")
		roots, err := Build(rel, f)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteTo(&buf, f, roots); err != nil {
			return false
		}
		f2, roots2, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if f.CanonicalKey() != f2.CanonicalKey() {
			return false
		}
		return Equal(roots[0], roots2[0])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
