package frep

import (
	"math/rand"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func TestSegments(t *testing.T) {
	for _, c := range []struct{ n, p, want int }{
		{0, 4, 0}, {1, 4, 1}, {3, 4, 3}, {4, 4, 4},
		{10, 3, 3}, {10, 1, 1}, {10, 0, 1}, {7, 7, 7},
	} {
		segs := Segments(c.n, c.p)
		if len(segs) != c.want {
			t.Fatalf("Segments(%d,%d) = %d windows, want %d", c.n, c.p, len(segs), c.want)
		}
		next := 0
		for _, sg := range segs {
			if sg[0] != next || sg[1] <= sg[0] {
				t.Fatalf("Segments(%d,%d): bad window %v after %d", c.n, c.p, sg, next)
			}
			next = sg[1]
		}
		if c.n > 0 && next != c.n {
			t.Fatalf("Segments(%d,%d) covers [0,%d)", c.n, c.p, next)
		}
	}
}

func TestViewOf(t *testing.T) {
	s := NewStore()
	leafA := s.AddLeaf([]values.Value{values.NewInt(10)})
	leafB := s.AddLeaf([]values.Value{values.NewInt(20)})
	leafC := s.AddLeaf([]values.Value{values.NewInt(30)})
	root := s.Add(
		[]values.Value{values.NewInt(1), values.NewInt(2), values.NewInt(3)},
		1, []NodeID{leafA, leafB, leafC})
	if got := s.ViewOf(root, 0, 3); got != root {
		t.Fatalf("whole-window view = %d, want the node itself (%d)", got, root)
	}
	if got := s.ViewOf(root, 2, 2); got != EmptyNode {
		t.Fatalf("empty-window view = %d, want EmptyNode", got)
	}
	v := s.ViewOf(root, 1, 3)
	if s.Len(v) != 2 || s.Arity(v) != 1 {
		t.Fatalf("view len/arity = %d/%d, want 2/1", s.Len(v), s.Arity(v))
	}
	if s.Val(v, 0).Int() != 2 || s.Val(v, 1).Int() != 3 {
		t.Fatalf("view values = %v, %v", s.Val(v, 0), s.Val(v, 1))
	}
	if s.Kid(v, 0, 0) != leafB || s.Kid(v, 1, 0) != leafC {
		t.Fatal("view kid rows do not alias the original windows")
	}
}

// TestOverlayAdopt builds structure in two overlays referencing shared
// base nodes, adopts both, and checks the remapped structure reads
// identically from the base store.
func TestOverlayAdopt(t *testing.T) {
	base := NewStore()
	shared := base.AddLeaf([]values.Value{values.NewInt(7), values.NewInt(9)})

	type built struct {
		o    *Store
		root NodeID
	}
	var parts []built
	for w := 0; w < 3; w++ {
		o := base.Overlay()
		priv := o.AddLeaf([]values.Value{values.NewInt(int64(100 + w))})
		// A root mixing a base reference, a private node and a view of a
		// base node.
		view := o.ViewOf(shared, 1, 2)
		root := o.Add(
			[]values.Value{values.NewInt(1), values.NewInt(2), values.NewInt(3)},
			1, []NodeID{shared, priv, view})
		parts = append(parts, built{o, root})
	}
	for w, pt := range parts {
		remap := base.AdoptOverlay(pt.o)
		root := remap(pt.root)
		if base.Len(root) != 3 || base.Arity(root) != 1 {
			t.Fatalf("w%d: adopted root len/arity = %d/%d", w, base.Len(root), base.Arity(root))
		}
		if got := base.Kid(root, 0, 0); got != shared {
			t.Fatalf("w%d: base reference remapped to %d, want %d", w, got, shared)
		}
		if got := base.Val(base.Kid(root, 1, 0), 0).Int(); got != int64(100+w) {
			t.Fatalf("w%d: private leaf value = %d, want %d", w, got, 100+w)
		}
		kv := base.Kid(root, 2, 0)
		if base.Len(kv) != 1 || base.Val(kv, 0).Int() != 9 {
			t.Fatalf("w%d: view node reads wrong window after adoption", w)
		}
	}
}

// buildPathRep factorises a random two-attribute relation as a linear
// path into a fresh store.
func buildPathRep(t *testing.T, n int) (*ftree.Forest, *Store, []NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			values.NewInt(int64(rng.Intn(n / 2))),
			values.NewInt(int64(1 + rng.Intn(20))),
		}
	}
	rel, err := relation.New("R", []string{"a", "b"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	f := ftree.New()
	f.NewRelationPath("a", "b")
	s := NewStore()
	roots, err := BuildStore(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	return f, s, roots
}

// TestParallelEvalStoreMatchesSerial compares ParallelEvalStore against
// the serial evaluator for a composite field list at several
// parallelism levels.
func TestParallelEvalStoreMatchesSerial(t *testing.T) {
	old := MinParallelEvalValues
	MinParallelEvalValues = 1
	defer func() { MinParallelEvalValues = old }()

	f, s, roots := buildPathRep(t, 4000)
	fields := []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "b"},
		{Fn: ftree.Min, Arg: "b"},
		{Fn: ftree.Max, Arg: "b"},
	}
	ev, err := NewEvaluator(f.Roots[0], fields)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]values.Value, len(fields))
	if err := ev.EvalStoreInto(s, roots[0], want); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 7, 64} {
		got := make([]values.Value, len(fields))
		if err := ParallelEvalStore(f.Roots[0], fields, s, roots[0], par, got); err != nil {
			t.Fatal(err)
		}
		for i := range fields {
			if values.Compare(want[i], got[i]) != 0 {
				t.Fatalf("par=%d: field %s = %v, want %v", par, fields[i], got[i], want[i])
			}
		}
	}
	// And the count convenience wrapper.
	wantN, err := CountStore(f.Roots[0], s, roots[0])
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := ParallelCountStore(f.Roots[0], s, roots[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if wantN != gotN {
		t.Fatalf("ParallelCountStore = %d, want %d", gotN, wantN)
	}
}

// TestRestrictConcat checks that windowed enumerations, drained in
// slot-0 iteration order, concatenate to exactly the full stream — for
// ascending and descending outer orders.
func TestRestrictConcat(t *testing.T) {
	f, s, roots := buildPathRep(t, 3000)
	for _, desc := range []bool{false, true} {
		order := []OrderSpec{{Attr: "a", Desc: desc}}
		full, err := NewStoreEnumerator(f, s, roots, order)
		if err != nil {
			t.Fatal(err)
		}
		var want []relation.Tuple
		for full.Next() {
			want = append(want, full.Tuple().Clone())
		}
		n := s.Len(roots[0])
		segs := Segments(n, 5)
		var got []relation.Tuple
		// Drain order: ascending segments for ASC, descending for DESC.
		idxs := make([]int, len(segs))
		for i := range idxs {
			if desc {
				idxs[i] = len(segs) - 1 - i
			} else {
				idxs[i] = i
			}
		}
		for _, w := range idxs {
			e, err := NewStoreEnumerator(f, s, roots, order)
			if err != nil {
				t.Fatal(err)
			}
			e.Restrict(segs[w][0], segs[w][1])
			for e.Next() {
				got = append(got, e.Tuple().Clone())
			}
		}
		if len(got) != len(want) {
			t.Fatalf("desc=%v: %d windowed tuples, want %d", desc, len(got), len(want))
		}
		for i := range want {
			if relation.Compare(want[i], got[i]) != 0 {
				t.Fatalf("desc=%v: tuple %d = %v, want %v", desc, i, got[i], want[i])
			}
		}
	}
}

// TestRestrictGroupedConcat mirrors TestRestrictConcat for the grouped
// enumerator.
func TestRestrictGroupedConcat(t *testing.T) {
	f, s, roots := buildPathRep(t, 3000)
	fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "b"}}
	g := []OrderSpec{{Attr: "a"}}
	full, err := NewStoreGroupEnumerator(f, s, roots, g, fields)
	if err != nil {
		t.Fatal(err)
	}
	var want []relation.Tuple
	for {
		ok, err := full.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		want = append(want, full.Tuple().Clone())
	}
	if full.SegmentUniverse() != s.Len(roots[0]) {
		t.Fatalf("SegmentUniverse = %d, want %d", full.SegmentUniverse(), s.Len(roots[0]))
	}
	var got []relation.Tuple
	for _, sg := range Segments(s.Len(roots[0]), 4) {
		e, err := NewStoreGroupEnumerator(f, s, roots, g, fields)
		if err != nil {
			t.Fatal(err)
		}
		e.Restrict(sg[0], sg[1])
		for {
			ok, err := e.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, e.Tuple().Clone())
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d windowed groups, want %d", len(got), len(want))
	}
	for i := range want {
		if relation.Compare(want[i], got[i]) != 0 {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestParallelEvalGlobalGroup checks SetParallelEval on a global
// (loop-free) grouped enumeration.
func TestParallelEvalGlobalGroup(t *testing.T) {
	old := MinParallelEvalValues
	MinParallelEvalValues = 1
	defer func() { MinParallelEvalValues = old }()

	f, s, roots := buildPathRep(t, 2000)
	fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "b"}}
	run := func(par int) relation.Tuple {
		e, err := NewStoreGroupEnumerator(f, s, roots, nil, fields)
		if err != nil {
			t.Fatal(err)
		}
		if par > 1 {
			e.SetParallelEval(par)
		}
		ok, err := e.Next()
		if err != nil || !ok {
			t.Fatalf("global group Next = %v, %v", ok, err)
		}
		return e.Tuple().Clone()
	}
	want := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		if relation.Compare(want, got) != 0 {
			t.Fatalf("par=%d: global aggregate %v, want %v", par, got, want)
		}
	}
}
