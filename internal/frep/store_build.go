package frep

// Factorising a relation directly into an arena store. Mirrors Build /
// BuildUnchecked but groups rows into slab-backed nodes with per-depth
// scratch buffers, so steady-state construction allocates only on slab
// growth instead of once (or more) per union node.

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// BuildStore factorises a relation over the f-tree into the store,
// verifying the f-tree's independence assumptions hold for this relation
// (like Build). Appends to s; the returned ids are one root per f-tree
// root.
func BuildStore(s *Store, rel *relation.Relation, f *ftree.Forest) ([]NodeID, error) {
	roots, err := BuildStoreUnchecked(s, rel, f)
	if err != nil {
		return nil, err
	}
	distinct := rel.Dedup().Cardinality()
	if len(roots) == 0 {
		if distinct > 1 {
			return nil, fmt.Errorf("frep: empty f-tree cannot represent %d tuples", distinct)
		}
		return roots, nil
	}
	got := int64(1)
	for _, r := range roots {
		got *= s.CountPlain(r)
		if got == 0 {
			break
		}
	}
	if got != int64(distinct) {
		return nil, fmt.Errorf("frep: relation does not factorise over f-tree: represents %d tuples, relation has %d distinct", got, distinct)
	}
	return roots, nil
}

// BuildStoreUnchecked factorises without verifying the independence
// assumptions (the arena counterpart of BuildUnchecked). Use BuildStore
// unless the f-tree is known to be valid, for example a linear path over
// a single relation.
func BuildStoreUnchecked(s *Store, rel *relation.Relation, f *ftree.Forest) ([]NodeID, error) {
	cols := map[string]int{}
	for i, a := range rel.Attrs {
		cols[a] = i
	}
	for _, n := range f.Nodes() {
		if n.IsAgg() {
			return nil, fmt.Errorf("frep: Build over f-tree with aggregate node %s", n.Label())
		}
		for _, a := range n.Attrs {
			if _, ok := cols[a]; !ok {
				return nil, fmt.Errorf("frep: relation %s has no attribute %q required by f-tree", rel.Name, a)
			}
		}
	}
	treeAttrs := f.AtomicAttrs()
	if len(treeAttrs) != len(rel.Attrs) {
		return nil, fmt.Errorf("frep: f-tree covers %d attributes, relation has %d", len(treeAttrs), len(rel.Attrs))
	}
	out := make([]NodeID, len(f.Roots))
	if rel.Cardinality() == 0 {
		for i := range out {
			out[i] = EmptyNode
		}
		return out, nil
	}
	rows := make([]int32, rel.Cardinality())
	for i := range rows {
		rows[i] = int32(i)
	}
	// One scratch frame per possible recursion depth, allocated up front
	// so frames are never appended (and thus never moved) mid-recursion.
	b := &storeBuilder{s: s, rel: rel, cols: cols,
		depths: make([]buildScratch, len(f.Nodes())+1)}
	for i, r := range f.Roots {
		id, err := b.build(r, rows, 0)
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

// storeBuilder groups relation rows into store nodes with one scratch
// frame per recursion depth, reused across sibling subtrees and value
// groups.
type storeBuilder struct {
	s      *Store
	rel    *relation.Relation
	cols   map[string]int
	depths []buildScratch
	sorter rowSorter
}

// rowSorter is a reusable sort.Interface over row indices: one instance
// lives in the builder and is re-pointed per sort, so sorting allocates
// nothing (sort.SliceStable would cost a closure and a reflect swapper
// per union node).
type rowSorter struct {
	rows   []int32
	tuples []relation.Tuple
	col    int
}

func (r *rowSorter) Len() int { return len(r.rows) }
func (r *rowSorter) Less(i, j int) bool {
	return values.Less(r.tuples[r.rows[i]][r.col], r.tuples[r.rows[j]][r.col])
}
func (r *rowSorter) Swap(i, j int) { r.rows[i], r.rows[j] = r.rows[j], r.rows[i] }

type buildScratch struct {
	rows []int32
	vals []values.Value
	kids []NodeID
}

func (b *storeBuilder) scratch(depth int) *buildScratch {
	return &b.depths[depth]
}

// build groups the given rows by the node's value and recurses into
// child subtrees, writing one store node per (node, context).
func (b *storeBuilder) build(n *ftree.Node, rows []int32, depth int) (NodeID, error) {
	col := b.cols[n.Attrs[0]]
	tuples := b.rel.Tuples
	for _, a := range n.Attrs[1:] {
		c := b.cols[a]
		for _, r := range rows {
			if values.Compare(tuples[r][col], tuples[r][c]) != 0 {
				return EmptyNode, fmt.Errorf("frep: class %s: tuple %d has unequal values %v and %v",
					n.Label(), r, tuples[r][col], tuples[r][c])
			}
		}
	}
	sc := b.scratch(depth)
	sc.rows = append(sc.rows[:0], rows...)
	sorted := sc.rows
	b.sorter = rowSorter{rows: sorted, tuples: tuples, col: col}
	sort.Stable(&b.sorter)
	sc.vals = sc.vals[:0]
	sc.kids = sc.kids[:0]
	arity := len(n.Children)
	for start := 0; start < len(sorted); {
		v := tuples[sorted[start]][col]
		end := start + 1
		for end < len(sorted) && values.Compare(tuples[sorted[end]][col], v) == 0 {
			end++
		}
		sc.vals = append(sc.vals, v)
		for _, c := range n.Children {
			k, err := b.build(c, sorted[start:end], depth+1)
			if err != nil {
				return EmptyNode, err
			}
			sc.kids = append(sc.kids, k)
		}
		start = end
	}
	return b.s.Add(sc.vals, arity, sc.kids), nil
}

// FlattenStore materialises the relation represented in the store (plain
// values; aggregate nodes contribute their stored values), like Flatten.
func FlattenStore(f *ftree.Forest, s *Store, roots []NodeID) (*relation.Relation, error) {
	schema := FlatSchema(f)
	e, err := NewStoreEnumerator(f, s, roots, nil)
	if err != nil {
		return nil, err
	}
	var tuples []relation.Tuple
	for e.Next() {
		tuples = append(tuples, e.Tuple().Clone())
	}
	return relation.New("flat", schema, tuples)
}
