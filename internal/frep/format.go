package frep

import (
	"strings"

	"github.com/factordb/fdb/internal/ftree"
)

// Format renders a representation in the paper's notation, e.g.
//
//	⟨pizza:Hawaii⟩ × (⟨date:Friday⟩ × (⟨customer:Lucia⟩ ∪ ⟨customer:Pietro⟩)) × …
//
// Intended for examples and debugging on small data.
func Format(f *ftree.Forest, roots []*Union) string {
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = formatUnion(f.Roots[i], r)
	}
	return strings.Join(parts, " × ")
}

func formatUnion(n *ftree.Node, u *Union) string {
	if u.IsEmpty() {
		return "∅"
	}
	terms := make([]string, len(u.Vals))
	for i, v := range u.Vals {
		s := "⟨" + n.Label() + ":" + v.String() + "⟩"
		for j, k := range u.KidsAt(i) {
			ks := formatUnion(n.Children[j], k)
			if k.Len() > 1 {
				ks = "(" + ks + ")"
			}
			s += " × " + ks
		}
		terms[i] = s
	}
	return strings.Join(terms, " ∪ ")
}
