package frep

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// benchRelation builds a three-attribute relation with n tuples and a
// hierarchical value distribution that factorises well.
func benchRelation(n int) *relation.Relation {
	rng := rand.New(rand.NewSource(7))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		a := int64(rng.Intn(n/16 + 1))
		ts[i] = relation.Tuple{
			values.NewInt(a),
			values.NewInt(int64(rng.Intn(32))),
			values.NewInt(int64(rng.Intn(1024))),
		}
	}
	return relation.MustNew("R", []string{"a", "b", "c"}, ts).Dedup()
}

func benchFRep(b *testing.B, n int) (*ftree.Forest, []*Union) {
	b.Helper()
	rel := benchRelation(n)
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	roots, err := BuildUnchecked(rel, f)
	if err != nil {
		b.Fatal(err)
	}
	return f, roots
}

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		rel := benchRelation(n)
		f := ftree.New()
		f.NewRelationPath("a", "b", "c")
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildUnchecked(rel, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnumerate verifies the constant-delay claim empirically: ns/op
// is reported per tuple and should stay flat as the data grows.
func BenchmarkEnumerate(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		f, roots := benchFRep(b, n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				e, err := NewEnumerator(f, roots, nil)
				if err != nil {
					b.Fatal(err)
				}
				for e.Next() {
					total++
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/tuple")
		})
	}
}

func BenchmarkEnumerateOrdered(b *testing.B) {
	f, roots := benchFRep(b, 50000)
	order := []OrderSpec{{Attr: "a", Desc: true}, {Attr: "b"}}
	for i := 0; i < b.N; i++ {
		e, err := NewEnumerator(f, roots, order)
		if err != nil {
			b.Fatal(err)
		}
		for e.Next() {
		}
	}
}

// BenchmarkCount measures the Section 3.2 count algorithm per singleton.
func BenchmarkCount(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		f, roots := benchFRep(b, n)
		sing := SingletonsAll(roots)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Count(f.Roots[0], roots[0]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(sing), "ns/singleton")
		})
	}
}

func BenchmarkEvaluatorSumMin(b *testing.B) {
	f, roots := benchFRep(b, 50000)
	ev, err := NewEvaluator(f.Roots[0], []ftree.AggField{
		{Fn: ftree.Count},
		{Fn: ftree.Sum, Arg: "c"},
		{Fn: ftree.Min, Arg: "c"},
	})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]values.Value, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalInto(roots[0], out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupEnumerator(b *testing.B) {
	f, roots := benchFRep(b, 50000)
	for i := 0; i < b.N; i++ {
		ge, err := NewGroupEnumerator(f, roots, []OrderSpec{{Attr: "a"}},
			[]ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "c"}})
		if err != nil {
			b.Fatal(err)
		}
		for {
			ok, err := ge.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

func BenchmarkCodec(b *testing.B) {
	f, roots := benchFRep(b, 50000)
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sink countingWriter
			if err := WriteTo(&sink, f, roots); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
