package frep

// Ranked direct access for the arena enumerators: Seek(k) positions a
// fresh enumerator so that the next Next yields the k-th tuple of the
// enumeration stream — exactly what Skip(k) reaches, but by descending
// subtree counts instead of stepping the odometer k times.
//
// The odometer's slots are nested loops in a fixed order. Fixing the
// positions of slots 0..i−1 factors the remaining assignments as
// (choices within slot i's subtree) × Π over the other "open" slots —
// slots whose driving union is already determined (their parent slot is
// fixed, or they are root loops). So the k-th tuple is found one slot
// at a time: at slot i, divide the remaining offset by the product of
// the open co-slot counts to get the offset q within slot i's own
// stream, then find the value position whose cumulative weight spans q.
// With the ranked index (ranks.go) both the counts and the cumulative
// search are O(1)/O(log fanout); without it, counts fall back to a
// memoized recursion over (slot, node) pairs and the search to a linear
// scan — still far cheaper than stepping tuple by tuple for large k.

import "math"

// seekState is the per-enumerator structure for ranked direct access,
// built once on first use.
type seekState struct {
	// childSlots[i] lists the slots whose parentSlot is i.
	childSlots [][]int
	// structOK[i] reports that slot i's subtree is structurally complete:
	// the enumeration loops over every f-tree child of its node,
	// recursively. Only then does the store's ranked weight of a value —
	// which counts all kid subtrees — equal the number of enumeration
	// steps beneath it. It holds everywhere for full tuple enumeration;
	// group enumeration breaks it where aggregation parts hang.
	structOK []bool
	// memo caches unranked subtree counts by (slot<<32 | node).
	memo map[uint64]uint64
}

// satCount is the saturation value of the fallback counting arithmetic.
// Ranked totals are capped far below it (maxRankTotal), and Seek only
// ever divides by — never descends into — a saturated product.
const satCount = math.MaxUint64

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satCount/b {
		return satCount
	}
	return a * b
}

func satAdd(a, b uint64) uint64 {
	if a > satCount-b {
		return satCount
	}
	return a + b
}

// seekInit builds (once) the seek structure for the enumerator.
func (e *StoreEnumerator) seekInit() *seekState {
	if e.seekst != nil {
		return e.seekst
	}
	m := len(e.slots)
	ss := &seekState{
		childSlots: make([][]int, m),
		structOK:   make([]bool, m),
		memo:       make(map[uint64]uint64),
	}
	for i := 1; i < m; i++ {
		if p := e.slots[i].parentSlot; p >= 0 {
			ss.childSlots[p] = append(ss.childSlots[p], i)
		}
	}
	for i := m - 1; i >= 0; i-- { // children have larger indices
		ok := len(ss.childSlots[i]) == len(e.slots[i].node.Children)
		for _, c := range ss.childSlots[i] {
			ok = ok && ss.structOK[c]
		}
		ss.structOK[i] = ok
	}
	e.seekst = ss
	return ss
}

// countSlot returns the number of enumeration steps slot i contributes
// when driven by union id: the tuple count of id's subtree restricted
// to the slots actually enumerated below i. Saturating.
func (e *StoreEnumerator) countSlot(ss *seekState, i int, id NodeID) uint64 {
	if ss.structOK[i] {
		if t, ok := e.store.windowTuples(id, 0, e.store.Len(id)); ok {
			return t
		}
	}
	key := uint64(i)<<32 | uint64(uint32(id))
	if t, ok := ss.memo[key]; ok {
		return t
	}
	n := e.store.Len(id)
	var total uint64
	if len(ss.childSlots[i]) == 0 {
		total = uint64(n)
	} else {
		for v := 0; v < n; v++ {
			total = satAdd(total, e.valWeight(ss, i, id, v))
		}
	}
	ss.memo[key] = total
	return total
}

// valWeight returns the number of enumeration steps beneath value v of
// slot i's union id (1 for a slot with no enumerated children).
func (e *StoreEnumerator) valWeight(ss *seekState, i int, id NodeID, v int) uint64 {
	w := uint64(1)
	for _, c := range ss.childSlots[i] {
		w = satMul(w, e.countSlot(ss, c, e.store.Kid(id, v, e.slots[c].childIdx)))
		if w == 0 {
			break
		}
	}
	return w
}

// slotWindowCount is countSlot restricted to value window [lo, hi) of
// the driving union (the Restrict window of slot 0).
func (e *StoreEnumerator) slotWindowCount(ss *seekState, i int, id NodeID, lo, hi int) uint64 {
	if lo <= 0 && hi >= e.store.Len(id) {
		return e.countSlot(ss, i, id)
	}
	if ss.structOK[i] {
		if t, ok := e.store.windowTuples(id, lo, hi); ok {
			return t
		}
	}
	if len(ss.childSlots[i]) == 0 {
		if hi <= lo {
			return 0
		}
		return uint64(hi - lo)
	}
	var total uint64
	for v := lo; v < hi; v++ {
		total = satAdd(total, e.valWeight(ss, i, id, v))
	}
	return total
}

// slotUnion resolves the union driving slot i from the current (partial)
// odometer state; the caller guarantees the slot's parent, if any, is
// already positioned.
func (e *StoreEnumerator) slotUnion(i int) NodeID {
	s := &e.slots[i]
	if s.parentSlot < 0 {
		return e.roots[s.rootIdx]
	}
	p := &e.slots[s.parentSlot]
	return e.store.Kid(p.id, p.pos, s.childIdx)
}

// seekTotal counts the tuples of the whole enumeration stream
// (respecting a Restrict window), saturating.
func (e *StoreEnumerator) seekTotal(ss *seekState) uint64 {
	total := uint64(1)
	for i := range e.slots {
		if e.slots[i].parentSlot >= 0 {
			continue // counted inside its root slot's subtree
		}
		id := e.roots[e.slots[i].rootIdx]
		lo, hi := 0, e.store.Len(id)
		if i == 0 && e.restricted {
			lo, hi = e.clampWindow(hi)
		}
		total = satMul(total, e.slotWindowCount(ss, i, id, lo, hi))
	}
	return total
}

// Total returns the number of tuples the enumeration yields from a
// fresh start (respecting a Restrict window), without advancing the
// enumerator. Counts beyond MaxInt64 saturate.
func (e *StoreEnumerator) Total() int64 {
	if len(e.slots) == 0 {
		return 1 // the single empty tuple
	}
	t := e.seekTotal(e.seekInit())
	if t > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(t)
}

// SeekRanked reports whether Seek (and Total) on this enumerator runs
// entirely on the ranked index — O(depth × log fanout) per call — as
// opposed to the memoized counting fallback.
func (e *StoreEnumerator) SeekRanked() bool {
	ss := e.seekInit()
	for i := range e.slots {
		if !ss.structOK[i] {
			return false
		}
		if e.slots[i].parentSlot < 0 && !e.store.NodeRanked(e.roots[e.slots[i].rootIdx]) {
			return false
		}
	}
	return true
}

// Seek positions a fresh enumerator so that the following Next yields
// tuple k (0-based) of the stream, returning min(k, total) — the same
// state and return Skip(k) would produce, reached by descending subtree
// counts. k past the end exhausts the enumerator and returns the total.
// On an already-started enumerator Seek degrades to the relative
// linear Skip(k).
func (e *StoreEnumerator) Seek(k int) int {
	if e.done {
		return 0
	}
	if e.started {
		return e.Skip(k)
	}
	if k <= 0 {
		return 0
	}
	if len(e.slots) == 0 {
		// Loop-free enumeration yields exactly one empty tuple; skipping
		// one (or more) consumes it.
		e.started = true
		return 1
	}
	ss := e.seekInit()
	total := e.seekTotal(ss)
	if uint64(k) >= total {
		e.started, e.done = true, true
		return int(total) // total ≤ k ≤ MaxInt, so the int conversion is exact
	}
	// Skip(k) leaves the odometer ON tuple k−1 (consumed), so the next
	// advance lands on tuple k. Descend to tuple k−1.
	remaining := uint64(k) - 1
	for i := range e.slots {
		s := &e.slots[i]
		s.id = e.slotUnion(i)
		s.vals = e.store.Vals(s.id)
		lo, hi := 0, len(s.vals)
		if i == 0 && e.restricted {
			lo, hi = e.clampWindow(hi)
		}
		// tail: product of the counts of the other open slots — loops at
		// deeper indices whose driving union is already fixed. remaining
		// < slotCount(i) × tail, so q = remaining/tail indexes into slot
		// i's own stream (a saturated tail forces q = 0, never descending
		// into a saturated subtree).
		tail := uint64(1)
		for j := i + 1; j < len(e.slots); j++ {
			if e.slots[j].parentSlot >= i {
				continue // part of slot i's subtree (or deeper): not open yet
			}
			tail = satMul(tail, e.countSlot(ss, j, e.slotUnion(j)))
		}
		var q uint64
		if tail > 0 {
			q = remaining / tail
		}
		pos, before := e.seekSlotValue(ss, i, s.id, lo, hi, q, s.desc)
		s.pos = pos
		if consumed := satMul(before, tail); consumed <= remaining {
			remaining -= consumed
		} else {
			remaining = 0 // defensive: cannot happen on a consistent index
		}
	}
	e.started = true
	return k
}

// seekSlotValue finds the value position of slot i (union id, window
// [lo, hi), in iteration order) containing local offset q, returning
// the position and the weight preceding it in iteration order.
func (e *StoreEnumerator) seekSlotValue(ss *seekState, i int, id NodeID, lo, hi int, q uint64, desc bool) (int, uint64) {
	if ss.structOK[i] && e.store.NodeRanked(id) {
		return e.store.rankSeek(id, lo, hi, q, desc)
	}
	var cum uint64
	if desc {
		for v := hi - 1; v > lo; v-- {
			w := e.valWeight(ss, i, id, v)
			if satAdd(cum, w) > q {
				return v, cum
			}
			cum = satAdd(cum, w)
		}
		return lo, cum
	}
	for v := lo; v < hi-1; v++ {
		w := e.valWeight(ss, i, id, v)
		if satAdd(cum, w) > q {
			return v, cum
		}
		cum = satAdd(cum, w)
	}
	return hi - 1, cum
}

// WeightedSegments returns up to p Restrict windows over the outermost
// loop's value space, balanced by result weight using the ranked index —
// so a skewed hot value no longer lands p−1 workers with empty windows.
// It returns nil when the enumerator has no root-driven outer loop, the
// outer subtree is not fully enumerated, or the root union is unranked;
// callers then fall back to uniform Segments.
func (e *StoreEnumerator) WeightedSegments(p int) [][2]int {
	if len(e.slots) == 0 || e.slots[0].parentSlot >= 0 {
		return nil
	}
	ss := e.seekInit()
	if !ss.structOK[0] {
		return nil
	}
	root := e.roots[e.slots[0].rootIdx]
	if !e.store.NodeRanked(root) {
		return nil
	}
	return WeightedSegments(e.store, root, p)
}

// WeightedSegments returns count-balanced windows over the outermost
// group loop; see StoreEnumerator.WeightedSegments.
func (g *StoreGroupEnumerator) WeightedSegments(p int) [][2]int {
	return g.inner.WeightedSegments(p)
}

// Total returns the number of groups the grouped enumeration yields
// from a fresh start; see StoreEnumerator.Total.
func (g *StoreGroupEnumerator) Total() int64 {
	if len(g.inner.slots) == 0 {
		return 1 // global aggregate: exactly one pseudo-group
	}
	return g.inner.Total()
}

// SeekRanked reports whether group Seek runs on the ranked index; see
// StoreEnumerator.SeekRanked.
func (g *StoreGroupEnumerator) SeekRanked() bool {
	if len(g.inner.slots) == 0 {
		return true
	}
	return g.inner.SeekRanked()
}

// Seek positions the grouped enumerator so that the following Next
// yields group k, exactly as Skip(k) would; see StoreEnumerator.Seek.
func (g *StoreGroupEnumerator) Seek(k int) int {
	if len(g.inner.slots) == 0 {
		return g.Skip(k) // the single pseudo-group: Skip is already O(1)
	}
	return g.inner.Seek(k)
}
