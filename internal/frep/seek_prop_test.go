package frep

// Randomized equivalence suite for ranked direct access: on generated
// forests of varying depth, fanout, skew and emptiness, Seek(k) must be
// observationally identical to Skip(k) on a fresh enumerator — same
// return value, same remaining stream — for tuple and group
// enumerators, ascending and descending, ranked and unranked stores,
// with and without Restrict windows. Skip is pinned by the existing
// suites, so agreement with Skip pins Seek.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// randTree builds a random f-tree over attrs: a root holding attrs[0]
// and a random partition of the rest into child subtrees.
func randTree(rng *rand.Rand, f *ftree.Forest, tok int, attrs []string) *ftree.Node {
	n := &ftree.Node{Attrs: []string{attrs[0]}, Deps: ftree.NewTokenSet(tok)}
	rest := attrs[1:]
	for len(rest) > 0 {
		take := 1 + rng.Intn(len(rest))
		c := randTree(rng, f, tok, rest[:take])
		c.Parent = n
		n.Children = append(n.Children, c)
		rest = rest[take:]
	}
	return n
}

// randForest generates a forest over 1..5 attributes (1 or 2 roots) and
// a relation over them with skewed small domains, possibly empty.
func randForest(rng *rand.Rand) (*ftree.Forest, *relation.Relation) {
	nAttrs := 1 + rng.Intn(5)
	attrs := make([]string, nAttrs)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	f := ftree.New()
	shuffled := append([]string(nil), attrs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	nRoots := 1
	if nAttrs > 1 && rng.Intn(3) == 0 {
		nRoots = 2
	}
	split := len(shuffled)
	if nRoots == 2 {
		split = 1 + rng.Intn(len(shuffled)-1)
	}
	groups := [][]string{shuffled[:split]}
	if nRoots == 2 {
		groups = append(groups, shuffled[split:])
	}
	for _, g := range groups {
		r := randTree(rng, f, f.NewToken(), g)
		f.Roots = append(f.Roots, r)
	}

	// Skewed data: small per-attribute domains, a hot value, sometimes no
	// rows at all (empty top-level unions).
	nRows := rng.Intn(40)
	if rng.Intn(6) == 0 {
		nRows = 0
	}
	domains := make([]int, nAttrs)
	for i := range domains {
		domains[i] = 1 + rng.Intn(12)
	}
	seen := map[string]bool{}
	var rows []relation.Tuple
	for r := 0; r < nRows; r++ {
		tup := make(relation.Tuple, nAttrs)
		key := ""
		for i := range tup {
			v := int64(rng.Intn(domains[i]))
			if rng.Intn(2) == 0 {
				v = 0 // hot value: heavy skew under the first branch
			}
			tup[i] = values.NewInt(v)
			key += fmt.Sprintf(",%d", v)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, tup)
	}
	return f, relation.MustNew("R", attrs, rows)
}

// drainTuples collects the remaining stream of a tuple enumerator.
func drainTuples(en *StoreEnumerator) []relation.Tuple {
	var out []relation.Tuple
	for en.Next() {
		out = append(out, en.Tuple().Clone())
	}
	return out
}

// drainGroups collects the remaining stream of a group enumerator.
func drainGroups(t *testing.T, ge *StoreGroupEnumerator) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for {
		ok, err := ge.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, ge.Tuple().Clone())
	}
}

func sameStreams(t *testing.T, ctx string, want, got []relation.Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: stream lengths differ: Skip leaves %d, Seek leaves %d", ctx, len(want), len(got))
	}
	for i := range want {
		if relation.Compare(want[i], got[i]) != 0 {
			t.Fatalf("%s: row %d differs: Skip %v, Seek %v", ctx, i, want[i], got[i])
		}
	}
}

// seekKs returns the offsets the issue pins: 0, 1, mid, total−1, total,
// total+7.
func seekKs(total int) []int {
	ks := []int{0, 1, total / 2, total - 1, total, total + 7}
	out := ks[:0]
	for _, k := range ks {
		if k >= 0 {
			out = append(out, k)
		}
	}
	return out
}

func TestSeekMatchesSkipRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		f, rel := randForest(rng)
		s := NewStore()
		roots, err := BuildStoreUnchecked(s, rel, f)
		if err != nil {
			t.Fatalf("iter %d: build: %v", iter, err)
		}

		// Candidate order specs: none, and — when the tree supports it —
		// the first root attribute ascending and descending.
		orders := [][]OrderSpec{nil}
		rootAttr := f.Roots[0].Attrs[0]
		if f.SupportsOrder([]string{rootAttr}) {
			orders = append(orders,
				[]OrderSpec{{Attr: rootAttr}},
				[]OrderSpec{{Attr: rootAttr, Desc: true}})
		}

		// Restrict window for this iteration (applied ~1/3 of the time).
		restrict := rng.Intn(3) == 0
		segChosen := false
		var segLo, segHi int

		// Phase 0 checks the memoized fallback (no ranks); phase 1 builds
		// the index and checks the ranked path.
		for phase := 0; phase < 2; phase++ {
			if phase == 1 {
				if err := s.BuildRanks(); err != nil {
					t.Fatalf("iter %d: BuildRanks: %v", iter, err)
				}
			}
			for oi, order := range orders {
				mk := func() *StoreEnumerator {
					en, err := NewStoreEnumerator(f, s, roots, order)
					if err != nil {
						t.Fatalf("iter %d: enumerator: %v", iter, err)
					}
					if restrict {
						if n := en.SegmentUniverse(); n > 0 {
							if !segChosen {
								segChosen = true
								segLo = rng.Intn(n + 1)
								segHi = segLo + rng.Intn(n+1-segLo)
							}
							en.Restrict(segLo, segHi)
						}
					}
					return en
				}
				full := drainTuples(mk())
				if got := mk().Total(); got != int64(len(full)) {
					t.Fatalf("iter %d phase %d order %d: Total = %d, want %d", iter, phase, oi, got, len(full))
				}
				if phase == 1 && !restrict {
					if en := mk(); !en.SeekRanked() {
						t.Fatalf("iter %d order %d: ranked store, but SeekRanked() = false", iter, oi)
					}
				}
				for _, k := range seekKs(len(full)) {
					ctx := fmt.Sprintf("iter %d phase %d order %d k %d", iter, phase, oi, k)
					a, b := mk(), mk()
					na, nb := a.Skip(k), b.Seek(k)
					if na != nb {
						t.Fatalf("%s: Skip = %d, Seek = %d", ctx, na, nb)
					}
					sameStreams(t, ctx, drainTuples(a), drainTuples(b))
				}
			}
		}
	}
}

// groupSpecs picks a prefix-closed set of nodes of the first root in
// DFS order, so the grouped enumerator's slots wire parent-first.
func groupSpecs(rng *rand.Rand, f *ftree.Forest, desc bool) ([]OrderSpec, map[string]bool) {
	var specs []OrderSpec
	grouped := map[string]bool{}
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		specs = append(specs, OrderSpec{Attr: n.Attrs[0], Desc: desc})
		grouped[n.Attrs[0]] = true
		for _, c := range n.Children {
			if rng.Intn(2) == 0 {
				walk(c)
			}
		}
	}
	walk(f.Roots[0])
	return specs, grouped
}

func TestGroupSeekMatchesSkipRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 200; iter++ {
		f, rel := randForest(rng)
		s := NewStore()
		roots, err := BuildStoreUnchecked(s, rel, f)
		if err != nil {
			t.Fatalf("iter %d: build: %v", iter, err)
		}
		specs, grouped := groupSpecs(rng, f, rng.Intn(2) == 1)
		gAttrs := make([]string, len(specs))
		for i, sp := range specs {
			gAttrs[i] = sp.Attr
		}
		if !f.SupportsGrouping(gAttrs) {
			continue
		}
		fields := []ftree.AggField{{Fn: ftree.Count}}
		for _, a := range rel.Attrs {
			if !grouped[a] {
				fields = append(fields, ftree.AggField{Fn: ftree.Sum, Arg: a})
				break
			}
		}
		for phase := 0; phase < 2; phase++ {
			if phase == 1 {
				if err := s.BuildRanks(); err != nil {
					t.Fatalf("iter %d: BuildRanks: %v", iter, err)
				}
			}
			mk := func() *StoreGroupEnumerator {
				ge, err := NewStoreGroupEnumerator(f, s, roots, specs, fields)
				if err != nil {
					t.Fatalf("iter %d: group enumerator: %v", iter, err)
				}
				return ge
			}
			full := drainGroups(t, mk())
			if got := mk().Total(); got != int64(len(full)) {
				t.Fatalf("iter %d phase %d: group Total = %d, want %d", iter, phase, got, len(full))
			}
			for _, k := range seekKs(len(full)) {
				ctx := fmt.Sprintf("iter %d phase %d k %d (group)", iter, phase, k)
				a, b := mk(), mk()
				na, nb := a.Skip(k), b.Seek(k)
				if na != nb {
					t.Fatalf("%s: Skip = %d, Seek = %d", ctx, na, nb)
				}
				sameStreams(t, ctx, drainGroups(t, a), drainGroups(t, b))
			}
		}
	}
}
