package frep

// Binary serialisation of factorised representations, so that
// materialised views can be stored and reloaded without re-factorising
// (the read-optimised scenario of the paper's Section 1). The format is
// a simple length-prefixed pre-order encoding:
//
//	union   := varint(len) value* kidsFlag rows*
//	value   := kind payload
//	rows    := per value, one union per f-tree child
//
// The f-tree itself is encoded structurally (labels, aggregate fields,
// dependency tokens, children).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

const codecMagic = "FDBV1\n"

// WriteTo serialises the forest representation (f-tree plus unions) to w.
func WriteTo(w io.Writer, f *ftree.Forest, roots []*Union) error {
	if len(roots) != len(f.Roots) {
		return fmt.Errorf("frep: codec: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	e := &encoder{w: bw}
	e.uvarint(uint64(len(f.Roots)))
	for i, r := range f.Roots {
		e.node(r)
		e.union(r, roots[i])
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// ReadFrom deserialises a forest representation written by WriteTo.
func ReadFrom(r io.Reader) (*ftree.Forest, []*Union, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, nil, fmt.Errorf("frep: codec: bad magic %q", magic)
	}
	d := &decoder{r: br}
	n := d.uvarint()
	if n > 1<<20 {
		return nil, nil, fmt.Errorf("frep: codec: implausible root count %d", n)
	}
	f := ftree.New()
	var roots []*Union
	maxTok := -1
	for i := uint64(0); i < n && d.err == nil; i++ {
		nd := d.node(nil, &maxTok)
		f.Roots = append(f.Roots, nd)
		roots = append(roots, d.union(nd))
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	// Restore the token counter above every token seen.
	for f.TokenBound() <= maxTok {
		f.NewToken()
	}
	if err := f.Validate(); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: decoded f-tree invalid: %w", err)
	}
	if err := CheckInvariantsAll(f, roots); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: decoded representation invalid: %w", err)
	}
	return f, roots, nil
}

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) node(n *ftree.Node) {
	if n.IsAgg() {
		e.byte(1)
		e.uvarint(uint64(len(n.Agg.Fields)))
		for _, fl := range n.Agg.Fields {
			e.byte(byte(fl.Fn))
			e.str(fl.Arg)
		}
		e.uvarint(uint64(len(n.Agg.Over)))
		for _, a := range n.Agg.Over {
			e.str(a)
		}
		e.str(n.Alias)
	} else {
		e.byte(0)
		e.uvarint(uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			e.str(a)
		}
	}
	toks := n.Deps.Sorted()
	e.uvarint(uint64(len(toks)))
	for _, t := range toks {
		e.uvarint(uint64(t))
	}
	e.uvarint(uint64(len(n.Children)))
	for _, c := range n.Children {
		e.node(c)
	}
}

func (e *encoder) value(v values.Value) {
	switch v.Kind() {
	case values.Null:
		e.byte(0)
	case values.Bool:
		e.byte(1)
		if v.Bool() {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case values.Int:
		e.byte(2)
		e.varint(v.Int())
	case values.Float:
		e.byte(3)
		e.uvarint(math.Float64bits(v.Float()))
	case values.String:
		e.byte(4)
		e.str(v.Str())
	case values.Vec:
		e.byte(5)
		e.uvarint(uint64(v.VecLen()))
		for i := 0; i < v.VecLen(); i++ {
			e.value(v.VecAt(i))
		}
	}
}

func (e *encoder) union(n *ftree.Node, u *Union) {
	e.uvarint(uint64(len(u.Vals)))
	for _, v := range u.Vals {
		e.value(v)
	}
	for i := range u.Vals {
		for j, c := range n.Children {
			e.union(c, u.Kids[i][j])
			_ = j
		}
	}
}

// WriteStoreTo serialises an arena forest representation to w. The wire
// format is identical to WriteTo's, so views written from either
// representation can be read back into either.
func WriteStoreTo(w io.Writer, f *ftree.Forest, s *Store, roots []NodeID) error {
	if len(roots) != len(f.Roots) {
		return fmt.Errorf("frep: codec: %d root unions for %d f-tree roots", len(roots), len(f.Roots))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	e := &encoder{w: bw}
	e.uvarint(uint64(len(f.Roots)))
	for i, r := range f.Roots {
		e.node(r)
		e.storeUnion(r, s, roots[i])
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

func (e *encoder) storeUnion(n *ftree.Node, s *Store, id NodeID) {
	vals := s.Vals(id)
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.value(v)
	}
	for i := range vals {
		row := s.KidRow(id, i)
		for j := range n.Children {
			e.storeUnion(n.Children[j], s, row[j])
		}
	}
}

// ReadStoreFrom deserialises a forest representation written by WriteTo
// or WriteStoreTo into a fresh arena store.
func ReadStoreFrom(r io.Reader) (*ftree.Forest, *Store, []NodeID, error) {
	s := NewStore()
	f, roots, err := ReadStoreInto(r, s)
	return f, s, roots, err
}

// ReadStoreInto is ReadStoreFrom appending into an existing store (which
// typically comes from a pool).
func ReadStoreInto(r io.Reader, s *Store) (*ftree.Forest, []NodeID, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, nil, fmt.Errorf("frep: codec: bad magic %q", magic)
	}
	d := &decoder{r: br}
	n := d.uvarint()
	if n > 1<<20 {
		return nil, nil, fmt.Errorf("frep: codec: implausible root count %d", n)
	}
	f := ftree.New()
	var roots []NodeID
	maxTok := -1
	for i := uint64(0); i < n && d.err == nil; i++ {
		nd := d.node(nil, &maxTok)
		f.Roots = append(f.Roots, nd)
		roots = append(roots, d.storeUnion(nd, s))
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	for f.TokenBound() <= maxTok {
		f.NewToken()
	}
	if err := f.Validate(); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: decoded f-tree invalid: %w", err)
	}
	if err := CheckStoreInvariantsAll(f, s, roots); err != nil {
		return nil, nil, fmt.Errorf("frep: codec: decoded representation invalid: %w", err)
	}
	return f, roots, nil
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail(fmt.Errorf("frep: codec: %w", err))
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.fail(fmt.Errorf("frep: codec: %w", err))
	}
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<24 {
		d.fail(fmt.Errorf("frep: codec: implausible string length %d", n))
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.fail(fmt.Errorf("frep: codec: %w", err))
		return ""
	}
	return string(buf)
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.fail(fmt.Errorf("frep: codec: %w", err))
	}
	return b
}

func (d *decoder) node(parent *ftree.Node, maxTok *int) *ftree.Node {
	n := &ftree.Node{Parent: parent}
	switch d.byte() {
	case 1:
		nf := d.uvarint()
		if nf > 64 {
			d.fail(fmt.Errorf("frep: codec: implausible field count %d", nf))
			return n
		}
		agg := &ftree.Agg{}
		for i := uint64(0); i < nf && d.err == nil; i++ {
			fn := ftree.Fn(d.byte())
			arg := d.str()
			agg.Fields = append(agg.Fields, ftree.AggField{Fn: fn, Arg: arg})
		}
		no := d.uvarint()
		for i := uint64(0); i < no && d.err == nil; i++ {
			agg.Over = append(agg.Over, d.str())
		}
		n.Agg = agg
		n.Alias = d.str()
	default:
		na := d.uvarint()
		if na > 1<<16 {
			d.fail(fmt.Errorf("frep: codec: implausible class size %d", na))
			return n
		}
		for i := uint64(0); i < na && d.err == nil; i++ {
			n.Attrs = append(n.Attrs, d.str())
		}
	}
	nt := d.uvarint()
	n.Deps = ftree.NewTokenSet()
	for i := uint64(0); i < nt && d.err == nil; i++ {
		tok := int(d.uvarint())
		n.Deps.Add(tok)
		if tok > *maxTok {
			*maxTok = tok
		}
	}
	nc := d.uvarint()
	if nc > 1<<16 {
		d.fail(fmt.Errorf("frep: codec: implausible child count %d", nc))
		return n
	}
	for i := uint64(0); i < nc && d.err == nil; i++ {
		n.Children = append(n.Children, d.node(n, maxTok))
	}
	return n
}

func (d *decoder) value() values.Value {
	switch d.byte() {
	case 0:
		return values.NullValue()
	case 1:
		return values.NewBool(d.byte() != 0)
	case 2:
		return values.NewInt(d.varint())
	case 3:
		return values.NewFloat(math.Float64frombits(d.uvarint()))
	case 4:
		return values.NewString(d.str())
	case 5:
		n := d.uvarint()
		if n > 1<<16 {
			d.fail(fmt.Errorf("frep: codec: implausible vector length %d", n))
			return values.NullValue()
		}
		vec := make([]values.Value, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			vec = append(vec, d.value())
		}
		return values.NewVec(vec)
	default:
		d.fail(fmt.Errorf("frep: codec: unknown value kind"))
		return values.NullValue()
	}
}

// storeUnion decodes one union (and, recursively, its children) into the
// store. Children are decoded — and therefore added — before their
// parent, so every kid reference points backwards.
func (d *decoder) storeUnion(n *ftree.Node, s *Store) NodeID {
	nv := d.uvarint()
	if d.err != nil {
		return EmptyNode
	}
	if nv > 1<<30 {
		d.fail(fmt.Errorf("frep: codec: implausible union size %d", nv))
		return EmptyNode
	}
	vals := make([]values.Value, 0, nv)
	for i := uint64(0); i < nv && d.err == nil; i++ {
		vals = append(vals, d.value())
	}
	arity := len(n.Children)
	var kids []NodeID
	if arity > 0 {
		kids = make([]NodeID, 0, int(nv)*arity)
		for i := uint64(0); i < nv && d.err == nil; i++ {
			for _, c := range n.Children {
				kids = append(kids, d.storeUnion(c, s))
			}
		}
	}
	if d.err != nil {
		return EmptyNode
	}
	return s.Add(vals, arity, kids)
}

func (d *decoder) union(n *ftree.Node) *Union {
	nv := d.uvarint()
	if d.err != nil {
		return &Union{}
	}
	if nv > 1<<30 {
		d.fail(fmt.Errorf("frep: codec: implausible union size %d", nv))
		return &Union{}
	}
	u := &Union{Vals: make([]values.Value, 0, nv)}
	for i := uint64(0); i < nv && d.err == nil; i++ {
		u.Vals = append(u.Vals, d.value())
	}
	if len(n.Children) > 0 {
		u.Kids = make([][]*Union, 0, nv)
		for i := uint64(0); i < nv && d.err == nil; i++ {
			row := make([]*Union, len(n.Children))
			for j, c := range n.Children {
				row[j] = d.union(c)
			}
			u.Kids = append(u.Kids, row)
		}
	}
	return u
}
