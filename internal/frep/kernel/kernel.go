// Package kernel provides the vectorised execution primitives of the
// arena engine: tight, branch-light loops over kind-homogeneous runs of
// the value slab, operating on raw []int64 payloads (ints directly,
// floats as their IEEE-754 bit patterns) instead of per-value tagged
// unions. The frep columnar index (Store.BuildCols) exposes such runs;
// callers fall back to the scalar values.Value path for mixed-kind,
// String or Vec runs, so kernel and scalar results are byte-identical.
//
// Float semantics deliberately mirror values.Compare's cmpFloat, which
// orders with < and > only: NaN compares equal to everything, so every
// float kernel is expressed through strict < / > (never == or >=).
// Float sums fold strictly left to right starting from the first
// element — never from 0.0, because 0.0 + (-0.0) is +0.0 and would
// differ from the scalar fold in the sign bit.
//
// The package is dependency-free so the compiler sees plain slice loops
// it can bounds-check-hoist and unroll.
package kernel

import (
	"math"
	"math/bits"
)

// Op is a comparison operator for selection kernels. The numbering
// matches fops.CmpOp (EQ NE LT LE GT GE), so the operator of a σ_{A op c}
// converts by plain integer conversion; fops asserts the correspondence
// in its tests.
type Op uint8

// The supported comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// HoldsCmp reports whether "a op b" holds given c = Compare(a, b) ∈
// {-1, 0, 1}. It is the three-way-comparison form of fops.CmpOp.Holds,
// used for uniform verdicts over runs whose kind rank differs from the
// constant's (every value of the run compares the same way).
func (op Op) HoldsCmp(c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// Bitmap returns buf resized to hold n bits, cleared. The backing array
// is reused when large enough, so a caller-owned scratch bitmap
// allocates only on high-water-mark growth.
func Bitmap(buf []uint64, n int) []uint64 {
	w := (n + 63) / 64
	if cap(buf) < w {
		return make([]uint64, w)
	}
	buf = buf[:w]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// OnesCount returns the number of set bits in the bitmap.
func OnesCount(bm []uint64) int {
	n := 0
	for _, w := range bm {
		n += bits.OnesCount64(w)
	}
	return n
}

// NextRun returns the next maximal run [start, end) of set bits at or
// after position from, in a bitmap of n bits. When no set bit remains,
// start == end == n. Compaction walks these runs and copies whole value
// and kid-row windows per run instead of per value.
func NextRun(bm []uint64, from, n int) (start, end int) {
	start = nextSet(bm, from, n)
	if start >= n {
		return n, n
	}
	end = nextClear(bm, start+1, n)
	return start, end
}

// nextSet returns the position of the first set bit at or after from.
func nextSet(bm []uint64, from, n int) int {
	if from >= n {
		return n
	}
	wi := from >> 6
	w := bm[wi] >> uint(from&63) << uint(from&63)
	for {
		if w != 0 {
			p := wi<<6 + bits.TrailingZeros64(w)
			if p >= n {
				return n
			}
			return p
		}
		wi++
		if wi >= len(bm) {
			return n
		}
		w = bm[wi]
	}
}

// nextClear returns the position of the first clear bit at or after from.
func nextClear(bm []uint64, from, n int) int {
	if from >= n {
		return n
	}
	wi := from >> 6
	w := ^bm[wi] >> uint(from&63) << uint(from&63)
	for {
		if w != 0 {
			p := wi<<6 + bits.TrailingZeros64(w)
			if p >= n {
				return n
			}
			return p
		}
		wi++
		if wi >= len(bm) {
			return n
		}
		w = ^bm[wi]
	}
}

// negate flips the first n bits of the bitmap in place (the derived
// operators NE/LE/GE are complements of EQ/GT/LT) and clears the tail
// of the last word so OnesCount stays exact.
func negate(bm []uint64, n int) {
	for i := range bm {
		bm[i] = ^bm[i]
	}
	if tail := n & 63; tail != 0 {
		bm[len(bm)-1] &= (uint64(1) << uint(tail)) - 1
	}
}

// CmpConstInt64 evaluates "x op c" for every element of xs, setting the
// corresponding bit of bm (which must hold len(xs) bits, cleared), and
// returns the number of matches. Also used for Bool runs (payloads 0/1
// compare exactly like values.Compare's cmpInt).
func CmpConstInt64(xs []int64, c int64, op Op, bm []uint64) int {
	switch op {
	case EQ, NE:
		for i, x := range xs {
			if x == c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == NE {
			negate(bm, len(xs))
		}
	case LT, GE:
		for i, x := range xs {
			if x < c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == GE {
			negate(bm, len(xs))
		}
	case GT, LE:
		for i, x := range xs {
			if x > c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == LE {
			negate(bm, len(xs))
		}
	}
	return OnesCount(bm)
}

// CmpConstFloat64 is CmpConstInt64 over float64 elements, with the
// cmpFloat NaN-equal ordering: EQ holds when neither < nor > does.
func CmpConstFloat64(xs []float64, c float64, op Op, bm []uint64) int {
	switch op {
	case EQ, NE:
		for i, x := range xs {
			if !(x < c) && !(x > c) {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == NE {
			negate(bm, len(xs))
		}
	case LT, GE:
		for i, x := range xs {
			if x < c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == GE {
			negate(bm, len(xs))
		}
	case GT, LE:
		for i, x := range xs {
			if x > c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == LE {
			negate(bm, len(xs))
		}
	}
	return OnesCount(bm)
}

// CmpConstFloatBits is CmpConstFloat64 over a Float run's slab payloads
// (IEEE-754 bit patterns), avoiding a conversion copy.
func CmpConstFloatBits(xs []int64, c float64, op Op, bm []uint64) int {
	switch op {
	case EQ, NE:
		for i, x := range xs {
			f := math.Float64frombits(uint64(x))
			if !(f < c) && !(f > c) {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == NE {
			negate(bm, len(xs))
		}
	case LT, GE:
		for i, x := range xs {
			if math.Float64frombits(uint64(x)) < c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == GE {
			negate(bm, len(xs))
		}
	case GT, LE:
		for i, x := range xs {
			if math.Float64frombits(uint64(x)) > c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == LE {
			negate(bm, len(xs))
		}
	}
	return OnesCount(bm)
}

// CmpConstInt64AsFloat compares an Int run against a Float constant the
// way values.Compare does for mixed numerics: both sides through
// float64 (AsFloat), with cmpFloat ordering.
func CmpConstInt64AsFloat(xs []int64, c float64, op Op, bm []uint64) int {
	switch op {
	case EQ, NE:
		for i, x := range xs {
			f := float64(x)
			if !(f < c) && !(f > c) {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == NE {
			negate(bm, len(xs))
		}
	case LT, GE:
		for i, x := range xs {
			if float64(x) < c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == GE {
			negate(bm, len(xs))
		}
	case GT, LE:
		for i, x := range xs {
			if float64(x) > c {
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		if op == LE {
			negate(bm, len(xs))
		}
	}
	return OnesCount(bm)
}

// SumInt64 returns the wrapping sum of xs. Two's-complement addition is
// associative, so the four-way unrolled accumulators reassociate freely
// and the result equals the scalar left-to-right values.Add fold bit
// for bit, overflow included.
func SumInt64(xs []int64) int64 {
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		s0 += xs[i]
		s1 += xs[i+1]
		s2 += xs[i+2]
		s3 += xs[i+3]
	}
	for ; i < len(xs); i++ {
		s0 += xs[i]
	}
	return s0 + s1 + s2 + s3
}

// SumFloat64 folds xs strictly left to right starting from xs[0] — the
// exact association of the scalar values.Add chain, so the result is
// bit-identical to it (float addition is not associative, and starting
// from 0.0 would turn a lone -0.0 into +0.0). xs must be non-empty.
func SumFloat64(xs []float64) float64 {
	s := xs[0]
	for _, x := range xs[1:] {
		s += x
	}
	return s
}

// SumFloatBits is SumFloat64 over a Float run's slab payloads.
// xs must be non-empty.
func SumFloatBits(xs []int64) float64 {
	s := math.Float64frombits(uint64(xs[0]))
	for _, x := range xs[1:] {
		s += math.Float64frombits(uint64(x))
	}
	return s
}

// MinMaxInt64 returns the indices of the minimum and maximum of xs,
// taking a later element only when strictly smaller/greater — the fold
// order of values.Min/values.Max, which keep the earlier operand on
// ties. xs must be non-empty. Returning indices (not values) lets the
// caller emit the stored value verbatim.
func MinMaxInt64(xs []int64) (minIdx, maxIdx int) {
	mn, mx := xs[0], xs[0]
	for i, x := range xs[1:] {
		if x < mn {
			mn = x
			minIdx = i + 1
		}
		if x > mx {
			mx = x
			maxIdx = i + 1
		}
	}
	return minIdx, maxIdx
}

// MinMaxFloat64 is MinMaxInt64 over float64, under the cmpFloat order:
// only strict < / > move the running extremum, so NaN (equal to
// everything) never displaces it and is never displaced once first.
// xs must be non-empty.
func MinMaxFloat64(xs []float64) (minIdx, maxIdx int) {
	mn, mx := xs[0], xs[0]
	for i, x := range xs[1:] {
		if x < mn {
			mn = x
			minIdx = i + 1
		}
		if x > mx {
			mx = x
			maxIdx = i + 1
		}
	}
	return minIdx, maxIdx
}

// MinMaxFloatBits is MinMaxFloat64 over a Float run's slab payloads.
// xs must be non-empty.
func MinMaxFloatBits(xs []int64) (minIdx, maxIdx int) {
	mn := math.Float64frombits(uint64(xs[0]))
	mx := mn
	for i, x := range xs[1:] {
		f := math.Float64frombits(uint64(x))
		if f < mn {
			mn = f
			minIdx = i + 1
		}
		if f > mx {
			mx = f
			maxIdx = i + 1
		}
	}
	return minIdx, maxIdx
}

// IntersectInt64 appends to out the index pairs (i, j) with
// xs[i] == ys[j], walking both strictly ascending runs with one
// two-pointer pass, and returns the extended slice (pass out[:0] to
// reuse scratch).
func IntersectInt64(xs, ys []int64, out [][2]int32) [][2]int32 {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] < ys[j]:
			i++
		case xs[i] > ys[j]:
			j++
		default:
			out = append(out, [2]int32{int32(i), int32(j)})
			i++
			j++
		}
	}
	return out
}

// IntersectFloatBits is IntersectInt64 over Float runs' slab payloads,
// under the cmpFloat order (expressed with < and > only, so a NaN —
// equal to everything — matches whatever it meets first).
func IntersectFloatBits(xs, ys []int64, out [][2]int32) [][2]int32 {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		fx := math.Float64frombits(uint64(xs[i]))
		fy := math.Float64frombits(uint64(ys[j]))
		switch {
		case fx < fy:
			i++
		case fx > fy:
			j++
		default:
			out = append(out, [2]int32{int32(i), int32(j)})
			i++
			j++
		}
	}
	return out
}

// SearchInt64 binary-searches the ascending run xs for c, returning the
// first position whose element is not below c and whether it equals c —
// the kernel form of sort.Search over values.Compare(x, c) >= 0.
func SearchInt64(xs []int64, c int64) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if xs[m] < c {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo, lo < len(xs) && xs[lo] == c
}

// SearchFloatBits is SearchInt64 over a Float run's slab payloads under
// the cmpFloat order: the predicate and the equality check use only
// < and >, so NaN behaves exactly as it does under values.Compare.
func SearchFloatBits(xs []int64, c float64) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if math.Float64frombits(uint64(xs[m])) < c {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo >= len(xs) {
		return lo, false
	}
	return lo, !(math.Float64frombits(uint64(xs[lo])) > c)
}

// SearchInt64AsFloat searches an Int run for a Float constant the way
// values.Compare orders mixed numerics: both sides through float64.
func SearchInt64AsFloat(xs []int64, c float64) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if float64(xs[m]) < c {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo >= len(xs) {
		return lo, false
	}
	return lo, !(float64(xs[lo]) > c)
}
