package kernel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/factordb/fdb/internal/values"
)

// naiveHolds evaluates "x op c" through values.Compare, the semantics
// every kernel must reproduce bit for bit.
func naiveHolds(x, c values.Value, op Op) bool {
	return op.HoldsCmp(values.Compare(x, c))
}

var allOps = []Op{EQ, NE, LT, LE, GT, GE}

func bitmapToBools(bm []uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = bm[i>>6]&(1<<uint(i&63)) != 0
	}
	return out
}

func TestHoldsCmp(t *testing.T) {
	want := map[Op][3]bool{
		// results for c = -1, 0, +1
		EQ: {false, true, false},
		NE: {true, false, true},
		LT: {true, false, false},
		LE: {true, true, false},
		GT: {false, false, true},
		GE: {false, true, true},
	}
	for op, w := range want {
		for i, c := range []int{-1, 0, 1} {
			if got := op.HoldsCmp(c); got != w[i] {
				t.Errorf("op %d HoldsCmp(%d) = %v, want %v", op, c, got, w[i])
			}
		}
	}
}

func TestCmpConstInt64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(20) - 10)
		}
		c := int64(rng.Intn(20) - 10)
		cv := values.NewInt(c)
		for _, op := range allOps {
			bm := Bitmap(nil, n)
			cnt := CmpConstInt64(xs, c, op, bm)
			got := bitmapToBools(bm, n)
			wantCnt := 0
			for i, x := range xs {
				want := naiveHolds(values.NewInt(x), cv, op)
				if want {
					wantCnt++
				}
				if got[i] != want {
					t.Fatalf("op %d: xs[%d]=%d vs %d: got %v want %v", op, i, x, c, got[i], want)
				}
			}
			if cnt != wantCnt {
				t.Fatalf("op %d: count %d want %d", op, cnt, wantCnt)
			}
		}
	}
}

func floatPool(rng *rand.Rand) float64 {
	pool := []float64{
		0, math.Copysign(0, -1), 1.5, -1.5, 2.25, -3,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	if rng.Intn(2) == 0 {
		return pool[rng.Intn(len(pool))]
	}
	return rng.NormFloat64() * 10
}

func TestCmpConstFloatVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(150)
		fs := make([]float64, n)
		bits := make([]int64, n)
		for i := range fs {
			fs[i] = floatPool(rng)
			bits[i] = int64(math.Float64bits(fs[i]))
		}
		c := floatPool(rng)
		cv := values.NewFloat(c)
		for _, op := range allOps {
			bm1 := Bitmap(nil, n)
			cnt1 := CmpConstFloat64(fs, c, op, bm1)
			bm2 := Bitmap(nil, n)
			cnt2 := CmpConstFloatBits(bits, c, op, bm2)
			g1 := bitmapToBools(bm1, n)
			g2 := bitmapToBools(bm2, n)
			wantCnt := 0
			for i := range fs {
				want := naiveHolds(values.NewFloat(fs[i]), cv, op)
				if want {
					wantCnt++
				}
				if g1[i] != want {
					t.Fatalf("Float64 op %d: fs[%d]=%v vs %v: got %v want %v", op, i, fs[i], c, g1[i], want)
				}
				if g2[i] != want {
					t.Fatalf("FloatBits op %d: fs[%d]=%v vs %v: got %v want %v", op, i, fs[i], c, g2[i], want)
				}
			}
			if cnt1 != wantCnt || cnt2 != wantCnt {
				t.Fatalf("op %d: counts %d/%d want %d", op, cnt1, cnt2, wantCnt)
			}
		}
	}
}

func TestCmpConstInt64AsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(150)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(40) - 20)
		}
		c := floatPool(rng)
		cv := values.NewFloat(c)
		for _, op := range allOps {
			bm := Bitmap(nil, n)
			cnt := CmpConstInt64AsFloat(xs, c, op, bm)
			got := bitmapToBools(bm, n)
			wantCnt := 0
			for i, x := range xs {
				want := naiveHolds(values.NewInt(x), cv, op)
				if want {
					wantCnt++
				}
				if got[i] != want {
					t.Fatalf("op %d: xs[%d]=%d vs %v: got %v want %v", op, i, x, c, got[i], want)
				}
			}
			if cnt != wantCnt {
				t.Fatalf("op %d: count %d want %d", op, cnt, wantCnt)
			}
		}
	}
}

func TestSumInt64MatchesScalarFold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(300)
		xs := make([]int64, n)
		for i := range xs {
			// Include values near the overflow boundary: wrapping adds
			// must agree regardless of association.
			if rng.Intn(10) == 0 {
				xs[i] = math.MaxInt64 - int64(rng.Intn(3))
			} else {
				xs[i] = rng.Int63() - rng.Int63()
			}
		}
		var want int64
		for _, x := range xs {
			want += x
		}
		if got := SumInt64(xs); got != want {
			t.Fatalf("SumInt64 = %d, want %d", got, want)
		}
	}
}

func TestSumFloatMatchesScalarFold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		fs := make([]float64, n)
		bits := make([]int64, n)
		for i := range fs {
			fs[i] = floatPool(rng)
			bits[i] = int64(math.Float64bits(fs[i]))
		}
		// The scalar γ path folds values.Add(acc, MulInt(v, 1)) left to
		// right from a Null accumulator, i.e. v0*1.0, then += each.
		want := fs[0] * 1.0
		for _, f := range fs[1:] {
			want += f
		}
		got := SumFloat64(fs)
		gotBits := SumFloatBits(bits)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("SumFloat64 bits %x, want %x (%v vs %v)",
				math.Float64bits(got), math.Float64bits(want), got, want)
		}
		if math.Float64bits(gotBits) != math.Float64bits(want) {
			t.Fatalf("SumFloatBits bits %x, want %x", math.Float64bits(gotBits), math.Float64bits(want))
		}
	}
}

func TestSumFloatNegativeZero(t *testing.T) {
	nz := math.Copysign(0, -1)
	got := SumFloat64([]float64{nz})
	if math.Float64bits(got) != math.Float64bits(nz) {
		t.Fatalf("lone -0.0 sum lost its sign: %x", math.Float64bits(got))
	}
}

func TestMinMaxMatchesValueFold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(100)

		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(20) - 10)
		}
		mnI, mxI := MinMaxInt64(xs)
		wantMn, wantMx := values.NewInt(xs[0]), values.NewInt(xs[0])
		for _, x := range xs[1:] {
			wantMn = values.Min(wantMn, values.NewInt(x))
			wantMx = values.Max(wantMx, values.NewInt(x))
		}
		if values.Compare(values.NewInt(xs[mnI]), wantMn) != 0 {
			t.Fatalf("MinMaxInt64 min %d want %v", xs[mnI], wantMn)
		}
		if values.Compare(values.NewInt(xs[mxI]), wantMx) != 0 {
			t.Fatalf("MinMaxInt64 max %d want %v", xs[mxI], wantMx)
		}

		fs := make([]float64, n)
		bits := make([]int64, n)
		for i := range fs {
			fs[i] = floatPool(rng)
			bits[i] = int64(math.Float64bits(fs[i]))
		}
		fmn, fmx := MinMaxFloat64(fs)
		bmn, bmx := MinMaxFloatBits(bits)
		if fmn != bmn || fmx != bmx {
			t.Fatalf("Float64 and FloatBits MinMax disagree: (%d,%d) vs (%d,%d)", fmn, fmx, bmn, bmx)
		}
		// The scalar fold keeps the earlier operand on ties (Compare ==
		// 0), so match it index-exactly, not just value-exactly: the γ
		// evaluator emits the stored value at the winning index.
		wantMinIdx, wantMaxIdx := 0, 0
		accMn, accMx := values.NewFloat(fs[0]), values.NewFloat(fs[0])
		for i, f := range fs[1:] {
			v := values.NewFloat(f)
			if values.Compare(accMn, v) > 0 {
				accMn = v
				wantMinIdx = i + 1
			}
			if values.Compare(accMx, v) < 0 {
				accMx = v
				wantMaxIdx = i + 1
			}
		}
		if fmn != wantMinIdx || fmx != wantMaxIdx {
			t.Fatalf("MinMaxFloat64 idx (%d,%d) want (%d,%d) over %v", fmn, fmx, wantMinIdx, wantMaxIdx, fs)
		}
	}
}

func TestIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		// Strictly ascending runs, as the store invariant guarantees.
		mk := func() []int64 {
			n := rng.Intn(40)
			out := make([]int64, 0, n)
			v := int64(-50)
			for i := 0; i < n; i++ {
				v += int64(1 + rng.Intn(5))
				out = append(out, v)
			}
			return out
		}
		xs, ys := mk(), mk()
		got := IntersectInt64(xs, ys, nil)
		var want [][2]int32
		for i, x := range xs {
			for j, y := range ys {
				if x == y {
					want = append(want, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("IntersectInt64 %d pairs, want %d", len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("pair %d: got %v want %v", k, got[k], want[k])
			}
		}

		// Float runs: ascending distinct floats via ascending ints/2.
		fx := make([]int64, len(xs))
		for i, x := range xs {
			fx[i] = int64(math.Float64bits(float64(x) / 2))
		}
		fy := make([]int64, len(ys))
		for j, y := range ys {
			fy[j] = int64(math.Float64bits(float64(y) / 2))
		}
		gotF := IntersectFloatBits(fx, fy, nil)
		if len(gotF) != len(want) {
			t.Fatalf("IntersectFloatBits %d pairs, want %d", len(gotF), len(want))
		}
		for k := range gotF {
			if gotF[k] != want[k] {
				t.Fatalf("float pair %d: got %v want %v", k, gotF[k], want[k])
			}
		}
	}
}

func TestSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		xs := make([]int64, 0, n)
		v := int64(-40)
		for i := 0; i < n; i++ {
			v += int64(1 + rng.Intn(4))
			xs = append(xs, v)
		}
		c := int64(rng.Intn(120) - 60)
		pos, ok := SearchInt64(xs, c)
		// Reference: first index where x >= c, equality check.
		wantPos := len(xs)
		for i, x := range xs {
			if x >= c {
				wantPos = i
				break
			}
		}
		wantOK := wantPos < len(xs) && xs[wantPos] == c
		if pos != wantPos || ok != wantOK {
			t.Fatalf("SearchInt64(%v, %d) = (%d,%v), want (%d,%v)", xs, c, pos, ok, wantPos, wantOK)
		}

		fb := make([]int64, len(xs))
		for i, x := range xs {
			fb[i] = int64(math.Float64bits(float64(x)))
		}
		fpos, fok := SearchFloatBits(fb, float64(c))
		if fpos != wantPos || fok != wantOK {
			t.Fatalf("SearchFloatBits = (%d,%v), want (%d,%v)", fpos, fok, wantPos, wantOK)
		}
		apos, aok := SearchInt64AsFloat(xs, float64(c))
		if apos != wantPos || aok != wantOK {
			t.Fatalf("SearchInt64AsFloat = (%d,%v), want (%d,%v)", apos, aok, wantPos, wantOK)
		}
	}
	// A NaN needle compares equal to everything under cmpFloat: found at 0.
	xs := []int64{int64(math.Float64bits(1.5)), int64(math.Float64bits(2.5))}
	pos, ok := SearchFloatBits(xs, math.NaN())
	if pos != 0 || !ok {
		t.Fatalf("NaN needle: got (%d,%v), want (0,true)", pos, ok)
	}
}

func TestNextRun(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		want := make([]bool, n)
		bm := Bitmap(nil, n)
		for i := range want {
			if rng.Intn(3) > 0 {
				want[i] = true
				bm[i>>6] |= 1 << uint(i&63)
			}
		}
		// Reconstruct the bool slice by walking runs.
		got := make([]bool, n)
		for pos := 0; pos < n; {
			s, e := NextRun(bm, pos, n)
			if s == e {
				break
			}
			if s < pos || e <= s || e > n {
				t.Fatalf("bad run [%d,%d) from %d (n=%d)", s, e, pos, n)
			}
			for i := s; i < e; i++ {
				got[i] = true
			}
			pos = e
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bit %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestBitmapReuse(t *testing.T) {
	bm := Bitmap(nil, 100)
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	bm2 := Bitmap(bm, 64)
	if len(bm2) != 1 || bm2[0] != 0 {
		t.Fatalf("Bitmap reuse did not clear: %v", bm2)
	}
	if &bm2[0] != &bm[0] {
		t.Fatalf("Bitmap reallocated despite sufficient capacity")
	}
}
