package frep

// Slab snapshots: a versioned, checksummed binary format that persists a
// Store's three slabs directly, so catalogues survive restarts without
// re-factorising (the f-representations of the paper are built once and
// queried many times; the FDB engine treats them as the storage layer).
//
// Unlike the pre-order codec (codec.go), which walks the factorisation
// tree value by value, a snapshot is the arena itself:
//
//	header   64 bytes: magic, version, slab counts, payload length,
//	         CRC-32C of payload and of the header
//	nodes    nNodes × 16 bytes (valOff, kidOff, nVals, arity — LE u32)
//	kids     nKids × 4 bytes (LE u32 node ids), padded to 8
//	vals     nVals × 16-byte value records
//	heap     string bytes and nested vector records
//	ranks    nVals × 8 bytes (LE u64 prefix sums) — version 2 only,
//	         present iff header flag 0x1 is set (see ranks.go)
//
// A store without a ranked index encodes exactly as version 1 — byte
// for byte the pre-ranks format — so old readers and old files stay
// interchangeable with new ones; a store whose index covers it encodes
// as version 2 with the ranks section appended after the heap. Version
// 2 without the ranks flag is rejected, keeping encodings canonical
// (every accepted snapshot re-encodes to identical bytes).
//
// Every section starts 8-byte aligned relative to the snapshot start, so
// a loader that has the whole snapshot as one contiguous byte slice (one
// read, or an mmap) can reinterpret the node and kid slabs in place on
// little-endian machines and alias string payloads into the heap without
// copying. Value records are fixed width:
//
//	byte 0     kind (values.Kind)
//	bytes 1–3  reserved (zero)
//	bytes 4–8  aux  (LE u32): string byte length / vector arity
//	bytes 8–16 payload (LE u64): int/float bits, bool, or heap offset
//
// Vectors store their component records contiguously in the heap (8-byte
// aligned) and the payload is the heap offset of that block.
//
// Decoding is defensive end to end: a corrupt, truncated or
// version-skewed snapshot yields an error, never a panic, and a loaded
// store passes the same bounds guarantees as a built one (every node's
// ranges lie inside the slabs and every kid reference points strictly
// backwards).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"unsafe"

	"github.com/factordb/fdb/internal/values"
)

const (
	snapMagic = "FDBSNAP\n"
	// snapVersionV1 is the pre-ranks format (three sections); it is still
	// written for stores without a ranked index and always readable.
	snapVersionV1 = 1
	// snapVersion is the current format: version 2 adds the optional
	// ranks section, flagged by snapFlagRanks.
	snapVersion = 2
	// snapFlagRanks marks the presence of the ranks section; it is the
	// only defined flag, and exactly it must be set in a v2 header.
	snapFlagRanks = 0x1
	// snapHeaderLen is the fixed header size; sections follow immediately
	// and the header length is a multiple of 8, so in-file section offsets
	// keep their alignment relative to the snapshot start.
	snapHeaderLen = 64
	valRecLen     = 16
	nodeRecLen    = 16
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittle reports whether the host is little-endian; the in-place
// slab reinterpretation of LoadSnapshot is only valid there.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// snapHeader is the decoded fixed header of a snapshot.
type snapHeader struct {
	version    uint16
	flags      uint16
	nNodes     uint64
	nVals      uint64
	nKids      uint64
	heapLen    uint64
	payloadLen uint64
	payloadCRC uint32
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// hasRanks reports whether the header declares a ranks section.
func (h *snapHeader) hasRanks() bool { return h.flags&snapFlagRanks != 0 }

// sectionLayout computes the payload-relative section offsets implied by
// the header counts, verifying they are consistent with payloadLen.
// ranksOff is meaningful only when the header declares a ranks section.
func (h *snapHeader) sectionLayout() (nodesOff, kidsOff, valsOff, heapOff, ranksOff uint64, err error) {
	const maxEntries = math.MaxUint32 // slabs are uint32-addressed
	if h.nNodes == 0 || h.nNodes > maxEntries || h.nVals > maxEntries || h.nKids > maxEntries {
		return 0, 0, 0, 0, 0, fmt.Errorf("frep: snapshot: implausible slab counts (%d nodes, %d vals, %d kids)", h.nNodes, h.nVals, h.nKids)
	}
	nodesOff = 0
	kidsOff = nodesOff + h.nNodes*nodeRecLen
	valsOff = align8(kidsOff + h.nKids*4)
	heapOff = valsOff + h.nVals*valRecLen
	want := align8(heapOff + h.heapLen)
	if h.hasRanks() {
		ranksOff = want
		want += h.nVals * 8 // ranksOff is 8-aligned, so want stays aligned
	}
	if want != h.payloadLen {
		return 0, 0, 0, 0, 0, fmt.Errorf("frep: snapshot: payload length %d inconsistent with slab counts (want %d)", h.payloadLen, want)
	}
	return nodesOff, kidsOff, valsOff, heapOff, ranksOff, nil
}

// encodeHeader writes the fixed header into b (which must be
// snapHeaderLen bytes).
func (h *snapHeader) encode(b []byte) {
	copy(b[0:8], snapMagic)
	binary.LittleEndian.PutUint16(b[8:10], h.version)
	binary.LittleEndian.PutUint16(b[10:12], h.flags)
	binary.LittleEndian.PutUint32(b[12:16], 0)
	binary.LittleEndian.PutUint64(b[16:24], h.nNodes)
	binary.LittleEndian.PutUint64(b[24:32], h.nVals)
	binary.LittleEndian.PutUint64(b[32:40], h.nKids)
	binary.LittleEndian.PutUint64(b[40:48], h.heapLen)
	binary.LittleEndian.PutUint64(b[48:56], h.payloadLen)
	binary.LittleEndian.PutUint32(b[56:60], h.payloadCRC)
	binary.LittleEndian.PutUint32(b[60:64], crc32.Checksum(b[0:60], crcTable))
}

// decodeSnapHeader parses and verifies the fixed header.
func decodeSnapHeader(b []byte) (*snapHeader, error) {
	if len(b) < snapHeaderLen {
		return nil, fmt.Errorf("frep: snapshot: truncated header (%d bytes)", len(b))
	}
	if string(b[0:8]) != snapMagic {
		return nil, fmt.Errorf("frep: snapshot: bad magic %q", b[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[60:64]), crc32.Checksum(b[0:60], crcTable); got != want {
		return nil, fmt.Errorf("frep: snapshot: header checksum mismatch (got %#x, want %#x)", got, want)
	}
	h := &snapHeader{
		version:    binary.LittleEndian.Uint16(b[8:10]),
		flags:      binary.LittleEndian.Uint16(b[10:12]),
		nNodes:     binary.LittleEndian.Uint64(b[16:24]),
		nVals:      binary.LittleEndian.Uint64(b[24:32]),
		nKids:      binary.LittleEndian.Uint64(b[32:40]),
		heapLen:    binary.LittleEndian.Uint64(b[40:48]),
		payloadLen: binary.LittleEndian.Uint64(b[48:56]),
		payloadCRC: binary.LittleEndian.Uint32(b[56:60]),
	}
	switch h.version {
	case snapVersionV1:
		if h.flags != 0 {
			return nil, fmt.Errorf("frep: snapshot: unknown flags %#x for version 1", h.flags)
		}
	case snapVersion:
		// Version 2 exists only to carry the ranks section; requiring the
		// flag (and a non-empty value slab for it to rank) keeps every
		// accepted snapshot canonical under re-encoding.
		if h.flags != snapFlagRanks {
			return nil, fmt.Errorf("frep: snapshot: version 2 flags %#x, want %#x", h.flags, snapFlagRanks)
		}
		if h.nVals == 0 {
			return nil, fmt.Errorf("frep: snapshot: version 2 with an empty value slab")
		}
	default:
		return nil, fmt.Errorf("frep: snapshot: unsupported version %d (this build reads versions %d and %d)", h.version, snapVersionV1, snapVersion)
	}
	return h, nil
}

// AppendValueSection encodes vals as fixed-width value records appended
// to recs, spilling variable-width payloads (string bytes, vector
// component blocks) into heap. It is the value codec shared by store
// snapshots and catalogue flat-tuple sections. Heap offsets are relative
// to the start of heap.
func AppendValueSection(recs, heap []byte, vals []values.Value) (recsOut, heapOut []byte, err error) {
	for _, v := range vals {
		recs, heap, err = appendValueRec(recs, heap, v, 0)
		if err != nil {
			return nil, nil, err
		}
	}
	return recs, heap, nil
}

// maxVecDepth bounds vector nesting in snapshots; deeper values are a
// programming error on encode and a corruption signal on decode.
const maxVecDepth = 64

func appendValueRec(recs, heap []byte, v values.Value, depth int) ([]byte, []byte, error) {
	if depth > maxVecDepth {
		return nil, nil, fmt.Errorf("frep: snapshot: vector nesting exceeds %d", maxVecDepth)
	}
	var rec [valRecLen]byte
	rec[0] = byte(v.Kind())
	switch v.Kind() {
	case values.Null:
	case values.Bool:
		if v.Bool() {
			binary.LittleEndian.PutUint64(rec[8:16], 1)
		}
	case values.Int:
		binary.LittleEndian.PutUint64(rec[8:16], uint64(v.Int()))
	case values.Float:
		binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(v.Float()))
	case values.String:
		s := v.Str()
		binary.LittleEndian.PutUint32(rec[4:8], uint32(len(s)))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(len(heap)))
		heap = append(heap, s...)
	case values.Vec:
		// Encode components into a scratch block first (their own strings
		// and nested vectors land in the heap as we go), then append the
		// block 8-byte aligned and point the record at it.
		n := v.VecLen()
		block := make([]byte, 0, n*valRecLen)
		var err error
		for i := 0; i < n; i++ {
			block, heap, err = appendValueRec(block, heap, v.VecAt(i), depth+1)
			if err != nil {
				return nil, nil, err
			}
		}
		for len(heap)%8 != 0 {
			heap = append(heap, 0)
		}
		binary.LittleEndian.PutUint32(rec[4:8], uint32(n))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(len(heap)))
		heap = append(heap, block...)
	default:
		return nil, nil, fmt.Errorf("frep: snapshot: unencodable value kind %d", v.Kind())
	}
	return append(recs, rec[:]...), heap, nil
}

// DecodeValueSection decodes n fixed-width value records from recs with
// variable-width payloads in heap (the inverse of AppendValueSection).
// With zeroCopy set, decoded strings alias heap's backing array — the
// caller must keep it immutable and alive for the life of the values;
// otherwise string bytes are copied out. Decoding is defensive: any
// out-of-range offset, bad kind or excessive nesting is an error.
func DecodeValueSection(recs, heap []byte, n int, zeroCopy bool) ([]values.Value, error) {
	if len(recs) != n*valRecLen {
		return nil, fmt.Errorf("frep: snapshot: value section is %d bytes, want %d", len(recs), n*valRecLen)
	}
	out := make([]values.Value, n)
	// budget bounds total decoded vector components across the section so
	// hostile self-referential heaps cannot blow up decode work.
	budget := n + len(heap)/valRecLen + 1
	heapLen := uint64(len(heap))
	for i := 0; i < n; i++ {
		// Scalar fast path: decoding is on the cold-start critical path,
		// and almost every value in real catalogues is a scalar.
		rec := recs[i*valRecLen : (i+1)*valRecLen]
		payload := binary.LittleEndian.Uint64(rec[8:16])
		switch values.Kind(rec[0]) {
		case values.Int:
			out[i] = values.NewInt(int64(payload))
		case values.Float:
			out[i] = values.NewFloat(math.Float64frombits(payload))
		case values.String:
			aux := binary.LittleEndian.Uint32(rec[4:8])
			end := payload + uint64(aux)
			if end < payload || end > heapLen {
				return nil, fmt.Errorf("frep: snapshot: string payload [%d,%d) outside heap of %d bytes", payload, end, heapLen)
			}
			if aux == 0 {
				out[i] = values.NewString("")
			} else if zeroCopy {
				out[i] = values.NewString(unsafe.String(&heap[payload], int(aux)))
			} else {
				out[i] = values.NewString(string(heap[payload:end]))
			}
		case values.Bool:
			out[i] = values.NewBool(payload != 0)
		case values.Null:
			out[i] = values.NullValue()
		default:
			v, err := decodeValueRec(rec, heap, zeroCopy, 0, &budget)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}

func decodeValueRec(rec, heap []byte, zeroCopy bool, depth int, budget *int) (values.Value, error) {
	if depth > maxVecDepth {
		return values.Value{}, fmt.Errorf("frep: snapshot: vector nesting exceeds %d", maxVecDepth)
	}
	aux := binary.LittleEndian.Uint32(rec[4:8])
	payload := binary.LittleEndian.Uint64(rec[8:16])
	switch values.Kind(rec[0]) {
	case values.Null:
		return values.NullValue(), nil
	case values.Bool:
		return values.NewBool(payload != 0), nil
	case values.Int:
		return values.NewInt(int64(payload)), nil
	case values.Float:
		return values.NewFloat(math.Float64frombits(payload)), nil
	case values.String:
		end := payload + uint64(aux)
		if end < payload || end > uint64(len(heap)) {
			return values.Value{}, fmt.Errorf("frep: snapshot: string payload [%d,%d) outside heap of %d bytes", payload, end, len(heap))
		}
		if aux == 0 {
			return values.NewString(""), nil
		}
		if zeroCopy {
			return values.NewString(unsafe.String(&heap[payload], int(aux))), nil
		}
		return values.NewString(string(heap[payload:end])), nil
	case values.Vec:
		end := payload + uint64(aux)*valRecLen
		if end < payload || end > uint64(len(heap)) {
			return values.Value{}, fmt.Errorf("frep: snapshot: vector block [%d,%d) outside heap of %d bytes", payload, end, len(heap))
		}
		*budget -= int(aux)
		if *budget < 0 {
			return values.Value{}, fmt.Errorf("frep: snapshot: vector components exceed section budget")
		}
		comps := make([]values.Value, aux)
		for i := range comps {
			off := payload + uint64(i)*valRecLen
			v, err := decodeValueRec(heap[off:off+valRecLen], heap, zeroCopy, depth+1, budget)
			if err != nil {
				return values.Value{}, err
			}
			comps[i] = v
		}
		return values.NewVec(comps), nil
	default:
		return values.Value{}, fmt.Errorf("frep: snapshot: unknown value kind %d", rec[0])
	}
}

// SnapshotBytes serialises the store as one snapshot byte slice (header
// plus payload). The store must be a plain store (not an overlay).
func (s *Store) SnapshotBytes() ([]byte, error) {
	if s.base != nil {
		return nil, fmt.Errorf("frep: snapshot: cannot snapshot an overlay store")
	}
	// Encode the value slab first: the heap length is needed for the
	// header and section layout.
	recs := make([]byte, 0, len(s.vals)*valRecLen)
	var heap []byte
	recs, heap, err := AppendValueSection(recs, heap, s.vals)
	if err != nil {
		return nil, err
	}
	// A complete ranked index is persisted as the version-2 ranks
	// section; anything less (no index, or a stale prefix from appends
	// after BuildRanks) encodes as plain version 1.
	withRanks := s.HasRanks() && len(s.vals) > 0
	h := snapHeader{
		version: snapVersionV1,
		nNodes:  uint64(len(s.nodes)),
		nVals:   uint64(len(s.vals)),
		nKids:   uint64(len(s.kids)),
		heapLen: uint64(len(heap)),
	}
	if withRanks {
		h.version = snapVersion
		h.flags = snapFlagRanks
	}
	nodesOff, kidsOff, valsOff, heapOff := uint64(0), uint64(len(s.nodes)*nodeRecLen), uint64(0), uint64(0)
	valsOff = align8(kidsOff + uint64(len(s.kids))*4)
	heapOff = valsOff + uint64(len(recs))
	ranksOff := align8(heapOff + uint64(len(heap)))
	h.payloadLen = ranksOff
	if withRanks {
		h.payloadLen += uint64(len(s.ranks)) * 8
	}

	buf := make([]byte, snapHeaderLen+h.payloadLen)
	payload := buf[snapHeaderLen:]
	for i, nh := range s.nodes {
		off := nodesOff + uint64(i)*nodeRecLen
		binary.LittleEndian.PutUint32(payload[off:], nh.valOff)
		binary.LittleEndian.PutUint32(payload[off+4:], nh.kidOff)
		binary.LittleEndian.PutUint32(payload[off+8:], nh.nVals)
		binary.LittleEndian.PutUint32(payload[off+12:], nh.arity)
	}
	for i, k := range s.kids {
		binary.LittleEndian.PutUint32(payload[kidsOff+uint64(i)*4:], uint32(k))
	}
	copy(payload[valsOff:], recs)
	copy(payload[heapOff:], heap)
	if withRanks {
		for i, r := range s.ranks {
			binary.LittleEndian.PutUint64(payload[ranksOff+uint64(i)*8:], r)
		}
	}
	h.payloadCRC = crc32.Checksum(payload, crcTable)
	h.encode(buf[:snapHeaderLen])
	return buf, nil
}

// WriteTo writes the store as a versioned, checksummed snapshot,
// implementing io.WriterTo. See the package comment at the top of this
// file for the layout.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	buf, err := s.SnapshotBytes()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// readChunkLen bounds single allocations while reading a snapshot from a
// stream, so a lying header cannot force a huge up-front allocation.
const readChunkLen = 4 << 20

// ReadFrom loads a snapshot written by WriteTo into the store,
// implementing io.ReaderFrom. The store must be empty (fresh from
// NewStore); the payload is read with one contiguous buffer and decoded
// strings alias that buffer (it is private to the loaded store). Corrupt
// or truncated input returns an error and leaves the store empty.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	if s.base != nil {
		return 0, fmt.Errorf("frep: snapshot: cannot load into an overlay store")
	}
	if len(s.nodes) > 1 || len(s.vals) > 0 || len(s.kids) > 0 {
		return 0, fmt.Errorf("frep: snapshot: cannot load into a non-empty store")
	}
	var hdr [snapHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return int64(n), fmt.Errorf("frep: snapshot: reading header: %w", err)
	}
	h, err := decodeSnapHeader(hdr[:])
	if err != nil {
		return int64(n), err
	}
	if _, _, _, _, _, err := h.sectionLayout(); err != nil {
		return int64(n), err
	}
	// Read the payload in bounded chunks: the layout check above ties
	// payloadLen to the slab counts, but a short stream should fail with
	// an I/O error before a multi-gigabyte allocation.
	payload := make([]byte, 0, min64(h.payloadLen, readChunkLen))
	for uint64(len(payload)) < h.payloadLen {
		chunk := min64(h.payloadLen-uint64(len(payload)), readChunkLen)
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		m, err := io.ReadFull(r, payload[start:])
		n += m
		if err != nil {
			return int64(n), fmt.Errorf("frep: snapshot: reading payload: %w", err)
		}
	}
	loaded, err := loadSnapshotPayload(h, payload, true)
	if err != nil {
		return int64(n), err
	}
	*s = *loaded
	return int64(n), nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// LoadSnapshot parses a complete snapshot held in one contiguous byte
// slice (for example a whole file read, or an mmap) and returns the
// loaded store. With zeroCopy set the node and kid slabs are
// reinterpreted in place (on little-endian hosts) and strings alias the
// heap, so the load is O(validation) in time and O(values) in memory;
// the caller must keep b immutable and alive for the life of the store.
// Without zeroCopy all slabs are copied out of b.
//
// The loaded store is frozen: it can be read, snapshotted, cloned and
// grafted from, but not Reset (its slabs may alias read-only memory).
func LoadSnapshot(b []byte, zeroCopy bool) (*Store, error) {
	h, err := decodeSnapHeader(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != snapHeaderLen+h.payloadLen {
		return nil, fmt.Errorf("frep: snapshot: %d bytes for header-declared %d", len(b), snapHeaderLen+h.payloadLen)
	}
	return loadSnapshotPayload(h, b[snapHeaderLen:], zeroCopy)
}

// SnapshotLen returns the total byte length (header plus payload) of the
// snapshot starting at b, after verifying its header — the framing used
// by container formats that embed snapshots back to back.
func SnapshotLen(b []byte) (int64, error) {
	h, err := decodeSnapHeader(b)
	if err != nil {
		return 0, err
	}
	if _, _, _, _, _, err := h.sectionLayout(); err != nil {
		return 0, err
	}
	return int64(snapHeaderLen + h.payloadLen), nil
}

func loadSnapshotPayload(h *snapHeader, payload []byte, zeroCopy bool) (*Store, error) {
	nodesOff, kidsOff, valsOff, heapOff, ranksOff, err := h.sectionLayout()
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) != h.payloadLen {
		return nil, fmt.Errorf("frep: snapshot: payload is %d bytes, header says %d", len(payload), h.payloadLen)
	}
	if got := crc32.Checksum(payload, crcTable); got != h.payloadCRC {
		return nil, fmt.Errorf("frep: snapshot: payload checksum mismatch (got %#x, want %#x)", got, h.payloadCRC)
	}
	st := &Store{frozen: true}
	nodesB := payload[nodesOff : nodesOff+h.nNodes*nodeRecLen]
	kidsB := payload[kidsOff : kidsOff+h.nKids*4]
	if zeroCopy && hostLittle &&
		(len(nodesB) == 0 || uintptr(unsafe.Pointer(&nodesB[0]))%4 == 0) &&
		(len(kidsB) == 0 || uintptr(unsafe.Pointer(&kidsB[0]))%4 == 0) {
		if len(nodesB) > 0 {
			n := int(h.nNodes)
			st.nodes = unsafe.Slice((*nodeHdr)(unsafe.Pointer(&nodesB[0])), n)[:n:n]
		}
		if len(kidsB) > 0 {
			n := int(h.nKids)
			st.kids = unsafe.Slice((*NodeID)(unsafe.Pointer(&kidsB[0])), n)[:n:n]
		}
	} else {
		st.nodes = make([]nodeHdr, h.nNodes)
		for i := range st.nodes {
			off := uint64(i) * nodeRecLen
			st.nodes[i] = nodeHdr{
				valOff: binary.LittleEndian.Uint32(nodesB[off:]),
				kidOff: binary.LittleEndian.Uint32(nodesB[off+4:]),
				nVals:  binary.LittleEndian.Uint32(nodesB[off+8:]),
				arity:  binary.LittleEndian.Uint32(nodesB[off+12:]),
			}
		}
		st.kids = make([]NodeID, h.nKids)
		for i := range st.kids {
			st.kids[i] = NodeID(binary.LittleEndian.Uint32(kidsB[uint64(i)*4:]))
		}
	}
	vals, err := DecodeValueSection(
		payload[valsOff:valsOff+h.nVals*valRecLen],
		payload[heapOff:heapOff+h.heapLen],
		int(h.nVals), zeroCopy)
	if err != nil {
		return nil, err
	}
	st.vals = vals[:len(vals):len(vals)]
	if h.hasRanks() {
		ranksB := payload[ranksOff : ranksOff+h.nVals*8]
		if zeroCopy && hostLittle && uintptr(unsafe.Pointer(&ranksB[0]))%8 == 0 {
			n := int(h.nVals)
			st.ranks = unsafe.Slice((*uint64)(unsafe.Pointer(&ranksB[0])), n)[:n:n]
		} else {
			st.ranks = make([]uint64, h.nVals)
			for i := range st.ranks {
				st.ranks[i] = binary.LittleEndian.Uint64(ranksB[uint64(i)*8:])
			}
		}
		st.rankedKids = uint32(h.nKids)
	}
	if err := st.validateSlabs(); err != nil {
		return nil, err
	}
	return st, nil
}

// validateSlabs checks the structural invariants a loaded store must
// satisfy so that every read accessor is panic-free: node 0 is the empty
// node, every node's value and kid ranges lie inside the slabs, and
// every kid reference names a strictly earlier node (stores are
// append-only, so a well-formed store is a backwards-pointing DAG).
// When a ranks section was loaded, every covered prefix sum is verified
// exactly against the recomputed subtree products, so a hostile count
// can never mislead Seek or COUNT(*) — at worst it is rejected here.
func (s *Store) validateSlabs() error {
	if s.nodes[0] != (nodeHdr{}) {
		return fmt.Errorf("frep: snapshot: node 0 is not the empty node")
	}
	if len(s.ranks) > 0 {
		for a := 1; a < len(s.ranks); a++ {
			if s.ranks[a] < s.ranks[a-1] {
				return fmt.Errorf("frep: snapshot: rank prefix sums decrease at value %d", a)
			}
		}
		if last := s.ranks[len(s.ranks)-1]; last > maxRankTotal {
			return fmt.Errorf("frep: snapshot: rank total %d exceeds the representable maximum", last)
		}
	}
	nVals, nKids := uint64(len(s.vals)), uint64(len(s.kids))
	for i, h := range s.nodes {
		if end := uint64(h.valOff) + uint64(h.nVals); end > nVals {
			return fmt.Errorf("frep: snapshot: node %d values [%d,%d) outside value slab of %d", i, h.valOff, end, nVals)
		}
		nk := uint64(h.nVals) * uint64(h.arity)
		if end := uint64(h.kidOff) + nk; end > nKids {
			return fmt.Errorf("frep: snapshot: node %d kids [%d,%d) outside kid slab of %d", i, h.kidOff, end, nKids)
		}
		for _, k := range s.kids[h.kidOff : uint64(h.kidOff)+nk] {
			if uint32(k) >= uint32(i) {
				return fmt.Errorf("frep: snapshot: node %d references kid %d (kids must point backwards)", i, k)
			}
		}
		if len(s.ranks) > 0 {
			if err := s.validateNodeRanks(NodeID(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateNodeRanks recomputes the per-value weights of node id from
// its kids' (already validated, backwards-pointing) rank windows and
// checks them against the loaded prefix sums. Loaded ranks cover the
// whole slab, so every node is checked.
func (s *Store) validateNodeRanks(id NodeID) error {
	h := &s.nodes[id]
	for v := uint64(0); v < uint64(h.nVals); v++ {
		a := uint64(h.valOff) + v
		got := s.ranks[a] - rankBefore(s.ranks, a)
		want, overflow := uint64(1), false
		for j := uint64(0); j < uint64(h.arity); j++ {
			kh := &s.nodes[s.kids[uint64(h.kidOff)+v*uint64(h.arity)+j]]
			kt := uint64(0)
			if kh.nVals > 0 {
				end := uint64(kh.valOff) + uint64(kh.nVals)
				kt = s.ranks[end-1] - rankBefore(s.ranks, uint64(kh.valOff))
			}
			hi, lo := bits.Mul64(want, kt)
			if hi != 0 {
				overflow = true
				break
			}
			want = lo
		}
		if overflow || got != want {
			return fmt.Errorf("frep: snapshot: node %d value %d has rank weight %d, want %d", id, v, got, want)
		}
	}
	return nil
}
