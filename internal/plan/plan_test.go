package plan

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func init() { fops.Paranoid = true }

// pizzeriaForest builds the initial forest for Orders(customer,date,pizza)
// × Pizzas(pizza2,item) × Items(item2,price) with relation paths, plus the
// catalogue.
func pizzeriaForest() (*ftree.Forest, []ftree.CatalogRelation) {
	f := ftree.New()
	f.NewRelationPath("customer", "date", "pizza")
	f.NewRelationPath("pizza2", "item")
	f.NewRelationPath("item2", "price")
	cat := []ftree.CatalogRelation{
		{Name: "Orders", Attrs: []string{"customer", "date", "pizza"}, Size: 5},
		{Name: "Pizzas", Attrs: []string{"pizza2", "item"}, Size: 7},
		{Name: "Items", Attrs: []string{"item2", "price"}, Size: 4},
	}
	return f, cat
}

func revenueQuery() *query.Query {
	return &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: []query.Equality{{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"}},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
	}
}

func TestRequiredFields(t *testing.T) {
	fields := RequiredFields([]query.Aggregate{
		{Fn: query.Avg, Arg: "x", As: "m"},
		{Fn: query.Count, As: "n"},
		{Fn: query.Sum, Arg: "x", As: "s"},
		{Fn: query.Min, Arg: "y", As: "lo"},
	})
	// avg(x) → sum_x + count; count dedups; sum_x dedups; min_y.
	if len(fields) != 3 {
		t.Fatalf("fields = %v, want 3 distinct", fields)
	}
}

func TestPartialFields(t *testing.T) {
	req := []ftree.AggField{
		{Fn: ftree.Sum, Arg: "price"},
		{Fn: ftree.Min, Arg: "price"},
		{Fn: ftree.Count},
	}
	with := PartialFields(req, map[string]bool{"price": true})
	if len(with) != 3 {
		t.Errorf("fields with price = %v", with)
	}
	without := PartialFields(req, map[string]bool{"date": true})
	// sum→count, min→dropped, count→count, deduplicated.
	if len(without) != 1 || without[0].Fn != ftree.Count {
		t.Errorf("fields without price = %v", without)
	}
	minOnly := PartialFields([]ftree.AggField{{Fn: ftree.Min, Arg: "p"}}, map[string]bool{"x": true})
	if len(minOnly) != 1 || minOnly[0].Fn != ftree.Count {
		t.Errorf("empty mapping should default to count: %v", minOnly)
	}
}

func TestGreedyPlanRevenue(t *testing.T) {
	f, cat := pizzeriaForest()
	p := &Planner{Catalog: cat, PartialAgg: true}
	pl, err := p.Plan(f, revenueQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Ops) == 0 {
		t.Fatal("empty plan")
	}
	// The plan must contain both selections and at least one γ.
	s := pl.String()
	for _, frag := range []string{"pizza", "item", "γ"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan missing %q: %s", frag, s)
		}
	}
	// Simulate: final tree must have customer as the only atomic attr
	// above aggregate leaves.
	final, cost, err := pl.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("cost should be positive")
	}
	if err := final.Validate(); err != nil {
		t.Fatalf("final tree invalid: %v\n%s", err, final)
	}
	for _, n := range final.Nodes() {
		if n.IsAgg() {
			continue
		}
		hasCustomer := false
		for _, a := range n.Attrs {
			if a == "customer" {
				hasCustomer = true
			}
		}
		if !hasCustomer {
			t.Errorf("atomic node %s not aggregated:\n%s", n.Label(), final)
		}
	}
	if final.GroupingViolation([]string{"customer"}) != nil {
		t.Errorf("grouping unsupported in final tree:\n%s", final)
	}
}

func TestGreedyPlanExecutes(t *testing.T) {
	// Execute the revenue plan against real data and check the result.
	f, cat := pizzeriaForest()
	orders := relation.MustNew("Orders", []string{"customer", "date", "pizza"}, []relation.Tuple{
		{values.NewString("Mario"), values.NewString("Monday"), values.NewString("Capricciosa")},
		{values.NewString("Mario"), values.NewString("Tuesday"), values.NewString("Margherita")},
		{values.NewString("Pietro"), values.NewString("Friday"), values.NewString("Hawaii")},
		{values.NewString("Lucia"), values.NewString("Friday"), values.NewString("Hawaii")},
		{values.NewString("Mario"), values.NewString("Friday"), values.NewString("Capricciosa")},
	})
	pizzas := relation.MustNew("Pizzas", []string{"pizza2", "item"}, []relation.Tuple{
		{values.NewString("Margherita"), values.NewString("base")},
		{values.NewString("Capricciosa"), values.NewString("base")},
		{values.NewString("Capricciosa"), values.NewString("ham")},
		{values.NewString("Capricciosa"), values.NewString("mushrooms")},
		{values.NewString("Hawaii"), values.NewString("base")},
		{values.NewString("Hawaii"), values.NewString("ham")},
		{values.NewString("Hawaii"), values.NewString("pineapple")},
	})
	items := relation.MustNew("Items", []string{"item2", "price"}, []relation.Tuple{
		{values.NewString("base"), values.NewInt(6)},
		{values.NewString("ham"), values.NewInt(1)},
		{values.NewString("mushrooms"), values.NewInt(1)},
		{values.NewString("pineapple"), values.NewInt(2)},
	})

	buildPath := func(rel *relation.Relation) []*frepUnion {
		sub := ftree.New()
		sub.NewRelationPath(rel.Attrs...)
		fr, err := fops.FromRelationUnchecked(rel, sub)
		if err != nil {
			t.Fatal(err)
		}
		return []*frepUnion{{fr}}
	}
	_ = buildPath

	fr := buildForest(t, f, orders, pizzas, items)
	p := &Planner{Catalog: cat, PartialAgg: true}
	pl, err := p.Plan(f, revenueQuery())
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Execute(fr); err != nil {
		t.Fatal(err)
	}
	if err := fr.Check(); err != nil {
		t.Fatal(err)
	}
	flat, err := fr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// The final factorisation has customer plus aggregate leaves; the sum
	// column must hold 9/22/9.
	sumCol := -1
	for i, a := range flat.Attrs {
		if strings.HasPrefix(a, "sum_price") {
			sumCol = i
		}
	}
	if sumCol < 0 {
		t.Fatalf("no sum column in %v", flat.Attrs)
	}
	got := map[string]int64{}
	custCol := flat.ColIndex("customer")
	for _, tp := range flat.Tuples {
		got[tp[custCol].Str()] = tp[sumCol].Int()
	}
	if got["Mario"] != 22 || got["Lucia"] != 9 || got["Pietro"] != 9 {
		t.Errorf("revenues = %v", got)
	}
}

type frepUnion struct{ fr *fops.FRel }

// buildForest assembles the product FRel matching pizzeriaForest.
func buildForest(t *testing.T, f *ftree.Forest, rels ...*relation.Relation) *fops.FRel {
	t.Helper()
	fr := &fops.FRel{Tree: f}
	for _, rel := range rels {
		sub := ftree.New()
		sub.NewRelationPath(rel.Attrs...)
		x, err := fops.FromRelationUnchecked(rel, sub)
		if err != nil {
			t.Fatal(err)
		}
		fr.Roots = append(fr.Roots, x.Roots...)
	}
	return fr
}

func TestLazyModeAlsoConverges(t *testing.T) {
	f, cat := pizzeriaForest()
	p := &Planner{Catalog: cat, PartialAgg: false}
	pl, err := p.Plan(f, revenueQuery())
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := pl.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if final.GroupingViolation([]string{"customer"}) != nil {
		t.Errorf("lazy plan final tree unsupported:\n%s", final)
	}
}

func TestEagerAggregatesBeforeRestructuring(t *testing.T) {
	// In eager mode every γ precedes the group-by swaps; in lazy mode
	// the aggregates come last. (The wall-clock benefit is measured by
	// the ablation benchmarks; the summed size-bound metric can rank a
	// longer eager plan higher on tiny catalogues.)
	f, cat := pizzeriaForest()
	eag, err := (&Planner{Catalog: cat, PartialAgg: true}).Plan(f, revenueQuery())
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := (&Planner{Catalog: cat, PartialAgg: false}).Plan(f, revenueQuery())
	if err != nil {
		t.Fatal(err)
	}
	lastGammaLazy, lastSwapLazy := -1, -1
	for i, op := range lazy.Ops {
		switch op.(type) {
		case GammaOp:
			lastGammaLazy = i
		case SwapOp:
			lastSwapLazy = i
		}
	}
	if lastGammaLazy >= 0 && lastSwapLazy > lastGammaLazy {
		t.Errorf("lazy plan should aggregate after restructuring: %s", lazy)
	}
	if eag.Cost <= 0 || lazy.Cost <= 0 {
		t.Error("costs should be positive")
	}
}

func TestExhaustiveFindsPlanAndBeatsOrMatchesGreedy(t *testing.T) {
	f, cat := pizzeriaForest()
	q := revenueQuery()
	greedy, err := (&Planner{Catalog: cat, PartialAgg: true}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := (&Planner{Catalog: cat, PartialAgg: true, Exhaustive: true, MaxStates: 20000}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Cost > greedy.Cost+1e-6 {
		t.Errorf("exhaustive cost %v should be ≤ greedy cost %v", ex.Cost, greedy.Cost)
	}
	// The exhaustive plan must also reach a valid goal tree.
	final, _, err := ex.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if final.GroupingViolation([]string{"customer"}) != nil {
		t.Errorf("exhaustive final tree unsupported:\n%s", final)
	}
}

func TestSPJPlanProjectionAndOrder(t *testing.T) {
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	cat := []ftree.CatalogRelation{{Name: "R", Attrs: []string{"a", "b", "c"}, Size: 10}}
	q := &query.Query{
		Relations:  []string{"R"},
		Projection: []string{"c", "a"},
		OrderBy:    []query.OrderItem{{Attr: "c"}, {Attr: "a"}},
	}
	pl, err := (&Planner{Catalog: cat}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := pl.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if final.ResolveAttr("b") != nil {
		t.Errorf("b should be projected away:\n%s", final)
	}
	if !final.SupportsOrder([]string{"c", "a"}) {
		t.Errorf("order (c,a) unsupported:\n%s", final)
	}
}

func TestOrderRestructureQ13Shape(t *testing.T) {
	// Q13: input sorted by (date, customer, package); re-sort by
	// (customer, date, package). One swap suffices.
	f := ftree.New()
	f.NewRelationPath("date", "customer", "package")
	cat := []ftree.CatalogRelation{{Name: "R3", Attrs: []string{"date", "customer", "package"}, Size: 100}}
	q := &query.Query{
		Relations: []string{"R3"},
		OrderBy: []query.OrderItem{
			{Attr: "customer"}, {Attr: "date"}, {Attr: "package"},
		},
	}
	pl, err := (&Planner{Catalog: cat}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	swaps := 0
	for _, op := range pl.Ops {
		if _, ok := op.(SwapOp); ok {
			swaps++
		}
	}
	if swaps != 1 {
		t.Errorf("Q13 should need exactly one swap, got %d: %s", swaps, pl)
	}
}

func TestAlreadySupportedOrderNeedsNoOps(t *testing.T) {
	// Q11-style: both (package,date,item) and (package,item,date) are
	// supported by the same f-tree — no restructuring needed.
	f := ftree.New()
	tok := f.NewToken()
	pkg := &ftree.Node{Attrs: []string{"package"}, Deps: ftree.NewTokenSet(tok)}
	date := &ftree.Node{Attrs: []string{"date"}, Deps: ftree.NewTokenSet(tok), Parent: pkg}
	item := &ftree.Node{Attrs: []string{"item"}, Deps: ftree.NewTokenSet(tok), Parent: pkg}
	pkg.Children = []*ftree.Node{date, item}
	f.Roots = []*ftree.Node{pkg}
	cat := []ftree.CatalogRelation{{Name: "R2", Attrs: []string{"package", "date", "item"}, Size: 100}}
	q := &query.Query{
		Relations: []string{"R2"},
		OrderBy:   []query.OrderItem{{Attr: "package"}, {Attr: "item"}, {Attr: "date"}},
	}
	pl, err := (&Planner{Catalog: cat}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Ops) != 0 {
		t.Errorf("supported order should need no ops, got %s", pl)
	}
}

func TestPlanErrors(t *testing.T) {
	f, cat := pizzeriaForest()
	p := &Planner{Catalog: cat}
	bad := &query.Query{
		Relations:  []string{"Orders"},
		Equalities: []query.Equality{{A: "pizza", B: "nope"}},
	}
	if _, err := p.Plan(f, bad); err == nil {
		t.Error("unknown equality attribute should fail")
	}
	badQ := &query.Query{}
	if _, err := p.Plan(f, badQ); err == nil {
		t.Error("invalid query should fail")
	}
}

func TestOpStringsAndTreeApply(t *testing.T) {
	ops := []Op{
		SwapOp{Attr: "a"},
		MergeOp{A: "a", B: "b"},
		AbsorbOp{Anc: "a", Desc: "b"},
		SelectConstOp{Attr: "a", Cmp: fops.EQ, Const: values.NewInt(1)},
		GammaOp{Attr: "a", Fields: []ftree.AggField{{Fn: ftree.Count}}},
		RemoveOp{Attr: "a"},
		RenameOp{From: "a", To: "z"},
	}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for %T", op)
		}
		// All ops must fail cleanly on an unknown attribute.
		f := ftree.New()
		f.NewRelationPath("x")
		if op, ok := op.(interface{ ApplyTree(*ftree.Forest) error }); ok {
			if err := op.ApplyTree(f); err == nil {
				if _, isSel := op.(SelectConstOp); !isSel {
					t.Errorf("%v should fail on missing attribute", op)
				}
			}
		}
	}
}
