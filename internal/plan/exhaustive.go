package plan

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
)

// errSearchSpace signals that the exhaustive search exceeded its state
// budget; Plan falls back to the greedy heuristic.
var errSearchSpace = errors.New("plan: exhaustive search space exceeded")

// exState is one node of the f-plan search graph: an f-tree plus the
// pending equality selections (Proposition 3 determines its outgoing
// edges).
type exState struct {
	tree    *ftree.Forest
	pending []query.Equality
	ops     []Op
	cost    float64
}

type stateHeap []*exState

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*exState)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// planExhaustive runs Dijkstra over the space of permissible f-plans for
// an aggregation query (Section 5.1). Edge weight is the size bound of
// the operator's output f-tree. It returns errSearchSpace when the state
// budget is exhausted.
func (p *Planner) planExhaustive(t *ftree.Forest, q *query.Query) (*Plan, error) {
	maxStates := p.MaxStates
	if maxStates == 0 {
		maxStates = 50000
	}
	req := RequiredFields(q.Aggregates)
	group := groupAttrsOrderFirst(q)
	groupSet := map[string]bool{}
	for _, g := range group {
		groupSet[g] = true
	}
	var order []string
	for _, o := range q.OrderBy {
		if groupSet[o.Attr] {
			order = append(order, o.Attr)
		}
	}

	start, _ := t.Clone()
	initOps := make([]Op, 0, len(q.Filters))
	cost := start.SizeBound(p.Catalog)
	for _, f := range q.Filters {
		op := SelectConstOp{Attr: f.Attr, Cmp: f.Op, Const: f.Const}
		if err := op.ApplyTree(start); err != nil {
			return nil, err
		}
		initOps = append(initOps, op)
	}
	init := &exState{tree: start, pending: normalizePending(start, q.Equalities), ops: initOps, cost: cost}

	h := &stateHeap{init}
	heap.Init(h)
	visited := map[string]bool{}
	explored := 0
	for h.Len() > 0 {
		if err := p.ctxErr(); err != nil {
			return nil, err
		}
		st := heap.Pop(h).(*exState)
		key := stateKey(st)
		if visited[key] {
			continue
		}
		visited[key] = true
		explored++
		if explored > maxStates {
			return nil, errSearchSpace
		}
		if p.isGoal(st, group, order) {
			return &Plan{Ops: st.ops, Cost: st.cost}, nil
		}
		for _, succ := range p.successors(st, q, req, group) {
			if !visited[stateKey(succ)] {
				heap.Push(h, succ)
			}
		}
	}
	return nil, fmt.Errorf("plan: no f-plan found for %s", q)
}

func normalizePending(t *ftree.Forest, pending []query.Equality) []query.Equality {
	var out []query.Equality
	for _, e := range pending {
		na, nb := t.ResolveAttr(e.A), t.ResolveAttr(e.B)
		if na != nil && na == nb {
			continue
		}
		out = append(out, e)
	}
	return out
}

func stateKey(st *exState) string {
	eqs := make([]string, len(st.pending))
	for i, e := range st.pending {
		eqs[i] = e.A + "=" + e.B
	}
	sort.Strings(eqs)
	return st.tree.CanonicalKey() + "||" + strings.Join(eqs, ";")
}

func (p *Planner) isGoal(st *exState, group, order []string) bool {
	if len(st.pending) > 0 {
		return false
	}
	groupSet := map[string]bool{}
	for _, g := range group {
		groupSet[g] = true
	}
	for _, n := range st.tree.Nodes() {
		if n.IsAgg() {
			continue
		}
		inG := false
		for _, a := range n.Attrs {
			if groupSet[a] {
				inG = true
			}
		}
		if !inG {
			return false // atomic attribute not yet aggregated
		}
	}
	if len(group) > 0 && st.tree.GroupingViolation(group) != nil {
		return false
	}
	if len(order) > 0 && st.tree.OrderViolation(order) != nil {
		return false
	}
	return true
}

// successors generates the permissible next operators per Proposition 3:
// merge/absorb for pending equalities, γ over any subtree disjoint from
// the group attributes and pending equalities, and any swap.
func (p *Planner) successors(st *exState, q *query.Query, req []ftree.AggField, group []string) []*exState {
	var out []*exState
	extend := func(op Op, dropEq int) {
		sim, _ := st.tree.Clone()
		if err := op.ApplyTree(sim); err != nil {
			return
		}
		ns := &exState{
			tree: sim,
			ops:  append(append([]Op{}, st.ops...), op),
			cost: st.cost + sim.SizeBound(p.Catalog),
		}
		for i, e := range st.pending {
			if i != dropEq {
				ns.pending = append(ns.pending, e)
			}
		}
		ns.pending = normalizePending(sim, ns.pending)
		out = append(out, ns)
	}

	for i, e := range st.pending {
		na, nb := st.tree.ResolveAttr(e.A), st.tree.ResolveAttr(e.B)
		if na == nil || nb == nil {
			continue
		}
		switch {
		case na.Parent == nb.Parent:
			extend(MergeOp{A: e.A, B: e.B}, i)
		case na.IsAncestorOf(nb):
			extend(AbsorbOp{Anc: e.A, Desc: e.B}, i)
		case nb.IsAncestorOf(na):
			extend(AbsorbOp{Anc: e.B, Desc: e.A}, i)
		}
	}

	forbidden := map[string]bool{}
	for _, g := range group {
		forbidden[g] = true
	}
	for _, e := range st.pending {
		forbidden[e.A] = true
		forbidden[e.B] = true
	}
	for _, n := range st.tree.Nodes() {
		if n.Parent != nil {
			extend(SwapOp{Attr: attrOf(n)}, -1)
		}
		// γ over the subtree rooted at n.
		blocked := false
		n.Walk(func(m *ftree.Node) {
			if !m.IsAgg() {
				for _, a := range m.Attrs {
					if forbidden[a] {
						blocked = true
					}
				}
			}
		})
		if blocked {
			continue
		}
		sub := map[string]bool{}
		for _, a := range n.SubtreeAttrs() {
			sub[a] = true
		}
		fields := PartialFields(req, sub)
		if n.IsLeaf() && n.IsAgg() && fieldsSuperset(n.Agg.Fields, fields) {
			continue // no-op
		}
		if fops.CanGamma(n, fields) != nil {
			continue
		}
		extend(GammaOp{Attr: attrOf(n), Fields: fields}, -1)
	}
	return out
}
