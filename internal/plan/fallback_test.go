package plan

import (
	"testing"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

func ivp(i int64) values.Value { return values.NewInt(i) }

func TestExhaustiveFallsBackToGreedy(t *testing.T) {
	f, cat := pizzeriaForest()
	q := revenueQuery()
	// A one-state budget forces the errSearchSpace fallback; the planner
	// must still return a working greedy plan.
	p := &Planner{Catalog: cat, PartialAgg: true, Exhaustive: true, MaxStates: 1}
	pl, err := p.Plan(f, q)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	final, _, err := pl.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if final.GroupingViolation([]string{"customer"}) != nil {
		t.Errorf("fallback plan does not reach the goal:\n%s", final)
	}
}

func TestExhaustiveSPJUsesGreedy(t *testing.T) {
	// The exhaustive search handles aggregation queries; SPJ queries go
	// through the greedy path even when Exhaustive is set.
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	cat := []ftree.CatalogRelation{{Name: "R", Attrs: []string{"a", "b", "c"}, Size: 10}}
	q := &query.Query{
		Relations: []string{"R"},
		OrderBy:   []query.OrderItem{{Attr: "b"}},
	}
	pl, err := (&Planner{Catalog: cat, Exhaustive: true}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := pl.Simulate(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !final.SupportsOrder([]string{"b"}) {
		t.Errorf("order not supported after plan:\n%s", final)
	}
}

func TestGreedyFilterOnly(t *testing.T) {
	// Constant selections alone produce a pure-selection plan.
	f := ftree.New()
	f.NewRelationPath("a", "b")
	cat := []ftree.CatalogRelation{{Name: "R", Attrs: []string{"a", "b"}, Size: 10}}
	q := &query.Query{
		Relations: []string{"R"},
		Filters:   []query.Filter{{Attr: "b", Op: 0 /* EQ */, Const: ivp(1)}},
	}
	pl, err := (&Planner{Catalog: cat}).Plan(f, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Ops) != 1 {
		t.Errorf("want exactly the selection op, got %s", pl)
	}
}
