// Package plan implements f-plans (sequences of f-plan operators) and the
// two optimisation strategies of Section 5: the polynomial-time greedy
// heuristic (Section 5.2) and the exhaustive minimum-cost search over the
// space of permissible operator sequences (Section 5.1) using Dijkstra's
// algorithm with the factorisation size bounds of package ftree as cost.
package plan

import (
	"context"
	"fmt"
	"strings"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// Op is one symbolic f-plan operator. Ops address nodes by attribute
// names so a plan can be executed against any FRel whose f-tree matches
// the planning-time tree, and simulated on bare f-trees for costing.
type Op interface {
	// Apply executes the operator on a factorised relation.
	Apply(fr fops.Rel) error
	// ApplyTree simulates the operator's f-tree effect (for planning).
	ApplyTree(t *ftree.Forest) error
	// String renders the operator.
	String() string
}

// SwapOp is the restructuring operator χ: the named attribute's node is
// exchanged with its parent.
type SwapOp struct{ Attr string }

// Apply implements Op.
func (o SwapOp) Apply(fr fops.Rel) error { return fr.Swap(o.Attr) }

// ApplyTree implements Op.
func (o SwapOp) ApplyTree(t *ftree.Forest) error {
	n := t.ResolveAttr(o.Attr)
	if n == nil {
		return fmt.Errorf("plan: swap: unknown attribute %q", o.Attr)
	}
	p, err := ftree.PlanSwap(n)
	if err != nil {
		return err
	}
	t.ApplySwap(p)
	return nil
}

func (o SwapOp) String() string { return "χ(" + o.Attr + ")" }

// MergeOp is the equality selection between sibling nodes.
type MergeOp struct{ A, B string }

// Apply implements Op.
func (o MergeOp) Apply(fr fops.Rel) error { return fr.Merge(o.A, o.B) }

// ApplyTree implements Op.
func (o MergeOp) ApplyTree(t *ftree.Forest) error {
	x, y := t.ResolveAttr(o.A), t.ResolveAttr(o.B)
	if x == nil || y == nil {
		return fmt.Errorf("plan: merge: unknown attribute %q or %q", o.A, o.B)
	}
	if x == y {
		return nil
	}
	p, err := ftree.PlanMerge(t, x, y)
	if err != nil {
		return err
	}
	t.ApplyMerge(p)
	return nil
}

func (o MergeOp) String() string { return "merge(" + o.A + "=" + o.B + ")" }

// AbsorbOp is the equality selection between an ancestor and a descendant
// node.
type AbsorbOp struct{ Anc, Desc string }

// Apply implements Op.
func (o AbsorbOp) Apply(fr fops.Rel) error { return fr.Absorb(o.Anc, o.Desc) }

// ApplyTree implements Op.
func (o AbsorbOp) ApplyTree(t *ftree.Forest) error {
	a, d := t.ResolveAttr(o.Anc), t.ResolveAttr(o.Desc)
	if a == nil || d == nil {
		return fmt.Errorf("plan: absorb: unknown attribute %q or %q", o.Anc, o.Desc)
	}
	if a == d {
		return nil
	}
	p, err := ftree.PlanAbsorb(a, d)
	if err != nil {
		return err
	}
	t.ApplyAbsorb(p)
	return nil
}

func (o AbsorbOp) String() string { return "absorb(" + o.Anc + "=" + o.Desc + ")" }

// SelectConstOp is the selection with a constant; it does not change the
// f-tree.
type SelectConstOp struct {
	Attr  string
	Cmp   fops.CmpOp
	Const values.Value
}

// Apply implements Op.
func (o SelectConstOp) Apply(fr fops.Rel) error {
	return fr.SelectConst(o.Attr, o.Cmp, o.Const)
}

// ApplyTree implements Op.
func (o SelectConstOp) ApplyTree(t *ftree.Forest) error {
	if t.ResolveAttr(o.Attr) == nil {
		return fmt.Errorf("plan: select: unknown attribute %q", o.Attr)
	}
	return nil
}

func (o SelectConstOp) String() string {
	return fmt.Sprintf("σ(%s%s%s)", o.Attr, o.Cmp, o.Const)
}

// GammaOp is the aggregation operator γ_fields(U) over the subtree rooted
// at the node carrying Attr.
type GammaOp struct {
	Attr   string
	Fields []ftree.AggField
}

// Apply implements Op.
func (o GammaOp) Apply(fr fops.Rel) error { return fr.Gamma(o.Attr, o.Fields) }

// ApplyTree implements Op.
func (o GammaOp) ApplyTree(t *ftree.Forest) error {
	n := t.ResolveAttr(o.Attr)
	if n == nil {
		return fmt.Errorf("plan: γ: unknown attribute %q", o.Attr)
	}
	if err := fops.CanGamma(n, o.Fields); err != nil {
		return err
	}
	p, err := ftree.PlanAgg(t, n, o.Fields)
	if err != nil {
		return err
	}
	t.ApplyAgg(p)
	return nil
}

func (o GammaOp) String() string {
	fs := make([]string, len(o.Fields))
	for i, f := range o.Fields {
		fs[i] = f.String()
	}
	return fmt.Sprintf("γ_{%s}(%s)", strings.Join(fs, ","), o.Attr)
}

// RemoveOp projects away a leaf attribute.
type RemoveOp struct{ Attr string }

// Apply implements Op.
func (o RemoveOp) Apply(fr fops.Rel) error { return fr.RemoveLeaf(o.Attr) }

// ApplyTree implements Op.
func (o RemoveOp) ApplyTree(t *ftree.Forest) error {
	n := t.ResolveAttr(o.Attr)
	if n == nil {
		return fmt.Errorf("plan: remove: unknown attribute %q", o.Attr)
	}
	p, err := ftree.PlanRemoveLeaf(t, n)
	if err != nil {
		return err
	}
	t.ApplyRemoveLeaf(p)
	return nil
}

func (o RemoveOp) String() string { return "π- (" + o.Attr + ")" }

// RenameOp renames an attribute or aliases an aggregate node.
type RenameOp struct{ From, To string }

// Apply implements Op.
func (o RenameOp) Apply(fr fops.Rel) error { return fr.Rename(o.From, o.To) }

// ApplyTree implements Op.
func (o RenameOp) ApplyTree(t *ftree.Forest) error {
	n := t.ResolveAttr(o.From)
	if n == nil {
		return fmt.Errorf("plan: rename: unknown attribute %q", o.From)
	}
	if n.IsAgg() {
		n.Alias = o.To
		return nil
	}
	for i, a := range n.Attrs {
		if a == o.From {
			n.Attrs[i] = o.To
			return nil
		}
	}
	return fmt.Errorf("plan: rename: attribute %q not in class", o.From)
}

func (o RenameOp) String() string { return "ρ(" + o.From + "→" + o.To + ")" }

// Plan is an f-plan: a sequence of operators.
type Plan struct {
	Ops []Op
	// Cost is the estimated cost under the size-bound metric, filled in
	// by the planners.
	Cost float64
}

// Execute applies the plan's operators to the factorised relation in
// order.
func (p *Plan) Execute(fr fops.Rel) error {
	return p.ExecuteContext(context.Background(), fr)
}

// ExecuteContext is Execute with cancellation: the context is checked
// before each operator, so a long plan over a large factorisation stops
// promptly when the context fires. The representation is left in
// whatever intermediate state it had reached; callers discard it on
// error.
func (p *Plan) ExecuteContext(ctx context.Context, fr fops.Rel) error {
	for _, op := range p.Ops {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op.Apply(fr); err != nil {
			return fmt.Errorf("plan: executing %s: %w", op, err)
		}
	}
	return nil
}

// ExecuteParallel is ExecuteContext with an intra-query parallelism
// hint: when fr is an arena relation its operators may fan their
// occurrence loops across up to par segment workers (see
// fops.ARel.Par); par ≤ 1, or a pointer-based relation, executes
// exactly like ExecuteContext. The results are identical either way.
func (p *Plan) ExecuteParallel(ctx context.Context, fr fops.Rel, par int) error {
	if ar, ok := fr.(*fops.ARel); ok {
		ar.Par = par
	}
	return p.ExecuteContext(ctx, fr)
}

// Simulate applies the plan to a clone of the f-tree, returning the final
// tree and the summed size-bound cost of all intermediate trees.
func (p *Plan) Simulate(t *ftree.Forest, cat []ftree.CatalogRelation) (*ftree.Forest, float64, error) {
	sim, _ := t.Clone()
	cost := sim.SizeBound(cat)
	for _, op := range p.Ops {
		if err := op.ApplyTree(sim); err != nil {
			return nil, 0, fmt.Errorf("plan: simulating %s: %w", op, err)
		}
		cost += sim.SizeBound(cat)
	}
	return sim, cost, nil
}

// String renders the plan as a sequence of operators.
func (p *Plan) String() string {
	ss := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		ss[i] = op.String()
	}
	return strings.Join(ss, " ; ")
}
