package plan

import (
	"context"
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
)

// Planner computes f-plans for queries over a given input f-tree.
type Planner struct {
	// Catalog provides relation sizes for the size-bound cost metric.
	Catalog []ftree.CatalogRelation
	// PartialAgg enables eager partial aggregation (step 2 of the greedy
	// heuristic) before restructuring; disabling it is the "lazy
	// aggregation" ablation, which aggregates only after restructuring.
	PartialAgg bool
	// Exhaustive switches to the Dijkstra search of Section 5.1;
	// otherwise the greedy heuristic of Section 5.2 is used.
	Exhaustive bool
	// MaxStates caps the exhaustive search; beyond it Plan falls back to
	// the greedy heuristic. 0 means a default of 50000.
	MaxStates int
	// Ctx, when non-nil, is checked between optimisation steps so long
	// searches honour cancellation and deadlines; Plan returns the
	// context's error when it fires.
	Ctx context.Context
}

// ctxErr reports the planner context's error, if a context is set and it
// has fired.
func (p *Planner) ctxErr() error {
	if p.Ctx != nil {
		return p.Ctx.Err()
	}
	return nil
}

// RequiredFields maps the query's aggregates to f-tree aggregation
// fields, expanding avg into (sum, count) and deduplicating.
func RequiredFields(aggs []query.Aggregate) []ftree.AggField {
	var out []ftree.AggField
	seen := map[ftree.AggField]bool{}
	add := func(f ftree.AggField) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, a := range aggs {
		switch a.Fn {
		case query.Count:
			add(ftree.AggField{Fn: ftree.Count})
		case query.Sum:
			add(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
		case query.Min:
			add(ftree.AggField{Fn: ftree.Min, Arg: a.Arg})
		case query.Max:
			add(ftree.AggField{Fn: ftree.Max, Arg: a.Arg})
		case query.Avg:
			add(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
			add(ftree.AggField{Fn: ftree.Count})
		}
	}
	return out
}

// PartialFields restricts the required fields to a subtree with the given
// attribute set, following the decomposition rules of Proposition 2: sums
// whose argument lies outside the subtree contribute a count; min/max
// whose argument lies outside contribute nothing; the empty result
// defaults to a bare count so the subtree still collapses.
func PartialFields(required []ftree.AggField, subtreeAttrs map[string]bool) []ftree.AggField {
	var out []ftree.AggField
	seen := map[ftree.AggField]bool{}
	add := func(f ftree.AggField) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, f := range required {
		switch f.Fn {
		case ftree.Count:
			add(ftree.AggField{Fn: ftree.Count})
		case ftree.Sum:
			if subtreeAttrs[f.Arg] {
				add(f)
			} else {
				add(ftree.AggField{Fn: ftree.Count})
			}
		case ftree.Min, ftree.Max:
			if subtreeAttrs[f.Arg] {
				add(f)
			}
		}
	}
	if len(out) == 0 {
		out = []ftree.AggField{{Fn: ftree.Count}}
	}
	return out
}

// GroupOutputOrder returns the lexicographic base order of a grouped
// query's output: the attribute sequence the engine sorts grouped rows
// by ascending before ORDER BY applies as a stable sort on top. The
// distributed coordinator relies on this to stitch shard streams back
// into serial output order.
func GroupOutputOrder(q *query.Query) []string { return groupAttrsOrderFirst(q) }

// groupAttrsOrderFirst returns the group-by attributes with those also in
// the order-by list first (in list order).
func groupAttrsOrderFirst(q *query.Query) []string {
	inG := map[string]bool{}
	for _, g := range q.GroupBy {
		inG[g] = true
	}
	var out []string
	taken := map[string]bool{}
	for _, o := range q.OrderBy {
		if inG[o.Attr] && !taken[o.Attr] {
			out = append(out, o.Attr)
			taken[o.Attr] = true
		}
	}
	for _, g := range q.GroupBy {
		if !taken[g] {
			out = append(out, g)
			taken[g] = true
		}
	}
	return out
}

// attrOf returns a name that resolves back to the node: the first class
// member for atomic nodes, the alias or label for aggregate nodes.
func attrOf(n *ftree.Node) string {
	if n.IsAgg() {
		if n.Alias != "" {
			return n.Alias
		}
		return n.Agg.Label()
	}
	return n.Attrs[0]
}

// Plan computes an f-plan implementing the query's selections,
// aggregation (as partial γ operators plus restructuring) and
// group/order restructuring over the input f-tree. Constant selections
// come first; the engine finalises ordering by aggregate outputs, HAVING
// and limits after executing the plan.
func (p *Planner) Plan(t *ftree.Forest, q *query.Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if p.Exhaustive && q.IsAggregate() {
		pl, err := p.planExhaustive(t, q)
		if err == nil {
			return pl, nil
		}
		// Fall back to greedy on search-space overflow.
		if err != errSearchSpace {
			return nil, err
		}
	}
	return p.planGreedy(t, q)
}

type greedyState struct {
	p       *Planner
	sim     *ftree.Forest
	q       *query.Query
	ops     []Op
	cost    float64
	pending []query.Equality
	group   []string
	order   []string // order attributes restructured pre-finalisation
	req     []ftree.AggField
}

func (p *Planner) planGreedy(t *ftree.Forest, q *query.Query) (*Plan, error) {
	sim, _ := t.Clone()
	st := &greedyState{p: p, sim: sim, q: q, req: RequiredFields(q.Aggregates)}
	st.cost = sim.SizeBound(p.Catalog)
	if q.IsAggregate() {
		// Place group attributes in order-by-first order so that the
		// grouping (step 4) and ordering (step 5) placements agree —
		// Theorem 1 does not care about the order within G, Theorem 2
		// does.
		st.group = groupAttrsOrderFirst(q)
		groupSet := map[string]bool{}
		for _, g := range q.GroupBy {
			groupSet[g] = true
		}
		for _, o := range q.OrderBy {
			if groupSet[o.Attr] {
				st.order = append(st.order, o.Attr)
			}
		}
	} else {
		for _, o := range q.OrderBy {
			st.order = append(st.order, o.Attr)
		}
	}
	for _, f := range q.Filters {
		if err := st.emit(SelectConstOp{Attr: f.Attr, Cmp: f.Op, Const: f.Const}); err != nil {
			return nil, err
		}
	}
	st.pending = append(st.pending, q.Equalities...)

	for iter := 0; ; iter++ {
		if iter > 10000 {
			return nil, fmt.Errorf("plan: greedy did not converge on %s", q)
		}
		if err := p.ctxErr(); err != nil {
			return nil, err
		}
		progressed, err := st.step()
		if err != nil {
			return nil, err
		}
		if !progressed {
			break
		}
	}
	if !st.q.IsAggregate() {
		if err := st.projectAndOrder(); err != nil {
			return nil, err
		}
	}
	return &Plan{Ops: st.ops, Cost: st.cost}, nil
}

func (st *greedyState) emit(op Op) error {
	if err := op.ApplyTree(st.sim); err != nil {
		return err
	}
	st.ops = append(st.ops, op)
	st.cost += st.sim.SizeBound(st.p.Catalog)
	return nil
}

// step performs one greedy decision (Section 5.2 steps 1–5); it returns
// false when no step applies.
func (st *greedyState) step() (bool, error) {
	// Step 1: permissible selection operators, preferring the
	// highest-placed nodes.
	if done, err := st.trySelection(); done || err != nil {
		return done, err
	}
	// Step 2: permissible aggregation with maximal subtree (eager mode).
	if st.q.IsAggregate() && st.p.PartialAgg {
		if done, err := st.tryAggregate(); done || err != nil {
			return done, err
		}
	}
	// Step 3: restructure for a pending equality.
	if len(st.pending) > 0 {
		return true, st.restructureForEquality()
	}
	// Step 4: push group-by attributes up.
	if st.q.IsAggregate() {
		if v := st.sim.GroupingViolation(st.group); v != nil {
			return true, st.emit(SwapOp{Attr: attrOf(v)})
		}
	}
	// Lazy mode: aggregate only after all restructuring.
	if st.q.IsAggregate() && !st.p.PartialAgg {
		if done, err := st.tryAggregate(); done || err != nil {
			return done, err
		}
	}
	// Step 5: push order attributes into position.
	if len(st.order) > 0 {
		if v := st.sim.OrderViolation(st.order); v != nil {
			return true, st.emit(SwapOp{Attr: attrOf(v)})
		}
	}
	return false, nil
}

// trySelection resolves one pending equality via merge or absorb if the
// nodes are already in position; equalities within one class are dropped.
func (st *greedyState) trySelection() (bool, error) {
	type cand struct {
		idx   int
		op    Op
		depth int
	}
	var best *cand
	for i, e := range st.pending {
		na := st.sim.ResolveAttr(e.A)
		nb := st.sim.ResolveAttr(e.B)
		if na == nil || nb == nil {
			return false, fmt.Errorf("plan: equality %s=%s references unknown attribute", e.A, e.B)
		}
		if na == nb {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			return true, nil
		}
		var op Op
		switch {
		case na.Parent == nb.Parent:
			op = MergeOp{A: e.A, B: e.B}
		case na.IsAncestorOf(nb):
			op = AbsorbOp{Anc: e.A, Desc: e.B}
		case nb.IsAncestorOf(na):
			op = AbsorbOp{Anc: e.B, Desc: e.A}
		default:
			continue
		}
		d := depth(na)
		if dd := depth(nb); dd < d {
			d = dd
		}
		if best == nil || d < best.depth {
			best = &cand{idx: i, op: op, depth: d}
		}
	}
	if best == nil {
		return false, nil
	}
	st.pending = append(st.pending[:best.idx], st.pending[best.idx+1:]...)
	return true, st.emit(best.op)
}

func depth(n *ftree.Node) int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// tryAggregate finds a maximal permissible non-noop aggregation subtree
// and emits γ over it.
func (st *greedyState) tryAggregate() (bool, error) {
	forbidden := map[string]bool{}
	for _, g := range st.group {
		forbidden[g] = true
	}
	for _, e := range st.pending {
		forbidden[e.A] = true
		forbidden[e.B] = true
	}
	qualifies := func(n *ftree.Node) bool {
		attrs := n.SubtreeAttrs()
		for _, a := range attrs {
			if forbidden[a] {
				return false
			}
		}
		// Group nodes themselves (their classes) must not be inside U.
		ok := true
		n.Walk(func(m *ftree.Node) {
			if !m.IsAgg() {
				for _, a := range m.Attrs {
					if forbidden[a] {
						ok = false
					}
				}
			}
		})
		if !ok {
			return false
		}
		sub := map[string]bool{}
		for _, a := range attrs {
			sub[a] = true
		}
		fields := PartialFields(st.req, sub)
		if n.IsLeaf() && n.IsAgg() && fieldsSuperset(n.Agg.Fields, fields) {
			return false // no-op
		}
		return fops.CanGamma(n, fields) == nil
	}
	var target *ftree.Node
	for _, n := range st.sim.Nodes() {
		if qualifies(n) && (n.Parent == nil || !qualifies(n.Parent)) {
			target = n
			break
		}
	}
	if target == nil {
		return false, nil
	}
	sub := map[string]bool{}
	for _, a := range target.SubtreeAttrs() {
		sub[a] = true
	}
	fields := PartialFields(st.req, sub)
	return true, st.emit(GammaOp{Attr: attrOf(target), Fields: fields})
}

func fieldsSuperset(have, want []ftree.AggField) bool {
	set := map[ftree.AggField]bool{}
	for _, f := range have {
		set[f] = true
	}
	for _, f := range want {
		if !set[f] {
			return false
		}
	}
	return true
}

// restructureForEquality picks the cheapest of pushing up A, B, or both
// alternately until the nodes of some pending equality are siblings or in
// an ancestor relation (step 3 of the heuristic).
func (st *greedyState) restructureForEquality() error {
	e := st.pending[0]
	type option struct {
		ops  []Op
		cost float64
	}
	var opts []option
	for _, mode := range []int{0, 1, 2} { // 0: push A, 1: push B, 2: alternate
		sim, _ := st.sim.Clone()
		var ops []Op
		cost := 0.0
		turn := 0
		ok := true
		for i := 0; i < 100; i++ {
			na, nb := sim.ResolveAttr(e.A), sim.ResolveAttr(e.B)
			if na == nil || nb == nil {
				ok = false
				break
			}
			if related(na, nb) {
				break
			}
			var target *ftree.Node
			switch mode {
			case 0:
				target = pickNonRoot(na, nb)
			case 1:
				target = pickNonRoot(nb, na)
			default:
				if turn%2 == 0 {
					target = pickNonRoot(na, nb)
				} else {
					target = pickNonRoot(nb, na)
				}
				turn++
			}
			if target == nil {
				ok = false
				break
			}
			op := SwapOp{Attr: attrOf(target)}
			if err := op.ApplyTree(sim); err != nil {
				ok = false
				break
			}
			ops = append(ops, op)
			cost += sim.SizeBound(st.p.Catalog)
		}
		if ok {
			na, nb := sim.ResolveAttr(e.A), sim.ResolveAttr(e.B)
			if na != nil && nb != nil && related(na, nb) {
				opts = append(opts, option{ops: ops, cost: cost})
			}
		}
	}
	if len(opts) == 0 {
		return fmt.Errorf("plan: cannot restructure for %s=%s", e.A, e.B)
	}
	sort.Slice(opts, func(i, j int) bool { return opts[i].cost < opts[j].cost })
	for _, op := range opts[0].ops {
		if err := st.emit(op); err != nil {
			return err
		}
	}
	return nil
}

// related reports whether merge or absorb applies to the two nodes.
func related(a, b *ftree.Node) bool {
	return a.Parent == b.Parent || a.IsAncestorOf(b) || b.IsAncestorOf(a)
}

// pickNonRoot returns the preferred node to push up: pref if it has a
// parent, else alt if it has one, else nil.
func pickNonRoot(pref, alt *ftree.Node) *ftree.Node {
	if pref.Parent != nil {
		return pref
	}
	if alt.Parent != nil {
		return alt
	}
	return nil
}

// projectAndOrder implements projection for SPJ queries (sink each
// non-projected attribute to a leaf, then remove it) followed by the
// order restructuring loop.
func (st *greedyState) projectAndOrder() error {
	if len(st.q.Projection) > 0 {
		keep := map[string]bool{}
		for _, a := range st.q.Projection {
			keep[a] = true
		}
		for {
			var victim *ftree.Node
			for _, n := range st.sim.Nodes() {
				if n.IsAgg() {
					continue
				}
				needed := false
				for _, a := range n.Attrs {
					if keep[a] {
						needed = true
					}
				}
				if !needed {
					victim = n
					break
				}
			}
			if victim == nil {
				break
			}
			// Sink to a leaf, then remove.
			for i := 0; !victim.IsLeaf(); i++ {
				if i > 100 {
					return fmt.Errorf("plan: projection sink did not converge")
				}
				if err := st.emit(SwapOp{Attr: attrOf(victim.Children[0])}); err != nil {
					return err
				}
			}
			if err := st.emit(RemoveOp{Attr: attrOf(victim)}); err != nil {
				return err
			}
		}
	}
	for i := 0; ; i++ {
		if i > 1000 {
			return fmt.Errorf("plan: order restructuring did not converge")
		}
		v := st.sim.OrderViolation(st.order)
		if v == nil {
			return nil
		}
		if err := st.emit(SwapOp{Attr: attrOf(v)}); err != nil {
			return err
		}
	}
}

// FinalTree returns the f-tree resulting from simulating the plan on t.
func FinalTree(t *ftree.Forest, p *Plan) (*ftree.Forest, error) {
	sim, _ := t.Clone()
	for _, op := range p.Ops {
		if err := op.ApplyTree(sim); err != nil {
			return nil, err
		}
	}
	return sim, nil
}
