package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%7))))
	}
	return out
}

// collect replays a log file into a slice of (seq, payload copies).
func collect(t *testing.T, path string) (seqs []uint64, recs [][]byte) {
	t.Helper()
	err := Replay(path, func(seq uint64, p []byte) error {
		seqs = append(seqs, seq)
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(100)
	for _, p := range want {
		if err := l.AppendSync(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Records(); got != 100 {
		t.Fatalf("Records() = %d, want 100", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, recs := collect(t, path)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, p := range want {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, seqs[i])
		}
		if !bytes.Equal(recs[i], p) {
			t.Fatalf("record %d: got %q, want %q", i, recs[i], p)
		}
	}
}

func TestOpenContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.AppendSync([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var replayed int
	l2, err := Open(path, func(seq uint64, p []byte) error { replayed++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 10 {
		t.Fatalf("replayed %d, want 10", replayed)
	}
	if err := l2.AppendSync([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if got := l2.Seq(); got != 11 {
		t.Fatalf("Seq() = %d, want 11", got)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, path)
	if len(seqs) != 11 || seqs[10] != 11 {
		t.Fatalf("after reopen+append: %d records, last seq %v", len(seqs), seqs)
	}
}

// TestTornTailTruncatedAtEveryBoundary cuts a valid log at every byte
// length and asserts Open recovers exactly the records whose frames are
// fully intact, truncates the rest, and leaves the log appendable.
func TestTornTailTruncatedAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	l, err := Create(full)
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(8)
	var ends []int64 // byte offset at which record i ends
	for _, p := range want {
		if err := l.AppendSync(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	intactAt := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= int64(cut) {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(b); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%04d.log", cut))
		if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		l, err := Open(path, func(seq uint64, p []byte) error {
			if !bytes.Equal(p, want[got]) {
				return fmt.Errorf("record %d mismatch", got)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if want := intactAt(cut); got != want {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, want)
		}
		// The torn tail must be gone and the log must accept appends.
		if err := l.AppendSync([]byte("tail")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		seqs, _ := collect(t, path)
		if len(seqs) != intactAt(cut)+1 {
			t.Fatalf("cut %d: %d records after recovery append", cut, len(seqs))
		}
		os.Remove(path)
	}
}

// TestCorruptTailBit flips one bit in the last record's payload: replay
// must stop before it (checksum) and Open must truncate it.
func TestCorruptTailBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendSync([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	l2, err := Open(path, func(uint64, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if n != 4 {
		t.Fatalf("replayed %d records past a corrupt tail, want 4", n)
	}
}

// TestSequenceBreakStopsScan hand-assembles a log whose third frame has
// a valid checksum but a skipped sequence number; the scan must stop at
// the break.
func TestSequenceBreakStopsScan(t *testing.T) {
	frame := func(seq uint64, p []byte) []byte {
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, 0)
		b = binary.LittleEndian.AppendUint64(b, seq)
		b = append(b, p...)
		binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], crcTable))
		return b
	}
	var file []byte
	file = append(file, frame(1, []byte("a"))...)
	file = append(file, frame(2, []byte("b"))...)
	file = append(file, frame(4, []byte("d"))...) // gap: seq 3 missing
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := Replay(path, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records past a sequence break, want 2", n)
	}
}

func TestConcurrentAppendersGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.AppendSync([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	syncs := l.Syncs()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, path)
	if len(seqs) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(seqs), writers*per)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("record %d has seq %d (appends not serialised)", i, s)
		}
	}
	t.Logf("group commit: %d records in %d fsyncs", writers*per, syncs)
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing file succeeded")
	}
}
