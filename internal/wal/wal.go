// Package wal implements an append-only, checksummed write-ahead log
// with batched fsync (group commit) and replay-on-open.
//
// Record framing (all integers little-endian):
//
//	u32  payload length
//	u32  CRC-32C over the sequence number and payload bytes
//	u64  sequence number (1-based, incremented by one per record)
//	...  payload
//
// The log tolerates torn tails: Open scans the file front to back,
// replays every record whose length, checksum and sequence number check
// out, and truncates the file at the first frame that does not — the
// bytes a crash mid-write (or mid-fsync) can leave behind. Anything
// after a bad frame is unreachable by construction (appends are strictly
// sequential), so truncation never drops a durable record.
//
// Appends are group-committed: Append writes the frame into the OS
// buffer under a short lock and returns a Ticket; a background syncer
// issues one fsync per batch of outstanding tickets and wakes all their
// waiters, so N concurrent writers pay ~1 fsync, not N. A writer that
// needs durability before acknowledging calls Ticket.Wait (or the
// AppendSync convenience).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	frameHeaderLen = 16
	// maxRecord bounds one payload; larger lengths are treated as
	// corruption on replay and refused on append.
	maxRecord = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Handler consumes one replayed record. The payload slice is only valid
// for the duration of the call. A handler error aborts the replay and
// fails Open (the log holds records the application cannot apply —
// corruption above the framing layer).
type Handler func(seq uint64, payload []byte) error

// Log is an append-only write-ahead log backed by one file. Append may
// be called from any number of goroutines; Close must not race with
// Append.
type Log struct {
	path string
	f    *os.File

	mu       sync.Mutex
	seq      uint64
	size     int64
	records  int64
	closed   bool
	writeErr error // sticky: a failed frame write poisons the tail
	pending  []chan error
	buf      []byte // frame scratch, reused across appends

	wake  chan struct{}
	done  chan struct{}
	syncs atomic.Int64
}

// Ticket represents one appended record's position in the group-commit
// queue. Wait may be called at most once.
type Ticket struct{ ch chan error }

// Wait blocks until the fsync covering the record has completed and
// returns its error.
func (t Ticket) Wait() error {
	if t.ch == nil {
		return nil
	}
	return <-t.ch
}

// Create creates a new, empty log file at path (which must not exist)
// and fsyncs the directory so the file itself survives a crash.
func Create(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return newLog(path, f, 0, 0, 0), nil
}

// Open opens (creating if absent) the log at path, replays every intact
// record through h in order, truncates any torn tail, and returns the
// log positioned for append. The next record continues the replayed
// sequence numbering.
func Open(path string, h Handler) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	valid, records, lastSeq, herr := scan(b, h)
	if herr != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s: %w", path, herr)
	}
	if valid < int64(len(b)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return newLog(path, f, lastSeq, valid, records), nil
}

// Replay reads a sealed segment read-only, invoking h for every intact
// record. It never modifies the file; a torn tail is skipped silently
// (its records were never acknowledged).
func Replay(path string, h Handler) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_, _, _, herr := scan(b, h)
	if herr != nil {
		return fmt.Errorf("wal: %s: %w", path, herr)
	}
	return nil
}

// scan walks the framed records in b, calling h for each valid one, and
// returns the byte length of the valid prefix, the record count and the
// last sequence number seen.
func scan(b []byte, h Handler) (valid int64, records int64, lastSeq uint64, err error) {
	off := 0
	for {
		if len(b)-off < frameHeaderLen {
			return int64(off), records, lastSeq, nil
		}
		ln := binary.LittleEndian.Uint32(b[off:])
		if ln > maxRecord || off+frameHeaderLen+int(ln) > len(b) {
			return int64(off), records, lastSeq, nil
		}
		wantCRC := binary.LittleEndian.Uint32(b[off+4:])
		seq := binary.LittleEndian.Uint64(b[off+8:])
		body := b[off+8 : off+frameHeaderLen+int(ln)]
		if crc32.Checksum(body, crcTable) != wantCRC {
			return int64(off), records, lastSeq, nil
		}
		if seq != lastSeq+1 {
			// A sequence break after a valid checksum means the file was
			// assembled out of order — stop at the last contiguous record.
			return int64(off), records, lastSeq, nil
		}
		if h != nil {
			if herr := h(seq, body[8:]); herr != nil {
				return int64(off), records, lastSeq, herr
			}
		}
		lastSeq = seq
		records++
		off += frameHeaderLen + int(ln)
	}
}

func newLog(path string, f *os.File, seq uint64, size, records int64) *Log {
	l := &Log{
		path:    path,
		f:       f,
		seq:     seq,
		size:    size,
		records: records,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go l.run()
	return l
}

// Append frames and writes one record into the OS buffer and returns a
// Ticket whose Wait blocks until the record is fsynced. The write itself
// is durable only after Wait (or a later Sync/Close) returns nil.
func (l *Log) Append(payload []byte) (Ticket, error) {
	if len(payload) > maxRecord {
		return Ticket{}, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Ticket{}, ErrClosed
	}
	if l.writeErr != nil {
		err := l.writeErr
		l.mu.Unlock()
		return Ticket{}, err
	}
	seq := l.seq + 1
	frame := l.buf[:0]
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, 0) // CRC patched below
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	frame = append(frame, payload...)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], crcTable))
	l.buf = frame[:0]
	if _, err := l.f.Write(frame); err != nil {
		// A partial frame may now sit at the tail; poison the log so no
		// later append writes after it (replay would stop there anyway).
		l.writeErr = fmt.Errorf("wal: append: %w", err)
		err := l.writeErr
		l.mu.Unlock()
		return Ticket{}, err
	}
	l.seq = seq
	l.size += int64(len(frame))
	l.records++
	ch := make(chan error, 1)
	l.pending = append(l.pending, ch)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return Ticket{ch: ch}, nil
}

// AppendSync appends one record and waits for its group commit.
func (l *Log) AppendSync(payload []byte) error {
	t, err := l.Append(payload)
	if err != nil {
		return err
	}
	return t.Wait()
}

// run is the group-commit loop: one fsync per batch of pending tickets.
func (l *Log) run() {
	defer close(l.done)
	for {
		<-l.wake
		l.mu.Lock()
		pending := l.pending
		l.pending = nil
		closed := l.closed
		l.mu.Unlock()
		if len(pending) > 0 {
			err := l.f.Sync()
			l.syncs.Add(1)
			for _, ch := range pending {
				ch <- err
			}
		}
		if closed {
			return
		}
	}
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	l.syncs.Add(1)
	return l.f.Sync()
}

// Close flushes pending appends, fsyncs and closes the file. Appends
// racing with Close fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the log's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the log (replayed plus
// appended).
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Seq returns the sequence number of the last appended record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Syncs returns the number of fsyncs issued — the group-commit
// effectiveness gauge (appends per sync).
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}
