// Package suppressed shows an audited one-off suppression.
package suppressed

import (
	//fdbvet:ignore unsafeslab audited aliasing fixture, reviewed against the slab layout rules
	"unsafe"
)

// Use is a stand-in for a vetted aliasing helper.
func Use(p unsafe.Pointer) unsafe.Pointer { return p }
