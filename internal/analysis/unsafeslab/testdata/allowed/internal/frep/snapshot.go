// Package frep stands in for the real internal/frep/snapshot.go: the
// file path suffix is on the allowlist, so unsafe is legal here.
package frep

import "unsafe"

// Alias is the blessed zero-copy slab reinterpretation.
func Alias(p unsafe.Pointer) unsafe.Pointer { return p }
