// Package bad uses unsafe aliasing outside the allowlist: every use
// is flagged.
package bad

import (
	"reflect"
	"unsafe" // want `import of unsafe outside the slab-aliasing allowlist`
)

func alias(p unsafe.Pointer) unsafe.Pointer { return p }

func header(b []byte) uintptr {
	h := (*reflect.SliceHeader)(alias(unsafe.Pointer(&b))) // want `reflect\.SliceHeader aliasing outside the slab-aliasing allowlist`
	return h.Data
}

func stringHeader() reflect.StringHeader { // want `reflect\.StringHeader aliasing outside the slab-aliasing allowlist`
	return reflect.StringHeader{} // want `reflect\.StringHeader aliasing outside the slab-aliasing allowlist`
}
