// Package unsafeslab confines unsafe slab aliasing to the two blessed
// files. The arena's zero-copy snapshot path reinterprets raw bytes as
// typed slabs — that is deliberate and audited in
// internal/frep/snapshot.go and internal/catalog/mmap_unix.go, and
// illegal everywhere else: importing unsafe, or reaching for the
// deprecated reflect.SliceHeader/reflect.StringHeader aliasing types,
// outside the allowlist is an error. _test.go files are exempt (they
// never ship), but note fdbvet does not load test files anyway.
package unsafeslab

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Allowlist names the files (by slash-separated path suffix) where
// unsafe aliasing is legal. Keep this list short and audited: every
// entry is a file whose unsafe use has been reviewed against the
// slab-layout rules in ARCHITECTURE.md.
var Allowlist = []string{
	"internal/frep/snapshot.go",
	"internal/catalog/mmap_unix.go",
}

// Analyzer is the unsafeslab invariant checker.
var Analyzer = &vetkit.Analyzer{
	Name: "unsafeslab",
	Doc:  "unsafe slab aliasing is confined to the audited allowlist files",
	Run:  run,
}

func run(pass *vetkit.Pass) error {
	for _, file := range pass.Files {
		name := filepath.ToSlash(pass.Fset.Position(file.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") || allowlisted(name) {
			continue
		}
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "unsafe" {
				pass.Reportf(imp.Pos(),
					"import of unsafe outside the slab-aliasing allowlist (%s)",
					strings.Join(Allowlist, ", "))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "SliceHeader" && sel.Sel.Name != "StringHeader" {
				return true
			}
			id, ok := vetkit.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "reflect" {
				pass.Reportf(sel.Pos(),
					"reflect.%s aliasing outside the slab-aliasing allowlist", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

// allowlisted reports whether the file path ends with one of the
// blessed suffixes.
func allowlisted(slashPath string) bool {
	for _, suffix := range Allowlist {
		if strings.HasSuffix(slashPath, suffix) {
			return true
		}
	}
	return false
}
