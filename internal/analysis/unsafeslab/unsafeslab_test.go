package unsafeslab_test

import (
	"testing"

	"github.com/factordb/fdb/internal/analysis/unsafeslab"
	"github.com/factordb/fdb/internal/analysis/vetkit/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", unsafeslab.Analyzer)
}
