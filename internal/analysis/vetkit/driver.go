package vetkit

import (
	"fmt"
	"io"
	"sort"
)

// Check runs every applicable analyzer over every package, applies
// //fdbvet:ignore suppression, and returns the surviving diagnostics
// in file/position order. Malformed ignore directives are reported as
// diagnostics of the pseudo-analyzer "fdbvet" and are never
// suppressible.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg)
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			diags = append(diags, ds...)
		}
		diags = filterSuppressed(diags, dirs, pkg.Fset)
		all = append(all, bad...)
		all = append(all, diags...)
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return all, nil
}

// Main is the multichecker entry point: load the packages matching
// patterns (default "./...") from dir, run the analyzers, print
// diagnostics to out, and return the process exit code (0 clean,
// 1 findings, 2 usage/load failure).
func Main(out io.Writer, dir string, analyzers []*Analyzer, patterns []string) int {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	diags, err := Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(out, err)
		return 2
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		for _, d := range diags {
			fmt.Fprintf(out, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
