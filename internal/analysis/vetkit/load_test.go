package vetkit

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadRepoPackage exercises the real loader end to end: go list
// -export over a module package, source parsing, and type-checking
// against compiler export data.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Name != "wal" || !strings.HasSuffix(pkg.Path, "internal/wal") {
		t.Errorf("loaded %s (package %s), want internal/wal", pkg.Path, pkg.Name)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s loaded; fdbvet analyzes the production tree only", name)
		}
	}
	// Type information must actually be populated: resolve some
	// identifier use to an object.
	resolved := false
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] != nil {
			resolved = true
			return false
		}
		return !resolved
	})
	if !resolved {
		t.Error("no identifier resolved to a types.Object; type info missing")
	}
}

// TestRunAnalyzerReports covers the Pass plumbing.
func TestRunAnalyzerReports(t *testing.T) {
	pkg := parsePkg(t, "package x\n\nfunc a() {}\n")
	a := &Analyzer{
		Name: "demo",
		Run: func(p *Pass) error {
			p.Reportf(p.Files[0].Pos(), "hello %s", "world")
			return nil
		},
	}
	diags, err := RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Message != "hello world" || diags[0].Analyzer != "demo" {
		t.Fatalf("diags = %+v", diags)
	}
}
