// Package vetkit is a minimal, dependency-free analysis framework
// mirroring the shape of golang.org/x/tools/go/analysis. The repo's
// invariant checkers (cmd/fdbvet) are built on it.
//
// The x/tools module is deliberately not used: the repository carries
// zero external dependencies, and the subset of the framework fdbvet
// needs — typed-AST passes over the module's packages, a multichecker
// driver, and golden-file tests — fits in a few hundred lines on top
// of go/ast, go/types and `go list -export`. The API mirrors
// go/analysis closely enough that migrating to the real framework
// later is a mechanical rename.
//
// Suppression: a diagnostic may be silenced with a comment of the form
//
//	//fdbvet:ignore <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it. The
// reason is mandatory; an ignore comment without one is itself a
// diagnostic, so suppressions stay auditable.
package vetkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fdbvet:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// AppliesTo optionally restricts the analyzer to a subset of
	// packages by import path. A nil AppliesTo means every package.
	// The driver consults it; the test harness does not, so golden
	// suites exercise analyzer logic regardless of where the testdata
	// package pretends to live.
	AppliesTo func(pkgPath string) bool

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one report against a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Inspect walks every file in the pass in source order, calling f for
// each node; f returning false prunes the subtree, as in ast.Inspect.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Unparen strips any number of enclosing parentheses from e (the
// module predates go1.22's ast.Unparen).
func Unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// NewInfo returns a types.Info with every map the analyzers use
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunAnalyzer applies one analyzer to one package and returns its raw
// (unsuppressed) diagnostics.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return pass.diags, nil
}
