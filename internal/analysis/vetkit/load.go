package vetkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") against the module rooted at
// dir and returns the matched packages parsed and type-checked.
// Dependencies — standard library and intra-module alike — are
// imported from compiler export data produced by `go list -export`,
// so only the packages under analysis are parsed from source. Test
// files are not loaded: fdbvet polices the production tree, and the
// analyzers' own allowlists treat _test.go files as exempt anyway.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("vetkit: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the package
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("vetkit: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("vetkit: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// typeCheck parses files (relative to dir) and type-checks them as one
// package using imp for every import.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("vetkit: %w", err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("vetkit: %w", err)
		}
		astFiles = append(astFiles, f)
	}
	return TypeCheckFiles(fset, imp, path, dir, astFiles)
}

// TypeCheckFiles type-checks pre-parsed files (whose positions are
// already registered in fset) as one package with import path `path`
// rooted at dir.
func TypeCheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vetkit: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// NewExportImporter returns an importer that resolves import paths
// through compiler export data files (as reported by `go list
// -export`). The gc importer handles "unsafe" itself.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("vetkit: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
