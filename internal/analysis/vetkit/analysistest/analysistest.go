// Package analysistest runs a vetkit analyzer over golden testdata
// directories and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Layout: every directory under testdata that contains .go files is
// loaded as one package (subdirectories are separate packages, so a
// suite can exercise allowlists keyed on file path suffixes). A
// diagnostic is expected where a line carries a trailing comment of
// the form
//
//	// want "regexp" "another regexp"
//
// one quoted regexp per expected diagnostic on that line. Suppression
// via //fdbvet:ignore is applied exactly as in the fdbvet driver, so
// suites cover suppressed cases too; malformed ignore directives
// surface as diagnostics of the pseudo-analyzer "fdbvet" and can be
// asserted with want comments like any other.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Run applies the analyzer to every package under testdata and fails t
// on any mismatch between reported and wanted diagnostics. The
// analyzer's AppliesTo restriction is ignored: golden suites test the
// analysis logic, the driver tests the routing.
func Run(t *testing.T, testdata string, a *vetkit.Analyzer) {
	t.Helper()
	pkgs, err := loadTestdata(testdata)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no testdata packages under %s", testdata)
	}
	unrestricted := *a
	unrestricted.AppliesTo = nil
	diags, err := vetkit.Check(pkgs, []*vetkit.Analyzer{&unrestricted})
	if err != nil {
		t.Fatal(err)
	}

	fset := pkgs[0].Fset
	wants := collectWants(t, pkgs, fset)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		ws := wants[key]
		matched := -1
		for i, w := range ws {
			if !w.used && w.re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			continue
		}
		ws[matched].used = true
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants extracts // want comments from every file of every
// package, keyed by "filename:line".
func collectWants(t *testing.T, pkgs []*vetkit.Package, fset *token.FileSet) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// loadTestdata parses and type-checks every directory under root that
// holds .go files as its own package. Imports resolve through compiler
// export data fetched with one `go list -export` run, so testdata may
// import anything the standard library offers (plus unsafe).
func loadTestdata(root string) ([]*vetkit.Package, error) {
	byDir := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			byDir[dir] = append(byDir[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysistest: %w", err)
	}
	var dirs []string
	for dir := range byDir {
		dirs = append(dirs, dir)
		sort.Strings(byDir[dir])
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	imports := make(map[string]bool)
	for _, dir := range dirs {
		for _, file := range byDir[dir] {
			src, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, file, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysistest: %w", err)
			}
			parsed[dir] = append(parsed[dir], f)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" {
					imports[p] = true
				}
			}
		}
	}
	exports, err := stdlibExports(imports)
	if err != nil {
		return nil, err
	}
	imp := vetkit.NewExportImporter(fset, exports)
	var pkgs []*vetkit.Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		pkg, err := vetkit.TypeCheckFiles(fset, imp, filepath.ToSlash(rel), dir, parsed[dir])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// stdlibExports resolves the export data files for the given import
// paths (and their dependencies) with one `go list -export` run. Tests
// execute in their package directory, which is inside the module, so
// the bare command inherits a valid module context.
func stdlibExports(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json"}
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	cmd := exec.Command("go", append(args, paths...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysistest: go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysistest: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}
