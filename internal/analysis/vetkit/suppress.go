package vetkit

import (
	"go/token"
	"regexp"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//fdbvet:ignore <analyzer> <reason>
//
// It silences diagnostics from <analyzer> on the same line or the line
// immediately below (so it can sit above the flagged statement). The
// reason is mandatory and free-form; it is what a reviewer reads.
const ignorePrefix = "//fdbvet:ignore"

// wantMarker splits an embedded golden-test expectation off a
// directive comment (see collectIgnores).
var wantMarker = regexp.MustCompile(`//\s*want\s`)

type ignoreDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

// collectIgnores scans a package's comments for fdbvet:ignore
// directives. Malformed directives (missing analyzer or reason) are
// returned as diagnostics so an empty reason can never slip through.
func collectIgnores(pkg *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				text := c.Text
				// Golden suites assert on malformed directives with a
				// trailing `// want` expectation inside the same comment;
				// the marker and everything after it is not directive text.
				if loc := wantMarker.FindStringIndex(text[2:]); loc != nil {
					text = text[:2+loc[0]]
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //fdbvet:ignoreX — not ours
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "fdbvet:ignore needs an analyzer name and a reason",
						Analyzer: "fdbvet",
					})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "fdbvet:ignore " + fields[0] + " needs a reason",
						Analyzer: "fdbvet",
					})
				default:
					dirs = append(dirs, ignoreDirective{
						pos:      c.Pos(),
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return dirs, bad
}

// filterSuppressed drops diagnostics covered by an ignore directive
// for their analyzer on the same line or the line above.
func filterSuppressed(diags []Diagnostic, dirs []ignoreDirective, fset *token.FileSet) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	covered := make(map[string]map[int]bool) // file -> line -> suppressed
	key := func(d ignoreDirective) map[int]bool {
		m := covered[d.file+"\x00"+d.analyzer]
		if m == nil {
			m = make(map[int]bool)
			covered[d.file+"\x00"+d.analyzer] = m
		}
		return m
	}
	for _, d := range dirs {
		m := key(d)
		m[d.line] = true
		m[d.line+1] = true
	}
	var kept []Diagnostic
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		if m := covered[pos.Filename+"\x00"+diag.Analyzer]; m != nil && m[pos.Line] {
			continue
		}
		kept = append(kept, diag)
	}
	return kept
}
