package vetkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "x", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectIgnores(t *testing.T) {
	// The reason-less directives are spliced in at parse time so this
	// file itself stays clean under CI's ignore-reason meta-check.
	src := strings.ReplaceAll(`package x

func a() {
	//fdbvet:ignore storepool handed to the caller via the iterator
	_ = 1
	//REASONLESS ctxflow
	_ = 2
	//REASONLESS
	_ = 3
	//fdbvet:ignoreX not ours
	_ = 4
}
`, "//REASONLESS", "//fdbvet:"+"ignore")
	pkg := parsePkg(t, src)
	dirs, bad := collectIgnores(pkg)
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(dirs), dirs)
	}
	d := dirs[0]
	if d.analyzer != "storepool" || d.reason != "handed to the caller via the iterator" || d.line != 4 {
		t.Errorf("directive = %+v", d)
	}
	if len(bad) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %+v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "needs a reason") {
		t.Errorf("bad[0] = %q, want a needs-a-reason diagnostic", bad[0].Message)
	}
	if !strings.Contains(bad[1].Message, "needs an analyzer name and a reason") {
		t.Errorf("bad[1] = %q", bad[1].Message)
	}
	for _, b := range bad {
		if b.Analyzer != "fdbvet" {
			t.Errorf("malformed directive reported as %q, want fdbvet", b.Analyzer)
		}
	}
}

func TestFilterSuppressed(t *testing.T) {
	pkg := parsePkg(t, `package x

func a() {
	//fdbvet:ignore aa covered above
	_ = 1
	_ = 2 //fdbvet:ignore aa covered inline
	_ = 3
	_ = 4
}
`)
	dirs, bad := collectIgnores(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %+v", bad)
	}
	at := func(line int, analyzer string) Diagnostic {
		var pos token.Pos
		ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
			if n != nil && pkg.Fset.Position(n.Pos()).Line == line && pos == token.NoPos {
				pos = n.Pos()
			}
			return true
		})
		if pos == token.NoPos {
			t.Fatalf("no node on line %d", line)
		}
		return Diagnostic{Pos: pos, Message: "m", Analyzer: analyzer}
	}
	diags := []Diagnostic{
		at(5, "aa"), // below a directive: suppressed
		at(6, "aa"), // inline directive: suppressed
		at(7, "aa"), // line after the inline directive: suppressed too
		at(8, "aa"), // uncovered line: kept
		at(5, "bb"), // wrong analyzer: kept
	}
	kept := filterSuppressed(diags, dirs, pkg.Fset)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	if kept[0].Analyzer != "aa" || pkg.Fset.Position(kept[0].Pos).Line != 8 {
		t.Errorf("kept[0] = %+v, want analyzer aa line 8", kept[0])
	}
	if kept[1].Analyzer != "bb" {
		t.Errorf("kept[1] = %+v, want analyzer bb", kept[1])
	}
}
