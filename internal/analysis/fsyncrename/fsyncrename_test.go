package fsyncrename_test

import (
	"testing"

	"github.com/factordb/fdb/internal/analysis/fsyncrename"
	"github.com/factordb/fdb/internal/analysis/vetkit/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", fsyncrename.Analyzer)
}

func TestAppliesTo(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/factordb/fdb/internal/wal", true},
		{"github.com/factordb/fdb/internal/catalog", true},
		{"github.com/factordb/fdb/internal/engine", true},
		{"github.com/factordb/fdb/internal/frep", false},
		{"github.com/factordb/fdb/internal/server", false},
	}
	for _, c := range cases {
		if got := fsyncrename.Analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
