// Package a is the fsyncrename golden suite: os.Rename installing a
// file must be preceded by a Sync in the same function.
package a

import "os"

func bad(tmp, live string) error {
	return os.Rename(tmp, live) // want `os\.Rename without a preceding Sync`
}

func good(f *os.File, tmp, live string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, live)
}

// A wrapper method named Sync counts (e.g. wal.Log.Sync).
type log struct{ f *os.File }

func (l *log) Sync() error { return l.f.Sync() }

func viaWrapper(l *log, tmp, live string) error {
	if err := l.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, live)
}

// A helper whose name says sync counts too (e.g. syncDir).
func viaHelper(tmp, live string) error {
	if err := syncFile(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, live)
}

func syncFile(string) error { return nil }

// Sync after the rename is exactly the bug.
func syncAfter(f *os.File, tmp, live string) error {
	if err := os.Rename(tmp, live); err != nil { // want `os\.Rename without a preceding Sync`
		return err
	}
	return f.Sync()
}

// Renaming a scratch path no reader observes may be suppressed.
func scratch(tmp string) error {
	//fdbvet:ignore fsyncrename destination is a scratch path no reader ever opens
	return os.Rename(tmp, tmp+".bak")
}
