// Package fsyncrename pins the durable-install protocol in the WAL
// and catalogue write paths: an os.Rename that installs a file onto a
// live path must be dominated by a Sync on the temp file — the
// temp→write→fsync→rename sequence from the snapshot/compaction
// protocol (ARCHITECTURE.md, "Persistence" and "The write path"). A
// rename without a preceding fsync can install a file whose contents
// are still only in the page cache: a crash then leaves a torn
// snapshot behind the new name, which is exactly what the protocol
// exists to prevent.
//
// The check is lexical and intraprocedural: within the function
// calling os.Rename there must be an earlier call to a Sync method
// (File.Sync, or a wrapper like Log.Sync) or to a helper whose name
// contains "sync". Renames of non-live paths (none exist in the
// guarded packages today) can be suppressed with //fdbvet:ignore.
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Analyzer is the fsyncrename invariant checker.
var Analyzer = &vetkit.Analyzer{
	Name:      "fsyncrename",
	Doc:       "os.Rename onto a live path must be preceded by a Sync of the temp file",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo restricts the analyzer to the packages owning durable
// state: the WAL, the catalogue codec, and the engine (home of the
// manifest/compaction write path).
func appliesTo(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/wal") ||
		strings.Contains(pkgPath, "internal/catalog") ||
		strings.Contains(pkgPath, "internal/engine")
}

func run(pass *vetkit.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc flags os.Rename calls in fd that no sync call precedes
// lexically.
func checkFunc(pass *vetkit.Pass, fd *ast.FuncDecl) {
	var syncPositions []token.Pos
	var renames []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isSyncCall(call):
			syncPositions = append(syncPositions, call.Pos())
		case isOSRename(pass, call):
			renames = append(renames, call)
		}
		return true
	})
	for _, rename := range renames {
		dominated := false
		for _, p := range syncPositions {
			if p < rename.Pos() {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(rename.Pos(),
				"os.Rename without a preceding Sync in this function: the durable-install protocol is temp file, write, Sync, then Rename")
		}
	}
}

// isSyncCall matches f.Sync(), l.Sync(), and helpers whose name
// contains "sync" (e.g. syncDir).
func isSyncCall(call *ast.CallExpr) bool {
	switch fn := vetkit.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name == "Sync"
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sync")
	}
	return false
}

// isOSRename matches os.Rename(old, new).
func isOSRename(pass *vetkit.Pass, call *ast.CallExpr) bool {
	sel, ok := vetkit.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rename" {
		return false
	}
	id, ok := vetkit.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}
