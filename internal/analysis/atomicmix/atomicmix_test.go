package atomicmix_test

import (
	"testing"

	"github.com/factordb/fdb/internal/analysis/atomicmix"
	"github.com/factordb/fdb/internal/analysis/vetkit/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer)
}
