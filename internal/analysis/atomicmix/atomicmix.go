// Package atomicmix enforces single-discipline access to atomic
// counters: a variable (struct field or package-level var) that is
// ever passed to a sync/atomic function — atomic.AddInt64(&x.n, 1)
// and friends — must never be read or written plainly anywhere else
// in the package. Mixing the two silently drops the memory-model
// guarantees the atomic access was buying (the race detector only
// catches the mix when both sides actually race during a test run;
// this analyzer catches it statically).
//
// Typed atomics (atomic.Int64 et al.) are immune by construction and
// are what new code should use; this analyzer polices the function
// style, which the engine's seek/stats counters and the server gauges
// predate. Initialisation before the value is shared is a legitimate
// plain write — suppress it with an //fdbvet:ignore carrying that
// reason.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Analyzer is the atomicmix invariant checker.
var Analyzer = &vetkit.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never be accessed plainly",
	Run:  run,
}

func run(pass *vetkit.Pass) error {
	// Pass 1: find every &v handed to a sync/atomic function. blessed
	// marks the exact operand nodes so pass 2 can skip them.
	atomicVars := map[*types.Var][]token.Pos{}
	blessed := map[ast.Node]bool{}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := vetkit.Unparen(arg).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				continue
			}
			operand := vetkit.Unparen(ue.X)
			if v := addressableVar(pass, operand); v != nil {
				atomicVars[v] = append(atomicVars[v], call.Pos())
				blessed[operand] = true
			}
		}
		return true
	})
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: every other mention of those variables is a plain access.
	pass.Inspect(func(n ast.Node) bool {
		if blessed[n] {
			return false
		}
		var v *types.Var
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if blessed[n] {
				return false
			}
			v, _ = pass.Info.Uses[n.Sel].(*types.Var)
		case *ast.Ident:
			v, _ = pass.Info.Uses[n].(*types.Var)
		default:
			return true
		}
		if v == nil {
			return true
		}
		if _, ok := atomicVars[v]; ok {
			pass.Reportf(n.Pos(),
				"plain access to %s, which is accessed with sync/atomic elsewhere in this package: use the atomic API for every access",
				v.Name())
			return false
		}
		return true
	})
	return nil
}

// addressableVar resolves &operand's variable: a struct field
// (x.f) or a plain identifier (package-level or local var).
func addressableVar(pass *vetkit.Pass, operand ast.Expr) *types.Var {
	switch operand := operand.(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.Info.Uses[operand.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[operand].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicCall reports whether call invokes a function from
// sync/atomic (the function style: AddInt64, LoadUint64, …).
func isAtomicCall(pass *vetkit.Pass, call *ast.CallExpr) bool {
	sel, ok := vetkit.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := vetkit.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
