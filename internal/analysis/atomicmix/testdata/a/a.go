// Package a is the atomicmix golden suite: a variable touched by
// sync/atomic functions must never be accessed plainly.
package a

import "sync/atomic"

type gauge struct {
	n    int64
	name string
}

func (g *gauge) inc() {
	atomic.AddInt64(&g.n, 1)
}

func (g *gauge) load() int64 {
	return atomic.LoadInt64(&g.n)
}

func (g *gauge) bad() int64 {
	return g.n // want `plain access to n, which is accessed with sync/atomic`
}

func (g *gauge) badWrite() {
	g.n = 0 // want `plain access to n, which is accessed with sync/atomic`
}

func (g *gauge) badAddr() *int64 {
	return &g.n // want `plain access to n, which is accessed with sync/atomic`
}

// The untouched sibling field stays free.
func (g *gauge) okName() string {
	return g.name
}

var hits int64

func recordHit() {
	atomic.AddInt64(&hits, 1)
}

func badRead() int64 {
	return hits // want `plain access to hits, which is accessed with sync/atomic`
}

func okLoad() int64 {
	return atomic.LoadInt64(&hits)
}

// Typed atomics are immune by construction: methods are the only way in.
type typed struct{ n atomic.Int64 }

func (t *typed) fine() int64 {
	t.n.Add(1)
	return t.n.Load()
}

// A local mixing both disciplines is just as wrong.
func mixedLocal() int64 {
	var c int64
	atomic.AddInt64(&c, 1)
	c++ // want `plain access to c, which is accessed with sync/atomic`
	return atomic.LoadInt64(&c)
}

// Pre-publication initialisation is legal but must say so.
func newGauge() *gauge {
	//fdbvet:ignore atomicmix constructor runs before the gauge is shared
	g := &gauge{n: 0}
	return g
}
