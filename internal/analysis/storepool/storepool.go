// Package storepool enforces the engine's arena-store pooling
// contract: every store taken from the pool (getStore(), or a
// <x>Pool.Get call) must be returned exactly once — released with
// putStore/<x>Pool.Put, handed to an owner that releases it (stored
// into a struct, returned to the caller), or covered by a defer — on
// every path out of the function, including early error returns. A
// second release of the same store is a double-put: the slabs would
// back two queries at once. Bugs of both classes were hand-fixed in
// PRs 3, 4 and 6; this analyzer makes them mechanical.
//
// The analysis is intraprocedural and lexical: it tracks local
// variables assigned directly from an acquire call and abstractly
// interprets the block structure (if/else, switch, select, loops,
// defers, returns). Ownership transfers the analyzer cannot see
// through — aliasing, storage into composite literals or fields,
// capture by a closure, returning the store — stop the tracking
// conservatively, so escapes are never false positives.
package storepool

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Analyzer is the storepool invariant checker.
var Analyzer = &vetkit.Analyzer{
	Name: "storepool",
	Doc:  "pooled arena stores must be released exactly once on every path",
	Run:  run,
}

func run(pass *vetkit.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				newWalker(pass).analyzeFunc(fd.Body)
			}
		}
	}
	return nil
}

// isAcquire reports whether call takes a store out of the pool:
// getStore(...) or <somethingPool>.Get(...).
func isAcquire(call *ast.CallExpr) bool {
	switch fn := vetkit.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "getStore"
	case *ast.SelectorExpr:
		return fn.Sel.Name == "Get" && poolish(fn.X)
	}
	return false
}

// isRelease reports whether call returns a store to the pool, and if
// so which argument is the store.
func isRelease(call *ast.CallExpr) (ast.Expr, bool) {
	switch fn := vetkit.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn.Name == "putStore" && len(call.Args) == 1 {
			return call.Args[0], true
		}
	case *ast.SelectorExpr:
		if fn.Sel.Name == "Put" && poolish(fn.X) && len(call.Args) == 1 {
			return call.Args[0], true
		}
	}
	return nil, false
}

// poolish matches receivers that name a pool: storePool, p.rowPool, …
func poolish(x ast.Expr) bool {
	switch x := vetkit.Unparen(x).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(x.Name), "pool")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(x.Sel.Name), "pool")
	}
	return false
}

type status int

const (
	held status = iota
	released
	deferredRelease // a defer guarantees the release on every exit
)

type walker struct {
	pass *vetkit.Pass
	// vars maps each tracked store variable to its state. A variable
	// disappears from the map when ownership escapes the function's
	// view.
	vars map[*types.Var]*varState
}

type varState struct {
	status  status
	acquire token.Pos // where the store left the pool
}

func newWalker(pass *vetkit.Pass) *walker {
	return &walker{pass: pass, vars: map[*types.Var]*varState{}}
}

func (w *walker) clone() *walker {
	nw := newWalker(w.pass)
	for v, st := range w.vars {
		cp := *st
		nw.vars[v] = &cp
	}
	return nw
}

// analyzeFunc interprets one function body with a fresh state and
// reports stores still held when control falls off the end.
func (w *walker) analyzeFunc(body *ast.BlockStmt) {
	terminated := w.walkStmts(body.List)
	if !terminated {
		w.checkExit(body.End(), "the end of this function")
	}
}

// checkExit reports every tracked store that is still held (and not
// covered by a defer) at an exit point.
func (w *walker) checkExit(pos token.Pos, where string) {
	for _, st := range w.vars {
		if st.status == held {
			w.pass.Reportf(st.acquire,
				"pooled store may leak: not released before %s (line %d)",
				where, w.pass.Fset.Position(pos).Line)
		}
	}
}

// lookupVar resolves an expression to a local variable object, if it
// is a plain identifier.
func (w *walker) lookupVar(e ast.Expr) *types.Var {
	id, ok := vetkit.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.pass.Info.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	if obj := w.pass.Info.Defs[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// walkStmts interprets a statement list, mutating w's state, and
// reports whether the list definitely terminates (return, panic,
// break/continue) rather than falling through.
func (w *walker) walkStmts(stmts []ast.Stmt) (terminated bool) {
	for _, s := range stmts {
		if w.walkStmt(s) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isAcquire(call) {
				w.pass.Reportf(call.Pos(),
					"pooled store discarded: capture the result so it can be released")
				w.scanExprs(call.Args)
				return false
			}
			if isPanic(call) {
				w.scanExprs(call.Args)
				return true
			}
		}
		w.scanExpr(s.X)
	case *ast.DeferStmt:
		w.walkDefer(s)
	case *ast.ReturnStmt:
		// Returning a store (alone or inside anything) transfers
		// ownership to the caller.
		for _, r := range s.Results {
			if v := w.lookupVar(r); v != nil {
				delete(w.vars, v)
			}
		}
		w.scanExprs(s.Results)
		w.checkExit(s.Pos(), "the return")
		return true
	case *ast.BranchStmt:
		// break/continue/goto: treated as terminating this straight-line
		// segment; the loop-level analysis covers the held set.
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List)
	case *ast.IfStmt:
		return w.walkIf(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		w.walkLoopBody(s.Body)
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.walkLoopBody(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		w.walkClauses(s.Body, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkClauses(s.Body, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		w.walkClauses(s.Body, true)
	case *ast.GoStmt:
		w.scanExpr(s.Call)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanExprs(vs.Values)
				}
			}
		}
	case *ast.SendStmt:
		// Sending a store over a channel transfers ownership.
		if v := w.lookupVar(s.Value); v != nil {
			delete(w.vars, v)
		}
		w.scanExpr(s.Chan)
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
	}
	return false
}

func (w *walker) walkAssign(s *ast.AssignStmt) {
	// Acquisition: v := getStore() / v = pool.Get().(*T)
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		rhs := vetkit.Unparen(s.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = vetkit.Unparen(ta.X)
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isAcquire(call) {
			w.scanExprs(call.Args)
			if id, ok := vetkit.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				if v := w.lookupVar(s.Lhs[0]); v != nil {
					if prev, tracked := w.vars[v]; tracked && prev.status == held {
						w.pass.Reportf(s.Pos(),
							"pooled store overwritten while still held (acquired at line %d)",
							w.pass.Fset.Position(prev.acquire).Line)
					}
					w.vars[v] = &varState{status: held, acquire: call.Pos()}
					return
				}
			}
			w.pass.Reportf(call.Pos(),
				"pooled store discarded: capture the result so it can be released")
			return
		}
	}
	// Non-acquisition assignment: scan both sides for escapes, and
	// stop tracking a held store that is overwritten or aliased.
	for _, lhs := range s.Lhs {
		if v := w.lookupVar(lhs); v != nil {
			if prev, tracked := w.vars[v]; tracked && prev.status == held {
				w.pass.Reportf(s.Pos(),
					"pooled store overwritten while still held (acquired at line %d)",
					w.pass.Fset.Position(prev.acquire).Line)
			}
			delete(w.vars, v)
			continue
		}
		w.scanExpr(lhs)
	}
	w.scanExprs(s.Rhs)
}

// walkDefer interprets `defer putStore(v)` and `defer func(){ … }()`.
func (w *walker) walkDefer(s *ast.DeferStmt) {
	if arg, ok := isRelease(s.Call); ok {
		if v := w.lookupVar(arg); v != nil {
			if st, tracked := w.vars[v]; tracked {
				if st.status == deferredRelease {
					w.pass.Reportf(s.Pos(), "pooled store released twice: already covered by an earlier defer")
				}
				st.status = deferredRelease
			}
		}
		return
	}
	if lit, ok := vetkit.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		// An unconditional top-level release inside the deferred closure
		// counts as a deferred release; anything conditional makes the
		// variable untrackable (the closure owns the decision now).
		released, captured := deferredClosureEffects(w, lit)
		for v := range captured {
			if released[v] {
				if st, tracked := w.vars[v]; tracked {
					st.status = deferredRelease
				}
			} else {
				delete(w.vars, v)
			}
		}
		return
	}
	// Any other defer mentioning a tracked store: assume it handles the
	// store and stop tracking.
	w.scanExpr(s.Call)
}

// deferredClosureEffects inspects a deferred closure: released holds
// variables released by an unconditional top-level statement, captured
// holds every tracked variable the closure mentions at all.
func deferredClosureEffects(w *walker, lit *ast.FuncLit) (releasedSet map[*types.Var]bool, captured map[*types.Var]bool) {
	releasedSet = map[*types.Var]bool{}
	captured = map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := w.pass.Info.Uses[id].(*types.Var); ok {
				if _, tracked := w.vars[obj]; tracked {
					captured[obj] = true
				}
			}
		}
		return true
	})
	for _, st := range lit.Body.List {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if arg, ok := isRelease(call); ok {
			if v := w.lookupVar(arg); v != nil {
				releasedSet[v] = true
			}
		}
	}
	return releasedSet, captured
}

func (w *walker) walkIf(s *ast.IfStmt) (terminated bool) {
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	w.scanExpr(s.Cond)
	thenW := w.clone()
	thenTerm := thenW.walkStmts(s.Body.List)
	var elseW *walker
	elseTerm := false
	if s.Else != nil {
		elseW = w.clone()
		elseTerm = elseW.walkStmt(s.Else)
	} else {
		elseW = w.clone()
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		w.vars = elseW.vars
	case elseTerm:
		w.vars = thenW.vars
	default:
		w.vars = merge(thenW.vars, elseW.vars)
	}
	return false
}

// walkLoopBody interprets a loop body once with a cloned state: stores
// acquired inside the body must not survive to the body's end, and
// stores from outside whose state the body changes become untrackable
// (the loop may run zero or many times).
func (w *walker) walkLoopBody(body *ast.BlockStmt) {
	inner := w.clone()
	terminated := inner.walkStmts(body.List)
	for v, st := range inner.vars {
		if _, pre := w.vars[v]; !pre {
			if st.status == held && !terminated {
				w.pass.Reportf(st.acquire,
					"pooled store may leak: not released before the next loop iteration")
			}
		}
	}
	for v, pre := range w.vars {
		post, ok := inner.vars[v]
		if !ok || post.status != pre.status {
			delete(w.vars, v)
		}
	}
}

// walkClauses interprets each case clause independently and merges the
// fall-through states; withDefault says whether some clause always
// runs (otherwise the pre-state joins the merge).
func (w *walker) walkClauses(body *ast.BlockStmt, withDefault bool) {
	var outs []map[*types.Var]*varState
	if !withDefault {
		outs = append(outs, w.clone().vars)
	}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			w.scanExprs(c.List)
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm)
			}
			stmts = c.Body
		}
		cw := w.clone()
		if !cw.walkStmts(stmts) {
			outs = append(outs, cw.vars)
		}
	}
	if len(outs) == 0 {
		// Every clause terminates; keep the pre-state (a missing default
		// still falls through in switch).
		return
	}
	m := outs[0]
	for _, o := range outs[1:] {
		m = merge(m, o)
	}
	w.vars = m
}

// merge joins two fall-through states: agreement keeps the state,
// disagreement stops tracking (never a false positive after a merge).
func merge(a, b map[*types.Var]*varState) map[*types.Var]*varState {
	out := map[*types.Var]*varState{}
	for v, sa := range a {
		if sb, ok := b[v]; ok && sa.status == sb.status {
			cp := *sa
			out[v] = &cp
		}
	}
	return out
}

func (w *walker) scanExprs(exprs []ast.Expr) {
	for _, e := range exprs {
		w.scanExpr(e)
	}
}

// scanExpr visits an expression for effects on tracked stores:
// releases mark the variable released (or report a double-put),
// composite literals / unary & / closures / type conversions that
// swallow the variable transfer ownership and stop the tracking, and
// nested function literals are analyzed as functions of their own.
func (w *walker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if arg, ok := isRelease(n); ok {
				if v := w.lookupVar(arg); v != nil {
					if st, tracked := w.vars[v]; tracked {
						switch st.status {
						case released:
							w.pass.Reportf(n.Pos(),
								"pooled store released twice (first released earlier on this path)")
						case deferredRelease:
							w.pass.Reportf(n.Pos(),
								"pooled store released twice: a defer already releases it")
						default:
							st.status = released
						}
					}
				}
				return false
			}
			if isAcquire(n) {
				// Acquisition in expression position (not a simple
				// assignment): ownership goes somewhere the analysis
				// cannot follow; walkAssign/walkStmt handle the simple
				// forms before we get here.
				return false
			}
		case *ast.CompositeLit:
			// Storing the variable inside any literal hands ownership to
			// the new value.
			w.untrackMentioned(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				w.untrackMentioned(n)
				return false
			}
		case *ast.FuncLit:
			// The closure may release the store later; analyze its body
			// independently and stop tracking captured stores.
			w.untrackMentioned(n)
			newWalker(w.pass).analyzeFunc(n.Body)
			return false
		}
		return true
	})
}

// untrackMentioned removes every tracked variable mentioned anywhere
// under n.
func (w *walker) untrackMentioned(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v, ok := w.pass.Info.Uses[id].(*types.Var); ok {
				delete(w.vars, v)
			}
		}
		return true
	})
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := vetkit.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
