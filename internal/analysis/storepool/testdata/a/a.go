// Package a is the storepool golden suite: pooled stores must be
// released exactly once on every path.
package a

import "errors"

var errFail = errors.New("fail")

type store struct{ n int }

type pool struct{}

func (pool) Get() any        { return &store{} }
func (pool) Put(s *store)    {}
func (pool) lookGet() *store { return nil }

var storePool pool
var bufPool pool

func getStore() *store  { return storePool.Get().(*store) }
func putStore(s *store) {}

// --- flagged cases ---

func leakOnEarlyReturn(fail bool) error {
	st := getStore() // want `pooled store may leak: not released before the return`
	if fail {
		return errFail
	}
	putStore(st)
	return nil
}

func leakAtEnd() {
	st := getStore() // want `pooled store may leak: not released before the end of this function`
	st.n++
}

func doublePut() {
	st := getStore()
	putStore(st)
	putStore(st) // want `pooled store released twice`
}

func deferThenPut() {
	st := getStore()
	defer putStore(st)
	putStore(st) // want `pooled store released twice: a defer already releases it`
}

func discarded() {
	getStore() // want `pooled store discarded`
}

func loopLeak(n int) {
	for i := 0; i < n; i++ {
		st := getStore() // want `pooled store may leak: not released before the next loop iteration`
		st.n = i
	}
}

func overwriteHeld() {
	st := getStore()
	st = getStore() // want `pooled store overwritten while still held`
	putStore(st)
}

func poolGetLeak(fail bool) error {
	b := bufPool.Get().(*store) // want `pooled store may leak: not released before the return`
	if fail {
		return errFail
	}
	bufPool.Put(b)
	return nil
}

// --- clean cases ---

func releasedOnAllPaths(fail bool) error {
	st := getStore()
	if fail {
		putStore(st)
		return errFail
	}
	putStore(st)
	return nil
}

func deferCoversPanics(fail bool) error {
	st := getStore()
	defer putStore(st)
	if fail {
		return errFail
	}
	mayPanic()
	return nil
}

type holder struct{ st *store }

// Ownership escapes into the holder, whose Close releases it later.
func escapesIntoResult(fail bool) (*holder, error) {
	st := getStore()
	if fail {
		putStore(st)
		return nil, errFail
	}
	return &holder{st: st}, nil
}

// Ownership escapes by returning the store itself.
func escapesByReturn() *store {
	st := getStore()
	return st
}

func switchReleasesEverywhere(k int) {
	st := getStore()
	switch k {
	case 1:
		putStore(st)
	default:
		putStore(st)
	}
}

// The deferred closure releases unconditionally: same as defer putStore.
func deferredClosure(fail bool) error {
	st := getStore()
	defer func() {
		putStore(st)
	}()
	if fail {
		return errFail
	}
	return nil
}

// A conditional release inside the deferred closure hands the decision
// to the closure; tracking stops without a report.
func guardedDeferredClosure(fail bool) error {
	st := getStore()
	done := false
	defer func() {
		if !done {
			putStore(st)
		}
	}()
	if fail {
		return errFail
	}
	done = true
	putStore(st)
	return nil
}

func suppressedLeak(fail bool) error {
	st := getStore() //fdbvet:ignore storepool fixture intentionally leaks to exercise the pool refill path
	if fail {
		return errFail
	}
	putStore(st)
	return nil
}

func mayPanic() {}
