package storepool_test

import (
	"testing"

	"github.com/factordb/fdb/internal/analysis/storepool"
	"github.com/factordb/fdb/internal/analysis/vetkit/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", storepool.Analyzer)
}
