package ctxflow_test

import (
	"testing"

	"github.com/factordb/fdb/internal/analysis/ctxflow"
	"github.com/factordb/fdb/internal/analysis/vetkit/analysistest"
)

func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer)
}

func TestAppliesTo(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"github.com/factordb/fdb/internal/engine", true},
		{"github.com/factordb/fdb/internal/server", true},
		{"github.com/factordb/fdb/internal/server/cache", true},
		{"github.com/factordb/fdb/driver", true},
		{"github.com/factordb/fdb/internal/wal", false},
		{"github.com/factordb/fdb/internal/frep", false},
		{"github.com/factordb/fdb/cmd/fdbserver", false},
	}
	for _, c := range cases {
		if got := ctxflow.Analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
