// Package ctxflow enforces context propagation on the request path:
// inside the engine, the server and the driver, a function that
// already receives a context.Context must thread it, not mint a fresh
// root with context.Background() or context.TODO(). context.TODO() is
// banned outright in those packages — committed code has no
// placeholder contexts.
//
// Two shapes stay legal without suppression:
//
//   - compatibility shims without a ctx parameter (Run wrapping
//     RunContext, database/sql's non-Context interface methods, boot
//     code, background goroutines) may call context.Background();
//   - the nil-guard idiom `if ctx == nil { ctx = context.Background() }`
//     re-rooting a nil context parameter.
//
// _test.go files are exempt.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/factordb/fdb/internal/analysis/vetkit"
)

// Analyzer is the ctxflow invariant checker.
var Analyzer = &vetkit.Analyzer{
	Name:      "ctxflow",
	Doc:       "request-path code must propagate its context.Context, not mint new roots",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo restricts the analyzer to the request-path packages.
func appliesTo(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/engine") ||
		strings.Contains(pkgPath, "internal/server") ||
		strings.HasSuffix(pkgPath, "/driver") || pkgPath == "driver"
}

func run(pass *vetkit.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		allowed := nilGuardAllowed(pass, file)
		checkFile(pass, file, allowed)
	}
	return nil
}

// nilGuardAllowed collects the positions of context.Background() calls
// blessed by the nil-guard idiom: inside `if x == nil { … }` where x
// is a context.Context, an assignment `x = context.Background()`.
func nilGuardAllowed(pass *vetkit.Pass, file *ast.File) map[token.Pos]bool {
	allowed := map[token.Pos]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guarded := nilComparedVar(pass, ifs.Cond)
		if guarded == nil {
			return true
		}
		for _, s := range ifs.Body.List {
			as, ok := s.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if v := usedVar(pass, as.Lhs[0]); v != guarded {
				continue
			}
			if call, ok := vetkit.Unparen(as.Rhs[0]).(*ast.CallExpr); ok &&
				isContextCall(pass, call, "Background") {
				allowed[call.Pos()] = true
			}
		}
		return true
	})
	return allowed
}

// nilComparedVar returns the context.Context variable compared against
// nil in cond (`x == nil` or `nil == x`), if any.
func nilComparedVar(pass *vetkit.Pass, cond ast.Expr) *types.Var {
	be, ok := vetkit.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		if id, ok := vetkit.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			if v := usedVar(pass, pair[0]); v != nil && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func usedVar(pass *vetkit.Pass, e ast.Expr) *types.Var {
	id, ok := vetkit.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.Info.Uses[id].(*types.Var)
	return v
}

// checkFile walks the file's functions, tracking whether the innermost
// enclosing function (declaration or literal) has a context.Context
// parameter.
func checkFile(pass *vetkit.Pass, file *ast.File, allowed map[token.Pos]bool) {
	var walk func(n ast.Node, hasCtxParam bool)
	walk = func(n ast.Node, hasCtxParam bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m.Body != nil {
					walk(m.Body, funcHasCtxParam(pass, m.Type))
				}
				return false
			case *ast.FuncLit:
				walk(m.Body, funcHasCtxParam(pass, m.Type))
				return false
			case *ast.CallExpr:
				switch {
				case isContextCall(pass, m, "TODO"):
					pass.Reportf(m.Pos(),
						"context.TODO() in request-path code: thread a real context")
				case isContextCall(pass, m, "Background"):
					if hasCtxParam && !allowed[m.Pos()] {
						pass.Reportf(m.Pos(),
							"context.Background() inside a function that already receives a context.Context: propagate the parameter")
					}
				}
			}
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			walk(fd.Body, funcHasCtxParam(pass, fd.Type))
		}
	}
}

func funcHasCtxParam(pass *vetkit.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextCall reports whether call is context.<name>() for the
// standard library context package.
func isContextCall(pass *vetkit.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := vetkit.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := vetkit.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "context"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
