// Package a is the ctxflow golden suite: request-path functions that
// receive a context must propagate it; context.TODO() is banned.
package a

import "context"

// A function holding a ctx parameter must not mint a new root.
func withCtx(ctx context.Context) error {
	sub := context.Background() // want `context.Background\(\) inside a function that already receives a context.Context`
	_ = sub
	return ctx.Err()
}

// context.TODO is banned regardless of the signature.
func todoAnywhere() {
	_ = context.TODO() // want `context.TODO\(\) in request-path code`
}

func todoWithCtx(ctx context.Context) {
	_ = context.TODO() // want `context.TODO\(\) in request-path code`
}

// The nil-guard idiom re-rooting a nil parameter is legal.
func nilGuard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Compatibility shims without a ctx parameter may call Background.
func shim() error {
	return withCtx(context.Background())
}

// A closure without its own ctx parameter starts a fresh root legally
// (a background goroutine outliving the request), even inside a
// ctx-carrying function.
func detachedGoroutine(ctx context.Context) error {
	go func() {
		_ = context.Background()
	}()
	return ctx.Err()
}

// A closure that receives a ctx parameter is held to the same rule.
func closureWithCtx() func(context.Context) error {
	return func(ctx context.Context) error {
		sub := context.Background() // want `context.Background\(\) inside a function that already receives a context.Context`
		_ = sub
		return ctx.Err()
	}
}

// Suppression with a reason silences the finding.
func suppressed(ctx context.Context) error {
	//fdbvet:ignore ctxflow detached audit span must outlive the request
	_ = context.Background()
	return ctx.Err()
}

// A reason-less ignore is itself an error and suppresses nothing.
func missingReason(ctx context.Context) error {
	//fdbvet:ignore ctxflow // want `fdbvet:ignore ctxflow needs a reason`
	_ = context.Background() // want `context.Background\(\) inside a function that already receives a context.Context`
	return ctx.Err()
}
