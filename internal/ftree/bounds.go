package ftree

import (
	"math"

	"github.com/factordb/fdb/internal/lp"
)

// CatalogRelation describes one base relation for cost estimation: its
// schema and cardinality.
type CatalogRelation struct {
	Name  string
	Attrs []string
	Size  int
}

// SizeBound returns an asymptotic upper bound on the number of singletons
// of a factorisation over this f-tree of the result of the natural join of
// the catalogue relations — the cost metric of Section 5 (following
// Olteanu & Závodný, ICDT 2012).
//
// For every node t, the number of singletons contributed by t is bounded
// by Π_R |R|^{x_R} where x is an optimal fractional edge cover of the
// attribute classes on the root-to-t path, each relation covering the
// classes it shares an attribute with; the total bound is the sum over
// nodes. Aggregate nodes carry one value per ancestor context and are
// bounded by their parent's path. Classes containing no catalogue
// attribute (for example synthetic outputs) are skipped.
func (f *Forest) SizeBound(cat []CatalogRelation) float64 {
	total := 0.0
	for _, r := range f.Roots {
		total += sizeBoundWalk(r, nil, cat)
	}
	return total
}

func sizeBoundWalk(n *Node, pathAbove []*Node, cat []CatalogRelation) float64 {
	path := pathAbove
	if !n.IsAgg() {
		path = append(append([]*Node{}, pathAbove...), n)
	}
	total := pathBound(path, cat)
	for _, c := range n.Children {
		total += sizeBoundWalk(c, path, cat)
	}
	return total
}

// pathBound computes Π_R |R|^{x_R} for an optimal fractional cover of the
// given path classes.
func pathBound(path []*Node, cat []CatalogRelation) float64 {
	// Vertices: classes on the path that intersect some relation schema.
	type classInfo struct{ node *Node }
	var classes []classInfo
	classIdx := map[*Node]int{}
	schemaHits := func(rel CatalogRelation, n *Node) bool {
		for _, a := range rel.Attrs {
			if n.HasAttr(a) {
				return true
			}
		}
		return false
	}
	for _, n := range path {
		covered := false
		for _, rel := range cat {
			if schemaHits(rel, n) {
				covered = true
				break
			}
		}
		if covered {
			classIdx[n] = len(classes)
			classes = append(classes, classInfo{n})
		}
	}
	if len(classes) == 0 {
		return 1
	}
	h := lp.Hypergraph{NumVertices: len(classes)}
	for _, rel := range cat {
		var edge []int
		for _, ci := range classes {
			if schemaHits(rel, ci.node) {
				edge = append(edge, classIdx[ci.node])
			}
		}
		if len(edge) == 0 {
			continue
		}
		size := rel.Size
		if size < 1 {
			size = 1
		}
		h.Edges = append(h.Edges, edge)
		h.Weights = append(h.Weights, math.Log(float64(size)))
	}
	val, _, err := lp.FractionalEdgeCover(h)
	if err != nil {
		// Should not happen (every class intersects some relation); be
		// conservative and return a huge bound so the optimiser avoids
		// this shape.
		return math.Inf(1)
	}
	return math.Exp(val)
}
