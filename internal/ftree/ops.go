package ftree

import (
	"fmt"
	"sort"
)

// SwapPlan records the decisions of a swap χ_{A,B} (Section 4.2): which of
// B's child subtrees depend on A (and therefore stay below A, the paper's
// T_AB) and which are independent of A (and move up with B, the paper's
// T_B). Package fops replays the same partition on factorised data.
type SwapPlan struct {
	A, B *Node
	// BIdx is B's position among A's children.
	BIdx int
	// DepIdx are positions in B.Children of subtrees dependent on A
	// (T_AB); IndepIdx the remaining positions (T_B). Both are ascending.
	DepIdx, IndepIdx []int
}

// PlanSwap prepares the swap of node b with its parent. It fails if b is a
// root.
func PlanSwap(b *Node) (*SwapPlan, error) {
	a := b.Parent
	if a == nil {
		return nil, fmt.Errorf("ftree: swap: node %s is a root", b.Label())
	}
	p := &SwapPlan{A: a, B: b, BIdx: a.ChildIndex(b)}
	for i, c := range b.Children {
		if c.SubtreeDeps().Intersects(a.Deps) {
			p.DepIdx = append(p.DepIdx, i)
		} else {
			p.IndepIdx = append(p.IndepIdx, i)
		}
	}
	return p, nil
}

// ApplySwap restructures the forest according to the plan: B takes A's
// place; A becomes B's first child, keeping its other children followed by
// the A-dependent children of B; the A-independent children of B stay with
// B.
func (f *Forest) ApplySwap(p *SwapPlan) {
	a, b := p.A, p.B
	// Detach b from a.
	aOther := make([]*Node, 0, len(a.Children)-1)
	for _, c := range a.Children {
		if c != b {
			aOther = append(aOther, c)
		}
	}
	dep := make([]*Node, 0, len(p.DepIdx))
	for _, i := range p.DepIdx {
		dep = append(dep, b.Children[i])
	}
	indep := make([]*Node, 0, len(p.IndepIdx))
	for _, i := range p.IndepIdx {
		indep = append(indep, b.Children[i])
	}
	// Replace a by b at a's position.
	if a.Parent == nil {
		f.Roots[f.RootIndex(a)] = b
		b.Parent = nil
	} else {
		gp := a.Parent
		gp.Children[gp.ChildIndex(a)] = b
		b.Parent = gp
	}
	// Rewire children.
	b.Children = append([]*Node{a}, indep...)
	for _, c := range indep {
		c.Parent = b
	}
	a.Parent = b
	a.Children = append(aOther, dep...)
	for _, c := range dep {
		c.Parent = a
	}
}

// MergePlan records a merge of two sibling atomic nodes for an equality
// selection A=B: the surviving node keeps both classes and the
// concatenated children.
type MergePlan struct {
	Parent *Node // nil when both are roots
	X, Y   *Node // nodes to merge; X survives
	XIdx   int   // position of X among siblings (or roots)
	YIdx   int   // position of Y among siblings (or roots)
}

// PlanMerge prepares merging sibling nodes x and y (for an equality
// selection between an attribute of x and one of y). Both must be atomic
// and share a parent (or both be roots).
func PlanMerge(f *Forest, x, y *Node) (*MergePlan, error) {
	if x == y {
		return nil, fmt.Errorf("ftree: merge: identical nodes")
	}
	if x.IsAgg() || y.IsAgg() {
		return nil, fmt.Errorf("ftree: merge: aggregate nodes cannot be merged")
	}
	if x.Parent != y.Parent {
		return nil, fmt.Errorf("ftree: merge: %s and %s are not siblings", x.Label(), y.Label())
	}
	p := &MergePlan{Parent: x.Parent, X: x, Y: y}
	if x.Parent == nil {
		p.XIdx, p.YIdx = f.RootIndex(x), f.RootIndex(y)
	} else {
		p.XIdx, p.YIdx = x.Parent.ChildIndex(x), x.Parent.ChildIndex(y)
	}
	if p.XIdx < 0 || p.YIdx < 0 {
		return nil, fmt.Errorf("ftree: merge: sibling positions not found")
	}
	return p, nil
}

// ApplyMerge merges y into x: x's class gains y's attributes, x's
// dependency set absorbs y's, y's children append to x's, and y is removed
// from the forest.
func (f *Forest) ApplyMerge(p *MergePlan) {
	x, y := p.X, p.Y
	x.Attrs = append(x.Attrs, y.Attrs...)
	x.Deps.AddAll(y.Deps)
	for _, c := range y.Children {
		c.Parent = x
	}
	x.Children = append(x.Children, y.Children...)
	if p.Parent == nil {
		f.Roots = removeNode(f.Roots, y)
	} else {
		p.Parent.Children = removeNode(p.Parent.Children, y)
	}
}

// AbsorbPlan records absorbing a descendant node into an ancestor for an
// equality selection between their attributes.
type AbsorbPlan struct {
	Anc, Desc *Node
	// Path holds the child indices from Anc down to Desc (Path[0] is the
	// index under Anc).
	Path []int
}

// PlanAbsorb prepares absorbing node desc into its strict ancestor anc.
// Both must be atomic.
func PlanAbsorb(anc, desc *Node) (*AbsorbPlan, error) {
	if anc.IsAgg() || desc.IsAgg() {
		return nil, fmt.Errorf("ftree: absorb: aggregate nodes cannot be absorbed")
	}
	if !anc.IsAncestorOf(desc) {
		return nil, fmt.Errorf("ftree: absorb: %s is not an ancestor of %s", anc.Label(), desc.Label())
	}
	var rev []int
	for n := desc; n != anc; n = n.Parent {
		rev = append(rev, n.Parent.ChildIndex(n))
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return &AbsorbPlan{Anc: anc, Desc: desc, Path: path}, nil
}

// ApplyAbsorb merges desc's class into anc's and splices desc's children
// into desc's parent at desc's position.
func (f *Forest) ApplyAbsorb(p *AbsorbPlan) {
	anc, desc := p.Anc, p.Desc
	anc.Attrs = append(anc.Attrs, desc.Attrs...)
	anc.Deps.AddAll(desc.Deps)
	par := desc.Parent
	idx := par.ChildIndex(desc)
	for _, c := range desc.Children {
		c.Parent = par
	}
	kids := make([]*Node, 0, len(par.Children)-1+len(desc.Children))
	kids = append(kids, par.Children[:idx]...)
	kids = append(kids, desc.Children...)
	kids = append(kids, par.Children[idx+1:]...)
	par.Children = kids
}

// RemoveLeafPlan records removal of a leaf node (projection).
type RemoveLeafPlan struct {
	Node *Node
	// Idx is the node's position among its parent's children or among the
	// roots.
	Idx int
}

// PlanRemoveLeaf prepares removing leaf node n from the forest.
func PlanRemoveLeaf(f *Forest, n *Node) (*RemoveLeafPlan, error) {
	if !n.IsLeaf() {
		return nil, fmt.Errorf("ftree: remove: node %s is not a leaf", n.Label())
	}
	p := &RemoveLeafPlan{Node: n}
	if n.Parent == nil {
		p.Idx = f.RootIndex(n)
	} else {
		p.Idx = n.Parent.ChildIndex(n)
	}
	if p.Idx < 0 {
		return nil, fmt.Errorf("ftree: remove: node position not found")
	}
	return p, nil
}

// ApplyRemoveLeaf detaches the leaf and updates dependencies: every
// remaining node that was dependent on the removed node becomes mutually
// dependent with the others (they all gain one fresh token), matching the
// projection rule of Section 2.1.
func (f *Forest) ApplyRemoveLeaf(p *RemoveLeafPlan) {
	n := p.Node
	if n.Parent == nil {
		f.Roots = removeNode(f.Roots, n)
	} else {
		n.Parent.Children = removeNode(n.Parent.Children, n)
	}
	var affected []*Node
	for _, m := range f.Nodes() {
		if m.Deps.Intersects(n.Deps) {
			affected = append(affected, m)
		}
	}
	if len(affected) > 1 {
		tok := f.NewToken()
		for _, m := range affected {
			m.Deps.Add(tok)
		}
	}
}

// AggPlan records replacing the subtree rooted at U by an aggregate node
// F(U) — the tree-level effect of the aggregation operator γ_F(U)
// (Section 3).
type AggPlan struct {
	Subtree *Node
	Fields  []AggField
	// Idx is the subtree root's position among its parent's children or
	// among the roots.
	Idx int
	// NewNode is filled in by ApplyAgg.
	NewNode *Node
}

// PlanAgg prepares aggregating the subtree rooted at u with the given
// aggregation fields. Fields with an argument attribute must find that
// attribute inside the subtree (either atomic or covered by a compatible
// inner aggregate, per the composition rules of Proposition 2).
func PlanAgg(f *Forest, u *Node, fields []AggField) (*AggPlan, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("ftree: aggregate: no aggregation fields")
	}
	attrs := u.SubtreeAttrs()
	has := func(a string) bool {
		i := sort.SearchStrings(attrs, a)
		return i < len(attrs) && attrs[i] == a
	}
	for _, fl := range fields {
		if fl.Fn != Count && fl.Arg == "" {
			return nil, fmt.Errorf("ftree: aggregate: %s needs an argument attribute", fl.Fn)
		}
		if fl.Arg != "" && !has(fl.Arg) {
			return nil, fmt.Errorf("ftree: aggregate: attribute %q not in subtree %s", fl.Arg, u.Label())
		}
	}
	p := &AggPlan{Subtree: u, Fields: fields}
	if u.Parent == nil {
		p.Idx = f.RootIndex(u)
	} else {
		p.Idx = u.Parent.ChildIndex(u)
	}
	if p.Idx < 0 {
		return nil, fmt.Errorf("ftree: aggregate: subtree position not found")
	}
	return p, nil
}

// ApplyAgg replaces the subtree by a new aggregate node. The new node
// keeps the subtree's dependency tokens (so anything dependent on the
// replaced attributes becomes dependent on F(U), as required by
// Section 3), and all outside nodes that depended on the subtree
// additionally become mutually dependent via a fresh token shared with the
// new node.
func (f *Forest) ApplyAgg(p *AggPlan) {
	u := p.Subtree
	deps := u.SubtreeDeps()
	over := u.SubtreeAttrs()
	nn := &Node{
		Agg:    &Agg{Fields: p.Fields, Over: over},
		Deps:   deps,
		Parent: u.Parent,
	}
	if u.Parent == nil {
		f.Roots[p.Idx] = nn
	} else {
		u.Parent.Children[p.Idx] = nn
	}
	// Fresh mutual-dependency token for outside nodes dependent on U.
	var affected []*Node
	for _, m := range f.Nodes() {
		if m != nn && m.Deps.Intersects(deps) {
			affected = append(affected, m)
		}
	}
	if len(affected) > 0 {
		tok := f.NewToken()
		nn.Deps.Add(tok)
		for _, m := range affected {
			m.Deps.Add(tok)
		}
	}
	p.NewNode = nn
}

func removeNode(ns []*Node, n *Node) []*Node {
	out := ns[:0]
	for _, x := range ns {
		if x != n {
			out = append(out, x)
		}
	}
	return out
}
