// Package ftree implements factorisation trees (f-trees): rooted forests
// whose nodes are labelled by classes of attribute names or by aggregate
// attributes (Definition 2 and Section 3 of the paper).
//
// An f-tree is both the schema and the nesting structure of a factorised
// representation. Nodes carry dependency-token sets; two nodes are
// dependent iff their token sets intersect, and the path constraint
// (Proposition 1) requires dependent nodes to lie on a common root-to-leaf
// path. Restructuring operators (swap, merge, absorb, remove-leaf,
// aggregate) are defined here at the tree level; package fops lifts them
// to factorised data, re-using the partition decisions computed here so
// that tree and data stay structurally in sync.
package ftree

import (
	"fmt"
	"sort"
	"strings"
)

// TokenSet is a set of dependency tokens. Base relations contribute one
// token each; projections and aggregations mint fresh tokens to record the
// new dependencies they introduce (Section 3).
type TokenSet map[int]struct{}

// NewTokenSet returns a set holding the given tokens.
func NewTokenSet(toks ...int) TokenSet {
	s := make(TokenSet, len(toks))
	for _, t := range toks {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts a token.
func (s TokenSet) Add(tok int) { s[tok] = struct{}{} }

// AddAll inserts every token of t.
func (s TokenSet) AddAll(t TokenSet) {
	for k := range t {
		s[k] = struct{}{}
	}
}

// Intersects reports whether the two sets share a token.
func (s TokenSet) Intersects(t TokenSet) bool {
	a, b := s, t
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// Clone returns a copy of the set.
func (s TokenSet) Clone() TokenSet {
	c := make(TokenSet, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

// Sorted returns the tokens in increasing order.
func (s TokenSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Fn is an aggregation function (Section 3). Avg is expressed by engines
// as the composite (Sum, Count) per Section 3.2.4 and is not an Fn here.
type Fn uint8

// The aggregation functions of the paper's γ operator.
const (
	Count Fn = iota
	Sum
	Min
	Max
)

// String returns the SQL-ish name of the function.
func (f Fn) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("fn(%d)", uint8(f))
	}
}

// AggField is one aggregation function application: Fn plus its argument
// attribute (empty for count).
type AggField struct {
	Fn  Fn
	Arg string
}

// String renders the field, e.g. "sum_price" or "count".
func (a AggField) String() string {
	if a.Arg == "" {
		return a.Fn.String()
	}
	return a.Fn.String() + "_" + a.Arg
}

// Agg labels an aggregate attribute F(X): one or more aggregation
// functions computed jointly (Section 3.2.4) over the original attribute
// set X that the aggregate replaced. Singletons of such a node are
// interpreted as pre-computed aggregates over X, not as plain values
// (Section 3.1).
type Agg struct {
	Fields []AggField
	Over   []string // sorted original (atomic) attributes covered
}

// Label renders the aggregate attribute, e.g. "sum_price(item,price)".
func (a *Agg) Label() string {
	fs := make([]string, len(a.Fields))
	for i, f := range a.Fields {
		fs[i] = f.String()
	}
	head := fs[0]
	if len(fs) > 1 {
		head = "(" + strings.Join(fs, ",") + ")"
	}
	return head + "(" + strings.Join(a.Over, ",") + ")"
}

// Covers reports whether attr is among the original attributes replaced by
// this aggregate.
func (a *Agg) Covers(attr string) bool {
	for _, x := range a.Over {
		if x == attr {
			return true
		}
	}
	return false
}

// Node is one f-tree node: either an atomic node labelled by a class of
// equal-valued attributes (Attrs non-empty, Agg nil), or an aggregate node
// (Agg non-nil, Attrs nil).
type Node struct {
	Attrs []string // equivalence class of attribute names
	Agg   *Agg     // aggregate attribute, nil for atomic nodes
	// Alias optionally renames an aggregate node to a query-level output
	// attribute (the paper's renaming operator, applied after the final
	// γ). Renaming is constant-time because names live in the f-tree, not
	// in singletons.
	Alias    string
	Deps     TokenSet
	Children []*Node
	Parent   *Node // nil for roots
}

// IsAgg reports whether the node is an aggregate attribute.
func (n *Node) IsAgg() bool { return n.Agg != nil }

// Label renders the node's attribute class or aggregate label; a renamed
// aggregate node shows its alias.
func (n *Node) Label() string {
	if n.IsAgg() {
		if n.Alias != "" {
			return n.Alias
		}
		return n.Agg.Label()
	}
	return strings.Join(n.Attrs, "=")
}

// HasAttr reports whether the node's class contains attr (atomic nodes
// only).
func (n *Node) HasAttr(attr string) bool {
	for _, a := range n.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// IsRoot reports whether the node has no parent.
func (n *Node) IsRoot() bool { return n.Parent == nil }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsAncestorOf reports whether n is a strict ancestor of m.
func (n *Node) IsAncestorOf(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// ChildIndex returns the position of child c under n, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, x := range n.Children {
		if x == c {
			return i
		}
	}
	return -1
}

// Walk visits the subtree rooted at n in pre-order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// SubtreeNodes returns the nodes of the subtree rooted at n in pre-order.
func (n *Node) SubtreeNodes() []*Node {
	var out []*Node
	n.Walk(func(m *Node) { out = append(out, m) })
	return out
}

// SubtreeAttrs returns all original attributes represented in the subtree:
// class members of atomic nodes plus the Over sets of aggregate nodes,
// sorted.
func (n *Node) SubtreeAttrs() []string {
	set := map[string]bool{}
	n.Walk(func(m *Node) {
		if m.IsAgg() {
			for _, a := range m.Agg.Over {
				set[a] = true
			}
		} else {
			for _, a := range m.Attrs {
				set[a] = true
			}
		}
	})
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SubtreeDeps returns the union of dependency tokens in the subtree.
func (n *Node) SubtreeDeps() TokenSet {
	out := NewTokenSet()
	n.Walk(func(m *Node) { out.AddAll(m.Deps) })
	return out
}

// Forest is an f-tree: an ordered rooted forest. Child and root order is
// significant operationally (factorised data mirrors it position by
// position) but not semantically (products commute).
type Forest struct {
	Roots     []*Node
	nextToken int
}

// New returns an empty forest.
func New() *Forest { return &Forest{} }

// NewToken mints a fresh dependency token unique within this forest.
func (f *Forest) NewToken() int {
	t := f.nextToken
	f.nextToken++
	return t
}

// TokenBound returns an exclusive upper bound on the tokens minted so far.
func (f *Forest) TokenBound() int { return f.nextToken }

// ShiftTokens adds delta to every dependency token in the forest, making
// room to combine it with another forest's tokens (see fops.Product).
func (f *Forest) ShiftTokens(delta int) {
	for _, n := range f.Nodes() {
		shifted := NewTokenSet()
		for t := range n.Deps {
			shifted.Add(t + delta)
		}
		n.Deps = shifted
	}
	f.nextToken += delta
}

// Concat appends the roots of other to this forest. Callers are
// responsible for token disjointness (ShiftTokens) and must not reuse
// other afterwards.
func (f *Forest) Concat(other *Forest) {
	f.Roots = append(f.Roots, other.Roots...)
	if other.nextToken > f.nextToken {
		f.nextToken = other.nextToken
	}
}

// NewRelationPath appends a linear-path f-tree for a base relation with
// the given attributes (in the given order, top to bottom). All nodes of a
// base relation are mutually dependent, so they share one fresh token. It
// returns the root.
func (f *Forest) NewRelationPath(attrs ...string) *Node {
	if len(attrs) == 0 {
		panic("ftree: relation path needs at least one attribute")
	}
	tok := f.NewToken()
	var root, prev *Node
	for _, a := range attrs {
		n := &Node{Attrs: []string{a}, Deps: NewTokenSet(tok)}
		if prev == nil {
			root = n
		} else {
			prev.Children = append(prev.Children, n)
			n.Parent = prev
		}
		prev = n
	}
	f.Roots = append(f.Roots, root)
	return root
}

// Nodes returns all nodes in pre-order (roots left to right).
func (f *Forest) Nodes() []*Node {
	var out []*Node
	for _, r := range f.Roots {
		out = append(out, r.SubtreeNodes()...)
	}
	return out
}

// AttrNode returns the atomic node whose class contains attr, or nil.
func (f *Forest) AttrNode(attr string) *Node {
	for _, n := range f.Nodes() {
		if !n.IsAgg() && n.HasAttr(attr) {
			return n
		}
	}
	return nil
}

// AggNodes returns all aggregate nodes in pre-order.
func (f *Forest) AggNodes() []*Node {
	var out []*Node
	for _, n := range f.Nodes() {
		if n.IsAgg() {
			out = append(out, n)
		}
	}
	return out
}

// AtomicAttrs returns all attributes of atomic classes in the forest,
// sorted.
func (f *Forest) AtomicAttrs() []string {
	var out []string
	for _, n := range f.Nodes() {
		if !n.IsAgg() {
			out = append(out, n.Attrs...)
		}
	}
	sort.Strings(out)
	return out
}

// RootIndex returns the position of root r, or -1.
func (f *Forest) RootIndex(r *Node) int {
	for i, x := range f.Roots {
		if x == r {
			return i
		}
	}
	return -1
}

// Clone deep-copies the forest (token counter included) and returns the
// copy together with a node-correspondence map from original nodes to
// their clones.
func (f *Forest) Clone() (*Forest, map[*Node]*Node) {
	out := &Forest{nextToken: f.nextToken}
	corr := make(map[*Node]*Node)
	var cp func(n, parent *Node) *Node
	cp = func(n, parent *Node) *Node {
		m := &Node{
			Alias:  n.Alias,
			Deps:   n.Deps.Clone(),
			Parent: parent,
		}
		if n.IsAgg() {
			fields := make([]AggField, len(n.Agg.Fields))
			copy(fields, n.Agg.Fields)
			over := make([]string, len(n.Agg.Over))
			copy(over, n.Agg.Over)
			m.Agg = &Agg{Fields: fields, Over: over}
		} else {
			m.Attrs = make([]string, len(n.Attrs))
			copy(m.Attrs, n.Attrs)
		}
		corr[n] = m
		for _, c := range n.Children {
			m.Children = append(m.Children, cp(c, m))
		}
		return m
	}
	for _, r := range f.Roots {
		out.Roots = append(out.Roots, cp(r, nil))
	}
	return out, corr
}

// Validate checks structural invariants: unique attributes across atomic
// classes, consistent parent pointers, and the path constraint (dependent
// nodes share a root-to-leaf path).
func (f *Forest) Validate() error {
	seen := map[string]bool{}
	var nodes []*Node
	var walk func(n, parent *Node) error
	walk = func(n, parent *Node) error {
		if n.Parent != parent {
			return fmt.Errorf("ftree: node %s has inconsistent parent pointer", n.Label())
		}
		if n.IsAgg() == (len(n.Attrs) > 0) {
			return fmt.Errorf("ftree: node %s must be exactly one of atomic or aggregate", n.Label())
		}
		if !n.IsAgg() {
			for _, a := range n.Attrs {
				if seen[a] {
					return fmt.Errorf("ftree: attribute %q appears in two nodes", a)
				}
				seen[a] = true
			}
		}
		nodes = append(nodes, n)
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range f.Roots {
		if err := walk(r, nil); err != nil {
			return err
		}
	}
	// Path constraint: dependent nodes must be in an ancestor relation.
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			if a.Deps.Intersects(b.Deps) {
				if !(a.IsAncestorOf(b) || b.IsAncestorOf(a)) {
					return fmt.Errorf("ftree: path constraint violated between %s and %s", a.Label(), b.Label())
				}
			}
		}
	}
	return nil
}

// String renders the forest as an indented tree, one node per line.
func (f *Forest) String() string {
	var b strings.Builder
	var dump func(n *Node, depth int)
	dump = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteByte('\n')
		for _, c := range n.Children {
			dump(c, depth+1)
		}
	}
	for _, r := range f.Roots {
		dump(r, 0)
	}
	return b.String()
}

// CanonicalKey returns a string that identifies the forest up to
// reordering of children and roots (products commute) and token renaming
// that preserves the intersection pattern. It is used as a visited-state
// key in plan search. Token sets are included verbatim; within one search
// all states descend from the same initial forest, so token identities are
// comparable.
func (f *Forest) CanonicalKey() string {
	var enc func(n *Node) string
	enc = func(n *Node) string {
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = enc(c)
		}
		sort.Strings(kids)
		toks := n.Deps.Sorted()
		parts := make([]string, len(toks))
		for i, t := range toks {
			parts[i] = fmt.Sprint(t)
		}
		return n.Label() + "{" + strings.Join(parts, ",") + "}[" + strings.Join(kids, ";") + "]"
	}
	roots := make([]string, len(f.Roots))
	for i, r := range f.Roots {
		roots[i] = enc(r)
	}
	sort.Strings(roots)
	return strings.Join(roots, "|")
}
