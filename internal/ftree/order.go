package ftree

// This file implements the characterisations of Theorems 1 and 2: which
// f-trees support constant-delay enumeration grouped by a set G of
// attributes, or ordered by a list O of attributes.

// ResolveAttr returns the node that carries the given attribute name:
// either an atomic node whose class contains it, or an aggregate node
// whose alias or label equals it. Returns nil if absent.
func (f *Forest) ResolveAttr(attr string) *Node {
	for _, n := range f.Nodes() {
		if n.IsAgg() {
			if n.Alias == attr || n.Agg.Label() == attr {
				return n
			}
		} else if n.HasAttr(attr) {
			return n
		}
	}
	return nil
}

// attrNodesInOrder maps the attribute list to nodes, dropping attributes
// that resolve to an already-seen node (two attributes in one equivalence
// class have equal values, so the second is redundant for grouping and
// ordering — see the remark before Theorem 1). Unknown attributes map to
// nil entries.
func (f *Forest) attrNodesInOrder(attrs []string) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	for _, a := range attrs {
		n := f.ResolveAttr(a)
		if n == nil {
			out = append(out, nil)
			continue
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// SupportsGrouping reports whether tuples can be enumerated with constant
// delay grouped by the attributes G (Theorem 1): each G node must be a
// root or a child of another G node.
func (f *Forest) SupportsGrouping(g []string) bool {
	nodes := f.attrNodesInOrder(g)
	inG := map[*Node]bool{}
	for _, n := range nodes {
		if n == nil {
			return false
		}
		inG[n] = true
	}
	for _, n := range nodes {
		if !n.IsRoot() && !inG[n.Parent] {
			return false
		}
	}
	return true
}

// SupportsOrder reports whether tuples can be enumerated with constant
// delay in lexicographic order by the list O (Theorem 2): each O node must
// be a root or a child of a node carrying an attribute appearing earlier
// in O. Ascending/descending directions do not affect support (descending
// just iterates sorted unions backwards).
func (f *Forest) SupportsOrder(o []string) bool {
	nodes := f.attrNodesInOrder(o)
	pos := map[*Node]int{}
	for i, n := range nodes {
		if n == nil {
			return false
		}
		pos[n] = i
	}
	for i, n := range nodes {
		if n.IsRoot() {
			continue
		}
		j, ok := pos[n.Parent]
		if !ok || j >= i {
			return false
		}
	}
	return true
}

// GroupingViolation returns a node that must be swapped up to make the
// forest support grouping by G, following the placement strategy of the
// greedy heuristic (step 4 in Section 5.2): process G attributes in the
// given order; for the first attribute whose node is neither a root nor a
// child of an already-placed G node, return its node. Returns nil when
// grouping is supported. Repeatedly swapping the returned node with its
// parent and re-querying terminates with a supporting forest.
func (f *Forest) GroupingViolation(g []string) *Node {
	nodes := f.attrNodesInOrder(g)
	placed := map[*Node]bool{}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if n.IsRoot() || placed[n.Parent] {
			placed[n] = true
			continue
		}
		return n
	}
	return nil
}

// OrderViolation is the ordering analogue of GroupingViolation (step 5 in
// Section 5.2): the parent must carry an attribute strictly earlier in O.
func (f *Forest) OrderViolation(o []string) *Node {
	nodes := f.attrNodesInOrder(o)
	placed := map[*Node]bool{}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if n.IsRoot() || placed[n.Parent] {
			placed[n] = true
			continue
		}
		return n
	}
	return nil
}
