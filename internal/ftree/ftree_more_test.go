package ftree

import (
	"strings"
	"testing"
)

func TestShiftTokensAndConcat(t *testing.T) {
	a := New()
	a.NewRelationPath("x", "y")
	b := New()
	b.NewRelationPath("z", "w")
	// Shift b's tokens past a's, then concat.
	b.ShiftTokens(a.TokenBound())
	a.Concat(b)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != 2 {
		t.Fatalf("want 2 roots, got %d", len(a.Roots))
	}
	// Tokens must not collide: x/y and z/w independent.
	x := a.AttrNode("x")
	z := a.AttrNode("z")
	if x.Deps.Intersects(z.Deps) {
		t.Error("tokens collide after ShiftTokens")
	}
	// Minting a fresh token must not collide with either side.
	tok := a.NewToken()
	for _, n := range a.Nodes() {
		if _, ok := n.Deps[tok]; ok {
			t.Error("fresh token collides")
		}
	}
}

func TestCanonicalKeyDistinguishesShapes(t *testing.T) {
	line := New()
	line.NewRelationPath("a", "b", "c")

	star := New()
	tok := star.NewToken()
	root := &Node{Attrs: []string{"a"}, Deps: NewTokenSet(tok)}
	b := &Node{Attrs: []string{"b"}, Deps: NewTokenSet(tok), Parent: root}
	c := &Node{Attrs: []string{"c"}, Deps: NewTokenSet(tok), Parent: root}
	root.Children = []*Node{b, c}
	star.Roots = []*Node{root}

	if line.CanonicalKey() == star.CanonicalKey() {
		t.Error("different shapes must have different canonical keys")
	}
}

func TestResolveAttrAggLabel(t *testing.T) {
	f := New()
	tok := f.NewToken()
	n := &Node{
		Agg:  &Agg{Fields: []AggField{{Fn: Sum, Arg: "p"}}, Over: []string{"p", "q"}},
		Deps: NewTokenSet(tok),
	}
	f.Roots = []*Node{n}
	if f.ResolveAttr("sum_p(p,q)") != n {
		t.Error("aggregate label should resolve")
	}
	n.Alias = "rev"
	if f.ResolveAttr("rev") != n {
		t.Error("alias should resolve")
	}
	// SupportsOrder through an alias.
	if !f.SupportsOrder([]string{"rev"}) {
		t.Error("ordering by a root aggregate alias should be supported")
	}
}

func TestSubtreeHelpers(t *testing.T) {
	f := New()
	f.NewRelationPath("a", "b", "c")
	root := f.Roots[0]
	if got := len(root.SubtreeNodes()); got != 3 {
		t.Errorf("subtree nodes = %d", got)
	}
	attrs := root.SubtreeAttrs()
	if len(attrs) != 3 || attrs[0] != "a" {
		t.Errorf("subtree attrs = %v", attrs)
	}
	leaf := root.Children[0].Children[0]
	if !root.IsAncestorOf(leaf) || leaf.IsAncestorOf(root) {
		t.Error("ancestor relation wrong")
	}
	if root.ChildIndex(leaf) != -1 {
		t.Error("non-child should have index -1")
	}
	if !leaf.IsLeaf() || leaf.IsRoot() || !root.IsRoot() {
		t.Error("leaf/root predicates wrong")
	}
}

func TestAggFieldAndFnStrings(t *testing.T) {
	if (AggField{Fn: Count}).String() != "count" {
		t.Error("count field label")
	}
	if (AggField{Fn: Sum, Arg: "x"}).String() != "sum_x" {
		t.Error("sum field label")
	}
	for _, fn := range []Fn{Count, Sum, Min, Max} {
		if fn.String() == "" {
			t.Error("empty Fn label")
		}
	}
	if !strings.Contains(Fn(77).String(), "77") {
		t.Error("unknown Fn should include its number")
	}
}

func TestValidateRejectsBadParentPointer(t *testing.T) {
	f := New()
	f.NewRelationPath("a", "b")
	f.Roots[0].Children[0].Parent = nil // corrupt
	if err := f.Validate(); err == nil {
		t.Error("corrupt parent pointer should fail validation")
	}
}

func TestSizeBoundEmptyCatalog(t *testing.T) {
	f := New()
	f.NewRelationPath("a", "b")
	// No catalogue: every node bounds to 1.
	if got := f.SizeBound(nil); got != 2 {
		t.Errorf("bound = %v, want 2 (one per node)", got)
	}
}

func TestSizeBoundTriangle(t *testing.T) {
	// Triangle query R(a,b), S(b,c), T(c,a), all size N: a path tree
	// a→b→c has bound N + N + N^{3/2} (ρ* of the triangle is 3/2).
	f := New()
	r, s, u := f.NewToken(), f.NewToken(), f.NewToken()
	a := &Node{Attrs: []string{"a"}, Deps: NewTokenSet(r, u)}
	b := &Node{Attrs: []string{"b"}, Deps: NewTokenSet(r, s), Parent: a}
	c := &Node{Attrs: []string{"c"}, Deps: NewTokenSet(s, u), Parent: b}
	a.Children = []*Node{b}
	b.Children = []*Node{c}
	f.Roots = []*Node{a}
	cat := []CatalogRelation{
		{Name: "R", Attrs: []string{"a", "b"}, Size: 100},
		{Name: "S", Attrs: []string{"b", "c"}, Size: 100},
		{Name: "T", Attrs: []string{"c", "a"}, Size: 100},
	}
	got := f.SizeBound(cat)
	want := 100.0 + 100.0 + 1000.0 // N + N + N^1.5
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("triangle bound = %v, want ≈%v", got, want)
	}
}
