package ftree

import (
	"strings"
	"testing"
)

// pizzeriaT1 builds the paper's f-tree T1 (Figure 2):
//
//	pizza
//	├─ date
//	│   └─ customer
//	└─ item
//	    └─ price
//
// with dependency tokens for Orders(customer,date,pizza)=o,
// Pizzas(pizza,item)=p, Items(item,price)=i.
func pizzeriaT1() (*Forest, map[string]*Node) {
	f := New()
	o, p, i := f.NewToken(), f.NewToken(), f.NewToken()
	pizza := &Node{Attrs: []string{"pizza"}, Deps: NewTokenSet(o, p)}
	date := &Node{Attrs: []string{"date"}, Deps: NewTokenSet(o), Parent: pizza}
	customer := &Node{Attrs: []string{"customer"}, Deps: NewTokenSet(o), Parent: date}
	item := &Node{Attrs: []string{"item"}, Deps: NewTokenSet(p, i), Parent: pizza}
	price := &Node{Attrs: []string{"price"}, Deps: NewTokenSet(i), Parent: item}
	pizza.Children = []*Node{date, item}
	date.Children = []*Node{customer}
	item.Children = []*Node{price}
	f.Roots = []*Node{pizza}
	m := map[string]*Node{
		"pizza": pizza, "date": date, "customer": customer, "item": item, "price": price,
	}
	return f, m
}

func TestValidateT1(t *testing.T) {
	f, _ := pizzeriaT1()
	if err := f.Validate(); err != nil {
		t.Fatalf("T1 should validate: %v", err)
	}
}

func TestValidatePathConstraintViolation(t *testing.T) {
	// date and customer as siblings share the Orders token → violation.
	f := New()
	o := f.NewToken()
	root := &Node{Attrs: []string{"pizza"}, Deps: NewTokenSet(o)}
	d := &Node{Attrs: []string{"date"}, Deps: NewTokenSet(o), Parent: root}
	c := &Node{Attrs: []string{"customer"}, Deps: NewTokenSet(o), Parent: root}
	root.Children = []*Node{d, c}
	f.Roots = []*Node{root}
	if err := f.Validate(); err == nil {
		t.Fatal("sibling dependent nodes should violate the path constraint")
	}
}

func TestValidateDuplicateAttr(t *testing.T) {
	f := New()
	f.NewRelationPath("a", "b")
	f.NewRelationPath("b", "c")
	if err := f.Validate(); err == nil {
		t.Fatal("duplicate attribute should fail validation")
	}
}

func TestNewRelationPath(t *testing.T) {
	f := New()
	r := f.NewRelationPath("a", "b", "c")
	if r.Label() != "a" || len(r.Children) != 1 || r.Children[0].Label() != "b" {
		t.Fatalf("unexpected path structure:\n%s", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// All nodes share the relation token → all mutually dependent.
	n := f.Nodes()
	if len(n) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(n))
	}
	if !n[0].Deps.Intersects(n[2].Deps) {
		t.Error("path nodes should share the relation token")
	}
}

func TestAttrNodeAndResolve(t *testing.T) {
	f, m := pizzeriaT1()
	if f.AttrNode("customer") != m["customer"] {
		t.Error("AttrNode(customer) wrong")
	}
	if f.AttrNode("missing") != nil {
		t.Error("AttrNode(missing) should be nil")
	}
	if f.ResolveAttr("price") != m["price"] {
		t.Error("ResolveAttr(price) wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	f, m := pizzeriaT1()
	g, corr := f.Clone()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if corr[m["pizza"]] == m["pizza"] {
		t.Fatal("clone should create new nodes")
	}
	// Mutate the clone; original unchanged.
	corr[m["date"]].Attrs[0] = "DATE"
	if m["date"].Attrs[0] != "date" {
		t.Error("clone shares attr storage with original")
	}
	corr[m["pizza"]].Deps.Add(99)
	if _, ok := m["pizza"].Deps[99]; ok {
		t.Error("clone shares token sets with original")
	}
	if f.CanonicalKey() == g.CanonicalKey() {
		t.Log("keys equal before mutation effects on labels — expected only if labels unchanged")
	}
}

func TestCanonicalKeyIgnoresChildOrder(t *testing.T) {
	f, m := pizzeriaT1()
	k1 := f.CanonicalKey()
	// Reverse children of pizza.
	m["pizza"].Children[0], m["pizza"].Children[1] = m["pizza"].Children[1], m["pizza"].Children[0]
	if f.CanonicalKey() != k1 {
		t.Error("canonical key should be invariant under child reordering")
	}
}

func TestSwapDependentChildrenStay(t *testing.T) {
	// Swap date above pizza in T1. customer depends on pizza (shared
	// Orders token), so it must remain below pizza (the paper's T_AB):
	//
	//	date
	//	└─ pizza
	//	    ├─ customer
	//	    └─ item ─ price
	f, m := pizzeriaT1()
	plan, err := PlanSwap(m["date"])
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.DepIdx) != 1 || len(plan.IndepIdx) != 0 {
		t.Fatalf("customer should be classified dependent on pizza; plan=%+v", plan)
	}
	f.ApplySwap(plan)
	if err := f.Validate(); err != nil {
		t.Fatalf("after swap: %v\n%s", err, f)
	}
	if f.Roots[0] != m["date"] {
		t.Fatalf("date should be root, got %s", f.Roots[0].Label())
	}
	if m["pizza"].Parent != m["date"] {
		t.Error("pizza should hang below date")
	}
	if m["customer"].Parent != m["pizza"] {
		t.Error("customer should have moved under pizza (T_AB)")
	}
}

func TestSwapIndependentChildrenMoveUp(t *testing.T) {
	// Orders split into Menu(pizza,date) and Guests(date,customer):
	// customer is independent of pizza given date, so swapping date up
	// takes customer along (the paper's Example 11 shape).
	f := New()
	menu, guests := f.NewToken(), f.NewToken()
	pizza := &Node{Attrs: []string{"pizza"}, Deps: NewTokenSet(menu)}
	date := &Node{Attrs: []string{"date"}, Deps: NewTokenSet(menu, guests), Parent: pizza}
	customer := &Node{Attrs: []string{"customer"}, Deps: NewTokenSet(guests), Parent: date}
	pizza.Children = []*Node{date}
	date.Children = []*Node{customer}
	f.Roots = []*Node{pizza}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanSwap(date)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.IndepIdx) != 1 || len(plan.DepIdx) != 0 {
		t.Fatalf("customer should be independent of pizza; plan=%+v", plan)
	}
	f.ApplySwap(plan)
	if err := f.Validate(); err != nil {
		t.Fatalf("after swap: %v\n%s", err, f)
	}
	if f.Roots[0] != date || customer.Parent != date || pizza.Parent != date {
		t.Fatalf("want date root with children {pizza, customer}:\n%s", f)
	}
}

func TestSwapRootFails(t *testing.T) {
	f, m := pizzeriaT1()
	_ = f
	if _, err := PlanSwap(m["pizza"]); err == nil {
		t.Error("swapping a root should fail")
	}
}

func TestMergeSiblingRoots(t *testing.T) {
	// Two relation paths R(a,b), S(a2,c); merge a with a2 (selection
	// a=a2).
	f := New()
	r := f.NewRelationPath("a", "b")
	s := f.NewRelationPath("a2", "c")
	plan, err := PlanMerge(f, r, s)
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyMerge(plan)
	if err := f.Validate(); err != nil {
		t.Fatalf("after merge: %v\n%s", err, f)
	}
	if len(f.Roots) != 1 {
		t.Fatalf("want a single root, got %d", len(f.Roots))
	}
	root := f.Roots[0]
	if root.Label() != "a=a2" {
		t.Errorf("merged class label = %s", root.Label())
	}
	if len(root.Children) != 2 {
		t.Errorf("merged node should keep both children, got %d", len(root.Children))
	}
}

func TestMergeErrors(t *testing.T) {
	f, m := pizzeriaT1()
	if _, err := PlanMerge(f, m["date"], m["customer"]); err == nil {
		t.Error("non-siblings should not merge")
	}
	if _, err := PlanMerge(f, m["date"], m["date"]); err == nil {
		t.Error("merging a node with itself should fail")
	}
}

func TestAbsorbDescendant(t *testing.T) {
	// R(a,b), S(b2,c) joined as one tree a → b → b2 → c, then absorb b2
	// into b.
	f := New()
	f.NewRelationPath("a", "b")
	f.NewRelationPath("b2", "c")
	a, b := f.Roots[0], f.Roots[0].Children[0]
	b2 := f.Roots[1]
	c := b2.Children[0]
	// Hang the S path below b (as a product under b's context).
	f.Roots = f.Roots[:1]
	b2.Parent = b
	b.Children = append(b.Children, b2)

	plan, err := PlanAbsorb(b, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Path) != 1 || plan.Path[0] != 0 {
		t.Fatalf("path = %v", plan.Path)
	}
	f.ApplyAbsorb(plan)
	if err := f.Validate(); err != nil {
		t.Fatalf("after absorb: %v\n%s", err, f)
	}
	if b.Label() != "b=b2" {
		t.Errorf("absorbed class = %s", b.Label())
	}
	if c.Parent != b {
		t.Error("c should be hoisted under b")
	}
	if a.Children[0] != b {
		t.Error("tree shape disturbed")
	}
}

func TestAbsorbErrors(t *testing.T) {
	f, m := pizzeriaT1()
	_ = f
	if _, err := PlanAbsorb(m["date"], m["item"]); err == nil {
		t.Error("absorb of a non-descendant should fail")
	}
}

func TestRemoveLeafDependencyUpdate(t *testing.T) {
	// R1(a,b), R2(a,c) over tree b → a → c (a joins both). Removing leaf
	// … first restructure so a is a leaf: swap c above a: b → c → a.
	f := New()
	r1 := f.NewToken()
	r2 := f.NewToken()
	b := &Node{Attrs: []string{"b"}, Deps: NewTokenSet(r1)}
	a := &Node{Attrs: []string{"a"}, Deps: NewTokenSet(r1, r2), Parent: b}
	c := &Node{Attrs: []string{"c"}, Deps: NewTokenSet(r2), Parent: a}
	b.Children = []*Node{a}
	a.Children = []*Node{c}
	f.Roots = []*Node{b}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanSwap(c)
	if err != nil {
		t.Fatal(err)
	}
	f.ApplySwap(plan) // b → c → a
	if a.Parent != c || !a.IsLeaf() {
		t.Fatalf("a should now be a leaf below c:\n%s", f)
	}

	rm, err := PlanRemoveLeaf(f, a)
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyRemoveLeaf(rm)
	if err := f.Validate(); err != nil {
		t.Fatalf("after remove: %v\n%s", err, f)
	}
	// b and c were both dependent on a; projecting a away makes them
	// mutually dependent.
	if !b.Deps.Intersects(c.Deps) {
		t.Error("b and c should be mutually dependent after removing the join attribute")
	}
}

func TestRemoveLeafErrors(t *testing.T) {
	f, m := pizzeriaT1()
	if _, err := PlanRemoveLeaf(f, m["item"]); err == nil {
		t.Error("removing a non-leaf should fail")
	}
}

func TestAggReplacesSubtree(t *testing.T) {
	// γ_{sum_price}(item subtree) on T1 yields T2 (Figure 2).
	f, m := pizzeriaT1()
	plan, err := PlanAgg(f, m["item"], []AggField{{Fn: Sum, Arg: "price"}})
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyAgg(plan)
	if err := f.Validate(); err != nil {
		t.Fatalf("after γ: %v\n%s", err, f)
	}
	nn := plan.NewNode
	if nn == nil || !nn.IsAgg() {
		t.Fatal("aggregate node missing")
	}
	if got := nn.Agg.Label(); got != "sum_price(item,price)" {
		t.Errorf("aggregate label = %s", got)
	}
	if nn.Parent != m["pizza"] {
		t.Error("aggregate node should replace the item subtree under pizza")
	}
	// The new attribute depends on pizza (Example 5): pizza depended on
	// item via the Pizzas token, so they must now share a token.
	if !nn.Deps.Intersects(m["pizza"].Deps) {
		t.Error("sum_price(item,price) should depend on pizza")
	}
	// date/customer should not depend on the aggregate.
	if nn.Deps.Intersects(m["customer"].Deps) {
		t.Error("aggregate should not depend on customer")
	}
}

func TestAggValidation(t *testing.T) {
	f, m := pizzeriaT1()
	if _, err := PlanAgg(f, m["item"], nil); err == nil {
		t.Error("empty fields should fail")
	}
	if _, err := PlanAgg(f, m["item"], []AggField{{Fn: Sum, Arg: "customer"}}); err == nil {
		t.Error("sum over attribute outside the subtree should fail")
	}
	if _, err := PlanAgg(f, m["item"], []AggField{{Fn: Sum}}); err == nil {
		t.Error("sum without argument should fail")
	}
}

func TestAggWholeTreeThenLabel(t *testing.T) {
	f, m := pizzeriaT1()
	plan, err := PlanAgg(f, m["pizza"], []AggField{{Fn: Count}})
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyAgg(plan)
	if len(f.Roots) != 1 || !f.Roots[0].IsAgg() {
		t.Fatalf("whole tree should be one aggregate node:\n%s", f)
	}
	want := "count(customer,date,item,pizza,price)"
	if got := f.Roots[0].Label(); got != want {
		t.Errorf("label = %s, want %s", got, want)
	}
	f.Roots[0].Alias = "n"
	if f.Roots[0].Label() != "n" {
		t.Error("alias should override the label")
	}
	if f.ResolveAttr("n") != f.Roots[0] {
		t.Error("ResolveAttr should find aliased aggregate nodes")
	}
}

func TestSupportsOrderExample9(t *testing.T) {
	f, _ := pizzeriaT1()
	supported := [][]string{
		{"pizza"},
		{"pizza", "date"},
		{"pizza", "date", "customer"},
		{"pizza", "item"},
		{"pizza", "item", "price"},
		{"pizza", "date", "item"},
		{"pizza", "item", "date"},
	}
	for _, o := range supported {
		if !f.SupportsOrder(o) {
			t.Errorf("order %v should be supported by T1", o)
		}
	}
	unsupported := [][]string{
		{"pizza", "customer", "date"},
		{"customer", "pizza"},
		{"date"},
		{"customer"},
		{"pizza", "price"},
	}
	for _, o := range unsupported {
		if f.SupportsOrder(o) {
			t.Errorf("order %v should NOT be supported by T1", o)
		}
	}
	if f.SupportsOrder([]string{"bogus"}) {
		t.Error("unknown attribute should not be supported")
	}
}

func TestSupportsGroupingExample10(t *testing.T) {
	f, _ := pizzeriaT1()
	// All orders of Example 9 plus their permutations are supported for
	// grouping.
	supported := [][]string{
		{"pizza"},
		{"date", "pizza"},
		{"customer", "date", "pizza"},
		{"item", "pizza"},
		{"date", "item", "pizza"},
		{"customer", "pizza", "date"},
	}
	for _, g := range supported {
		if !f.SupportsGrouping(g) {
			t.Errorf("grouping %v should be supported by T1", g)
		}
	}
	unsupported := [][]string{
		{"date"},
		{"customer", "pizza"},
		{"price", "pizza"},
	}
	for _, g := range unsupported {
		if f.SupportsGrouping(g) {
			t.Errorf("grouping %v should NOT be supported by T1", g)
		}
	}
}

func TestGroupingViolationLoopTerminates(t *testing.T) {
	f, m := pizzeriaT1()
	g := []string{"customer", "pizza"}
	for i := 0; ; i++ {
		if i > 50 {
			t.Fatalf("restructuring loop did not terminate:\n%s", f)
		}
		v := f.GroupingViolation(g)
		if v == nil {
			break
		}
		plan, err := PlanSwap(v)
		if err != nil {
			t.Fatal(err)
		}
		f.ApplySwap(plan)
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid forest mid-restructuring: %v\n%s", err, f)
		}
	}
	if !f.SupportsGrouping(g) {
		t.Fatalf("grouping still unsupported:\n%s", f)
	}
	// customer must now be a root (Example 2: pushing customer up past
	// date and pizza).
	if !m["customer"].IsRoot() {
		t.Errorf("customer should be a root:\n%s", f)
	}
	// The right branch (item → price) should be intact.
	if m["price"].Parent != m["item"] {
		t.Error("item→price branch should be preserved")
	}
}

func TestOrderViolationLoopTerminates(t *testing.T) {
	f, _ := pizzeriaT1()
	o := []string{"customer", "pizza", "item", "price"}
	for i := 0; ; i++ {
		if i > 50 {
			t.Fatalf("restructuring loop did not terminate:\n%s", f)
		}
		v := f.OrderViolation(o)
		if v == nil {
			break
		}
		plan, err := PlanSwap(v)
		if err != nil {
			t.Fatal(err)
		}
		f.ApplySwap(plan)
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid forest mid-restructuring: %v\n%s", err, f)
		}
	}
	if !f.SupportsOrder(o) {
		t.Fatalf("order still unsupported:\n%s", f)
	}
}

func TestStringRendering(t *testing.T) {
	f, _ := pizzeriaT1()
	s := f.String()
	for _, want := range []string{"pizza", "date", "customer", "item", "price"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSizeBoundLinearPath(t *testing.T) {
	f := New()
	f.NewRelationPath("a", "b", "c")
	cat := []CatalogRelation{{Name: "R", Attrs: []string{"a", "b", "c"}, Size: 100}}
	got := f.SizeBound(cat)
	if got < 299 || got > 301 {
		t.Errorf("bound = %v, want ≈300 (3 nodes × |R|)", got)
	}
}

func TestSizeBoundPrefersJoinAttrOnTop(t *testing.T) {
	// R(a,b) size N, S(b,c) size M. Tree b→{a,c} has bound
	// min(N,M)+N+M, much smaller than a→b→c with N+N+N·M.
	mk := func(shape string) *Forest {
		f := New()
		r, s := f.NewToken(), f.NewToken()
		switch shape {
		case "b-top":
			b := &Node{Attrs: []string{"b"}, Deps: NewTokenSet(r, s)}
			a := &Node{Attrs: []string{"a"}, Deps: NewTokenSet(r), Parent: b}
			c := &Node{Attrs: []string{"c"}, Deps: NewTokenSet(s), Parent: b}
			b.Children = []*Node{a, c}
			f.Roots = []*Node{b}
		case "a-top":
			a := &Node{Attrs: []string{"a"}, Deps: NewTokenSet(r)}
			b := &Node{Attrs: []string{"b"}, Deps: NewTokenSet(r, s), Parent: a}
			c := &Node{Attrs: []string{"c"}, Deps: NewTokenSet(s), Parent: b}
			a.Children = []*Node{b}
			b.Children = []*Node{c}
			f.Roots = []*Node{a}
		}
		return f
	}
	cat := []ftreeCatalog{{"R", []string{"a", "b"}, 1000}, {"S", []string{"b", "c"}, 1000}}
	catalog := make([]CatalogRelation, len(cat))
	for i, c := range cat {
		catalog[i] = CatalogRelation{Name: c.name, Attrs: c.attrs, Size: c.size}
	}
	bTop := mk("b-top").SizeBound(catalog)
	aTop := mk("a-top").SizeBound(catalog)
	if !(bTop < aTop) {
		t.Errorf("bound(b-top)=%v should be < bound(a-top)=%v", bTop, aTop)
	}
	// b-top ≈ 1000 + 1000 + 1000 = 3000; a-top ≈ 1000 + 1000 + 10^6.
	if bTop > 3500 {
		t.Errorf("bound(b-top)=%v, want ≈3000", bTop)
	}
	if aTop < 1e6 {
		t.Errorf("bound(a-top)=%v, want ≥10^6", aTop)
	}
}

type ftreeCatalog struct {
	name  string
	attrs []string
	size  int
}

func TestSizeBoundAggNodesUseParentContext(t *testing.T) {
	f, m := pizzeriaT1()
	cat := []CatalogRelation{
		{Name: "Orders", Attrs: []string{"customer", "date", "pizza"}, Size: 50},
		{Name: "Pizzas", Attrs: []string{"pizza", "item"}, Size: 20},
		{Name: "Items", Attrs: []string{"item", "price"}, Size: 10},
	}
	before := f.SizeBound(cat)
	plan, err := PlanAgg(f, m["item"], []AggField{{Fn: Sum, Arg: "price"}})
	if err != nil {
		t.Fatal(err)
	}
	f.ApplyAgg(plan)
	after := f.SizeBound(cat)
	if !(after < before) {
		t.Errorf("aggregating a subtree should not increase the bound: before=%v after=%v", before, after)
	}
}
