package engine

// Compaction folds the WAL and the per-relation delta layers back into
// an immutable catalogue snapshot, then truncates the log. The state
// machine:
//
//	1. seal    — under the writer lock: fsync and close the active WAL
//	             segment (epoch E), create segment E+1, capture the
//	             current view and per-relation generations. New writes
//	             land in E+1 from here on.
//	2. rewrite — without the lock: build a fresh catalogue from the
//	             captured view and write snap-E via the snapshot path's
//	             temp + fsync + rename.
//	3. commit  — atomically replace MANIFEST to point at snap-E with
//	             epoch E. This is the linearisation point: replay now
//	             starts from snap-E and applies only segments > E.
//	4. gc      — delete segments ≤ E and superseded snapshots.
//	5. rebase  — under the lock: every relation not written since the
//	             capture swaps its delta layer for a fresh overlay over
//	             the compacted factorisation (empty deltas, generation
//	             reset). Relations written during the rewrite keep their
//	             deltas — their new writes are safely in segment E+1 and
//	             the next compaction picks them up.
//
// Crashing (or cancelling) anywhere before step 3 leaves the previous
// manifest authoritative; both the sealed and the new segment replay on
// top of the old snapshot, so no acknowledged write is lost and the
// recovered state is byte-identical.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/wal"
)

// ErrCompactionRunning is returned by Compact when another compaction is
// already in flight.
var ErrCompactionRunning = errors.New("engine: compaction already running")

// Compact folds the current state into a fresh snapshot and truncates
// the WAL. Writers are blocked only for the seal and rebase steps (two
// short critical sections); readers never block. On context
// cancellation the catalogue stays fully consistent: the sealed segment
// simply remains part of the replay set until the next compaction.
func (m *MutableCatalog) Compact(ctx context.Context) error {
	if !m.compacting.CompareAndSwap(false, true) {
		return ErrCompactionRunning
	}
	defer m.compacting.Store(false)

	// Step 1: seal. The old segment is fully durable (Close fsyncs)
	// before the first append to the new one, so sealed segments never
	// have torn tails that matter.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrMutableClosed
	}
	sealed := m.epoch
	sealedPath := filepath.Join(m.dir, fmt.Sprintf(walPattern, sealed))
	if err := m.log.Close(); err != nil {
		m.mu.Unlock()
		return fmt.Errorf("engine: sealing %s: %w", sealedPath, err)
	}
	next, err := wal.Create(filepath.Join(m.dir, fmt.Sprintf(walPattern, sealed+1)))
	if err != nil {
		// Reopen the sealed segment so the catalogue stays writable; its
		// records are already applied, so no replay handler is needed.
		reopened, rerr := wal.Open(sealedPath, nil)
		if rerr != nil {
			m.mu.Unlock()
			return fmt.Errorf("engine: compaction failed (%v) and WAL reopen failed: %w", err, rerr)
		}
		m.log = reopened
		m.mu.Unlock()
		return fmt.Errorf("engine: creating segment %d: %w", sealed+1, err)
	}
	m.log = next
	m.epoch = sealed + 1
	db := m.viewLocked()
	gens := make(map[string]uint64, len(m.rels))
	for name, mr := range m.rels {
		gens[name] = mr.gen
	}
	m.mu.Unlock()

	// Step 2: rewrite.
	if err := ctx.Err(); err != nil {
		return err
	}
	cat, err := catalog.Build(m.name, db)
	if err != nil {
		return fmt.Errorf("engine: compaction rebuild: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	snap := fmt.Sprintf(snapPattern, sealed)
	if err := catalog.WriteFile(filepath.Join(m.dir, snap), cat); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		os.Remove(filepath.Join(m.dir, snap))
		return err
	}

	// Step 3: commit.
	if err := writeManifest(m.dir, manifest{Name: m.name, Snapshot: snap, Epoch: sealed}); err != nil {
		return err
	}

	// Step 4: gc. Best effort — leftovers are cleaned on the next open
	// or compaction.
	if epochs, err := walSegments(m.dir); err == nil {
		for _, e := range epochs {
			if e <= sealed {
				os.Remove(filepath.Join(m.dir, fmt.Sprintf(walPattern, e)))
			}
		}
	}
	if snaps, err := filepath.Glob(filepath.Join(m.dir, "snap-*.fdbcat")); err == nil {
		for _, p := range snaps {
			if filepath.Base(p) != snap {
				os.Remove(p)
			}
		}
	}

	// Step 5: rebase.
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, cr := range cat.Relations {
		mr := m.rels[cr.Rel.Name]
		if mr == nil || mr.gen != gens[cr.Rel.Name] {
			continue // written during the rewrite; keep its delta layer
		}
		if mr.gen == 0 {
			continue // unmutated; its existing registration is still exact
		}
		facts.Delete(mr.base)
		if mr.pubRel != nil && mr.pubRel != cr.Rel && mr.pubRel != mr.base {
			facts.Delete(mr.pubRel)
		}
		facts.Store(cr.Rel, cr.Fact)
		mr.base = cr.Rel
		mr.ov = cr.Fact.Store.Overlay()
		mr.root = cr.Fact.Root
		mr.inserts = nil
		mr.tombs = map[string]bool{}
		mr.gen = 0
		mr.pubRel, mr.pubGen = nil, 0
	}
	m.gen++
	m.genA.Store(m.gen)
	m.compactions.Add(1)
	return nil
}

// AutoCompactConfig tunes the background compactor. Zero thresholds are
// ignored; a compaction triggers when any configured threshold is
// exceeded at a check interval.
type AutoCompactConfig struct {
	// Interval between threshold checks (default 10s).
	Interval time.Duration
	// MaxWALBytes triggers a compaction when the active segment exceeds
	// this size.
	MaxWALBytes int64
	// MaxDeltaRatio triggers when (delta rows + tombstones) exceeds this
	// fraction of the base row count (e.g. 0.25).
	MaxDeltaRatio float64
}

// StartAutoCompact launches the background compactor; it stops when the
// catalogue is closed. Calling it more than once is an error.
func (m *MutableCatalog) StartAutoCompact(cfg AutoCompactConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrMutableClosed
	}
	if m.stopAuto != nil {
		m.mu.Unlock()
		return errors.New("engine: auto-compaction already started")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stopAuto, m.autoDone = stop, done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if m.shouldCompact(cfg) {
				// Losing the race with a manual Compact is fine.
				if err := m.Compact(context.Background()); err != nil &&
					!errors.Is(err, ErrCompactionRunning) && !errors.Is(err, ErrMutableClosed) {
					// Thresholds remain exceeded; the next tick retries.
					continue
				}
			}
		}
	}()
	return nil
}

func (m *MutableCatalog) shouldCompact(cfg AutoCompactConfig) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if cfg.MaxWALBytes > 0 && m.log.Size() > cfg.MaxWALBytes {
		return true
	}
	if cfg.MaxDeltaRatio > 0 {
		var delta, base int64
		for _, mr := range m.rels {
			delta += int64(len(mr.inserts) + len(mr.tombs))
			base += int64(len(mr.base.Tuples))
		}
		if base == 0 {
			base = 1
		}
		if float64(delta)/float64(base) > cfg.MaxDeltaRatio {
			return true
		}
	}
	return false
}
