package engine

// WAL payload codec: one logical mutation per record, reusing the
// snapshot codec's value encoding (16-byte fixed records plus a string/
// vector heap) for rows and filter constants.
//
// Payload layout (little-endian):
//
//	u8   op (query.MutOp)
//	u8   reserved (0)
//	u16  relation-name length, then the name bytes
//	u32  row count
//	u16  row arity
//	u16  filter count
//	per filter: u16 attribute length, attribute bytes, u8 comparison op
//	u32  value-record byte length (16 × (rows×arity + filters))
//	...  value records (rows value-major, then filter constants)
//	u32  heap byte length, then the heap bytes
//
// The framing layer (package wal) already checksums every record, so the
// codec is only defensive about structure, not bit rot.

import (
	"encoding/binary"
	"fmt"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

const walValRecLen = 16

// encodeMutation serialises a validated mutation into a WAL payload.
func encodeMutation(m *query.Mutation) ([]byte, error) {
	if len(m.Relation) > 1<<16-1 {
		return nil, fmt.Errorf("engine: relation name of %d bytes", len(m.Relation))
	}
	arity := 0
	if len(m.Rows) > 0 {
		arity = len(m.Rows[0])
	}
	if arity > 1<<16-1 || len(m.Where) > 1<<16-1 {
		return nil, fmt.Errorf("engine: mutation too wide to log")
	}
	b := make([]byte, 0, 64+len(m.Rows)*arity*walValRecLen)
	b = append(b, byte(m.Op), 0)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Relation)))
	b = append(b, m.Relation...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Rows)))
	b = binary.LittleEndian.AppendUint16(b, uint16(arity))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Where)))
	for _, f := range m.Where {
		if len(f.Attr) > 1<<16-1 {
			return nil, fmt.Errorf("engine: filter attribute of %d bytes", len(f.Attr))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Attr)))
		b = append(b, f.Attr...)
		b = append(b, byte(f.Op))
	}
	var recs, heap []byte
	var err error
	for _, row := range m.Rows {
		if recs, heap, err = frep.AppendValueSection(recs, heap, row); err != nil {
			return nil, err
		}
	}
	for _, f := range m.Where {
		if recs, heap, err = frep.AppendValueSection(recs, heap, []values.Value{f.Const}); err != nil {
			return nil, err
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(recs)))
	b = append(b, recs...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(heap)))
	b = append(b, heap...)
	return b, nil
}

// walRd is a defensive cursor over one WAL payload.
type walRd struct {
	b   []byte
	off int
}

func (r *walRd) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, fmt.Errorf("engine: wal record truncated at %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *walRd) u16() (int, error) {
	if r.off+2 > len(r.b) {
		return 0, fmt.Errorf("engine: wal record truncated at %d", r.off)
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return int(v), nil
}

func (r *walRd) u32() (int, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("engine: wal record truncated at %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	if v > 1<<31-1 {
		return 0, fmt.Errorf("engine: wal record: implausible length %d at %d", v, r.off)
	}
	r.off += 4
	return int(v), nil
}

func (r *walRd) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("engine: wal record truncated at %d (want %d bytes)", r.off, n)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// decodeMutation parses a WAL payload back into a mutation. It is
// defensive end to end: malformed input returns an error, never a panic,
// and the result always passes Validate.
func decodeMutation(b []byte) (*query.Mutation, error) {
	r := &walRd{b: b}
	opB, err := r.u8()
	if err != nil {
		return nil, err
	}
	op := query.MutOp(opB)
	if op != query.OpInsert && op != query.OpDelete && op != query.OpUpsert {
		return nil, fmt.Errorf("engine: wal record: unknown op %d", opB)
	}
	if _, err := r.u8(); err != nil { // reserved
		return nil, err
	}
	nameLen, err := r.u16()
	if err != nil {
		return nil, err
	}
	nameB, err := r.bytes(nameLen)
	if err != nil {
		return nil, err
	}
	m := &query.Mutation{Op: op, Relation: string(nameB)}
	nRows, err := r.u32()
	if err != nil {
		return nil, err
	}
	arity, err := r.u16()
	if err != nil {
		return nil, err
	}
	nFilters, err := r.u16()
	if err != nil {
		return nil, err
	}
	nVals := nRows*arity + nFilters
	// A payload carries at least one 16-byte record per value, so the
	// payload length itself bounds the plausible counts.
	if nVals*walValRecLen > len(b) {
		return nil, fmt.Errorf("engine: wal record: %d values exceed %d payload bytes", nVals, len(b))
	}
	type filterHdr struct {
		attr string
		op   fops.CmpOp
	}
	filters := make([]filterHdr, nFilters)
	for i := range filters {
		attrLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		attrB, err := r.bytes(attrLen)
		if err != nil {
			return nil, err
		}
		opB, err := r.u8()
		if err != nil {
			return nil, err
		}
		if fops.CmpOp(opB) > fops.GE {
			return nil, fmt.Errorf("engine: wal record: unknown comparison op %d", opB)
		}
		filters[i] = filterHdr{attr: string(attrB), op: fops.CmpOp(opB)}
	}
	recsLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if recsLen != nVals*walValRecLen {
		return nil, fmt.Errorf("engine: wal record: %d record bytes for %d values", recsLen, nVals)
	}
	recs, err := r.bytes(recsLen)
	if err != nil {
		return nil, err
	}
	heapLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	heap, err := r.bytes(heapLen)
	if err != nil {
		return nil, err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("engine: wal record: %d trailing bytes", len(b)-r.off)
	}
	vals, err := frep.DecodeValueSection(recs, heap, nVals, false)
	if err != nil {
		return nil, err
	}
	if nRows > 0 {
		m.Rows = make([][]values.Value, nRows)
		for i := 0; i < nRows; i++ {
			m.Rows[i] = vals[i*arity : (i+1)*arity : (i+1)*arity]
		}
	}
	for i, f := range filters {
		m.Where = append(m.Where, query.Filter{Attr: f.attr, Op: f.op, Const: vals[nRows*arity+i]})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
