package engine

// Golden equivalence suite: every query of the workload's experimental
// query set (Q1–Q13, plus the flat-input variants) is executed through
// both the legacy pointer-based path and the arena path, and the ordered
// outputs must be identical row for row.

import (
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

// collectRows runs a query and materialises its result, closing it.
func collectRows(t *testing.T, run func() (*Result, error)) *relation.Relation {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rel, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// diffOrdered asserts two results are identical, including row order.
func diffOrdered(t *testing.T, name string, legacy, arena *relation.Relation) {
	t.Helper()
	if len(legacy.Tuples) != len(arena.Tuples) {
		t.Fatalf("%s: legacy has %d rows, arena %d", name, len(legacy.Tuples), len(arena.Tuples))
	}
	for i := range legacy.Tuples {
		if relation.Compare(legacy.Tuples[i], arena.Tuples[i]) != 0 {
			t.Fatalf("%s: row %d differs: legacy %v, arena %v", name, i, legacy.Tuples[i], arena.Tuples[i])
		}
	}
}

// TestGoldenWorkloadFlatQueries runs the AGG queries against the base
// relations (joins included) through Prepare/Exec on both paths.
func TestGoldenWorkloadFlatQueries(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	legacyEng := &Engine{PartialAgg: true, Legacy: true}
	arenaEng := &Engine{PartialAgg: true}
	for i := 1; i <= 5; i++ {
		q, err := workload.FlatAggQuery(i)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("flat-Q%d", i)
		lres := collectRows(t, func() (*Result, error) { return legacyEng.Run(q, db) })
		q2, _ := workload.FlatAggQuery(i)
		ares := collectRows(t, func() (*Result, error) { return arenaEng.Run(q2, db) })
		diffOrdered(t, name, lres, ares)
	}
}

// TestGoldenWorkloadViewQueries runs the AGG, AGG+ORD and ORD families
// against the materialised views R1/R3: the legacy path via RunOnView,
// the arena path via RunOnARel over the arena-built views.
func TestGoldenWorkloadViewQueries(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	r1, err := ds.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	r1a, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ds.FactorisedR3()
	if err != nil {
		t.Fatal(err)
	}
	r3a, err := ds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	// The two view builds must agree structurally before any queries.
	for i := range r1.Roots {
		if !frep.EqualStoreUnion(r1a.Store, r1a.Roots[i], r1.Roots[i]) {
			t.Fatalf("R1 root %d: arena and legacy view builds differ", i)
		}
	}
	for i := range r3.Roots {
		if !frep.EqualStoreUnion(r3a.Store, r3a.Roots[i], r3.Roots[i]) {
			t.Fatalf("R3 root %d: arena and legacy view builds differ", i)
		}
	}
	legacyEng := &Engine{PartialAgg: true, Legacy: true}
	arenaEng := &Engine{PartialAgg: true}

	type tc struct {
		name  string
		mk    func() *query.Query
		view  *fops.FRel
		aview *fops.ARel
	}
	cases := []tc{}
	for i := 1; i <= 5; i++ {
		i := i
		cases = append(cases, tc{
			name: fmt.Sprintf("Q%d", i),
			mk: func() *query.Query {
				q, err := workload.AggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				// The view queries address R1 as their single relation.
				return q
			},
			view:  r1,
			aview: r1a,
		})
	}
	cases = append(cases,
		tc{name: "Q6", mk: workload.Q6, view: r1, aview: r1a},
		tc{name: "Q7", mk: workload.Q7, view: r1, aview: r1a},
		tc{name: "Q8", mk: workload.Q8, view: r1, aview: r1a},
		tc{name: "Q9", mk: workload.Q9, view: r1, aview: r1a},
	)
	for _, limit := range []int{0, 10} {
		limit := limit
		cases = append(cases,
			tc{name: fmt.Sprintf("Q10/limit=%d", limit), mk: func() *query.Query { return workload.Q10(limit) }, view: r1, aview: r1a},
			tc{name: fmt.Sprintf("Q11/limit=%d", limit), mk: func() *query.Query { return workload.Q11(limit) }, view: r1, aview: r1a},
			tc{name: fmt.Sprintf("Q12/limit=%d", limit), mk: func() *query.Query { return workload.Q12(limit) }, view: r1, aview: r1a},
			tc{name: fmt.Sprintf("Q13/limit=%d", limit), mk: func() *query.Query { return workload.Q13(limit) }, view: r3, aview: r3a},
		)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lres := collectRows(t, func() (*Result, error) { return legacyEng.RunOnView(c.mk(), c.view, cat) })
			ares := collectRows(t, func() (*Result, error) { return arenaEng.RunOnARel(c.mk(), c.aview, cat) })
			diffOrdered(t, c.name, lres, ares)
		})
	}
}

// TestGoldenExecSharedMatchesExec asserts the snapshot-sharing execution
// path produces the same output as plain Exec, across repeated runs from
// one Prepared.
func TestGoldenExecSharedMatchesExec(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	eng := New()
	for i := 1; i <= 5; i++ {
		q, err := workload.FlatAggQuery(i)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := eng.Prepare(q, db)
		if err != nil {
			t.Fatal(err)
		}
		base := collectRows(t, func() (*Result, error) { return prep.Exec(db) })
		for rep := 0; rep < 3; rep++ {
			shared := collectRows(t, func() (*Result, error) { return prep.ExecShared(db) })
			diffOrdered(t, fmt.Sprintf("Q%d/rep%d", i, rep), base, shared)
		}
	}
}
