package engine

// Cursor-path golden suite: for every query of the workload's
// experimental set, the streaming Rows cursor must produce exactly the
// rows of ForEach/Relation, on both representations, and OFFSET must
// slice the stream without changing its contents.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

// collectCursor runs a query and drains it through the Rows cursor.
func collectCursor(t *testing.T, run func() (*Result, error)) *relation.Relation {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rows, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out []relation.Tuple
	for rows.Next() {
		out = append(out, rows.Tuple().Clone())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rel, err := relation.New("cursor", rows.Columns(), out)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestGoldenCursorMatchesForEach runs the workload view queries through
// ForEach (via Relation) and through the Rows cursor, on both the
// legacy and arena representations, and requires identical rows.
func TestGoldenCursorMatchesForEach(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	r1, err := ds.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	r1a, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ds.FactorisedR3()
	if err != nil {
		t.Fatal(err)
	}
	r3a, err := ds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	legacyEng := &Engine{PartialAgg: true, Legacy: true}
	arenaEng := &Engine{PartialAgg: true}

	type runner struct {
		name string
		run  func(mk func() *query.Query) func() (*Result, error)
	}
	mkView := func(i int) func() *query.Query {
		return func() *query.Query {
			q, err := workload.AggQuery(i)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
	}
	cases := []struct {
		name string
		mk   func() *query.Query
		r3q  bool
	}{
		{name: "Q1", mk: mkView(1)}, {name: "Q2", mk: mkView(2)},
		{name: "Q3", mk: mkView(3)}, {name: "Q4", mk: mkView(4)},
		{name: "Q5", mk: mkView(5)},
		{name: "Q6", mk: workload.Q6}, {name: "Q7", mk: workload.Q7},
		{name: "Q8", mk: workload.Q8}, {name: "Q9", mk: workload.Q9},
		{name: "Q10", mk: func() *query.Query { return workload.Q10(10) }},
		{name: "Q11", mk: func() *query.Query { return workload.Q11(0) }},
		{name: "Q12", mk: func() *query.Query { return workload.Q12(10) }},
		{name: "Q13", mk: func() *query.Query { return workload.Q13(0) }, r3q: true},
	}
	for _, c := range cases {
		runners := []runner{
			{"legacy", func(mk func() *query.Query) func() (*Result, error) {
				view := r1
				if c.r3q {
					view = r3
				}
				return func() (*Result, error) { return legacyEng.RunOnView(mk(), view, cat) }
			}},
			{"arena", func(mk func() *query.Query) func() (*Result, error) {
				view := r1a
				if c.r3q {
					view = r3a
				}
				return func() (*Result, error) { return arenaEng.RunOnARel(mk(), view, cat) }
			}},
		}
		for _, rn := range runners {
			t.Run(c.name+"/"+rn.name, func(t *testing.T) {
				viaForEach := collectRows(t, rn.run(c.mk))
				viaCursor := collectCursor(t, rn.run(c.mk))
				diffOrdered(t, c.name, viaForEach, viaCursor)
			})
		}
	}
}

// TestGoldenCursorFlatQueries covers the Prepare/Exec join path through
// the cursor on both representations.
func TestGoldenCursorFlatQueries(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	for _, eng := range []*Engine{{PartialAgg: true}, {PartialAgg: true, Legacy: true}} {
		name := "arena"
		if eng.Legacy {
			name = "legacy"
		}
		for i := 1; i <= 5; i++ {
			q, err := workload.FlatAggQuery(i)
			if err != nil {
				t.Fatal(err)
			}
			viaForEach := collectRows(t, func() (*Result, error) { return eng.Run(q, db) })
			q2, _ := workload.FlatAggQuery(i)
			viaCursor := collectCursor(t, func() (*Result, error) { return eng.Run(q2, db) })
			diffOrdered(t, fmt.Sprintf("%s/flat-Q%d", name, i), viaForEach, viaCursor)
		}
	}
}

// TestOffsetSlicesStream asserts that LIMIT n OFFSET m yields exactly
// rows [m, m+n) of the unpaged stream, for SPJ, grouped and
// aggregate-ordered queries, on both representations.
func TestOffsetSlicesStream(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	cases := []struct {
		name string
		mk   func() *query.Query
	}{
		{"spj-ordered", func() *query.Query {
			return &query.Query{
				Relations: []string{"Orders"},
				OrderBy: []query.OrderItem{
					{Attr: "customer"}, {Attr: "date"}, {Attr: "package"},
				},
			}
		}},
		{"grouped", func() *query.Query { q, _ := workload.FlatAggQuery(2); return q }},
		{"agg-ordered", func() *query.Query { q, _ := workload.FlatAggQuery(4); return q }},
	}
	for _, eng := range []*Engine{{PartialAgg: true}, {PartialAgg: true, Legacy: true}} {
		engName := "arena"
		if eng.Legacy {
			engName = "legacy"
		}
		for _, c := range cases {
			base := c.mk()
			base.Limit = 0
			base.Offset = 0
			full := collectCursor(t, func() (*Result, error) { return eng.Run(base, db) })
			n := len(full.Tuples)
			if n < 4 {
				t.Fatalf("%s/%s: only %d rows; test needs more", engName, c.name, n)
			}
			for _, page := range []struct{ limit, offset int }{
				{0, 1}, {2, 0}, {2, 2}, {3, n - 2}, {2, n}, {2, n + 5},
			} {
				q := c.mk()
				q.Limit = page.limit
				q.Offset = page.offset
				got := collectCursor(t, func() (*Result, error) { return eng.Run(q, db) })
				lo := page.offset
				if lo > n {
					lo = n
				}
				hi := n
				if page.limit > 0 && lo+page.limit < hi {
					hi = lo + page.limit
				}
				want := full.Tuples[lo:hi]
				if len(got.Tuples) != len(want) {
					t.Fatalf("%s/%s limit=%d offset=%d: %d rows, want %d",
						engName, c.name, page.limit, page.offset, len(got.Tuples), len(want))
				}
				for i := range want {
					if relation.Compare(got.Tuples[i], want[i]) != 0 {
						t.Fatalf("%s/%s limit=%d offset=%d row %d: %v, want %v",
							engName, c.name, page.limit, page.offset, i, got.Tuples[i], want[i])
					}
				}
			}
		}
	}
}

// TestResultClosedGuards asserts Close is idempotent and that every
// enumeration API refuses a closed Result with ErrClosed instead of
// touching the recycled store.
func TestResultClosedGuards(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	q, err := workload.FlatAggQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := New()
	res, err := eng.Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}

	before := storeReturns.Load()
	res.Close()
	res.Close() // idempotent: the store must be returned exactly once
	if d := storeReturns.Load() - before; d != 1 {
		t.Fatalf("store returned %d times across double Close, want 1", d)
	}

	// The open cursor notices the close instead of reading freed slabs.
	if rows.Next() {
		t.Fatal("Next succeeded on a closed result")
	}
	if !errors.Is(rows.Err(), ErrClosed) {
		t.Fatalf("rows.Err() = %v, want ErrClosed", rows.Err())
	}

	if _, err := res.Rows(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rows after Close = %v, want ErrClosed", err)
	}
	if err := res.ForEach(func(relation.Tuple) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ForEach after Close = %v, want ErrClosed", err)
	}
	if _, err := res.Relation(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Relation after Close = %v, want ErrClosed", err)
	}
	if _, err := res.Count(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Count after Close = %v, want ErrClosed", err)
	}
}

// TestRowsScan covers the Scan conversions.
func TestRowsScan(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	q, err := workload.FlatAggQuery(1) // group attr + count
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rows, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	nCols := len(rows.Columns())
	dest := make([]any, nCols)
	ptrs := make([]any, nCols)
	for i := range dest {
		ptrs[i] = &dest[i]
	}
	if err := rows.Scan(ptrs...); err != nil {
		t.Fatal(err)
	}
	for i, v := range dest {
		if v == nil {
			t.Fatalf("column %d scanned to nil: %v", i, rows.Tuple())
		}
	}
	if err := rows.Scan(); err == nil {
		t.Fatal("Scan with wrong arity succeeded")
	}

	// Scanning a float column into *int64 must refuse, not truncate.
	var f float64 = 1.5
	v := values.NewFloat(f)
	var i64 int64
	if err := scanValue(v, &i64); err == nil {
		t.Fatal("scanning a float into *int64 succeeded (would truncate)")
	}
	if err := scanValue(v, &f); err != nil {
		t.Fatalf("scanning a float into *float64: %v", err)
	}

	// After exhaustion, Scan must error instead of repeating the last row.
	for rows.Next() {
	}
	if err := rows.Scan(ptrs...); err == nil {
		t.Fatal("Scan after exhaustion succeeded with stale row")
	}
	// And after Close likewise.
	rows2, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.Next() {
		t.Fatal("no rows")
	}
	rows2.Close()
	if err := rows2.Scan(ptrs...); err == nil {
		t.Fatal("Scan after Close succeeded with stale row")
	}
}
