package engine

// Golden persistence suite: a catalogue saved to bytes and loaded back
// must answer the whole workload query set byte-identically to the
// original in-memory database — through Run (fresh build per query) and
// through Prepare/ExecShared (which grafts the loaded factorisations).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

// workloadDB assembles the full workload database: the three base
// relations plus the flat views R1–R3 the paper's Q1–Q13 run against.
func workloadDB(t *testing.T) DB {
	t.Helper()
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	r1, err := ds.FlatR1()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ds.FlatR2()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ds.R3()
	if err != nil {
		t.Fatal(err)
	}
	db["R1"], db["R2"], db["R3"] = r1, r2, r3
	return db
}

// workloadQueries returns the named query set Q1–Q13 plus the flat-input
// aggregation variants (which join the three base relations).
func workloadQueries(t *testing.T) map[string]func() *query.Query {
	t.Helper()
	qs := map[string]func() *query.Query{
		"Q6": workload.Q6, "Q7": workload.Q7, "Q8": workload.Q8, "Q9": workload.Q9,
		"Q10": func() *query.Query { return workload.Q10(0) },
		"Q11": func() *query.Query { return workload.Q11(10) },
		"Q12": func() *query.Query { return workload.Q12(0) },
		"Q13": func() *query.Query { return workload.Q13(10) },
	}
	for i := 1; i <= 5; i++ {
		i := i
		qs[fmt.Sprintf("Q%d", i)] = func() *query.Query {
			q, err := workload.AggQuery(i)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
		qs[fmt.Sprintf("flat-Q%d", i)] = func() *query.Query {
			q, err := workload.FlatAggQuery(i)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}
	}
	return qs
}

// renderRows runs the query and renders every output row into one byte
// buffer, so equality checks are literally byte-wise.
func renderRows(t *testing.T, run func() (*Result, error)) []byte {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var buf bytes.Buffer
	for _, c := range res.Schema() {
		fmt.Fprintf(&buf, "%s\t", c)
	}
	buf.WriteByte('\n')
	ferr := res.ForEach(func(tp relation.Tuple) bool {
		for _, v := range tp {
			fmt.Fprintf(&buf, "%d:%s\t", v.Kind(), v.String())
		}
		buf.WriteByte('\n')
		return true
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	return buf.Bytes()
}

func TestCatalogGoldenWorkload(t *testing.T) {
	db := workloadDB(t)
	var snap bytes.Buffer
	if _, err := SaveCatalog(&snap, "workload", db); err != nil {
		t.Fatal(err)
	}
	cat, err := LoadCatalog(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if cat.Name != "workload" {
		t.Fatalf("catalogue name %q", cat.Name)
	}

	eng := New()
	for name, mk := range workloadQueries(t) {
		want := renderRows(t, func() (*Result, error) { return eng.Run(mk(), db) })
		got := renderRows(t, func() (*Result, error) { return eng.Run(mk(), cat.DB) })
		if !bytes.Equal(want, got) {
			t.Errorf("%s: load-then-query differs from build-then-query\nwant:\n%s\ngot:\n%s", name, want, got)
		}
		// The prepared/shared path must agree too — this is the route
		// that grafts the loaded factorisations.
		p, err := eng.Prepare(mk(), cat.DB)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shared := renderRows(t, func() (*Result, error) { return p.ExecShared(cat.DB) })
		if !bytes.Equal(want, shared) {
			t.Errorf("%s: ExecShared on loaded catalogue differs", name)
		}
	}
}

func TestCatalogGraftPathUsed(t *testing.T) {
	db := workloadDB(t)
	var snap bytes.Buffer
	if _, err := SaveCatalog(&snap, "workload", db); err != nil {
		t.Fatal(err)
	}
	cat, err := LoadCatalog(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	eng := New()
	// A single-relation query keeps the relation's own attribute order,
	// which is exactly the order the catalogue stores — the build must be
	// served by a graft.
	p, err := eng.Prepare(workload.Q10(0), cat.DB)
	if err != nil {
		t.Fatal(err)
	}
	before := FactGrafts()
	res, err := p.Exec(cat.DB)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if FactGrafts() == before {
		t.Fatal("loaded catalogue did not serve the base-relation build via graft")
	}

	// After Close the registry entry is gone: the same query rebuilds
	// from flat tuples and still answers identically.
	want := renderRows(t, func() (*Result, error) { return p.Exec(cat.DB) })
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	before = FactGrafts()
	got := renderRows(t, func() (*Result, error) { return p.Exec(cat.DB) })
	if FactGrafts() != before {
		t.Fatal("closed catalogue still serving grafts")
	}
	if !bytes.Equal(want, got) {
		t.Fatal("post-Close rebuild differs from grafted execution")
	}
}

func TestCatalogFileRoundTrip(t *testing.T) {
	db := workloadDB(t)
	path := filepath.Join(t.TempDir(), "workload.fdbcat")
	if err := SaveCatalogFile(path, "workload", db); err != nil {
		t.Fatal(err)
	}
	// The write must be atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the snapshot in the directory, found %d entries", len(entries))
	}
	eng := New()
	for _, mmap := range []bool{false, true} {
		cat, err := LoadCatalogFile(path, mmap)
		if err != nil {
			t.Fatal(err)
		}
		want := renderRows(t, func() (*Result, error) { return eng.Run(workload.Q2(), db) })
		got := renderRows(t, func() (*Result, error) { return eng.Run(workload.Q2(), cat.DB) })
		if !bytes.Equal(want, got) {
			t.Errorf("mmap=%v: loaded catalogue answers differently", mmap)
		}
		if err := cat.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadCatalogFile(filepath.Join(t.TempDir(), "absent.fdbcat"), false); err == nil {
		t.Fatal("loading a missing file did not error")
	}
}
