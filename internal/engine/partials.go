package engine

// Partial-merge entry points for distributed execution. A scatter-gather
// coordinator (internal/cluster) receives per-shard aggregate rows over
// the wire and must combine them with exactly the merge algebra the
// in-process parallel path uses (frep.MergePartials), so that a
// distributed aggregate is byte-identical to its serial evaluation:
// counts and sums add (integer sums bit-identically), min and max take
// the extremum under the values total order, and avg is reconstructed
// from shipped sum and count partials with the engine's own finaliser.

import (
	"fmt"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

// PartialFields maps a query's aggregate list to the mergeable field
// algebra of the factorised representation. Avg has no associative
// partial form at the row level — it ships as a (sum, count) pair — so
// a query containing Avg must be rewritten (see cluster's planner)
// before its shard rows can merge; asking for its fields is an error.
func PartialFields(aggs []query.Aggregate) ([]ftree.AggField, error) {
	fields := make([]ftree.AggField, len(aggs))
	for i, a := range aggs {
		switch a.Fn {
		case query.Count:
			fields[i] = ftree.AggField{Fn: ftree.Count}
		case query.Sum:
			fields[i] = ftree.AggField{Fn: ftree.Sum, Arg: a.Arg}
		case query.Min:
			fields[i] = ftree.AggField{Fn: ftree.Min, Arg: a.Arg}
		case query.Max:
			fields[i] = ftree.AggField{Fn: ftree.Max, Arg: a.Arg}
		default:
			return nil, fmt.Errorf("engine: %s has no mergeable partial form; rewrite it as sum and count", a.Fn)
		}
	}
	return fields, nil
}

// MergePartialAggRow folds one shard's aggregate outputs src into the
// running outputs dst, field by field, using the same algebra as the
// in-process parallel merge: count and sum add, min and max take the
// extremum. Null is the identity, so dst may start as all Nulls.
// fields comes from PartialFields; len(dst) == len(src) == len(fields).
func MergePartialAggRow(fields []ftree.AggField, dst, src []values.Value) {
	frep.MergePartials(fields, dst, src)
}

// FinalizeAvg reconstructs an avg output from its shipped sum and count
// partials, using the identical division the engine applies when it
// finalises the composite (sum, count) pair locally.
func FinalizeAvg(sum, count values.Value) values.Value {
	return values.Div(sum, count)
}
