package engine

// Ranked direct access at the engine layer: OFFSET routes through the
// arena enumerators' Seek (O(depth × log fanout) on ranked stores)
// instead of stepping the odometer row by row, bare COUNT(*) queries
// are answered from the ranked root counts without executing the
// aggregation plan, and Result.TotalCount reports the pre-OFFSET row
// count from the same index. Process-wide counters record which route
// each OFFSET took, for the server's /stats accounting.

import (
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
)

// SeekFallbackMin is the smallest OFFSET worth routing through Seek on
// an unranked store, where counting falls back to a memoized recursion
// over (slot, node) pairs: below it the plain linear skip is cheaper
// than building the memo. Ranked stores always seek. Package-visible so
// fdbbench can pin OFFSET routing per benchmark arm.
var SeekFallbackMin = 1024

// Cumulative OFFSET routing counters; see SeekSkipStats.
var (
	seekOffsets atomic.Int64
	skipOffsets atomic.Int64
)

// OffsetStats are cumulative counters of how OFFSET clauses were
// applied: by ranked (or memoized) direct Seek, or by the linear
// skip loop.
type OffsetStats struct {
	SeekOffsets int64 `json:"seekOffsets"`
	SkipOffsets int64 `json:"skipOffsets"`
}

// SeekSkipStats returns the process-wide OFFSET routing counters.
func SeekSkipStats() OffsetStats {
	return OffsetStats{
		SeekOffsets: seekOffsets.Load(),
		SkipOffsets: skipOffsets.Load(),
	}
}

// directSeeker is the ranked direct-access surface of the arena
// enumerators (frep.StoreEnumerator / frep.StoreGroupEnumerator); the
// pointer-based legacy enumerators do not implement it.
type directSeeker interface {
	Seek(k int) int
	SeekRanked() bool
}

// enumTotaler is the pre-enumeration counting surface of the arena
// enumerators.
type enumTotaler interface{ Total() int64 }

// rowSeeker is implemented by cursors that can apply an OFFSET by
// direct positioning. seekRows returns (skipped, true) when it handled
// the skip — skipped < n means the stream is exhausted — and
// (0, false) when the caller must fall back to the linear skip.
type rowSeeker interface {
	seekRows(n int) (int, bool)
}

// rowTotaler is implemented by cursors that can count their stream
// without enumerating it.
type rowTotaler interface {
	totalRows() (int64, bool)
}

// enumSeek routes a skip through an enumerator's Seek when profitable:
// always on the ranked path, only past SeekFallbackMin on the memoized
// fallback.
func enumSeek(en any, n int) (int, bool) {
	ds, ok := en.(directSeeker)
	if !ok {
		return 0, false
	}
	if !ds.SeekRanked() && n < SeekFallbackMin {
		return 0, false
	}
	return ds.Seek(n), true
}

// enumTotal reads an enumerator's stream count when available.
func enumTotal(en any) (int64, bool) {
	tt, ok := en.(enumTotaler)
	if !ok {
		return 0, false
	}
	return tt.Total(), true
}

func (c *projCursor) seekRows(n int) (int, bool) { return enumSeek(c.en, n) }
func (c *projCursor) totalRows() (int64, bool)   { return enumTotal(c.en) }
func (c *sliceCursor) totalRows() (int64, bool)  { return int64(len(c.rows)), true }

// A HAVING filter makes output positions diverge from enumerator
// positions, so the grouped cursors only seek and count without one.

func (c *groupCursor) seekRows(n int) (int, bool) {
	if c.having != nil {
		return 0, false
	}
	return enumSeek(c.ge, n)
}

func (c *groupCursor) totalRows() (int64, bool) {
	if c.having != nil {
		return 0, false
	}
	return enumTotal(c.ge)
}

func (c *matCursor) seekRows(n int) (int, bool) {
	if c.having != nil {
		return 0, false
	}
	return enumSeek(c.en, n)
}

func (c *matCursor) totalRows() (int64, bool) {
	if c.having != nil {
		return 0, false
	}
	return enumTotal(c.en)
}

// TotalCount returns the number of rows the query yields before OFFSET
// and LIMIT are applied (HAVING included) — the denominator a paginating
// caller needs. On ranked arena results it is answered from the
// subtree-count index without enumerating; otherwise the stream is
// counted. It does not advance any open Rows.
func (r *Result) TotalCount() (int64, error) {
	if r.closed {
		return 0, ErrClosed
	}
	cur, err := r.newCursor()
	if err != nil {
		return 0, err
	}
	if cl, ok := cur.(rowCloser); ok {
		defer cl.close()
	}
	if tt, ok := cur.(rowTotaler); ok {
		if n, ok := tt.totalRows(); ok {
			return n, nil
		}
	}
	var n int64
	for {
		_, ok, err := cur.step()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// fastCountQuery reports whether q is a bare COUNT(*): one count
// aggregate over everything, with no grouping, filtering, joining or
// ordering that would make the answer differ from the input size.
func fastCountQuery(q *query.Query) bool {
	return len(q.Aggregates) == 1 &&
		q.Aggregates[0].Fn == query.Count && q.Aggregates[0].Arg == "" &&
		len(q.GroupBy) == 0 && len(q.Having) == 0 && len(q.OrderBy) == 0 &&
		len(q.Filters) == 0 && len(q.Equalities) == 0
}

// fastCountValue answers a bare COUNT(*) from the ranked root counts of
// the (unexecuted) arena input: the flat result of a forest is the
// product of its root subtree counts. It declines — and the normal
// aggregation plan runs — when any root lacks the index or the product
// overflows.
func fastCountValue(q *query.Query, ar *fops.ARel) (int64, bool) {
	if ar == nil || !fastCountQuery(q) {
		return 0, false
	}
	total := uint64(1)
	for _, root := range ar.Roots {
		t, ok := ar.Store.RankTotal(root)
		if !ok {
			return 0, false
		}
		hi, lo := bits.Mul64(total, uint64(t))
		if hi != 0 {
			return 0, false
		}
		total = lo
	}
	if total > math.MaxInt64 {
		return 0, false
	}
	return int64(total), true
}

// segmentsFor returns the Restrict windows for fanning an enumeration
// out: count-balanced via the ranked index when the enumerator offers
// it (so a hot outer value no longer serialises the merge behind one
// worker), uniform otherwise.
func segmentsFor(se segmentable, n, par int) [][2]int {
	if ws, ok := se.(interface{ WeightedSegments(p int) [][2]int }); ok {
		if segs := ws.WeightedSegments(par); segs != nil {
			return segs
		}
	}
	return frep.Segments(n, par)
}
